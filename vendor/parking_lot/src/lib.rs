//! Offline shim for the `parking_lot` API surface used by this workspace.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free
//! signatures: `Mutex::lock` returns a guard directly and `Condvar::wait`
//! takes `&mut MutexGuard`. A poisoned inner lock is treated as acquired
//! (the data is plain old state in this workspace; a panicking holder
//! aborts the test anyway).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Returns `true` if the wait timed out (parking_lot's
    /// `WaitTimeoutResult::timed_out` semantics, flattened).
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        res.timed_out()
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        // std does not report whether a thread was woken.
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(3u32);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
