//! Offline shim of the `fxhash`/`rustc-hash` family: a deterministic,
//! non-cryptographic hasher for interior hash maps on hot paths.
//!
//! The std `HashMap` defaults to SipHash-1-3 with per-process random
//! keys — robust against adversarial keys, but an order of magnitude
//! slower than needed for trusted interior keys like `PageId` or
//! `(mtx, stage)` tuples, and randomized iteration order makes runs
//! harder to compare. This shim implements the Firefox/rustc "Fx" mix
//! (multiply by a 64-bit constant, rotate, xor) with a fixed zero seed:
//! deterministic across processes, one multiply per word hashed.
//!
//! Only the subset the workspace uses is provided: [`FxHasher`],
//! [`FxBuildHasher`], and the [`FxHashMap`]/[`FxHashSet`] aliases.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox `mozilla::HashGeneric`
/// implementation (also used by rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// `std::hash::Hasher` implementing the Fx multiply-rotate-xor mix.
///
/// Not hash-flooding resistant; use only for trusted interior keys.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// Zero-seeded builder: every map built from it hashes identically,
/// across processes and runs.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        for key in [0u64, 1, 42, u64::MAX, 0x51_7c_c1_b7] {
            assert_eq!(hash_of(&key), hash_of(&key));
        }
        assert_eq!(hash_of(&(3u64, 7u16)), hash_of(&(3u64, 7u16)));
    }

    #[test]
    fn distinct_small_keys_spread() {
        let hashes: FxHashSet<u64> = (0u64..1024).map(|k| hash_of(&k)).collect();
        assert_eq!(hashes.len(), 1024, "collisions among 1024 sequential keys");
    }

    #[test]
    fn partial_word_tail_hashes() {
        // Byte-slice path: tails shorter than 8 bytes must still mix.
        assert_ne!(hash_of(&[1u8, 2, 3]), hash_of(&[1u8, 2, 4]));
        assert_ne!(hash_of("abc"), hash_of("abd"));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u64, u16), Vec<u64>> = FxHashMap::default();
        m.insert((9, 2), vec![1, 2, 3]);
        assert_eq!(m.get(&(9, 2)), Some(&vec![1, 2, 3]));
        assert!(!m.contains_key(&(9, 3)));
    }
}
