//! Offline shim for the `criterion` API surface used by this workspace.
//!
//! Keeps the bench sources compiling and producing honest wall-clock
//! numbers without the statistics machinery: each benchmark runs one
//! warm-up iteration, then `sample_size` timed samples, and prints
//! min/mean per-iteration time. Throughput declarations are used to also
//! print MB/s or Melem/s for the mean.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            repr: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            repr: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.repr)
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
    }
}

pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id.to_string(), &b.samples);
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    pub fn finish(self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) | Some(Throughput::BytesDecimal(b)) => {
                let secs = mean.as_secs_f64();
                if secs > 0.0 {
                    format!("  {:>10.1} MB/s", b as f64 / secs / 1.0e6)
                } else {
                    String::new()
                }
            }
            Some(Throughput::Elements(n)) => {
                let secs = mean.as_secs_f64();
                if secs > 0.0 {
                    format!("  {:>10.2} Melem/s", n as f64 / secs / 1.0e6)
                } else {
                    String::new()
                }
            }
            None => String::new(),
        };
        println!(
            "bench: {label:<48} mean {:>12?}  min {:>12?}{rate}",
            mean, min
        );
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($group:ident; $($target:path),+ $(,)?) => {
        $crate::criterion_group!($group, $($target),+);
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("batch", 8).to_string(), "batch/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
