//! Offline shim for the `crossbeam` API surface used by this workspace:
//! only `crossbeam::channel::{bounded, Sender, Receiver}` plus the error
//! enums. Backed by `std::sync::mpsc::sync_channel`, whose bounded
//! blocking semantics match what the fabric queues need (rendezvous
//! channels excepted — `bounded(0)` here still provides one slot, which
//! the fabric never requests because it asserts `capacity > 0`).

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError};

    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.pad("Full(..)"),
                TrySendError::Disconnected(_) => f.pad("Disconnected(..)"),
            }
        }
    }

    pub struct Sender<T> {
        tx: mpsc::SyncSender<T>,
    }

    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        // std's sync_channel(0) is a rendezvous channel; keep at least one
        // slot so `capacity` bounds buffering rather than forcing lockstep.
        let (tx, rx) = mpsc::sync_channel(capacity.max(1));
        (Sender { tx }, Receiver { rx })
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.tx.send(value)
        }

        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.tx.try_send(value).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            })
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                tx: self.tx.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_blocks_at_capacity() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            match tx.try_send(3) {
                Err(TrySendError::Full(3)) => {}
                other => panic!("expected Full(3), got {other:?}"),
            }
            assert_eq!(rx.recv().unwrap(), 1);
            tx.try_send(3).unwrap();
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.recv().unwrap(), 3);
        }

        #[test]
        fn disconnect_surfaces_on_both_sides() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert!(matches!(tx.try_send(9), Err(TrySendError::Disconnected(9))));

            let (tx, rx) = bounded::<u32>(1);
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert!(rx.recv().is_err());
        }

        #[test]
        fn empty_is_distinct_from_disconnected() {
            let (tx, rx) = bounded::<u32>(1);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(7).unwrap();
            assert_eq!(rx.try_recv(), Ok(7));
        }
    }
}
