//! Offline shim for the `proptest` API surface used by this workspace.
//!
//! Implements the same surface syntax (`proptest!`, `prop_assert*`,
//! `prop_assume!`, `prop_oneof!`, `any`, `Just`, ranges, tuples and
//! `collection::vec` as strategies) with a deterministic splitmix64
//! generator instead of shrinking-capable random search: every test fn
//! runs `ProptestConfig::cases` generated cases seeded from its own name,
//! so failures reproduce exactly across runs. No shrinking — a failing
//! case panics with the ordinary `assert!` message.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic generator (splitmix64).
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn seeded(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seed derived from a test name, so each property gets a stable
    /// but distinct stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::seeded(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run configuration; only `cases` matters to this shim, the rest exist
/// so `.. ProptestConfig::default()` call sites compile unchanged.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_shrink_iters: u32,
    pub fork: bool,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_shrink_iters: 0,
            fork: false,
        }
    }
}

/// A value generator. Mirrors proptest's `Strategy` minus shrinking.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut Rng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strat: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    strat: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut Rng) -> O {
        (self.f)(self.strat.generate(rng))
    }
}

/// Uniform choice between boxed alternatives (backs `prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut Rng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut Rng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut Rng) -> Self {
        rng.next_f64()
    }
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
range_strategy_signed!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut Rng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

pub mod option {
    use super::{Rng, Strategy};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of(strategy)`: `None` about a quarter of the
    /// time, `Some(value)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod collection {
    use super::{Rng, Strategy};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element_strategy, length_range)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current generated case when the assumption fails. Expands to
/// `continue` targeting the per-case loop emitted by `proptest!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(Box::new($strat) as $crate::BoxedStrategy<_>,)+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::Rng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::Rng::deterministic("x");
        let mut b = crate::Rng::deterministic("x");
        let mut c = crate::Rng::deterministic("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::Rng::seeded(7);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::Rng::seeded(3);
        for _ in 0..200 {
            let v = crate::collection::vec(any::<u32>(), 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

        /// The macro itself: args bind, assertions fire, assume skips.
        #[test]
        fn macro_generates_cases(
            x in 1u32..100,
            flag in any::<bool>(),
            v in crate::collection::vec(any::<u8>(), 0..4),
        ) {
            prop_assume!(x != 55);
            prop_assert!((1..100).contains(&x));
            prop_assert_ne!(x, 55);
            prop_assert_eq!(v.len() < 4, true);
            let _ = flag;
        }

        #[test]
        fn oneof_and_map_compose(
            k in prop_oneof![Just(1u32), (10u32..12).prop_map(|v| v * 2)],
        ) {
            prop_assert!([1u32, 20, 22].contains(&k));
        }
    }
}
