//! MTX lifecycle spans and misspeculation attribution (ISSUE 6).
//!
//! Four claims are pinned here:
//!
//! 1. **Well-formedness** — spans rebuilt from any traced run satisfy
//!    the structural invariants (`start <= end`, child phases inside
//!    the parent stage interval, retry attempts strictly ordered),
//!    property-tested over random DOALLs and a speculated accumulator
//!    that actually retries.
//! 2. **Planted conflicts are explained** — the parser's planted
//!    unknown-token aborts attribute as `predicted_carried_dep`, never
//!    `unpredicted`.
//! 3. **The acceptance matrix holds** — every abort across all registry
//!    workloads (plus the parser/li planted variants) at 1, 2, and 4
//!    try-commit shards gets a non-`unpredicted` cause.
//! 4. **Fault rounds attribute as such** — under a pinned fault seed
//!    with an empty lint report, squashed attempts come back as
//!    `fault_induced_retry`, not `unpredicted`.

use std::sync::{Arc, Mutex};

use dsmtx::{
    FaultTarget, IterOutcome, MtxId, MtxSystem, Program, RunReport, StageKind, SystemConfig,
    WorkerCtx,
};
use dsmtx_analyze::{analyze, attribute, cause_counts};
use dsmtx_fabric::FaultRates;
use dsmtx_integration_tests::{seed_from_env, FaultCase, Workload};
use dsmtx_mem::MasterMem;
use dsmtx_obs::{check_spans, AbortCause, MtxSpan, SpanOutcome};
use dsmtx_paradigms::set_trace_default;
use dsmtx_uva::{OwnerId, RegionAllocator};
use dsmtx_workloads::{all_kernels, Scale};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Pinned seeds, mirrored by the fault-matrix tests (overridable
/// through `DSMTX_FAULT_SEED`).
const FAULT_SEEDS: [u64; 3] = [1, 20260806, 0xDEAD_BEEF];

/// Kernel runs build their `MtxSystem` through the paradigms executor,
/// whose tracing default is process-global; tests that flip it must not
/// interleave.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the global tracing default on, restoring the previous
/// value afterwards (even if `f` panics the poisoned lock keeps later
/// tests serialized).
fn with_tracing<T>(f: impl FnOnce() -> T) -> T {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = set_trace_default(true);
    let out = f();
    set_trace_default(prev);
    out
}

fn heap0() -> RegionAllocator {
    RegionAllocator::new(OwnerId(0))
}

/// Asserts that every aborted span carries a cause and that none of
/// them is the red-flag `Unpredicted`.
fn assert_all_aborts_explained(what: &str, spans: &[MtxSpan]) {
    for s in spans {
        if s.outcome() == SpanOutcome::Aborted {
            match s.cause {
                None => panic!(
                    "{what}: mtx {}#a{} aborted without a cause",
                    s.mtx, s.attempt
                ),
                Some(AbortCause::Unpredicted) => panic!(
                    "{what}: mtx {}#a{} abort is UNPREDICTED (conflict {:?})",
                    s.mtx, s.attempt, s.conflict
                ),
                Some(_) => {}
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // the runtime spawns threads per case: keep it modest
        .. ProptestConfig::default()
    })]

    /// Spans rebuilt from a random traced DOALL are well-formed and
    /// account for every committed iteration.
    #[test]
    fn doall_spans_are_well_formed(
        values in proptest::collection::vec(any::<u64>(), 1..24),
        replicas in 1u16..5,
    ) {
        let n = values.len() as u64;
        let mut heap = heap0();
        let input = heap.alloc_words(n).unwrap();
        let output = heap.alloc_words(n).unwrap();
        let mut master = MasterMem::new();
        for (i, v) in values.iter().enumerate() {
            master.write(input.add_words(i as u64), *v);
        }
        let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
            let x = ctx.read(input.add_words(mtx.0))?;
            ctx.write_no_forward(output.add_words(mtx.0), x ^ mtx.0)?;
            Ok(IterOutcome::Continue)
        });
        let mut cfg = SystemConfig::new();
        cfg.stage(StageKind::Parallel { replicas });
        let result = MtxSystem::new(&cfg).unwrap().trace(true).run(Program {
            master,
            stages: vec![body],
            recovery: Box::new(|_, _| IterOutcome::Continue),
            on_commit: None,
            iteration_limit: Some(n),
        }).unwrap();
        let spans = result.report.spans();
        if let Err(errs) = check_spans(&spans) {
            prop_assert!(false, "malformed spans: {errs:?}");
        }
        let committed = spans
            .iter()
            .filter(|s| s.outcome() == SpanOutcome::Committed)
            .count() as u64;
        prop_assert_eq!(committed, n, "every iteration commits exactly once");
    }

    /// A speculated (unforwarded) accumulator retries under contention;
    /// its spans stay well-formed and the retry attempts of each MTX
    /// are strictly ordered — the invariant `check_spans` enforces.
    #[test]
    fn speculated_accumulator_spans_are_well_formed(
        n in 4u64..20,
        replicas in 2u16..5,
    ) {
        let mut heap = heap0();
        let acc_cell = heap.alloc_words(1).unwrap();
        let mut master = MasterMem::new();
        master.write(acc_cell, 0);
        let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
            let acc = ctx.read(acc_cell)?;
            ctx.write_no_forward(acc_cell, acc + mtx.0 + 1)?;
            Ok(IterOutcome::Continue)
        });
        let mut cfg = SystemConfig::new();
        cfg.stage(StageKind::Parallel { replicas });
        let result = MtxSystem::new(&cfg).unwrap().trace(true).run(Program {
            master,
            stages: vec![body],
            recovery: Box::new(move |mtx, m| {
                let acc = m.read(acc_cell);
                m.write(acc_cell, acc + mtx.0 + 1);
                IterOutcome::Continue
            }),
            on_commit: None,
            iteration_limit: Some(n),
        }).unwrap();
        prop_assert_eq!(
            result.master.read(acc_cell),
            n * (n + 1) / 2,
            "recovery preserves the sequential fold"
        );
        let spans = result.report.spans();
        if let Err(errs) = check_spans(&spans) {
            prop_assert!(false, "malformed spans: {errs:?}");
        }
    }
}

/// Satellite (c): the parser's planted unknown-token conflict must be
/// *explained* — attributed `predicted_carried_dep` — and never fall
/// into the `unpredicted` bucket. The conflict is schedule-dependent,
/// hence the bounded retry loop.
#[test]
fn parser_planted_abort_attributes_as_predicted() {
    let k = dsmtx_workloads::parser::Parser;
    let scale = Scale::test();
    let mut plan = k.plan_with_planted_unknown(scale).unwrap();
    let analysis = analyze(&mut plan);
    assert!(
        analysis.report.has_errors(),
        "planted conflict must lint as an error"
    );

    let mut explained_any = false;
    with_tracing(|| {
        for _attempt in 0..8 {
            for shards in SHARD_COUNTS {
                let result = k.run_reported_planted_unknown(2, shards, scale).unwrap();
                let mut spans = result.report.spans();
                attribute(&mut spans, &analysis.report);
                assert_all_aborts_explained("197.parser(planted)", &spans);
                let counts = cause_counts(&spans);
                let predicted = counts
                    .iter()
                    .find(|(c, _)| *c == AbortCause::PredictedCarriedDep)
                    .map_or(0, |(_, n)| *n);
                explained_any |= predicted > 0;
            }
            if explained_any {
                break;
            }
        }
    });
    assert!(
        explained_any,
        "no run ever hit the planted conflict — attribution was vacuous"
    );
}

/// Acceptance matrix: every abort observed across the full workload
/// registry — all kernels at 1, 2 and 4 try-commit shards, plus the
/// parser planted-unknown and li SETENV variants — gets a cause, and
/// that cause is never `unpredicted`.
#[test]
fn every_registry_abort_is_attributed() {
    with_tracing(|| {
        for k in all_kernels() {
            let name = k.info().name;
            let mut plan = k.plan(Scale::test()).unwrap();
            let analysis = analyze(&mut plan);
            for shards in SHARD_COUNTS {
                let result = k.run_reported(2, shards, Scale::test()).unwrap();
                let mut spans = result.report.spans();
                if let Err(errs) = check_spans(&spans) {
                    panic!("{name} at {shards} shard(s): malformed spans: {errs:?}");
                }
                attribute(&mut spans, &analysis.report);
                assert_all_aborts_explained(&format!("{name}@{shards}"), &spans);
            }
        }

        // Planted variants: the runs most likely to abort at all.
        let parser = dsmtx_workloads::parser::Parser;
        let scale = Scale::test();
        let mut plan = parser.plan_with_planted_unknown(scale).unwrap();
        let parser_lint = analyze(&mut plan);
        for shards in SHARD_COUNTS {
            let result = parser
                .run_reported_planted_unknown(2, shards, scale)
                .unwrap();
            let mut spans = result.report.spans();
            attribute(&mut spans, &parser_lint.report);
            assert_all_aborts_explained(&format!("parser(planted)@{shards}"), &spans);
        }

        let li = dsmtx_workloads::li::Li;
        let corpus = dsmtx_workloads::li::Corpus {
            with_setenv: true,
            with_exit: false,
        };
        let mut plan = li.plan_corpus(scale, corpus).unwrap();
        let li_lint = analyze(&mut plan);
        for shards in SHARD_COUNTS {
            let result = li.run_corpus_reported(2, shards, scale, corpus).unwrap();
            let mut spans = result.report.spans();
            attribute(&mut spans, &li_lint.report);
            assert_all_aborts_explained(&format!("li(setenv)@{shards}"), &spans);
        }
    });
}

/// Runs the harness DOALL under a pinned fault seed with tracing on
/// and returns the run report.
fn faulted_doall_report(seed: u64) -> RunReport {
    // A 40% drop rate against a 2-attempt ship budget converts a healthy
    // fraction of messages into fabric timeouts, so the runtime must
    // take timeout-driven recovery rounds instead of absorbing every
    // fault in retries (the `exhausted_retries_force_fault_recovery`
    // recipe).
    let mut case = FaultCase::quick(
        seed,
        FaultRates::only_drop(0.4),
        FaultTarget::WorkerLinks,
        Workload::DoallSum,
    );
    case.max_attempts = 2;
    let n = 24u64;
    let mut heap = heap0();
    let input = heap.alloc_words(n).unwrap();
    let out = heap.alloc_words(n).unwrap();
    let mut master = MasterMem::new();
    for i in 0..n {
        master.write(input.add_words(i), i.wrapping_mul(0x9E37_79B9) ^ 0x5bd1)
    }
    let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        let x = ctx.read(input.add_words(mtx.0))?;
        ctx.write_no_forward(out.add_words(mtx.0), x.wrapping_mul(31))?;
        Ok(IterOutcome::Continue)
    });
    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Parallel { replicas: 3 });
    cfg.faults(case.fault_config());
    let result = MtxSystem::new(&cfg)
        .unwrap()
        .trace(true)
        .run(Program {
            master,
            stages: vec![body],
            recovery: Box::new(move |mtx, m| {
                let x = m.read(input.add_words(mtx.0));
                m.write(out.add_words(mtx.0), x.wrapping_mul(31));
                IterOutcome::Continue
            }),
            on_commit: None,
            iteration_limit: Some(n),
        })
        .unwrap();
    result.report
}

/// Fault rounds on a conflict-free DOALL: with an *empty* lint report
/// (nothing predicted), every squashed attempt must still attribute as
/// `fault_induced_retry` — the fault recovery, not the analyzer, owns
/// the explanation. Seeds are pinned; the first one that actually
/// injects a recovery round carries the assertion.
#[test]
fn fault_squashes_attribute_as_fault_induced_retry() {
    let empty_lint = dsmtx_analyze::LintReport {
        name: "fault-doall",
        iterations: 24,
        findings: Vec::new(),
        predicted_conflict_pages: std::collections::BTreeSet::new(),
    };
    let mut saw_fault_round = false;
    for seed in FAULT_SEEDS {
        let report = faulted_doall_report(seed_from_env(seed));
        let mut spans = report.spans();
        if let Err(errs) = check_spans(&spans) {
            panic!("seed {seed:#x}: malformed spans: {errs:?}");
        }
        attribute(&mut spans, &empty_lint);
        let fault_aborts = spans
            .iter()
            .filter(|s| s.cause == Some(AbortCause::FaultInducedRetry))
            .count();
        for s in &spans {
            if s.outcome() == SpanOutcome::Aborted {
                assert_ne!(
                    s.cause,
                    Some(AbortCause::Unpredicted),
                    "seed {seed:#x}: mtx {}#a{} fault squash came back unpredicted",
                    s.mtx,
                    s.attempt
                );
                assert!(
                    s.cause.is_some(),
                    "seed {seed:#x}: mtx {}#a{} aborted without a cause",
                    s.mtx,
                    s.attempt
                );
            }
        }
        if report.fault_recoveries > 0 {
            assert!(
                fault_aborts > 0,
                "seed {seed:#x}: {} fault recoveries but no span attributed \
                 fault_induced_retry",
                report.fault_recoveries
            );
            saw_fault_round = true;
        }
    }
    assert!(
        saw_fault_round,
        "no pinned seed injected a fault recovery — the test is vacuous; \
         widen FAULT_SEEDS or raise the rate"
    );
}
