//! Differential harness for §3.2 speculation-unit sharding.
//!
//! `unit_shards` must be invisible to program semantics: for every
//! workload, shard counts 1, 2, and 4 must produce byte-identical
//! committed memory, identical conflict verdicts, and an identical commit
//! order — fault-free and under pinned fault seeds. The `unit_shards = 1`
//! runs double as a regression guard that the sharded wiring collapses to
//! the pre-sharding runtime.
//!
//! Fault-free, *everything* must be bit-identical across shard counts:
//! memory, verdicts, commit order, iteration accounting. Under fault
//! injection the schedule is a pure function of `(seed, link declaration
//! order)`, and a sharded mesh has more links than an unsharded one — so
//! the injected schedules necessarily differ across topologies and the
//! per-run recovery counters are not comparable. What MUST still hold is
//! the paper's end-to-end guarantee: byte-identical committed memory
//! (equal to the sequential model) and no lost or duplicated iterations,
//! at every shard count, for every pinned seed.

use dsmtx::FaultTarget;
use dsmtx_fabric::FaultRates;
use dsmtx_integration_tests::{
    run_workload_sharded, seed_from_env, FaultCase, RunSummary, Workload, ALL_WORKLOADS,
};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Pinned seeds, mirrored by CI's fault-matrix job (overridable through
/// `DSMTX_FAULT_SEED`).
const FAULT_SEEDS: [u64; 3] = [1, 20260806, 0xDEAD_BEEF];

const N: u64 = 24;

/// Asserts that two summaries describe bit-identical executions: same
/// committed memory (every page, every word), same conflict verdicts,
/// same commit order, same iteration accounting.
fn assert_identical(base: &RunSummary, other: &RunSummary, what: &str) {
    assert_eq!(base.outputs, other.outputs, "{what}: output cells diverged");
    assert_eq!(
        base.total_iterations, other.total_iterations,
        "{what}: iteration counts diverged"
    );
    assert_eq!(
        base.validation_conflicts, other.validation_conflicts,
        "{what}: conflict verdicts diverged"
    );
    assert_eq!(
        base.commit_order, other.commit_order,
        "{what}: commit order diverged"
    );
    assert_identical_memory(base, other, what);
}

/// Asserts byte-identical committed memory: same page set, same words.
fn assert_identical_memory(base: &RunSummary, other: &RunSummary, what: &str) {
    assert_eq!(
        base.memory.len(),
        other.memory.len(),
        "{what}: page sets diverged"
    );
    for ((id_a, page_a), (id_b, page_b)) in base.memory.iter().zip(other.memory.iter()) {
        assert_eq!(id_a, id_b, "{what}: page ids diverged");
        assert_eq!(page_a, page_b, "{what}: page {id_a:?} contents diverged");
    }
}

#[test]
fn shard_counts_are_semantically_invisible_fault_free() {
    for w in ALL_WORKLOADS {
        let base = run_workload_sharded(w, N, None, 1);
        assert_eq!(base.outputs, base.expected, "{w:?} shards=1");
        assert_eq!(base.total_iterations, N, "{w:?} shards=1");
        for shards in &SHARD_COUNTS[1..] {
            let s = run_workload_sharded(w, N, None, *shards);
            assert_identical(&base, &s, &format!("{w:?} shards={shards} (fault-free)"));
        }
    }
}

#[test]
fn shard_counts_preserve_memory_under_pinned_fault_seeds() {
    // Low uniform rates on all links: enough injected faults to exercise
    // the sharded recovery barrier without ballooning test time.
    let rates = FaultRates::uniform(0.05);
    for seed in FAULT_SEEDS {
        let seed = seed_from_env(seed);
        for w in ALL_WORKLOADS {
            let case = FaultCase {
                n: N,
                ..FaultCase::quick(seed, rates, FaultTarget::All, w)
            };
            let base = run_workload_sharded(w, N, Some(case.fault_config()), 1);
            assert_eq!(
                base.outputs,
                base.expected,
                "shards=1 diverged from the sequential model\n{}",
                case.reproducer()
            );
            assert_eq!(base.total_iterations, N, "{}", case.reproducer());
            for shards in &SHARD_COUNTS[1..] {
                let s = run_workload_sharded(w, N, Some(case.fault_config()), *shards);
                let what = format!(
                    "{w:?} shards={shards} seed={seed:#x}\n{}",
                    case.reproducer()
                );
                assert_eq!(
                    s.outputs, s.expected,
                    "{what}: diverged from the sequential model"
                );
                assert_eq!(
                    s.total_iterations, N,
                    "{what}: iterations lost or duplicated"
                );
                assert_identical_memory(&base, &s, &what);
            }
        }
    }
}

#[test]
fn sharded_runs_actually_split_the_page_space() {
    // Guard against the differential tests passing vacuously: with 4
    // shards and a DOALL working set spanning several pages (2048
    // iterations = 4 input + 4 output pages), more than one shard must
    // end up owning touched pages.
    let pages: Vec<_> = run_workload_sharded(Workload::DoallSum, 2048, None, 4)
        .memory
        .iter()
        .map(|(id, _)| dsmtx_mem::shard_of(*id, 4))
        .collect();
    let distinct = {
        let mut s = pages.clone();
        s.sort_unstable();
        s.dedup();
        s.len()
    };
    assert!(
        distinct >= 2,
        "all {} touched pages hashed into one of 4 shards: {pages:?}",
        pages.len()
    );
}
