//! Property-based tests of the runtime: randomly generated programs must
//! match their sequential models exactly, with and without injected
//! misspeculation.

use std::sync::Arc;

use dsmtx::{IterOutcome, MtxId, MtxSystem, Program, StageId, StageKind, SystemConfig, WorkerCtx};
use dsmtx_mem::MasterMem;
use dsmtx_uva::{OwnerId, RegionAllocator};
use proptest::prelude::*;

fn heap0() -> RegionAllocator {
    RegionAllocator::new(OwnerId(0))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // the runtime spawns threads per case: keep it modest
        .. ProptestConfig::default()
    })]

    /// Spec-DOALL over random per-iteration transforms with disjoint
    /// output slots equals the sequential map, for any replica count.
    #[test]
    fn doall_equals_map(
        values in proptest::collection::vec(any::<u64>(), 1..24),
        replicas in 1u16..5,
        mult in 1u64..1000,
    ) {
        let n = values.len() as u64;
        let mut heap = heap0();
        let input = heap.alloc_words(n).unwrap();
        let output = heap.alloc_words(n).unwrap();
        let mut master = MasterMem::new();
        for (i, v) in values.iter().enumerate() {
            master.write(input.add_words(i as u64), *v);
        }
        let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
            let x = ctx.read(input.add_words(mtx.0))?;
            ctx.write_no_forward(output.add_words(mtx.0), x.wrapping_mul(mult) ^ mtx.0)?;
            Ok(IterOutcome::Continue)
        });
        let mut cfg = SystemConfig::new();
        cfg.stage(StageKind::Parallel { replicas });
        let result = MtxSystem::new(&cfg).unwrap().run(Program {
            master,
            stages: vec![body],
            recovery: Box::new(|_, _| IterOutcome::Continue),
            on_commit: None,
            iteration_limit: Some(n),
        }).unwrap();
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(
                result.master.read(output.add_words(i as u64)),
                v.wrapping_mul(mult) ^ i as u64
            );
        }
        prop_assert_eq!(result.report.committed, n);
    }

    /// A produce/consume pipeline computes the same fold as the
    /// sequential loop for random values and shapes.
    #[test]
    fn pipeline_fold_matches(
        values in proptest::collection::vec(any::<u64>(), 1..20),
        replicas in 1u16..4,
    ) {
        let n = values.len() as u64;
        let mut heap = heap0();
        let input = heap.alloc_words(n).unwrap();
        let acc_cell = heap.alloc_words(1).unwrap();
        let mut master = MasterMem::new();
        for (i, v) in values.iter().enumerate() {
            master.write(input.add_words(i as u64), *v);
        }
        let first = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
            let x = ctx.read(input.add_words(mtx.0))?;
            ctx.produce(x.rotate_left(11));
            Ok(IterOutcome::Continue)
        });
        let last = Arc::new(move |ctx: &mut WorkerCtx, _: MtxId| {
            let v = ctx.consume();
            let acc = ctx.read(acc_cell)?;
            ctx.write(acc_cell, acc.wrapping_mul(1099511628211).wrapping_add(v))?;
            Ok(IterOutcome::Continue)
        });
        let mut cfg = SystemConfig::new();
        cfg.stage(StageKind::Parallel { replicas }).stage(StageKind::Sequential);
        let result = MtxSystem::new(&cfg).unwrap().run(Program {
            master,
            stages: vec![first, last],
            recovery: Box::new(|_, _| IterOutcome::Continue),
            on_commit: None,
            iteration_limit: Some(n),
        }).unwrap();
        let mut expect = 0u64;
        for v in &values {
            expect = expect.wrapping_mul(1099511628211).wrapping_add(v.rotate_left(11));
        }
        prop_assert_eq!(result.master.read(acc_cell), expect);
    }

    /// Arbitrary sets of misspeculating iterations recover exactly: the
    /// outputs match, and each bad iteration triggers exactly one
    /// rollback.
    #[test]
    fn misspec_sets_recover_exactly(
        n in 4u64..20,
        bad_bits in any::<u32>(),
        replicas in 1u16..4,
    ) {
        let bad = move |i: u64| (bad_bits >> (i % 32)) & 1 == 1;
        let mut heap = heap0();
        let out = heap.alloc_words(n).unwrap();
        let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
            if mtx.0 < n && bad(mtx.0) {
                return ctx.misspec();
            }
            ctx.write_no_forward(out.add_words(mtx.0), mtx.0 + 7)?;
            Ok(IterOutcome::Continue)
        });
        let mut cfg = SystemConfig::new();
        cfg.stage(StageKind::Parallel { replicas });
        let result = MtxSystem::new(&cfg).unwrap().run(Program {
            master: MasterMem::new(),
            stages: vec![body],
            recovery: Box::new(move |mtx, master| {
                master.write(out.add_words(mtx.0), mtx.0 + 7);
                IterOutcome::Continue
            }),
            on_commit: None,
            iteration_limit: Some(n),
        }).unwrap();
        let bad_count = (0..n).filter(|&i| bad(i)).count() as u64;
        prop_assert_eq!(result.report.recoveries, bad_count);
        prop_assert_eq!(result.report.recovered_iterations, bad_count);
        prop_assert_eq!(result.report.total_iterations(), n);
        for i in 0..n {
            prop_assert_eq!(result.master.read(out.add_words(i)), i + 7);
        }
    }

    /// A TLS ring prefix-sum equals the sequential scan for random
    /// values, replica counts, and one injected misspeculation.
    #[test]
    fn tls_ring_scan_matches(
        values in proptest::collection::vec(1u64..1000, 2..16),
        replicas in 1u16..4,
        bad_at in proptest::option::of(0usize..16),
    ) {
        let n = values.len() as u64;
        let bad_at = bad_at.filter(|&b| (b as u64) < n);
        let mut heap = heap0();
        let input = heap.alloc_words(n).unwrap();
        let acc_cell = heap.alloc_words(1).unwrap();
        let scan = heap.alloc_words(n).unwrap();
        let mut master = MasterMem::new();
        for (i, v) in values.iter().enumerate() {
            master.write(input.add_words(i as u64), *v);
        }
        let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
            if bad_at == Some(mtx.0 as usize) {
                // Only the speculative path misspeculates; after the
                // sequential re-execution the iteration is done.
                return ctx.misspec();
            }
            let acc = match ctx.sync_take().first() {
                Some(&v) => v,
                None => ctx.read(acc_cell)?,
            };
            let x = ctx.read_private(input.add_words(mtx.0))?;
            let next = acc + x;
            ctx.write_no_forward(acc_cell, next)?;
            ctx.write_no_forward(scan.add_words(mtx.0), next)?;
            ctx.sync_produce(next);
            Ok(IterOutcome::Continue)
        });
        let mut cfg = SystemConfig::new();
        cfg.stage(StageKind::Parallel { replicas }).ring(StageId(0));
        let result = MtxSystem::new(&cfg).unwrap().run(Program {
            master,
            stages: vec![body],
            recovery: Box::new(move |mtx, master| {
                let acc = master.read(acc_cell);
                let x = master.read(input.add_words(mtx.0));
                master.write(acc_cell, acc + x);
                master.write(scan.add_words(mtx.0), acc + x);
                IterOutcome::Continue
            }),
            on_commit: None,
            iteration_limit: Some(n),
        }).unwrap();
        let mut acc = 0u64;
        for (i, v) in values.iter().enumerate() {
            acc += v;
            prop_assert_eq!(result.master.read(scan.add_words(i as u64)), acc, "slot {}", i);
        }
        prop_assert_eq!(result.master.read(acc_cell), acc);
    }

    /// Exit at a random iteration commits exactly the prefix.
    #[test]
    fn exit_commits_exact_prefix(
        n in 2u64..20,
        exit_at in 0u64..20,
        replicas in 1u16..4,
    ) {
        let exit_at = exit_at.min(n - 1);
        let mut heap = heap0();
        let out = heap.alloc_words(n).unwrap();
        let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
            if mtx.0 < n {
                ctx.write_no_forward(out.add_words(mtx.0), 1)?;
            }
            Ok(if mtx.0 == exit_at { IterOutcome::Exit } else { IterOutcome::Continue })
        });
        let mut cfg = SystemConfig::new();
        cfg.stage(StageKind::Parallel { replicas });
        let result = MtxSystem::new(&cfg).unwrap().run(Program {
            master: MasterMem::new(),
            stages: vec![body],
            recovery: Box::new(|_, _| IterOutcome::Continue),
            on_commit: None,
            iteration_limit: Some(n),
        }).unwrap();
        prop_assert_eq!(result.report.committed, exit_at + 1);
        for i in 0..=exit_at {
            prop_assert_eq!(result.master.read(out.add_words(i)), 1, "slot {}", i);
        }
        for i in (exit_at + 1)..n {
            prop_assert_eq!(result.master.read(out.add_words(i)), 0, "squashed {}", i);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case is two full runs (control + faulted)
        .. ProptestConfig::default()
    })]

    /// Arbitrary fault plans never corrupt committed memory, never
    /// violate the commit-order invariant, and never deadlock: the
    /// harness compares the faulted run against a fault-free twin,
    /// checks commit order from the trace, and hangs are caught by its
    /// wall-clock watchdog (which panics with the replayable
    /// `(seed, rates)` tuple).
    #[test]
    fn arbitrary_fault_plans_preserve_commits(
        seed in any::<u64>(),
        p in 0.0f64..0.35,
        target_idx in 0usize..4,
        workload_idx in 0usize..3,
    ) {
        use dsmtx::FaultTarget;
        use dsmtx_fabric::FaultRates;
        use dsmtx_integration_tests::{check_case, FaultCase, ALL_WORKLOADS};

        let target = [
            FaultTarget::All,
            FaultTarget::WorkerLinks,
            FaultTarget::TryCommitLinks,
            FaultTarget::CommitLinks,
        ][target_idx];
        let mut case = FaultCase::quick(
            seed,
            FaultRates::uniform(p),
            target,
            ALL_WORKLOADS[workload_idx],
        );
        case.n = 24;
        check_case(&case);
    }
}
