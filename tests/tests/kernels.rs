//! Cross-crate equivalence tests: every benchmark kernel must produce the
//! same output sequentially, on the DSMTX plan, and on the TLS baseline —
//! at several worker counts, and under injected misspeculation.

use dsmtx_workloads::{all_kernels, Mode, Scale};

#[test]
fn every_kernel_agrees_across_modes_and_worker_counts() {
    let scale = Scale::test();
    for kernel in all_kernels() {
        let name = kernel.info().name;
        let seq = kernel.run(Mode::Sequential, scale).unwrap();
        for workers in [1u16, 2, 4] {
            let par = kernel.run(Mode::Dsmtx { workers }, scale).unwrap();
            assert_eq!(seq, par, "{name} dsmtx x{workers}");
            let tls = kernel.run(Mode::Tls { workers }, scale).unwrap();
            assert_eq!(seq, tls, "{name} tls x{workers}");
        }
    }
}

#[test]
fn every_kernel_handles_tiny_inputs() {
    // One and two iterations exercise pipeline-fill edge cases.
    for iterations in [1u64, 2] {
        let scale = Scale {
            iterations,
            unit: 6,
            seed: 99,
        };
        for kernel in all_kernels() {
            let name = kernel.info().name;
            let seq = kernel.run(Mode::Sequential, scale).unwrap();
            let par = kernel.run(Mode::Dsmtx { workers: 2 }, scale).unwrap();
            assert_eq!(seq, par, "{name} n={iterations}");
        }
    }
}

#[test]
fn every_kernel_is_deterministic_across_runs() {
    let scale = Scale::test();
    for kernel in all_kernels() {
        let name = kernel.info().name;
        let a = kernel.run(Mode::Dsmtx { workers: 3 }, scale).unwrap();
        let b = kernel.run(Mode::Dsmtx { workers: 3 }, scale).unwrap();
        assert_eq!(a, b, "{name} must be run-to-run deterministic");
    }
}

#[test]
fn planted_faults_recover_everywhere() {
    let scale = Scale::test();

    let crc = dsmtx_workloads::crc32::Crc32;
    let seq = crc.run_with_planted_error(Mode::Sequential, scale).unwrap();
    for workers in [1u16, 3] {
        let par = crc
            .run_with_planted_error(Mode::Dsmtx { workers }, scale)
            .unwrap();
        assert_eq!(seq, par, "crc32 x{workers}");
    }

    let bs = dsmtx_workloads::blackscholes::BlackScholes;
    let seq = bs.run_with_planted_error(Mode::Sequential, scale).unwrap();
    let par = bs
        .run_with_planted_error(Mode::Tls { workers: 2 }, scale)
        .unwrap();
    assert_eq!(seq, par, "blackscholes tls");

    let sw = dsmtx_workloads::swaptions::Swaptions;
    let seq = sw.run_with_planted_error(Mode::Sequential, scale).unwrap();
    let par = sw
        .run_with_planted_error(Mode::Dsmtx { workers: 2 }, scale)
        .unwrap();
    assert_eq!(seq, par, "swaptions");

    let gz = dsmtx_workloads::gzip::Gzip;
    let seq = gz.run_with_planted_escape(Mode::Sequential, scale).unwrap();
    let par = gz
        .run_with_planted_escape(Mode::Dsmtx { workers: 3 }, scale)
        .unwrap();
    assert_eq!(seq, par, "gzip");

    let bz = dsmtx_workloads::bzip2::Bzip2;
    let seq = bz.run_with_planted_error(Mode::Sequential, scale).unwrap();
    let par = bz
        .run_with_planted_error(Mode::Dsmtx { workers: 2 }, scale)
        .unwrap();
    assert_eq!(seq, par, "bzip2");

    let ps = dsmtx_workloads::parser::Parser;
    let seq = ps
        .run_with_planted_unknown(Mode::Sequential, scale)
        .unwrap();
    for workers in [2u16, 4] {
        let par = ps
            .run_with_planted_unknown(Mode::Dsmtx { workers }, scale)
            .unwrap();
        assert_eq!(seq, par, "parser x{workers}");
        let tls = ps
            .run_with_planted_unknown(Mode::Tls { workers }, scale)
            .unwrap();
        assert_eq!(seq, tls, "parser tls x{workers}");
    }
}

#[test]
fn li_env_mutation_and_exit_combined() {
    let li = dsmtx_workloads::li::Li;
    let scale = Scale::test();
    let corpus = dsmtx_workloads::li::Corpus {
        with_setenv: true,
        with_exit: true,
    };
    let seq = li.run_corpus(Mode::Sequential, scale, corpus).unwrap();
    let par = li
        .run_corpus(Mode::Dsmtx { workers: 3 }, scale, corpus)
        .unwrap();
    let tls = li
        .run_corpus(Mode::Tls { workers: 2 }, scale, corpus)
        .unwrap();
    assert_eq!(seq, par);
    assert_eq!(seq, tls);
}

/// Bench-scale inputs (32 iterations x 256 words) through the real
/// runtime: larger blocks, multi-page COA, longer pipelines.
#[test]
fn kernels_agree_at_bench_scale() {
    let scale = Scale::bench();
    for name in ["164.gzip", "456.hmmer", "197.parser"] {
        let kernel = dsmtx_workloads::kernel_by_name(name).unwrap();
        let seq = kernel.run(Mode::Sequential, scale).unwrap();
        let par = kernel.run(Mode::Dsmtx { workers: 4 }, scale).unwrap();
        assert_eq!(seq, par, "{name} at bench scale");
    }
}
