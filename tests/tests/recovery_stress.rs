//! Adversarial recovery scenarios: boundaries, pile-ups, and interactions
//! between misspeculation, termination, and pipelines.

use std::sync::Arc;

use dsmtx::{
    IterOutcome, MtxId, MtxSystem, Program, StageId, StageKind, SystemConfig, TraceKind, WorkerCtx,
};
use dsmtx_mem::MasterMem;
use dsmtx_uva::{OwnerId, RegionAllocator};

fn heap0() -> RegionAllocator {
    RegionAllocator::new(OwnerId(0))
}

fn doall(replicas: u16) -> MtxSystem {
    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Parallel { replicas });
    MtxSystem::new(&cfg).unwrap()
}

#[test]
fn misspec_on_first_iteration() {
    let mut heap = heap0();
    let out = heap.alloc_words(4).unwrap();
    let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        if mtx.0 == 0 {
            return ctx.misspec();
        }
        ctx.write_no_forward(out.add_words(mtx.0), mtx.0)?;
        Ok(IterOutcome::Continue)
    });
    let result = doall(2)
        .run(Program {
            master: MasterMem::new(),
            stages: vec![body],
            recovery: Box::new(move |mtx, m| {
                m.write(out.add_words(mtx.0), mtx.0);
                IterOutcome::Continue
            }),
            on_commit: None,
            iteration_limit: Some(4),
        })
        .unwrap();
    assert_eq!(result.report.recoveries, 1);
    for i in 0..4 {
        assert_eq!(result.master.read(out.add_words(i)), i);
    }
}

#[test]
fn misspec_on_last_iteration() {
    const N: u64 = 6;
    let mut heap = heap0();
    let out = heap.alloc_words(N).unwrap();
    let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        if mtx.0 == N - 1 {
            return ctx.misspec();
        }
        ctx.write_no_forward(out.add_words(mtx.0), 1)?;
        Ok(IterOutcome::Continue)
    });
    let result = doall(3)
        .run(Program {
            master: MasterMem::new(),
            stages: vec![body],
            recovery: Box::new(move |mtx, m| {
                m.write(out.add_words(mtx.0), 1);
                IterOutcome::Continue
            }),
            on_commit: None,
            iteration_limit: Some(N),
        })
        .unwrap();
    assert_eq!(result.report.recoveries, 1);
    assert_eq!(result.report.total_iterations(), N);
    assert_eq!(result.master.read(out.add_words(N - 1)), 1);
}

#[test]
fn every_iteration_misspeculates() {
    const N: u64 = 8;
    let mut heap = heap0();
    let counter = heap.alloc_words(1).unwrap();
    let body = Arc::new(move |ctx: &mut WorkerCtx, _: MtxId| ctx.misspec());
    let result = doall(2)
        .run(Program {
            master: MasterMem::new(),
            stages: vec![body],
            recovery: Box::new(move |_, m| {
                let c = m.read(counter);
                m.write(counter, c + 1);
                IterOutcome::Continue
            }),
            on_commit: None,
            iteration_limit: Some(N),
        })
        .unwrap();
    assert_eq!(result.report.recoveries, N);
    assert_eq!(result.report.committed, 0, "nothing commits speculatively");
    assert_eq!(result.master.read(counter), N, "but every iteration lands");
}

#[test]
fn recovery_exit_decision_terminates() {
    // The misspeculated iteration is the loop's last: the recovery body
    // returns Exit and the system must stop there.
    const EXIT: u64 = 3;
    let mut heap = heap0();
    let out = heap.alloc_words(16).unwrap();
    let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        if mtx.0 == EXIT {
            return ctx.misspec();
        }
        ctx.write_no_forward(out.add_words(mtx.0), 1)?;
        Ok(IterOutcome::Continue)
    });
    let result = doall(2)
        .run(Program {
            master: MasterMem::new(),
            stages: vec![body],
            recovery: Box::new(move |mtx, m| {
                m.write(out.add_words(mtx.0), 1);
                if mtx.0 == EXIT {
                    IterOutcome::Exit
                } else {
                    IterOutcome::Continue
                }
            }),
            on_commit: None,
            iteration_limit: None, // uncounted: exit only via recovery
        })
        .unwrap();
    assert_eq!(result.report.last_iteration, Some(MtxId(EXIT)));
    assert_eq!(result.report.total_iterations(), EXIT + 1);
    assert_eq!(result.master.read(out.add_words(EXIT + 1)), 0, "squashed");
}

#[test]
fn pipeline_recovery_with_forwarding_and_consumes() {
    // Misspeculation in the middle stage of a 3-stage pipeline: frames
    // in flight on both sides of the failing stage must flush cleanly.
    const N: u64 = 12;
    const BAD: u64 = 5;
    let mut heap = heap0();
    let input = heap.alloc_words(N).unwrap();
    let staged = heap.alloc_words(N).unwrap();
    let sum = heap.alloc_words(1).unwrap();
    let mut master = MasterMem::new();
    for i in 0..N {
        master.write(input.add_words(i), i + 1);
    }

    let s0 = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        let x = ctx.read(input.add_words(mtx.0))?;
        ctx.write(staged.add_words(mtx.0), x * 2)?;
        ctx.produce(mtx.0);
        Ok(IterOutcome::Continue)
    });
    let s1 = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        let i = ctx.consume();
        if mtx.0 == BAD {
            return ctx.misspec();
        }
        let v = ctx.read(staged.add_words(i))?;
        ctx.produce(v + 1);
        Ok(IterOutcome::Continue)
    });
    let s2 = Arc::new(move |ctx: &mut WorkerCtx, _: MtxId| {
        let v = ctx.consume();
        let acc = ctx.read(sum)?;
        ctx.write(sum, acc + v)?;
        Ok(IterOutcome::Continue)
    });

    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Sequential)
        .stage(StageKind::Parallel { replicas: 2 })
        .stage(StageKind::Sequential);
    let result = MtxSystem::new(&cfg)
        .unwrap()
        .trace(true)
        .run(Program {
            master,
            stages: vec![s0, s1, s2],
            recovery: Box::new(move |mtx, m| {
                let x = m.read(input.add_words(mtx.0));
                m.write(staged.add_words(mtx.0), x * 2);
                let acc = m.read(sum);
                m.write(sum, acc + x * 2 + 1);
                IterOutcome::Continue
            }),
            on_commit: None,
            iteration_limit: Some(N),
        })
        .unwrap();

    let expect: u64 = (1..=N).map(|x| 2 * x + 1).sum();
    assert_eq!(result.master.read(sum), expect);
    assert_eq!(result.report.recoveries, 1);

    // Commit order stays strictly increasing across the rollback.
    let commits: Vec<u64> = result
        .report
        .trace
        .iter()
        .filter(|e| e.kind == TraceKind::Committed)
        .map(|e| e.mtx.unwrap().0)
        .collect();
    let mut sorted = commits.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(commits, sorted, "commit order is iteration order");
}

#[test]
fn ring_recovery_mid_stream() {
    // TLS ring with a misspeculation in the middle: the successor
    // iteration re-derives the synchronized value from committed state.
    const N: u64 = 10;
    const BAD: u64 = 4;
    let mut heap = heap0();
    let acc_cell = heap.alloc_words(1).unwrap();
    let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        if mtx.0 == BAD {
            return ctx.misspec();
        }
        let acc = match ctx.sync_take().first() {
            Some(&v) => v,
            None => ctx.read(acc_cell)?,
        };
        let next = acc + (mtx.0 + 1) * 10;
        ctx.write_no_forward(acc_cell, next)?;
        ctx.sync_produce(next);
        Ok(IterOutcome::Continue)
    });
    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Parallel { replicas: 3 })
        .ring(StageId(0));
    let result = MtxSystem::new(&cfg)
        .unwrap()
        .run(Program {
            master: MasterMem::new(),
            stages: vec![body],
            recovery: Box::new(move |mtx, m| {
                let acc = m.read(acc_cell);
                m.write(acc_cell, acc + (mtx.0 + 1) * 10);
                IterOutcome::Continue
            }),
            on_commit: None,
            iteration_limit: Some(N),
        })
        .unwrap();
    let expect: u64 = (1..=N).map(|k| k * 10).sum();
    assert_eq!(result.master.read(acc_cell), expect);
    assert_eq!(result.report.recoveries, 1);
}

#[test]
fn natural_validation_conflict_in_pipeline() {
    // No explicit misspec: a genuine cross-iteration dependence is
    // detected by value validation in the try-commit unit.
    const N: u64 = 10;
    let mut heap = heap0();
    let cell = heap.alloc_words(1).unwrap();
    let out = heap.alloc_words(N).unwrap();
    let mut master = MasterMem::new();
    master.write(cell, 5);

    let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        let v = ctx.read(cell)?;
        if mtx.0 == 3 {
            ctx.write_no_forward(cell, v + 100)?; // rare mutation
        }
        ctx.write_no_forward(out.add_words(mtx.0), v)?;
        Ok(IterOutcome::Continue)
    });
    let result = doall(3)
        .run(Program {
            master,
            stages: vec![body],
            recovery: Box::new(move |mtx, m| {
                let v = m.read(cell);
                if mtx.0 == 3 {
                    m.write(cell, v + 100);
                }
                m.write(out.add_words(mtx.0), v);
                IterOutcome::Continue
            }),
            on_commit: None,
            iteration_limit: Some(N),
        })
        .unwrap();
    // Sequential semantics: iterations 0..=3 read 5, later ones read 105.
    for i in 0..N {
        let want = if i <= 3 { 5 } else { 105 };
        assert_eq!(result.master.read(out.add_words(i)), want, "slot {i}");
    }
    assert_eq!(result.master.read(cell), 105);
}

#[test]
fn back_to_back_recoveries() {
    const N: u64 = 9;
    let mut heap = heap0();
    let out = heap.alloc_words(N).unwrap();
    // Iterations 2, 3, 4 all misspeculate: three consecutive rollbacks.
    let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        if (2..=4).contains(&mtx.0) {
            return ctx.misspec();
        }
        ctx.write_no_forward(out.add_words(mtx.0), mtx.0 * 3)?;
        Ok(IterOutcome::Continue)
    });
    let result = doall(2)
        .run(Program {
            master: MasterMem::new(),
            stages: vec![body],
            recovery: Box::new(move |mtx, m| {
                m.write(out.add_words(mtx.0), mtx.0 * 3);
                IterOutcome::Continue
            }),
            on_commit: None,
            iteration_limit: Some(N),
        })
        .unwrap();
    assert_eq!(result.report.recoveries, 3);
    for i in 0..N {
        assert_eq!(result.master.read(out.add_words(i)), i * 3);
    }
}

/// Minimal queue tuning (batch 1, capacity 1) forces constant
/// backpressure: every flush can block, and recovery must interrupt
/// senders stuck on full transports.
#[test]
fn backpressure_with_recovery() {
    const N: u64 = 12;
    const BAD: u64 = 7;
    let mut heap = heap0();
    let input = heap.alloc_words(N).unwrap();
    let sum = heap.alloc_words(1).unwrap();
    let mut master = MasterMem::new();
    for i in 0..N {
        master.write(input.add_words(i), i + 2);
    }

    let s0 = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        // Many produces per iteration to saturate the tiny queues.
        for k in 0..8 {
            let x = ctx.read(input.add_words(mtx.0))?;
            ctx.produce(x + k);
        }
        Ok(IterOutcome::Continue)
    });
    let s1 = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        if mtx.0 == BAD {
            return ctx.misspec();
        }
        let mut acc = ctx.read(sum)?;
        for _ in 0..8 {
            acc = acc.wrapping_add(ctx.consume());
        }
        ctx.write(sum, acc)?;
        Ok(IterOutcome::Continue)
    });

    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Sequential)
        .stage(StageKind::Sequential)
        .batch(1)
        .capacity(1);
    let result = MtxSystem::new(&cfg)
        .unwrap()
        .run(Program {
            master,
            stages: vec![s0, s1],
            recovery: Box::new(move |mtx, m| {
                let x = m.read(input.add_words(mtx.0));
                let mut acc = m.read(sum);
                for k in 0..8 {
                    acc = acc.wrapping_add(x + k);
                }
                m.write(sum, acc);
                IterOutcome::Continue
            }),
            on_commit: None,
            iteration_limit: Some(N),
        })
        .unwrap();

    let mut expect = 0u64;
    for i in 0..N {
        for k in 0..8 {
            expect = expect.wrapping_add(i + 2 + k);
        }
    }
    assert_eq!(result.master.read(sum), expect);
    assert_eq!(result.report.recoveries, 1);
}

/// The fault matrix: every injectable fault class crossed with every
/// link group — {drop, delay, duplicate, reorder, crash(stall)} ×
/// {worker, try-commit, commit} — each cell asserting the faulted run
/// commits byte-identical memory to the fault-free run.
///
/// Seeds come from [`seed_from_env`], so a failing cell replays with
/// `DSMTX_FAULT_SEED=<seed> cargo test -q -p dsmtx-integration-tests`.
mod fault_matrix {
    use dsmtx::FaultTarget;
    use dsmtx_fabric::FaultRates;
    use dsmtx_integration_tests::{check_case, seed_from_env, FaultCase, Workload, ALL_WORKLOADS};

    /// Matrix default seed: today's date when the matrix was authored;
    /// any fixed value works, CI varies it via `DSMTX_FAULT_SEED`.
    const DEFAULT_SEED: u64 = 20_260_806;

    fn cell(rates: FaultRates, target: FaultTarget) {
        let case = FaultCase::quick(
            seed_from_env(DEFAULT_SEED),
            rates,
            target,
            Workload::PipelineFold,
        );
        check_case(&case);
    }

    macro_rules! matrix_cell {
        ($name:ident, $rates:expr, $target:expr) => {
            #[test]
            fn $name() {
                cell($rates, $target);
            }
        };
    }

    matrix_cell!(
        drop_worker_links,
        FaultRates::only_drop(0.08),
        FaultTarget::WorkerLinks
    );
    matrix_cell!(
        drop_trycommit_links,
        FaultRates::only_drop(0.08),
        FaultTarget::TryCommitLinks
    );
    matrix_cell!(
        drop_commit_links,
        FaultRates::only_drop(0.08),
        FaultTarget::CommitLinks
    );

    matrix_cell!(
        delay_worker_links,
        FaultRates::only_delay(0.08),
        FaultTarget::WorkerLinks
    );
    matrix_cell!(
        delay_trycommit_links,
        FaultRates::only_delay(0.08),
        FaultTarget::TryCommitLinks
    );
    matrix_cell!(
        delay_commit_links,
        FaultRates::only_delay(0.08),
        FaultTarget::CommitLinks
    );

    matrix_cell!(
        duplicate_worker_links,
        FaultRates::only_duplicate(0.08),
        FaultTarget::WorkerLinks
    );
    matrix_cell!(
        duplicate_trycommit_links,
        FaultRates::only_duplicate(0.08),
        FaultTarget::TryCommitLinks
    );
    matrix_cell!(
        duplicate_commit_links,
        FaultRates::only_duplicate(0.08),
        FaultTarget::CommitLinks
    );

    matrix_cell!(
        reorder_worker_links,
        FaultRates::only_reorder(0.08),
        FaultTarget::WorkerLinks
    );
    matrix_cell!(
        reorder_trycommit_links,
        FaultRates::only_reorder(0.08),
        FaultTarget::TryCommitLinks
    );
    matrix_cell!(
        reorder_commit_links,
        FaultRates::only_reorder(0.08),
        FaultTarget::CommitLinks
    );

    matrix_cell!(
        crash_worker_links,
        FaultRates::only_stall(0.04, 6),
        FaultTarget::WorkerLinks
    );
    matrix_cell!(
        crash_trycommit_links,
        FaultRates::only_stall(0.04, 6),
        FaultTarget::TryCommitLinks
    );
    matrix_cell!(
        crash_commit_links,
        FaultRates::only_stall(0.04, 6),
        FaultTarget::CommitLinks
    );

    /// A harsh cell that exhausts the retry budget: at a 40% drop rate
    /// with only 2 ship attempts, ~16% of messages convert into fabric
    /// timeouts, so the runtime must degrade into timeout-driven
    /// recovery — not just absorb faults in retries — and still commit
    /// byte-identical results.
    #[test]
    fn exhausted_retries_force_fault_recovery() {
        let mut case = FaultCase::quick(
            seed_from_env(9),
            FaultRates::only_drop(0.4),
            FaultTarget::WorkerLinks,
            Workload::PipelineFold,
        );
        case.max_attempts = 2;
        let summary = check_case(&case);
        assert!(
            summary.fault_recoveries > 0,
            "retry budget never exhausted: the cell tested nothing\n{}",
            case.reproducer()
        );
    }

    /// The crash model end-to-end: a stalled endpoint outlives the whole
    /// retry budget, forcing the peer into timeout-driven recovery.
    #[test]
    fn crashed_endpoint_forces_fault_recovery() {
        let mut case = FaultCase::quick(
            seed_from_env(9),
            FaultRates::only_stall(0.3, 9),
            FaultTarget::All,
            Workload::PipelineFold,
        );
        case.max_attempts = 3;
        let summary = check_case(&case);
        assert!(
            summary.fault_recoveries > 0,
            "stall windows never exhausted the budget\n{}",
            case.reproducer()
        );
    }

    /// The headline acceptance check: three fixed seeds × three
    /// workloads under a uniform mix of every fault class, injected on
    /// every link — each run must commit byte-identical results to its
    /// fault-free twin.
    #[test]
    fn fixed_seeds_all_workloads_uniform_faults() {
        let mut faults_injected = 0;
        for seed in [1u64, DEFAULT_SEED, 0xDEAD_BEEF] {
            for workload in ALL_WORKLOADS {
                let mut case =
                    FaultCase::quick(seed, FaultRates::uniform(0.10), FaultTarget::All, workload);
                case.n = 32;
                faults_injected += check_case(&case).faults_injected;
            }
        }
        // The check must not pass vacuously: across 9 runs at 10% total
        // fault probability on every link, the plan must actually fire.
        assert!(faults_injected > 0, "no faults injected across the grid");
    }
}
