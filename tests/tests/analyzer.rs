//! Analyzer integration: golden dependence graphs, partition-linter
//! negatives, and the predicted-vs-observed conflict certification pass.
//!
//! Certification is the load-bearing claim of the analysis pipeline: the
//! conflict pages a real speculative run observes must be a subset of
//! what the sequential dependence analysis predicted, for every registry
//! workload at 1, 2, and 4 try-commit shards. The planted-conflict
//! variants (parser's unknown token, li's `SETENV` corpus) keep the pass
//! honest — they manufacture runs where the observed side is non-empty.
//!
//! Golden files live in `tests/golden/`; set `DSMTX_UPDATE_GOLDEN=1` to
//! regenerate them after an intentional report-format change.

use dsmtx::{IterOutcome, Region, StageRole, StageSpec};
use dsmtx_analyze::{analyze, certify, export_cert_metrics, render_text, FindingKind, Severity};
use dsmtx_mem::MasterMem;
use dsmtx_obs::{schema, Registry};
use dsmtx_uva::{OwnerId, VAddr};
use dsmtx_workloads::{all_kernels, AnalysisPlan, Scale};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn at(off: u64) -> VAddr {
    VAddr::new(OwnerId(0), off)
}

/// Compares rendered text against `tests/golden/<name>.txt`, rewriting
/// the file instead when `DSMTX_UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join(format!("{name}.txt"));
    if std::env::var_os("DSMTX_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        expected, actual,
        "golden {name} drifted; rerun with DSMTX_UPDATE_GOLDEN=1 if intentional"
    );
}

/// Pure DOALL: each iteration reads its own input word and writes its
/// own output word. No dependences of any kind.
fn doall_plan() -> AnalysisPlan {
    let mut master = MasterMem::new();
    for i in 0..6u64 {
        master.write(at(i * 8), 100 + i);
    }
    AnalysisPlan {
        name: "synthetic-doall",
        iterations: 6,
        master,
        recovery: Box::new(|mtx, master| {
            let v = master.read(at(mtx.0 * 8));
            master.write(at(1024 + mtx.0 * 8), v * 3 + 1);
            IterOutcome::Continue
        }),
        stages: vec![StageSpec::new(
            "compute",
            StageRole::Parallel,
            Box::new(|mtx| {
                vec![
                    Region::read("input", at(mtx * 8), 1),
                    Region::write("out", at(1024 + mtx * 8), 1),
                ]
            }),
        )],
        shard_map: None,
    }
}

/// A running sum carried across iterations through a declared-forwarded
/// cell (the TLS ring's sync_produce/sync_take pattern): the carried
/// flow dependence exists but is synchronized, not speculated.
fn forwarded_plan() -> AnalysisPlan {
    let mut master = MasterMem::new();
    for i in 0..6u64 {
        master.write(at(64 + i * 8), 10 + i);
    }
    AnalysisPlan {
        name: "synthetic-forwarded",
        iterations: 6,
        master,
        recovery: Box::new(|mtx, master| {
            let acc = master.read(at(0));
            let v = master.read(at(64 + mtx.0 * 8));
            master.write(at(0), acc + v);
            IterOutcome::Continue
        }),
        stages: vec![StageSpec::new(
            "scan",
            StageRole::Ring,
            Box::new(|mtx| {
                vec![
                    Region::read_write("acc", at(0), 1),
                    Region::read("input", at(64 + mtx * 8), 1),
                ]
            }),
        )
        .forward(Region::read_write("acc", at(0), 1))],
        shard_map: None,
    }
}

#[test]
fn golden_doall_dependence_graph() {
    let mut plan = doall_plan();
    let analysis = analyze(&mut plan);
    assert!(analysis.graph.edges.is_empty(), "DOALL has no dependences");
    assert!(analysis.report.findings.is_empty());
    assert_golden("doall", &render_text(&analysis.graph, &analysis.report));
}

#[test]
fn golden_forwarded_carried_dep() {
    let mut plan = forwarded_plan();
    let analysis = analyze(&mut plan);
    assert_eq!(
        analysis.graph.carried_flows().count(),
        5,
        "iterations 1..=5 read the prior sum"
    );
    assert!(
        analysis.report.findings.is_empty(),
        "forwarded dependence is synchronized, not speculated: {:?}",
        analysis.report.findings
    );
    assert_golden("forwarded", &render_text(&analysis.graph, &analysis.report));
}

#[test]
fn mispartitioned_two_stage_program_is_flagged() {
    // Deliberately wrong partition: the accumulator dependence is split
    // across two *parallel* stages (producer stores, consumer loads) and
    // nothing is forwarded — the runtime would speculate on every
    // iteration, and the consumer also pokes a scratch cell the plan
    // never declared.
    let mut plan = AnalysisPlan {
        name: "synthetic-mispartitioned",
        iterations: 8,
        master: MasterMem::new(),
        recovery: Box::new(|mtx, master| {
            let acc = master.read(at(0));
            master.write(at(0), acc + mtx.0 + 1);
            master.write(at(4096), acc); // undeclared scratch cell
            IterOutcome::Continue
        }),
        stages: vec![
            StageSpec::new(
                "produce",
                StageRole::Parallel,
                Box::new(|_| vec![Region::write("acc", at(0), 1)]),
            ),
            StageSpec::new(
                "consume",
                StageRole::Parallel,
                Box::new(|_| vec![Region::read("acc", at(0), 1)]),
            ),
        ],
        shard_map: None,
    };
    let analysis = analyze(&mut plan);
    assert!(analysis.report.has_errors());
    let kinds: Vec<FindingKind> = analysis.report.findings.iter().map(|f| f.kind).collect();
    assert!(
        kinds.contains(&FindingKind::UnforwardedLoopCarriedFlow),
        "{kinds:?}"
    );
    assert!(
        kinds.contains(&FindingKind::CapturedStateEscape),
        "{kinds:?}"
    );
    let flow = analysis
        .report
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::UnforwardedLoopCarriedFlow)
        .unwrap();
    assert_eq!(flow.severity, Severity::Error);
    assert_eq!(flow.instances, 7);
    assert!(flow.predicted_misspec_per_1k > 0);
    // Both the speculated accumulator and the escaped scratch page are
    // in the predicted conflict superset.
    assert!(analysis
        .report
        .predicted_conflict_pages
        .contains(&at(0).page().0));
    assert!(analysis
        .report
        .predicted_conflict_pages
        .contains(&at(4096).page().0));
}

#[test]
fn shipped_plans_certify_across_shard_counts() {
    let reg = Registry::new();
    for k in all_kernels() {
        let name = k.info().name;
        let mut plan = k.plan(Scale::test()).unwrap();
        let analysis = analyze(&mut plan);
        assert!(
            !analysis.report.has_errors(),
            "{name}: shipped plan has error findings: {:?}",
            analysis.report.findings
        );
        for shards in SHARD_COUNTS {
            let result = k.run_reported(2, shards, Scale::test()).unwrap();
            let cert = certify(&analysis.report, &result.report.conflict_pages(), shards);
            export_cert_metrics(&reg, &cert);
            assert!(
                cert.holds(),
                "{name} at {shards} shard(s): observed conflicts on pages {:?} the \
                 analyzer never predicted (predicted {:?})",
                cert.unpredicted,
                cert.predicted
            );
        }
    }
    // Soundness roll-up in the shared schema: 11 workloads x 3 shard
    // counts checked, zero unpredicted pages anywhere.
    let mut runs = 0;
    for k in all_kernels() {
        for shards in SHARD_COUNTS {
            let shards_s = shards.to_string();
            let labels = [("workload", k.info().name), ("shards", shards_s.as_str())];
            runs += reg.counter(schema::CERT_RUNS, &labels).value();
            assert_eq!(
                reg.counter(schema::CERT_UNPREDICTED_PAGES, &labels).value(),
                0
            );
        }
    }
    assert_eq!(runs, 33);
}

/// Runs planted-conflict certification: asserts observed ⊆ predicted on
/// every run, and that at least one run actually observed a conflict
/// (the schedule-dependent part, hence the retry loop).
fn certify_planted(
    name: &str,
    analysis: &dsmtx_analyze::Analysis,
    mut run: impl FnMut(usize) -> Vec<u64>,
) {
    assert!(
        analysis.report.has_errors(),
        "{name}: planted conflict must lint as an error"
    );
    let mut observed_any = false;
    for _attempt in 0..8 {
        for shards in SHARD_COUNTS {
            let observed = run(shards);
            let cert = certify(&analysis.report, &observed, shards);
            assert!(
                cert.holds(),
                "{name} at {shards} shard(s): unpredicted conflict pages {:?}",
                cert.unpredicted
            );
            observed_any |= !cert.is_vacuous();
        }
        if observed_any {
            break;
        }
    }
    assert!(
        observed_any,
        "{name}: certification was vacuous — no run ever observed a conflict"
    );
}

#[test]
fn parser_planted_unknown_certifies_non_vacuously() {
    let k = dsmtx_workloads::parser::Parser;
    let scale = Scale::test();
    let mut plan = k.plan_with_planted_unknown(scale).unwrap();
    let analysis = analyze(&mut plan);
    certify_planted("197.parser(planted)", &analysis, |shards| {
        k.run_reported_planted_unknown(2, shards, scale)
            .unwrap()
            .report
            .conflict_pages()
    });
}

#[test]
fn li_setenv_certifies_non_vacuously() {
    let k = dsmtx_workloads::li::Li;
    let scale = Scale::test();
    let corpus = dsmtx_workloads::li::Corpus {
        with_setenv: true,
        with_exit: false,
    };
    let mut plan = k.plan_corpus(scale, corpus).unwrap();
    let analysis = analyze(&mut plan);
    certify_planted("130.li(setenv)", &analysis, |shards| {
        k.run_corpus_reported(2, shards, scale, corpus)
            .unwrap()
            .report
            .conflict_pages()
    });
}
