//! Differential harness for validation-plane compaction.
//!
//! The compacted protocol — per-subTX access filtering, packed
//! `AccessBlock` frames, and the worker-side COA page cache — must be
//! invisible to program semantics: for every workload, the packed run
//! (`compaction = true`, the default) and the unpacked legacy per-record
//! run (`compaction = false`) must produce byte-identical committed
//! memory, identical conflict verdicts, and an identical commit order —
//! fault-free at both `unit_shards` 1 and 2, and under pinned fault
//! seeds.
//!
//! Fault-free, *everything* must be bit-identical across the two modes.
//! Under fault injection the two protocols put different message counts
//! on the same links, so they consume the per-link fault decision streams
//! differently — the injected schedules necessarily diverge and per-run
//! recovery counters are not comparable (the same caveat as the
//! shard-differential harness). What MUST still hold is the end-to-end
//! guarantee: byte-identical committed memory (equal to the sequential
//! model) and no lost or duplicated iterations, in both modes, for every
//! pinned seed.

use dsmtx::FaultTarget;
use dsmtx_fabric::FaultRates;
use dsmtx_integration_tests::{
    run_workload_full, seed_from_env, FaultCase, RunSummary, ALL_WORKLOADS,
};

/// Pinned seeds, mirrored by CI's fault-matrix job (overridable through
/// `DSMTX_FAULT_SEED`).
const FAULT_SEEDS: [u64; 3] = [1, 20260806, 0xDEAD_BEEF];

const N: u64 = 24;

/// Asserts that two summaries describe bit-identical executions: same
/// committed memory (every page, every word), same conflict verdicts,
/// same commit order, same iteration accounting.
fn assert_identical(base: &RunSummary, other: &RunSummary, what: &str) {
    assert_eq!(base.outputs, other.outputs, "{what}: output cells diverged");
    assert_eq!(
        base.total_iterations, other.total_iterations,
        "{what}: iteration counts diverged"
    );
    assert_eq!(
        base.validation_conflicts, other.validation_conflicts,
        "{what}: conflict verdicts diverged"
    );
    assert_eq!(
        base.commit_order, other.commit_order,
        "{what}: commit order diverged"
    );
    assert_identical_memory(base, other, what);
}

/// Asserts byte-identical committed memory: same page set, same words.
fn assert_identical_memory(base: &RunSummary, other: &RunSummary, what: &str) {
    assert_eq!(
        base.memory.len(),
        other.memory.len(),
        "{what}: page sets diverged"
    );
    for ((id_a, page_a), (id_b, page_b)) in base.memory.iter().zip(other.memory.iter()) {
        assert_eq!(id_a, id_b, "{what}: page ids diverged");
        assert_eq!(page_a, page_b, "{what}: page {id_a:?} contents diverged");
    }
}

#[test]
fn compaction_is_semantically_invisible_fault_free() {
    for shards in [1usize, 2] {
        for w in ALL_WORKLOADS {
            let unpacked = run_workload_full(w, N, None, shards, false);
            assert_eq!(
                unpacked.outputs, unpacked.expected,
                "{w:?} unpacked shards={shards}"
            );
            assert_eq!(unpacked.total_iterations, N, "{w:?} unpacked");
            let packed = run_workload_full(w, N, None, shards, true);
            assert_identical(
                &unpacked,
                &packed,
                &format!("{w:?} packed-vs-unpacked shards={shards} (fault-free)"),
            );
        }
    }
}

#[test]
fn compaction_preserves_memory_under_pinned_fault_seeds() {
    // Low uniform rates on all links: enough injected faults to exercise
    // recovery through the packed path without ballooning test time.
    let rates = FaultRates::uniform(0.05);
    for seed in FAULT_SEEDS {
        let seed = seed_from_env(seed);
        for w in ALL_WORKLOADS {
            let case = FaultCase {
                n: N,
                ..FaultCase::quick(seed, rates, FaultTarget::All, w)
            };
            let unpacked = run_workload_full(w, N, Some(case.fault_config()), 1, false);
            assert_eq!(
                unpacked.outputs,
                unpacked.expected,
                "unpacked diverged from the sequential model\n{}",
                case.reproducer()
            );
            assert_eq!(unpacked.total_iterations, N, "{}", case.reproducer());
            let packed = run_workload_full(w, N, Some(case.fault_config()), 1, true);
            let what = format!("{w:?} packed seed={seed:#x}\n{}", case.reproducer());
            assert_eq!(
                packed.outputs, packed.expected,
                "{what}: diverged from the sequential model"
            );
            assert_eq!(
                packed.total_iterations, N,
                "{what}: iterations lost or duplicated"
            );
            assert_identical_memory(&unpacked, &packed, &what);
        }
    }
}

#[test]
fn packed_runs_actually_filter_and_pack() {
    // Guard against the differential tests passing vacuously: the packed
    // run must actually ship AccessBlock frames, and the unpacked run
    // must not.
    for w in ALL_WORKLOADS {
        let packed = run_workload_full(w, N, None, 1, true);
        let vp = &packed.valplane;
        assert!(vp.blocks > 0, "{w:?}: no packed frames shipped");
        assert!(vp.block_records > 0, "{w:?}: packed frames were all empty");
        assert!(
            vp.bytes_post < vp.bytes_pre,
            "{w:?}: packing did not shrink the plane ({} !< {})",
            vp.bytes_post,
            vp.bytes_pre
        );

        let unpacked = run_workload_full(w, N, None, 1, false);
        let uv = &unpacked.valplane;
        assert_eq!(uv.blocks, 0, "{w:?}: unpacked run shipped packed frames");
        assert_eq!(uv.records_filtered, 0, "{w:?}: unpacked run filtered");
        assert_eq!(
            uv.bytes_pre, uv.bytes_post,
            "{w:?}: unpacked accounting must be identity"
        );
    }
}

#[test]
fn filtering_actually_suppresses_repeat_accesses() {
    // The harness workloads touch each address once per subTX, so the
    // write-combining filter is exercised here with a loop that re-reads
    // and re-writes its cells: only the first load and the coalesced
    // final store of each cell may survive, and the suppressed accesses
    // must not change the committed result.
    use dsmtx::{IterOutcome, MtxSystem, Program, StageKind, SystemConfig};
    use dsmtx_mem::MasterMem;
    use dsmtx_uva::{OwnerId, RegionAllocator};
    use std::sync::Arc;

    let n = 16u64;
    let mut heap = RegionAllocator::new(OwnerId(0));
    let out = heap.alloc_words(n).unwrap();
    let run = |compaction: bool| {
        let mut cfg = SystemConfig::new();
        cfg.stage(StageKind::Parallel { replicas: 2 });
        cfg.compaction(compaction);
        let body = Arc::new(move |ctx: &mut dsmtx::WorkerCtx, mtx: dsmtx::MtxId| {
            let cell = out.add_words(mtx.0);
            // 8 read-modify-write rounds of the same cell: 7 of the loads
            // and 7 of the stores are redundant on the validation plane.
            for _ in 0..8 {
                let v = ctx.read(cell)?;
                ctx.write(cell, v + mtx.0 + 1)?;
            }
            Ok(IterOutcome::Continue)
        });
        MtxSystem::new(&cfg)
            .unwrap()
            .run(Program {
                master: MasterMem::new(),
                stages: vec![body],
                recovery: Box::new(|_, _| IterOutcome::Continue),
                on_commit: None,
                iteration_limit: Some(n),
            })
            .unwrap()
    };

    let packed = run(true);
    assert!(
        packed.report.valplane.records_filtered > 0,
        "read-modify-write loop produced no filterable accesses"
    );
    let unpacked = run(false);
    assert_eq!(unpacked.report.valplane.records_filtered, 0);
    for i in 0..n {
        let cell = out.add_words(i);
        assert_eq!(
            packed.master.read(cell),
            unpacked.master.read(cell),
            "cell {i} diverged between packed and unpacked"
        );
        assert_eq!(packed.master.read(cell), 8 * (i + 1), "cell {i} wrong");
    }
}
