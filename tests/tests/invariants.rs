//! Cross-crate consistency invariants: trace properties of the runtime,
//! and agreement between each kernel's Table-2 paradigm, its simulator
//! profile, and its real parallel plan.

use std::sync::Arc;

use dsmtx::{
    IterOutcome, MtxId, MtxSystem, Program, StageKind, SystemConfig, TraceKind, WorkerCtx,
};
use dsmtx_mem::MasterMem;
use dsmtx_paradigms::Paradigm;
use dsmtx_sim::profile::StageShape;
use dsmtx_workloads::all_kernels;

/// The paradigm named in Table 2 and the simulator profile must agree on
/// the pipeline shape (stage count and which stages are parallel).
#[test]
fn paradigm_and_profile_shapes_agree() {
    for kernel in all_kernels() {
        let info = kernel.info();
        let profile = kernel.profile();
        let profile_shapes: Vec<bool> = profile
            .stages
            .iter()
            .map(|s| s.shape == StageShape::Parallel)
            .collect();
        match &info.paradigm {
            Paradigm::SpecDoall => {
                assert_eq!(profile_shapes, vec![true], "{}", info.name);
            }
            Paradigm::Dswp { stages, .. } | Paradigm::SpecDswp { stages } => {
                let named: Vec<bool> = stages
                    .iter()
                    .map(|s| matches!(s, dsmtx_paradigms::paradigm::StageLabel::Doall))
                    .collect();
                assert_eq!(profile_shapes, named, "{}", info.name);
            }
            other => panic!("{}: unexpected paradigm {other}", info.name),
        }
        // MTX requirement matches the paper: Spec-DSWP plans need MTXs.
        let spans_pipeline = matches!(info.paradigm, Paradigm::SpecDswp { .. });
        assert_eq!(
            info.paradigm.needs_mtx(),
            spans_pipeline
                || matches!(
                    info.paradigm,
                    Paradigm::Dswp {
                        spec_stage: Some(_),
                        ..
                    }
                )
        );
    }
}

/// Trace invariants across a run with recoveries:
/// * commits are strictly increasing (iteration order);
/// * every committed MTX had at least one subTX begin;
/// * recovery start/end events pair up.
#[test]
fn trace_invariants_under_recovery() {
    const N: u64 = 16;
    let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        if mtx.0 == 6 || mtx.0 == 11 {
            return ctx.misspec();
        }
        Ok(IterOutcome::Continue)
    });
    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Parallel { replicas: 3 });
    let result = MtxSystem::new(&cfg)
        .unwrap()
        .trace(true)
        .run(Program {
            master: MasterMem::new(),
            stages: vec![body],
            recovery: Box::new(|_, _| IterOutcome::Continue),
            on_commit: None,
            iteration_limit: Some(N),
        })
        .unwrap();

    let trace = &result.report.trace;
    let commits: Vec<u64> = trace
        .iter()
        .filter(|e| e.kind == TraceKind::Committed)
        .map(|e| e.mtx.unwrap().0)
        .collect();
    for w in commits.windows(2) {
        assert!(w[0] < w[1], "commit order violated: {commits:?}");
    }

    let begun: std::collections::HashSet<u64> = trace
        .iter()
        .filter(|e| e.kind == TraceKind::SubTxBegin)
        .map(|e| e.mtx.unwrap().0)
        .collect();
    for c in &commits {
        assert!(begun.contains(c), "mtx{c} committed without a subTX begin");
    }

    let starts = trace
        .iter()
        .filter(|e| e.kind == TraceKind::RecoveryStart)
        .count();
    let ends = trace
        .iter()
        .filter(|e| e.kind == TraceKind::RecoveryEnd)
        .count();
    assert_eq!(starts, 2);
    assert_eq!(ends, 2);
    assert_eq!(result.report.recoveries, 2);
    // Iteration 11 may run (and misspeculate) once before the recovery of
    // 6 squashes it and once after, so the event count is 2 or 3.
    assert!(
        (2..=3).contains(&result.report.worker_misspecs),
        "{}",
        result.report.worker_misspecs
    );
    assert_eq!(result.report.total_iterations(), N);
}

/// COA accounting: the pages served by the commit unit cover at least the
/// distinct committed pages the workers touched, and private worker pages
/// are served as zero pages without polluting committed memory.
#[test]
fn coa_serves_committed_and_private_pages() {
    const N: u64 = 8;
    let mut heap = dsmtx_uva::RegionAllocator::new(dsmtx_uva::OwnerId(0));
    // Spread the input over several pages.
    let input = heap.alloc_pages(4).unwrap();
    let mut master = MasterMem::new();
    for p in 0..4u64 {
        master.write(input.add_words(p * 512), p + 1);
    }
    let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        let p = mtx.0 % 4;
        let v = ctx.read(input.add_words(p * 512))?;
        // Worker-private scratch on the worker's own page.
        let scratch = ctx.heap().alloc_pages(1).unwrap();
        ctx.write_private(scratch, v * 10)?;
        let got = ctx.read_private(scratch)?;
        assert_eq!(got, v * 10);
        ctx.heap().free(scratch).unwrap();
        Ok(IterOutcome::Continue)
    });
    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Parallel { replicas: 2 });
    let result = MtxSystem::new(&cfg)
        .unwrap()
        .run(Program {
            master,
            stages: vec![body],
            recovery: Box::new(|_, _| IterOutcome::Continue),
            on_commit: None,
            iteration_limit: Some(N),
        })
        .unwrap();
    // Each worker faults the input pages it touches plus its scratch page.
    assert!(result.report.coa_pages_served >= 4);
    // The scratch writes never reached committed memory (worker-owned
    // regions stay zero in the master image).
    let w0_region = dsmtx::worker_owner(dsmtx::WorkerId(0));
    let foreign = dsmtx_uva::VAddr::new(w0_region, 8);
    assert_eq!(result.master.read(foreign), 0);
}
