//! Auto-partitioner integration: golden plan reports per workload, the
//! apply-path certification loop, refusal of planted mis-partitions, a
//! property pass over randomized synthetic loops, and the shipped
//! shard-map demonstration.
//!
//! The load-bearing claims, in order: (1) for every registry workload
//! the planner emits at least one candidate whose lint report carries
//! zero Error findings; (2) executing the top-ranked candidate through
//! the real runtime observes only conflict pages the candidate's own
//! lint predicted, and its conflict count is no worse than the
//! hand-written Table 2 plan's; (3) a loop with an unsynchronized
//! value-changing carried flow gets its doall candidate *refused*, not
//! ranked; (4) the two properties above hold across randomized loops,
//! not just the eleven shipped ones.
//!
//! Golden files live in `tests/golden/plan_*.txt`; set
//! `DSMTX_UPDATE_GOLDEN=1` to regenerate after an intentional
//! report-format change.

use dsmtx::{IterOutcome, Region, StageRole, StageSpec};
use dsmtx_analyze::{
    analyze, auto_plan, certify, render_plan_jsonl, render_plan_text, run_candidate, FindingKind,
    Severity,
};
use dsmtx_mem::MasterMem;
use dsmtx_obs::json;
use dsmtx_uva::{OwnerId, VAddr};
use dsmtx_workloads::{all_kernels, AnalysisPlan, Scale};
use proptest::prelude::*;

/// Replicas per parallel stage when applying a candidate.
const APPLY_REPLICAS: u16 = 2;
/// Try-commit shards when applying a candidate.
const APPLY_SHARDS: usize = 2;

fn at(off: u64) -> VAddr {
    VAddr::new(OwnerId(0), off)
}

/// Compares rendered text against `tests/golden/<name>.txt`, rewriting
/// the file instead when `DSMTX_UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join(format!("{name}.txt"));
    if std::env::var_os("DSMTX_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        expected, actual,
        "golden {name} drifted; rerun with DSMTX_UPDATE_GOLDEN=1 if intentional"
    );
}

#[test]
fn golden_auto_plan_per_workload() {
    for k in all_kernels() {
        let name = k.info().name;
        let mut plan = k.plan(Scale::test()).unwrap();
        let outcome = auto_plan(&mut plan);
        assert!(
            outcome.best().is_some(),
            "{name}: planner must emit a viable candidate"
        );
        let golden = format!("plan_{}", name.replace('.', "_"));
        assert_golden(&golden, &render_plan_text(&outcome));
    }
}

#[test]
fn auto_plan_jsonl_rows_validate_per_workload() {
    for k in all_kernels() {
        let name = k.info().name;
        let mut plan = k.plan(Scale::test()).unwrap();
        let outcome = auto_plan(&mut plan);
        let mut records = std::collections::BTreeSet::new();
        for line in render_plan_jsonl(&outcome).lines() {
            json::validate(line).unwrap_or_else(|e| panic!("{name}: bad JSONL row {line}: {e}"));
            for rec in ["plan", "plan_candidate", "plan_rejected", "plan_diff"] {
                if line.contains(&format!("\"record\":\"{rec}\"")) {
                    records.insert(rec);
                }
            }
        }
        assert!(
            records.contains("plan") && records.contains("plan_candidate"),
            "{name}: JSONL stream must carry summary and candidate rows, got {records:?}"
        );
    }
}

/// Every candidate the planner *emits* (as opposed to rejects) must lint
/// with zero Error findings — the refusal contract, checked on the real
/// workloads here and on randomized loops in the proptest below.
#[test]
fn emitted_candidates_lint_clean_on_every_workload() {
    for k in all_kernels() {
        let name = k.info().name;
        let mut plan = k.plan(Scale::test()).unwrap();
        let outcome = auto_plan(&mut plan);
        for c in &outcome.candidates {
            assert!(
                !c.report.has_errors(),
                "{name}: emitted candidate `{}` has Error findings: {:?}",
                c.name,
                c.report.findings
            );
        }
    }
}

#[test]
fn applied_auto_plans_certify_and_match_hand_conflicts() {
    let mut auto_no_worse_somewhere = false;
    for k in all_kernels() {
        let name = k.info().name;
        let mut plan = k.plan(Scale::test()).unwrap();
        let outcome = auto_plan(&mut plan);
        let best = outcome
            .best()
            .unwrap_or_else(|| panic!("{name}: no viable auto plan"));
        let fresh = k.plan(Scale::test()).unwrap();
        let result = run_candidate(
            best,
            &outcome.raw_iters,
            fresh,
            APPLY_REPLICAS,
            APPLY_SHARDS,
        )
        .unwrap_or_else(|e| panic!("{name}: applying `{}`: {e}", best.name));
        assert_eq!(
            result.report.total_iterations(),
            outcome.iterations,
            "{name}: the applied plan must commit every recorded iteration"
        );
        let observed = result.report.conflict_pages();
        let cert = certify(&best.report, &observed, APPLY_SHARDS);
        assert!(
            cert.holds(),
            "{name}: auto plan `{}` observed conflicts on pages {:?} its own lint \
             never predicted (predicted {:?})",
            best.name,
            cert.unpredicted,
            cert.predicted
        );
        let hand = k
            .run_reported(APPLY_REPLICAS, APPLY_SHARDS, Scale::test())
            .unwrap();
        auto_no_worse_somewhere |=
            result.report.validation_conflicts <= hand.report.validation_conflicts;
    }
    assert!(
        auto_no_worse_somewhere,
        "on at least one workload the auto plan's conflict count must be \
         no worse than the hand-written plan's"
    );
}

/// A loop whose accumulator is a genuine value-changing carried flow,
/// declared to the analyzer as if it were freely parallel. The planner
/// must refuse the doall candidate outright (not merely rank it last)
/// and pick a shape that serializes the accumulator.
#[test]
fn planted_mispartition_refuses_the_doall_candidate() {
    let mut master = MasterMem::new();
    for i in 0..8u64 {
        master.write(at(1024 + i * 8), 5 + i);
    }
    let mut plan = AnalysisPlan {
        name: "synthetic-planted",
        iterations: 8,
        master,
        recovery: Box::new(|mtx, master| {
            let acc = master.read(at(0));
            let v = master.read(at(1024 + mtx.0 * 8));
            master.write(at(0), acc + v);
            master.write(at(2048 + mtx.0 * 8), v * 2);
            IterOutcome::Continue
        }),
        // The (wrong) hand claim: everything, accumulator included, is
        // independent per-iteration work.
        stages: vec![StageSpec::new(
            "compute",
            StageRole::Parallel,
            Box::new(|mtx| {
                vec![
                    Region::read_write("acc", at(0), 1),
                    Region::read("input", at(1024 + mtx * 8), 1),
                    Region::write("out", at(2048 + mtx * 8), 1),
                ]
            }),
        )],
        shard_map: None,
    };
    let outcome = auto_plan(&mut plan);
    let refused: Vec<&str> = outcome.rejected.iter().map(|r| r.name).collect();
    assert!(
        refused.contains(&"doall"),
        "doall must be refused, got rejected={refused:?}"
    );
    let doall = outcome.rejected.iter().find(|r| r.name == "doall").unwrap();
    assert!(
        doall.reason.contains("unforwarded_loop_carried_flow"),
        "refusal must name the carried flow: {}",
        doall.reason
    );
    let best = outcome.best().expect("a serializing shape survives");
    assert!(
        best.stages
            .iter()
            .any(|s| matches!(s.role, StageRole::Sequential | StageRole::Ring)),
        "the winner must serialize the accumulator, got shape {}",
        best.shape()
    );
    assert!(!best.report.has_errors());
    // The winner is also *runnable*: zero conflicts, full commit.
    let mut master = MasterMem::new();
    for i in 0..8u64 {
        master.write(at(1024 + i * 8), 5 + i);
    }
    let fresh = AnalysisPlan {
        name: "synthetic-planted",
        iterations: 8,
        master,
        recovery: Box::new(|mtx, master| {
            let acc = master.read(at(0));
            let v = master.read(at(1024 + mtx.0 * 8));
            master.write(at(0), acc + v);
            master.write(at(2048 + mtx.0 * 8), v * 2);
            IterOutcome::Continue
        }),
        stages: Vec::new(),
        shard_map: None,
    };
    let result = run_candidate(
        best,
        &outcome.raw_iters,
        fresh,
        APPLY_REPLICAS,
        APPLY_SHARDS,
    )
    .unwrap();
    assert_eq!(result.report.total_iterations(), 8);
    let cert = certify(&best.report, &result.report.conflict_pages(), APPLY_SHARDS);
    assert!(cert.holds());
}

/// Parameters for one randomized synthetic loop.
#[derive(Debug, Clone)]
struct LoopShape {
    iterations: u64,
    cells: u64,
    with_acc: bool,
    with_silent: bool,
    multiplier: u64,
}

fn build_synthetic(shape: &LoopShape) -> AnalysisPlan {
    let mut master = MasterMem::new();
    for i in 0..shape.cells {
        master.write(at(1024 + i * 8), 3 + i);
    }
    if shape.with_silent {
        // Pre-seeded so every store in the loop rewrites the same value:
        // the carried flow exists but is silent to value validation.
        master.write(at(8), 7);
    }
    let s = shape.clone();
    AnalysisPlan {
        name: "synthetic-prop",
        iterations: shape.iterations,
        master,
        recovery: Box::new(move |mtx, master| {
            let cell = 1024 + (mtx.0 % s.cells) * 8;
            let v = master.read(at(cell));
            master.write(at(2048 + mtx.0 * 8), v * s.multiplier);
            if s.with_acc {
                let acc = master.read(at(0));
                master.write(at(0), acc + v + 1);
            }
            if s.with_silent {
                let sil = master.read(at(8));
                master.write(at(8), sil);
            }
            IterOutcome::Continue
        }),
        // Hand stages only feed the diff, not candidate linting; a
        // single blanket stage is enough.
        stages: vec![StageSpec::new(
            "compute",
            StageRole::Parallel,
            Box::new(move |mtx| vec![Region::write("out", at(2048 + mtx * 8), 1)]),
        )],
        shard_map: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    /// Across randomized loops: the planner always emits a viable
    /// candidate, every emitted candidate lints with zero Errors, the
    /// winner's address assignment is total, and a value-changing
    /// accumulator always forces refusal of the doall shape.
    #[test]
    fn planner_refusal_contract_holds(
        iterations in 2u64..11,
        cells in 1u64..7,
        with_acc in any::<bool>(),
        with_silent in any::<bool>(),
        multiplier in 1u64..6,
    ) {
        let shape = LoopShape { iterations, cells, with_acc, with_silent, multiplier };
        let mut plan = build_synthetic(&shape);
        let outcome = auto_plan(&mut plan);
        let best = outcome.best().expect("a viable candidate always exists");
        for c in &outcome.candidates {
            prop_assert!(
                !c.report.has_errors(),
                "emitted candidate `{}` has Error findings: {:?}",
                c.name,
                c.report.findings
            );
        }
        prop_assert_eq!(best.assignment.len() as u64, outcome.addresses);
        if shape.with_acc {
            prop_assert!(
                outcome.rejected.iter().any(|r| r.name == "doall"),
                "value-changing accumulator must refuse doall; rejected: {:?}",
                outcome.rejected
            );
            prop_assert!(best.stages.iter().any(|s| s.role == StageRole::Sequential));
        } else {
            // No value-changing carried flow anywhere: doall wins and
            // predicts zero misspeculation (silent carried stores are
            // invisible to value validation by construction).
            prop_assert_eq!(best.name, "doall");
            prop_assert_eq!(best.score.misspec_per_1k, 0);
        }
    }

    /// Determinism: planning the same loop twice renders byte-identical
    /// reports (the property golden files and CI artifacts rely on).
    #[test]
    fn planner_is_deterministic(
        iterations in 2u64..11,
        cells in 1u64..7,
        with_acc in any::<bool>(),
        with_silent in any::<bool>(),
        multiplier in 1u64..6,
    ) {
        let shape = LoopShape { iterations, cells, with_acc, with_silent, multiplier };
        let mut a = build_synthetic(&shape);
        let mut b = build_synthetic(&shape);
        prop_assert_eq!(
            render_plan_text(&auto_plan(&mut a)),
            render_plan_text(&auto_plan(&mut b))
        );
    }
}

/// The profile-guided shard maps shipped with alvinn and bzip2 keep
/// their lint reports free of Warning-severity hotspot findings (the
/// residual single-page skew is demoted to Info as irreducible), while
/// stripping the map off the same plan surfaces the Warning the map
/// exists to fix.
#[test]
fn shipped_shard_maps_demote_hotspots() {
    for name in ["052.alvinn", "256.bzip2"] {
        let k = dsmtx_workloads::kernel_by_name(name).unwrap();
        let mut plan = k.plan(Scale::test()).unwrap();
        assert!(
            plan.shard_map.is_some(),
            "{name} ships a profile-guided shard map"
        );
        let with_map = analyze(&mut plan);
        assert!(
            !with_map
                .report
                .findings
                .iter()
                .any(|f| f.kind == FindingKind::ShardHotspot && f.severity >= Severity::Warning),
            "{name}: with its shipped map, no Warning-level hotspot: {:?}",
            with_map.report.findings
        );

        let mut stripped = k.plan(Scale::test()).unwrap();
        stripped.shard_map = None;
        let without_map = analyze(&mut stripped);
        assert!(
            without_map
                .report
                .findings
                .iter()
                .any(|f| f.kind == FindingKind::ShardHotspot && f.severity == Severity::Warning),
            "{name}: without the map the hotspot warning must come back: {:?}",
            without_map.report.findings
        );
    }
}
