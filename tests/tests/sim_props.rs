//! Property-based invariants of the cluster simulator over random
//! profiles.

use dsmtx_sim::profile::{StageProfile, StageShape};
use dsmtx_sim::{SimEngine, TlsPlan, WorkloadProfile};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = WorkloadProfile> {
    (
        1u64..5000,        // iterations
        1u64..2000,        // iteration work in microseconds
        0.0f64..0.2,       // first-stage fraction
        0.0f64..0.2,       // last-stage fraction
        0.0f64..100_000.0, // stage-0 bytes out
        0.0f64..0.3,       // TLS sync fraction
        0.5f64..1.0,       // coverage
        0.0f64..256.0,     // validation words
    )
        .prop_map(
            |(iters, work_us, f0, f2, bytes0, sync, coverage, val_words)| {
                let fp = (1.0 - f0 - f2).max(0.01);
                let norm = f0 + fp + f2;
                WorkloadProfile {
                    name: "random".into(),
                    iter_work: work_us as f64 * 1.0e-6,
                    iterations: iters,
                    coverage,
                    stages: vec![
                        StageProfile {
                            shape: StageShape::Sequential,
                            work_fraction: f0 / norm,
                            bytes_out: bytes0,
                        },
                        StageProfile {
                            shape: StageShape::Parallel,
                            work_fraction: fp / norm,
                            bytes_out: bytes0 / 4.0,
                        },
                        StageProfile {
                            shape: StageShape::Sequential,
                            work_fraction: f2 / norm,
                            bytes_out: 0.0,
                        },
                    ],
                    validation_words: val_words,
                    tls: TlsPlan {
                        sync_fraction: sync,
                        bytes_per_iter: bytes0 / 8.0,
                        validation_words: val_words,
                    },
                    chunked: false,
                    invocation: None,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Speedups are physical: positive, never above the worker count,
    /// never above the Amdahl bound.
    #[test]
    fn speedups_are_physical(profile in arb_profile(), cores in 4u32..129) {
        let e = SimEngine::default();
        for out in [
            e.simulate_spec_dswp(&profile, cores, 0.0),
            e.simulate_tls(&profile, cores, 0.0),
        ] {
            prop_assert!(out.app_speedup > 0.0);
            prop_assert!(out.loop_speedup <= out.workers as f64 + 1e-6,
                "{} > {}", out.loop_speedup, out.workers);
            let amdahl = 1.0 / (1.0 - profile.coverage).max(1e-12);
            prop_assert!(out.app_speedup <= amdahl + 1e-6);
            // Amdahl blending: the app speedup lies between the loop
            // speedup and 1 (whichever side the loop lands on).
            let (lo, hi) = if out.loop_speedup >= 1.0 {
                (1.0, out.loop_speedup)
            } else {
                (out.loop_speedup, 1.0)
            };
            prop_assert!(out.app_speedup >= lo - 1e-6 && out.app_speedup <= hi + 1e-6,
                "app {} outside [{}, {}]", out.app_speedup, lo, hi);
            prop_assert!(out.bytes >= 0.0 && out.bandwidth >= 0.0);
        }
    }

    /// More cores never slow the Spec-DSWP loop itself down by more than
    /// model noise (the latency term grows mildly with node count).
    #[test]
    fn dswp_loop_time_roughly_monotone(profile in arb_profile()) {
        let e = SimEngine::default();
        let t32 = e.simulate_spec_dswp(&profile, 32, 0.0).loop_time;
        let t128 = e.simulate_spec_dswp(&profile, 128, 0.0).loop_time;
        prop_assert!(t128 <= t32 * 1.25, "{t128} vs {t32}");
    }

    /// Injected misspeculation never speeds a run up, and the overhead
    /// attribution accounts for the measured slowdown.
    #[test]
    fn misspec_overhead_is_accounted(profile in arb_profile(), rate_inv in 10u64..400) {
        let e = SimEngine::default();
        let rate = 1.0 / rate_inv as f64;
        let clean = e.simulate_spec_dswp(&profile, 64, 0.0);
        let dirty = e.simulate_spec_dswp(&profile, 64, rate);
        prop_assert!(dirty.loop_time >= clean.loop_time * 0.999);
        prop_assert!(dirty.recovery.episodes >= 1);
        let measured = dirty.loop_time - clean.loop_time;
        // The explicit components never exceed measured overhead by more
        // than the refill slack the model folds into RFP.
        prop_assert!(dirty.recovery.total() >= measured * 0.5 - 1e-9);
    }

    /// A cyclic synchronized dependence caps TLS at 1/sync_fraction.
    #[test]
    fn tls_sync_bound_holds(profile in arb_profile()) {
        prop_assume!(profile.tls.sync_fraction > 0.01);
        let e = SimEngine::default();
        let out = e.simulate_tls(&profile, 128, 0.0);
        let cap = 1.0 / profile.tls.sync_fraction;
        prop_assert!(out.loop_speedup <= cap * 1.05, "{} vs cap {}", out.loop_speedup, cap);
    }

    /// Disabling batching never helps a non-chunked profile.
    #[test]
    fn unbatched_never_faster(profile in arb_profile()) {
        use dsmtx_sim::ClusterConfig;
        let on = SimEngine::new(ClusterConfig::paper()).simulate_spec_dswp(&profile, 64, 0.0);
        let off = SimEngine::new(ClusterConfig::paper_unbatched()).simulate_spec_dswp(&profile, 64, 0.0);
        prop_assert!(off.loop_time >= on.loop_time * 0.999);
    }
}
