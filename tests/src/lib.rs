//! Workspace-level integration tests for the DSMTX reproduction — plus
//! the shared **seed-replayable fault harness**.
//!
//! Every fault-injection test funnels through [`check_case`]: it runs one
//! workload twice — fault-free and under a deterministic fault plan — and
//! asserts the committed memories are byte-identical and equal to the
//! sequential model. On any divergence, hang (wall-clock watchdog), or
//! panic, the failure message prints the full `(seed, rates, target,
//! workload)` tuple and a one-liner that replays exactly the failing
//! schedule:
//!
//! ```text
//! DSMTX_FAULT_SEED=0x1badf00d cargo test -q -p dsmtx-integration-tests <test>
//! ```
//!
//! See `tests/`: kernel equivalence across execution modes, property-based
//! runtime checks, adversarial recovery scenarios, the fault matrix, and
//! simulator invariants.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dsmtx::{
    FaultConfig, FaultTarget, IterOutcome, MtxId, MtxSystem, Program, RunReport, StageId,
    StageKind, SystemConfig, TraceKind, ValPlaneStats, WorkerCtx,
};
use dsmtx_fabric::{FaultRates, RetryPolicy};
use dsmtx_mem::{MasterMem, Page};
use dsmtx_uva::{OwnerId, PageId, RegionAllocator};

/// How long a faulted run may take before the watchdog declares a hang.
/// Generous: a single recovery round is bounded by the receive deadline
/// plus the retry budget, both a few tens of milliseconds here.
pub const WATCHDOG: Duration = Duration::from_secs(30);

/// The workloads the harness can replay. Each has an exact sequential
/// model and exercises a different slice of the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Spec-DOALL over 3 replicas: disjoint output slots, COA traffic,
    /// no cross-iteration dependences.
    DoallSum,
    /// Two-stage Spec-DSWP pipeline (parallel producer, sequential
    /// folder): produce/consume frames, forwarded stores, a true
    /// cross-iteration dependence carried by the sequential stage.
    PipelineFold,
    /// TLS ring prefix-sum over 3 replicas: synchronized cross-iteration
    /// values on ring links, recovery re-derivation after rollback.
    RingScan,
}

/// Every workload, for matrix-style iteration.
pub const ALL_WORKLOADS: [Workload; 3] = [
    Workload::DoallSum,
    Workload::PipelineFold,
    Workload::RingScan,
];

/// One fully specified fault scenario: replaying the same case always
/// injects the same fault schedule.
#[derive(Debug, Clone, Copy)]
pub struct FaultCase {
    /// Seed of the per-link decision streams.
    pub seed: u64,
    /// Per-class fault probabilities.
    pub rates: FaultRates,
    /// Which links the plan injects into.
    pub target: FaultTarget,
    /// The workload under test.
    pub workload: Workload,
    /// Iteration count.
    pub n: u64,
    /// Receive deadline (µs) before a starved thread requests recovery.
    pub recv_timeout_us: u64,
    /// Send retry budget before a flush converts into a timeout.
    pub max_attempts: u32,
}

impl FaultCase {
    /// A case with the timing knobs tuned for fast tests: short receive
    /// deadlines and a small retry budget, so injected faults convert
    /// into recoveries in milliseconds instead of the production-scale
    /// defaults.
    pub fn quick(seed: u64, rates: FaultRates, target: FaultTarget, workload: Workload) -> Self {
        FaultCase {
            seed,
            rates,
            target,
            workload,
            n: 40,
            recv_timeout_us: 15_000,
            max_attempts: 12,
        }
    }

    /// The runtime fault configuration this case expands to.
    pub fn fault_config(&self) -> FaultConfig {
        FaultConfig::new(self.seed, self.rates)
            .target(self.target)
            .recv_timeout_us(self.recv_timeout_us)
            .retry(RetryPolicy {
                max_attempts: self.max_attempts,
                base_backoff_us: 10,
                max_backoff_us: 200,
            })
    }

    /// The `(seed, rates, …)` tuple plus a one-liner that replays exactly
    /// this schedule; printed by every harness failure.
    pub fn reproducer(&self) -> String {
        format!(
            "fault case: seed={:#x} rates=[{}] target={} workload={:?} n={} \
             recv_timeout_us={} max_attempts={}\n\
             replay: DSMTX_FAULT_SEED={:#x} cargo test -q -p dsmtx-integration-tests",
            self.seed,
            self.rates,
            self.target,
            self.workload,
            self.n,
            self.recv_timeout_us,
            self.max_attempts,
            self.seed,
        )
    }
}

/// Reads a seed override from `DSMTX_FAULT_SEED` (decimal or `0x…` hex),
/// falling back to `default_seed`. CI's fault-matrix job pins its seeds
/// through this hook; local reproduction uses the same door.
pub fn seed_from_env(default_seed: u64) -> u64 {
    match std::env::var("DSMTX_FAULT_SEED") {
        Err(_) => default_seed,
        Ok(s) => {
            let s = s.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                s.parse()
            };
            parsed.unwrap_or_else(|_| panic!("unparseable DSMTX_FAULT_SEED: {s:?}"))
        }
    }
}

/// What one run produced, reduced to the comparable essentials.
#[derive(Clone)]
pub struct RunSummary {
    /// Every output cell of the workload, read from committed memory.
    pub outputs: Vec<u64>,
    /// The sequential model's value for each output cell.
    pub expected: Vec<u64>,
    /// Iterations whose effects reached committed memory.
    pub total_iterations: u64,
    /// Misspeculation + fault recovery rounds.
    pub recoveries: u64,
    /// Fabric-timeout recovery requests raised.
    pub fabric_timeouts: u64,
    /// Recovery rounds run in answer to fabric timeouts.
    pub fault_recoveries: u64,
    /// Injected faults of any class (from fabric stats).
    pub faults_injected: u64,
    /// Conflicts detected by value validation (deduplicated per MTX, so
    /// the count is comparable across `unit_shards` settings).
    pub validation_conflicts: u64,
    /// MTX ids in commit order, from the trace (speculative commits only).
    pub commit_order: Vec<u64>,
    /// Full committed memory at loop exit, sorted by page id.
    pub memory: Vec<(PageId, Page)>,
    /// Validation-plane compaction counters (filtering, packed frames,
    /// COA cache) — used by the differential harness's non-vacuity guards.
    pub valplane: ValPlaneStats,
}

/// Runs `case` under its fault plan — with a fault-free control run first
/// — and asserts committed output is byte-identical to the fault-free
/// sequential result. Panics with the seed-replayable reproducer line on
/// divergence, lost/duplicated iterations, a runtime panic, or a hang.
pub fn check_case(case: &FaultCase) -> RunSummary {
    let control = run_workload(case.workload, case.n, None);
    assert_eq!(
        control.outputs, control.expected,
        "fault-free control run diverged from the sequential model (harness bug)"
    );

    let c = *case;
    let handle = std::thread::spawn(move || run_workload(c.workload, c.n, Some(c.fault_config())));
    let deadline = Instant::now() + WATCHDOG;
    while !handle.is_finished() {
        assert!(
            Instant::now() < deadline,
            "WATCHDOG: faulted run still not finished after {WATCHDOG:?} \
             (deadlocked recovery?)\n{}",
            case.reproducer()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let faulted = match handle.join() {
        Ok(s) => s,
        Err(_) => panic!("faulted run panicked\n{}", case.reproducer()),
    };

    assert_eq!(
        faulted.outputs,
        control.outputs,
        "DIVERGENCE: faulted run committed different memory than the \
         fault-free run\n{}",
        case.reproducer()
    );
    assert_eq!(
        faulted.total_iterations,
        case.n,
        "iterations lost or duplicated under faults\n{}",
        case.reproducer()
    );
    faulted
}

/// Runs one workload, optionally under a fault plan, with tracing on; the
/// commit-order invariant (committed MTX ids strictly increasing) is
/// asserted inside.
pub fn run_workload(workload: Workload, n: u64, fault: Option<FaultConfig>) -> RunSummary {
    run_workload_sharded(workload, n, fault, 1)
}

/// [`run_workload`] with an explicit try-commit shard count — the
/// differential harness runs the same workload at `unit_shards` 1, 2, and
/// 4 and asserts bit-identical results.
pub fn run_workload_sharded(
    workload: Workload,
    n: u64,
    fault: Option<FaultConfig>,
    shards: usize,
) -> RunSummary {
    run_workload_full(workload, n, fault, shards, true)
}

/// [`run_workload_sharded`] with an explicit validation-plane compaction
/// flag — the valplane differential harness runs the same workload packed
/// (`true`, the default protocol) and unpacked (`false`, the legacy
/// per-record protocol) and asserts bit-identical results.
pub fn run_workload_full(
    workload: Workload,
    n: u64,
    fault: Option<FaultConfig>,
    shards: usize,
    compaction: bool,
) -> RunSummary {
    match workload {
        Workload::DoallSum => doall_sum(n, fault, shards, compaction),
        Workload::PipelineFold => pipeline_fold(n, fault, shards, compaction),
        Workload::RingScan => ring_scan(n, fault, shards, compaction),
    }
}

/// Deterministic pseudo-input (splitmix64 finalizer).
fn mix(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn system(
    cfg: &mut SystemConfig,
    fault: Option<FaultConfig>,
    shards: usize,
    compaction: bool,
) -> MtxSystem {
    cfg.unit_shards(shards);
    cfg.compaction(compaction);
    if let Some(f) = fault {
        cfg.faults(f);
    }
    MtxSystem::new(cfg).unwrap().trace(true)
}

fn summarize(
    outputs: Vec<u64>,
    expected: Vec<u64>,
    master: &MasterMem,
    report: &RunReport,
) -> RunSummary {
    // Commit-order invariant: the commit unit applies MTX write-sets in
    // strictly increasing iteration order, faults or no faults.
    let commits: Vec<u64> = report
        .trace
        .iter()
        .filter(|e| e.kind == TraceKind::Committed)
        .map(|e| e.mtx.unwrap().0)
        .collect();
    assert!(
        commits.windows(2).all(|w| w[0] < w[1]),
        "commit order violated: {commits:?}"
    );
    RunSummary {
        outputs,
        expected,
        total_iterations: report.total_iterations(),
        recoveries: report.recoveries,
        fabric_timeouts: report.fabric_timeouts,
        fault_recoveries: report.fault_recoveries,
        faults_injected: report.stats.faults_total(),
        validation_conflicts: report.validation_conflicts,
        commit_order: commits,
        memory: master.snapshot(),
        valplane: report.valplane.clone(),
    }
}

fn doall_sum(n: u64, fault: Option<FaultConfig>, shards: usize, compaction: bool) -> RunSummary {
    let step = |x: u64, i: u64| x.wrapping_mul(31).wrapping_add(i ^ 7);
    let mut heap = RegionAllocator::new(OwnerId(0));
    let input = heap.alloc_words(n).unwrap();
    let out = heap.alloc_words(n).unwrap();
    let mut master = MasterMem::new();
    for i in 0..n {
        master.write(input.add_words(i), mix(i));
    }
    let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        let x = ctx.read(input.add_words(mtx.0))?;
        ctx.write_no_forward(out.add_words(mtx.0), step(x, mtx.0))?;
        Ok(IterOutcome::Continue)
    });
    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Parallel { replicas: 3 });
    let result = system(&mut cfg, fault, shards, compaction)
        .run(Program {
            master,
            stages: vec![body],
            recovery: Box::new(move |mtx, m| {
                let x = m.read(input.add_words(mtx.0));
                m.write(out.add_words(mtx.0), step(x, mtx.0));
                IterOutcome::Continue
            }),
            on_commit: None,
            iteration_limit: Some(n),
        })
        .unwrap();
    let outputs = (0..n)
        .map(|i| result.master.read(out.add_words(i)))
        .collect();
    let expected = (0..n).map(|i| step(mix(i), i)).collect();
    summarize(outputs, expected, &result.master, &result.report)
}

fn pipeline_fold(
    n: u64,
    fault: Option<FaultConfig>,
    shards: usize,
    compaction: bool,
) -> RunSummary {
    const K: u64 = 1_099_511_628_211;
    let mut heap = RegionAllocator::new(OwnerId(0));
    let input = heap.alloc_words(n).unwrap();
    let acc_cell = heap.alloc_words(1).unwrap();
    let trail = heap.alloc_words(n).unwrap();
    let mut master = MasterMem::new();
    for i in 0..n {
        master.write(input.add_words(i), mix(i));
    }
    let first = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        let x = ctx.read(input.add_words(mtx.0))?;
        ctx.produce(x.rotate_left(11));
        Ok(IterOutcome::Continue)
    });
    let last = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        let v = ctx.consume();
        let acc = ctx.read(acc_cell)?;
        let next = acc.wrapping_mul(K).wrapping_add(v);
        ctx.write(acc_cell, next)?;
        ctx.write_no_forward(trail.add_words(mtx.0), next)?;
        Ok(IterOutcome::Continue)
    });
    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Parallel { replicas: 2 })
        .stage(StageKind::Sequential);
    let result = system(&mut cfg, fault, shards, compaction)
        .run(Program {
            master,
            stages: vec![first, last],
            recovery: Box::new(move |mtx, m| {
                let x = m.read(input.add_words(mtx.0));
                let acc = m.read(acc_cell);
                let next = acc.wrapping_mul(K).wrapping_add(x.rotate_left(11));
                m.write(acc_cell, next);
                m.write(trail.add_words(mtx.0), next);
                IterOutcome::Continue
            }),
            on_commit: None,
            iteration_limit: Some(n),
        })
        .unwrap();
    let mut outputs: Vec<u64> = (0..n)
        .map(|i| result.master.read(trail.add_words(i)))
        .collect();
    outputs.push(result.master.read(acc_cell));
    let mut acc = 0u64;
    let mut expected = Vec::with_capacity(n as usize + 1);
    for i in 0..n {
        acc = acc.wrapping_mul(K).wrapping_add(mix(i).rotate_left(11));
        expected.push(acc);
    }
    expected.push(acc);
    summarize(outputs, expected, &result.master, &result.report)
}

fn ring_scan(n: u64, fault: Option<FaultConfig>, shards: usize, compaction: bool) -> RunSummary {
    let mut heap = RegionAllocator::new(OwnerId(0));
    let input = heap.alloc_words(n).unwrap();
    let acc_cell = heap.alloc_words(1).unwrap();
    let scan = heap.alloc_words(n).unwrap();
    let mut master = MasterMem::new();
    for i in 0..n {
        master.write(input.add_words(i), mix(i) % 1000);
    }
    let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        let acc = match ctx.sync_take().first() {
            Some(&v) => v,
            None => ctx.read(acc_cell)?,
        };
        let x = ctx.read_private(input.add_words(mtx.0))?;
        let next = acc + x;
        ctx.write_no_forward(acc_cell, next)?;
        ctx.write_no_forward(scan.add_words(mtx.0), next)?;
        ctx.sync_produce(next);
        Ok(IterOutcome::Continue)
    });
    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Parallel { replicas: 3 })
        .ring(StageId(0));
    let result = system(&mut cfg, fault, shards, compaction)
        .run(Program {
            master,
            stages: vec![body],
            recovery: Box::new(move |mtx, m| {
                let acc = m.read(acc_cell);
                let x = m.read(input.add_words(mtx.0));
                m.write(acc_cell, acc + x);
                m.write(scan.add_words(mtx.0), acc + x);
                IterOutcome::Continue
            }),
            on_commit: None,
            iteration_limit: Some(n),
        })
        .unwrap();
    let mut outputs: Vec<u64> = (0..n)
        .map(|i| result.master.read(scan.add_words(i)))
        .collect();
    outputs.push(result.master.read(acc_cell));
    let mut acc = 0u64;
    let mut expected = Vec::with_capacity(n as usize + 1);
    for i in 0..n {
        acc += mix(i) % 1000;
        expected.push(acc);
    }
    expected.push(acc);
    summarize(outputs, expected, &result.master, &result.report)
}

#[cfg(test)]
mod harness_tests {
    use super::*;

    #[test]
    fn all_workloads_match_their_models_fault_free() {
        for w in ALL_WORKLOADS {
            let s = run_workload(w, 24, None);
            assert_eq!(s.outputs, s.expected, "{w:?}");
            assert_eq!(s.total_iterations, 24, "{w:?}");
            assert_eq!(s.faults_injected, 0, "{w:?}");
        }
    }

    #[test]
    fn seed_env_parsing() {
        // No env set in-process: the default flows through.
        assert_eq!(seed_from_env(42), 42);
    }

    #[test]
    fn reproducer_line_carries_the_tuple() {
        let case = FaultCase::quick(
            0x1BAD_F00D,
            FaultRates::uniform(0.2),
            FaultTarget::WorkerLinks,
            Workload::PipelineFold,
        );
        let line = case.reproducer();
        assert!(line.contains("seed=0x1badf00d"), "{line}");
        assert!(line.contains("target=worker"), "{line}");
        assert!(line.contains("PipelineFold"), "{line}");
        assert!(line.contains("DSMTX_FAULT_SEED=0x1badf00d"), "{line}");
    }
}
