//! Workspace-level integration tests for the DSMTX reproduction.
//!
//! See the `tests/` directory: kernel equivalence across execution modes,
//! property-based runtime checks, adversarial recovery scenarios, and
//! simulator invariants.
