//! Loop-parallelization paradigms on top of the DSMTX runtime.
//!
//! The paper's evaluation parallelizes each benchmark with the paradigm
//! that fits its structure (Table 2): Spec-DOALL, `DSWP+[…]` /
//! `Spec-DSWP+[…]` pipelines, and a TLS-only baseline. This crate gives
//! each paradigm a first-class executor over the core runtime:
//!
//! * [`executor::SpecDoall`] — one parallel stage, iterations split
//!   round-robin; all cross-iteration dependences speculated.
//! * [`executor::Pipeline`] — DSWP/Spec-DSWP pipelines built stage by
//!   stage (`[S, DOALL, S]`-style), with decoupled, acyclic communication.
//! * [`executor::Tls`] — the TLS baseline: one transaction per iteration
//!   on a replica ring, synchronized dependences forwarded
//!   replica-to-replica, putting communication latency on the critical
//!   path (the cyclic pattern of Figure 1).
//! * [`executor::Doacross`] — DOACROSS without speculation, for the
//!   Figure 1 comparison.
//!
//! [`paradigm::Paradigm`] carries the paper's naming (e.g.
//! `Spec-DSWP+[S,DOALL,S]`) and [`paradigm::taxonomy`] reproduces the
//! Figure 2 capability/assumption matrix.

//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use dsmtx::{IterOutcome, MtxId, WorkerCtx};
//! use dsmtx_mem::MasterMem;
//! use dsmtx_paradigms::{no_recovery, SpecDoall};
//! use dsmtx_uva::{OwnerId, RegionAllocator};
//!
//! let mut heap = RegionAllocator::new(OwnerId(0));
//! let out = heap.alloc_words(8)?;
//! let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
//!     ctx.write_no_forward(out.add_words(mtx.0), mtx.0 * mtx.0)?;
//!     Ok(IterOutcome::Continue)
//! });
//! let result = SpecDoall::new(2).run(MasterMem::new(), body, no_recovery(), Some(8))?;
//! assert_eq!(result.master.read(out.add_words(5)), 25);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod executor;
pub mod paradigm;

pub use executor::{
    no_recovery, set_trace_default, Doacross, ExecError, Pipeline, SpecDoall, Tls, Tuning,
};
pub use paradigm::{taxonomy, Paradigm, SpecKind, TaxonomyRow};
