//! Executors: one per paradigm, wrapping the core runtime.
//!
//! Each executor builds the pipeline configuration its paradigm implies
//! and runs a [`Program`]. Workloads supply stage bodies and a sequential
//! recovery body; the executor owns the shape.

use std::sync::atomic::{AtomicBool, Ordering};

use dsmtx::{
    ConfigError, IterOutcome, MtxSystem, Program, RecoveryFn, RunError, RunResult, StageFn,
    StageId, StageKind, SystemConfig,
};
use dsmtx_mem::MasterMem;

/// Process-wide default for [`Tuning::trace`]. Harnesses that need
/// lifecycle spans from kernels they don't construct directly (e.g.
/// `repro why` driving a workload's shipped plan) flip this before the
/// run instead of threading a flag through every executor.
static TRACE_DEFAULT: AtomicBool = AtomicBool::new(false);

/// Sets the process-wide default for [`Tuning::trace`]; affects tunings
/// created *after* the call. Returns the previous value so callers can
/// restore it.
pub fn set_trace_default(on: bool) -> bool {
    TRACE_DEFAULT.swap(on, Ordering::Relaxed)
}

/// Shared tuning knobs for all executors.
#[derive(Debug, Clone, Copy)]
pub struct Tuning {
    /// Queue batch threshold (items per packet) — the §4.2 optimization.
    pub batch: usize,
    /// Queue capacity in packets (bounds worker run-ahead).
    pub capacity: usize,
    /// Try-commit shard count (§3.2 parallel speculation units); 1 is
    /// the single-unit topology.
    pub unit_shards: usize,
    /// Record a lifecycle trace ([`dsmtx::TraceEvent`] stream) for the
    /// run; defaults to the process-wide [`set_trace_default`] value.
    pub trace: bool,
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning {
            batch: 64,
            capacity: 256,
            unit_shards: 1,
            trace: TRACE_DEFAULT.load(Ordering::Relaxed),
        }
    }
}

impl Tuning {
    /// Default tuning at an explicit try-commit shard count — what the
    /// certification harness uses to run every kernel's shipped plan at
    /// shards ∈ {1, 2, 4}.
    pub fn with_unit_shards(unit_shards: usize) -> Self {
        Tuning {
            unit_shards,
            ..Tuning::default()
        }
    }
}

fn build(cfg: &mut SystemConfig, tuning: Tuning) -> &mut SystemConfig {
    cfg.batch(tuning.batch)
        .capacity(tuning.capacity)
        .unit_shards(tuning.unit_shards)
}

fn build_system(cfg: &SystemConfig, tuning: Tuning) -> Result<MtxSystem, ConfigError> {
    Ok(MtxSystem::new(cfg)?.trace(tuning.trace))
}

/// Spec-DOALL: one parallel stage; all cross-iteration dependences are
/// speculated away (validated by value).
#[derive(Debug, Clone, Copy)]
pub struct SpecDoall {
    /// Worker replicas.
    pub replicas: u16,
    /// Queue tuning.
    pub tuning: Tuning,
}

impl SpecDoall {
    /// An executor with default tuning.
    pub fn new(replicas: u16) -> Self {
        SpecDoall {
            replicas,
            tuning: Tuning::default(),
        }
    }

    /// Runs `body` over `limit` iterations.
    ///
    /// # Errors
    ///
    /// Configuration or runtime errors from the core system.
    pub fn run(
        &self,
        master: MasterMem,
        body: StageFn,
        recovery: RecoveryFn,
        limit: Option<u64>,
    ) -> Result<RunResult, ExecError> {
        let mut cfg = SystemConfig::new();
        cfg.stage(StageKind::Parallel {
            replicas: self.replicas,
        });
        build(&mut cfg, self.tuning);
        let system = build_system(&cfg, self.tuning)?;
        Ok(system.run(Program {
            master,
            stages: vec![body],
            recovery,
            on_commit: None,
            iteration_limit: limit,
        })?)
    }
}

/// TLS baseline: single-threaded transactions on a replica ring.
/// Synchronized dependences are forwarded with
/// [`dsmtx::WorkerCtx::sync_produce`]/[`dsmtx::WorkerCtx::sync_take`],
/// putting inter-thread latency on the critical path (cyclic pattern).
#[derive(Debug, Clone, Copy)]
pub struct Tls {
    /// Worker replicas.
    pub replicas: u16,
    /// Queue tuning.
    pub tuning: Tuning,
}

impl Tls {
    /// An executor with default tuning.
    pub fn new(replicas: u16) -> Self {
        Tls {
            replicas,
            tuning: Tuning::default(),
        }
    }

    /// Runs `body` over `limit` iterations.
    ///
    /// # Errors
    ///
    /// Configuration or runtime errors from the core system.
    pub fn run(
        &self,
        master: MasterMem,
        body: StageFn,
        recovery: RecoveryFn,
        limit: Option<u64>,
    ) -> Result<RunResult, ExecError> {
        let mut cfg = SystemConfig::new();
        cfg.stage(StageKind::Parallel {
            replicas: self.replicas,
        })
        .ring(StageId(0));
        build(&mut cfg, self.tuning);
        let system = build_system(&cfg, self.tuning)?;
        Ok(system.run(Program {
            master,
            stages: vec![body],
            recovery,
            on_commit: None,
            iteration_limit: limit,
        })?)
    }
}

/// DOACROSS: like [`Tls`] but intended for plans that synchronize *every*
/// cross-iteration dependence, so no misspeculation can occur. The
/// executor is identical; the type documents intent and is used by the
/// Figure 1 comparison.
#[derive(Debug, Clone, Copy)]
pub struct Doacross {
    /// Worker replicas.
    pub replicas: u16,
    /// Queue tuning.
    pub tuning: Tuning,
}

impl Doacross {
    /// An executor with default tuning.
    pub fn new(replicas: u16) -> Self {
        Doacross {
            replicas,
            tuning: Tuning::default(),
        }
    }

    /// Runs `body` over `limit` iterations.
    ///
    /// # Errors
    ///
    /// Configuration or runtime errors from the core system.
    pub fn run(
        &self,
        master: MasterMem,
        body: StageFn,
        recovery: RecoveryFn,
        limit: Option<u64>,
    ) -> Result<RunResult, ExecError> {
        Tls {
            replicas: self.replicas,
            tuning: self.tuning,
        }
        .run(master, body, recovery, limit)
    }
}

/// DSWP / Spec-DSWP pipeline builder: `Pipeline::new().seq(a).par(4, b).seq(c)`.
pub struct Pipeline {
    stages: Vec<(StageKind, StageFn)>,
    tuning: Tuning,
    shard_map: Option<dsmtx_mem::ShardMap>,
    on_commit: Option<dsmtx::CommitHook>,
}

impl Pipeline {
    /// An empty pipeline with default tuning.
    pub fn new() -> Self {
        Pipeline {
            stages: Vec::new(),
            tuning: Tuning::default(),
            shard_map: None,
            on_commit: None,
        }
    }

    /// Appends a sequential stage.
    pub fn seq(mut self, body: StageFn) -> Self {
        self.stages.push((StageKind::Sequential, body));
        self
    }

    /// Appends a parallel (DOALL) stage with `replicas` workers.
    pub fn par(mut self, replicas: u16, body: StageFn) -> Self {
        self.stages.push((StageKind::Parallel { replicas }, body));
        self
    }

    /// Overrides queue tuning.
    pub fn tuning(mut self, tuning: Tuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Installs a per-commit hook.
    pub fn on_commit(mut self, hook: dsmtx::CommitHook) -> Self {
        self.on_commit = Some(hook);
        self
    }

    /// Installs a profile-guided page→shard placement for the run
    /// (`None` keeps the default hash partition).
    pub fn shard_map(mut self, map: Option<dsmtx_mem::ShardMap>) -> Self {
        self.shard_map = map;
        self
    }

    /// Total worker count of the pipeline.
    pub fn workers(&self) -> u16 {
        self.stages.iter().map(|(k, _)| k.replicas()).sum()
    }

    /// Runs the pipeline over `limit` iterations.
    ///
    /// # Errors
    ///
    /// Configuration or runtime errors from the core system.
    pub fn run(
        self,
        master: MasterMem,
        recovery: RecoveryFn,
        limit: Option<u64>,
    ) -> Result<RunResult, ExecError> {
        let mut cfg = SystemConfig::new();
        for (kind, _) in &self.stages {
            cfg.stage(*kind);
        }
        build(&mut cfg, self.tuning);
        if let Some(map) = self.shard_map.clone() {
            cfg.shard_map(map);
        }
        let system = build_system(&cfg, self.tuning)?;
        Ok(system.run(Program {
            master,
            stages: self.stages.into_iter().map(|(_, f)| f).collect(),
            recovery,
            on_commit: self.on_commit,
            iteration_limit: limit,
        })?)
    }
}

impl Default for Pipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("stages", &self.stages.len())
            .field("workers", &self.workers())
            .finish_non_exhaustive()
    }
}

/// Executor errors: configuration or runtime failure.
#[derive(Debug)]
pub enum ExecError {
    /// Invalid pipeline configuration.
    Config(ConfigError),
    /// The run itself failed.
    Run(RunError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Config(e) => write!(f, "configuration: {e}"),
            ExecError::Run(e) => write!(f, "run: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<ConfigError> for ExecError {
    fn from(e: ConfigError) -> Self {
        ExecError::Config(e)
    }
}

impl From<RunError> for ExecError {
    fn from(e: RunError) -> Self {
        ExecError::Run(e)
    }
}

/// Convenience: a recovery body that does nothing (valid only for plans
/// whose iterations cannot misspeculate).
pub fn no_recovery() -> RecoveryFn {
    Box::new(|_, _| IterOutcome::Continue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmtx::{MtxId, WorkerCtx};
    use dsmtx_uva::{OwnerId, RegionAllocator};
    use std::sync::Arc;

    #[test]
    fn spec_doall_runs() {
        let mut heap = RegionAllocator::new(OwnerId(0));
        let out = heap.alloc_words(10).unwrap();
        let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
            ctx.write_no_forward(out.add_words(mtx.0), mtx.0 * 2)?;
            Ok(IterOutcome::Continue)
        });
        let r = SpecDoall::new(3)
            .run(MasterMem::new(), body, no_recovery(), Some(10))
            .unwrap();
        for i in 0..10 {
            assert_eq!(r.master.read(out.add_words(i)), i * 2);
        }
    }

    #[test]
    fn tls_ring_runs() {
        let mut heap = RegionAllocator::new(OwnerId(0));
        let acc_cell = heap.alloc_words(1).unwrap();
        let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
            let acc = match ctx.sync_take().first() {
                Some(&v) => v,
                None => ctx.read(acc_cell)?,
            };
            let next = acc + mtx.0;
            ctx.write_no_forward(acc_cell, next)?;
            ctx.sync_produce(next);
            Ok(IterOutcome::Continue)
        });
        let r = Tls::new(2)
            .run(
                MasterMem::new(),
                body,
                Box::new(move |mtx, m| {
                    let acc = m.read(acc_cell);
                    m.write(acc_cell, acc + mtx.0);
                    IterOutcome::Continue
                }),
                Some(12),
            )
            .unwrap();
        assert_eq!(r.master.read(acc_cell), (0..12).sum::<u64>());
    }

    #[test]
    fn pipeline_builder_runs() {
        let mut heap = RegionAllocator::new(OwnerId(0));
        let sum = heap.alloc_words(1).unwrap();
        let first = Arc::new(|ctx: &mut WorkerCtx, mtx: MtxId| {
            ctx.produce(mtx.0 + 1);
            Ok(IterOutcome::Continue)
        });
        let second = Arc::new(move |ctx: &mut WorkerCtx, _: MtxId| {
            let v = ctx.consume();
            ctx.produce(v * v);
            Ok(IterOutcome::Continue)
        });
        let third = Arc::new(move |ctx: &mut WorkerCtx, _: MtxId| {
            let v = ctx.consume();
            let acc = ctx.read(sum)?;
            ctx.write(sum, acc + v)?;
            Ok(IterOutcome::Continue)
        });
        let p = Pipeline::new().seq(first).par(2, second).seq(third);
        assert_eq!(p.workers(), 4);
        let r = p.run(MasterMem::new(), no_recovery(), Some(6)).unwrap();
        let expect: u64 = (1..=6u64).map(|x| x * x).sum();
        assert_eq!(r.master.read(sum), expect);
    }

    #[test]
    fn pipeline_with_shard_map_commits_identical_memory() {
        // A plan-shipped page→shard map must not change committed state:
        // it only re-routes validation traffic. Run the same DOALL body
        // with and without a map that pins every touched page to one
        // shard, at 2 try-commit shards, and compare the heap.
        let mut heap = RegionAllocator::new(OwnerId(0));
        let out = heap.alloc_words(16).unwrap();
        let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
            ctx.write_no_forward(out.add_words(mtx.0), mtx.0 + 7)?;
            Ok(IterOutcome::Continue)
        });
        let mut map = dsmtx_mem::ShardMap::new();
        for w in 0..16 {
            map.assign(out.add_words(w).page(), 1);
        }
        let tuning = Tuning::with_unit_shards(2);
        let base = Pipeline::new()
            .par(2, body.clone())
            .tuning(tuning)
            .run(MasterMem::new(), no_recovery(), Some(16))
            .unwrap();
        let mapped = Pipeline::new()
            .par(2, body)
            .tuning(tuning)
            .shard_map(Some(map))
            .run(MasterMem::new(), no_recovery(), Some(16))
            .unwrap();
        for w in 0..16 {
            let a = out.add_words(w);
            assert_eq!(base.master.read(a), mapped.master.read(a));
            assert_eq!(mapped.master.read(a), w + 7);
        }
        assert_eq!(mapped.report.committed, 16);
    }

    #[test]
    fn doacross_equals_tls_shape() {
        let body = Arc::new(|_: &mut WorkerCtx, _: MtxId| Ok(IterOutcome::Continue));
        let r = Doacross::new(2)
            .run(MasterMem::new(), body, no_recovery(), Some(4))
            .unwrap();
        assert_eq!(r.report.committed, 4);
    }

    #[test]
    fn trace_default_yields_spans() {
        let prev = set_trace_default(true);
        let tuning = Tuning::default();
        set_trace_default(prev);
        assert!(tuning.trace);

        let body = Arc::new(|_: &mut WorkerCtx, _: MtxId| Ok(IterOutcome::Continue));
        let ex = SpecDoall {
            replicas: 2,
            tuning: Tuning {
                trace: true,
                ..Tuning::default()
            },
        };
        let r = ex
            .run(MasterMem::new(), body, no_recovery(), Some(6))
            .unwrap();
        let spans = r.report.spans();
        assert_eq!(spans.len(), 6);
        assert!(spans.iter().all(|s| s.committed_us.is_some()));
    }

    #[test]
    fn exec_error_displays() {
        let mut cfg = SystemConfig::new();
        let err = MtxSystem::new(cfg.batch(0)).map(|_| ()).unwrap_err();
        let e: ExecError = err.into();
        assert!(e.to_string().contains("configuration"));
    }
}
