//! Paradigm naming and the Figure-2 taxonomy.

use std::fmt;

/// The speculation types of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecKind {
    /// Control Flow Speculation: a rarely-taken branch (error paths, loop
    /// exits, the Y-branch) is speculated untaken.
    ControlFlow,
    /// Memory Value Speculation: a value (e.g. "globals are reset at the
    /// end of each iteration") is speculated unchanged.
    MemoryValue,
    /// Memory Versioning: false dependences broken by giving each worker
    /// a private version of the data.
    MemoryVersioning,
}

impl SpecKind {
    /// The paper's abbreviation (CFS / MVS / MV).
    pub fn abbrev(self) -> &'static str {
        match self {
            SpecKind::ControlFlow => "CFS",
            SpecKind::MemoryValue => "MVS",
            SpecKind::MemoryVersioning => "MV",
        }
    }
}

impl fmt::Display for SpecKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// How one pipeline stage is executed, for paradigm naming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageLabel {
    /// Sequential stage ("S" in `DSWP+[…]`).
    S,
    /// Replicated DOALL stage.
    Doall,
}

impl fmt::Display for StageLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StageLabel::S => f.write_str("S"),
            StageLabel::Doall => f.write_str("DOALL"),
        }
    }
}

/// A parallelization paradigm, named as in Table 2 / Figure 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Paradigm {
    /// All iterations independent after speculation.
    SpecDoall,
    /// Non-speculative pipeline: `DSWP+[…]`; speculation confined to one
    /// stage when `spec_stage` is set (e.g. `DSWP+[Spec-DOALL, S]`).
    Dswp {
        /// Stage labels in order.
        stages: Vec<StageLabel>,
        /// Index of a speculative stage, if any.
        spec_stage: Option<usize>,
    },
    /// Speculation spans the entire pipeline: `Spec-DSWP+[…]`; requires
    /// MTXs.
    SpecDswp {
        /// Stage labels in order.
        stages: Vec<StageLabel>,
    },
    /// The TLS-only cluster baseline.
    Tls,
    /// DOACROSS (non-speculative, cyclic communication).
    Doacross,
}

impl fmt::Display for Paradigm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn join(stages: &[StageLabel], spec: Option<usize>) -> String {
            stages
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    if spec == Some(i) {
                        format!("Spec-{s}")
                    } else {
                        s.to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join(",")
        }
        match self {
            Paradigm::SpecDoall => f.write_str("Spec-DOALL"),
            Paradigm::Dswp { stages, spec_stage } => {
                write!(f, "DSWP+[{}]", join(stages, *spec_stage))
            }
            Paradigm::SpecDswp { stages } => {
                write!(f, "Spec-DSWP+[{}]", join(stages, None))
            }
            Paradigm::Tls => f.write_str("TLS"),
            Paradigm::Doacross => f.write_str("DOACROSS"),
        }
    }
}

impl Paradigm {
    /// True when the paradigm needs multi-threaded transactions (an
    /// iteration's atomic unit spans several threads) — the capability
    /// single-threaded DSTMs lack (§2.2).
    pub fn needs_mtx(&self) -> bool {
        match self {
            Paradigm::SpecDswp { .. } => true,
            Paradigm::Dswp { spec_stage, .. } => spec_stage.is_some(),
            Paradigm::SpecDoall | Paradigm::Tls | Paradigm::Doacross => false,
        }
    }
}

/// One row of the Figure 2 matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaxonomyRow {
    /// The memory system.
    pub system: &'static str,
    /// What the system assumes of the hardware.
    pub assumption: &'static str,
    /// The parallelization paradigms it can support.
    pub exploitable: &'static [&'static str],
}

/// The Figure 2 taxonomy: DSMTX supports the widest variety of paradigms
/// while making the fewest hardware assumptions.
pub fn taxonomy() -> Vec<TaxonomyRow> {
    vec![
        TaxonomyRow {
            system: "Hardware MTX (HMTX)",
            assumption: "specialized memory",
            exploitable: &["DOALL", "TLS", "Spec-DSWP"],
        },
        TaxonomyRow {
            system: "TLS memory systems",
            assumption: "specialized memory",
            exploitable: &["DOALL", "TLS"],
        },
        TaxonomyRow {
            system: "Software MTX (SMTX)",
            assumption: "cache-coherent shared memory",
            exploitable: &["DOALL", "TLS", "Spec-DSWP"],
        },
        TaxonomyRow {
            system: "Software TLS",
            assumption: "cache-coherent shared memory",
            exploitable: &["DOALL", "TLS"],
        },
        TaxonomyRow {
            system: "STM/TLS on clusters",
            assumption: "no assumptions (MPI)",
            exploitable: &["DOALL", "TLS"],
        },
        TaxonomyRow {
            system: "Distributed Software MTX (DSMTX)",
            assumption: "no assumptions (MPI)",
            exploitable: &["DOALL", "TLS", "Spec-DSWP"],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_the_paper() {
        assert_eq!(Paradigm::SpecDoall.to_string(), "Spec-DOALL");
        assert_eq!(
            Paradigm::SpecDswp {
                stages: vec![StageLabel::S, StageLabel::Doall, StageLabel::S]
            }
            .to_string(),
            "Spec-DSWP+[S,DOALL,S]"
        );
        assert_eq!(
            Paradigm::Dswp {
                stages: vec![StageLabel::Doall, StageLabel::S],
                spec_stage: Some(0)
            }
            .to_string(),
            "DSWP+[Spec-DOALL,S]"
        );
        assert_eq!(Paradigm::Tls.to_string(), "TLS");
    }

    #[test]
    fn mtx_requirement_follows_spec_scope() {
        assert!(Paradigm::SpecDswp {
            stages: vec![StageLabel::Doall, StageLabel::S]
        }
        .needs_mtx());
        assert!(Paradigm::Dswp {
            stages: vec![StageLabel::Doall, StageLabel::S],
            spec_stage: Some(0)
        }
        .needs_mtx());
        assert!(!Paradigm::SpecDoall.needs_mtx());
        assert!(!Paradigm::Tls.needs_mtx());
    }

    #[test]
    fn taxonomy_has_dsmtx_as_weakest_assumption_widest_support() {
        let rows = taxonomy();
        let dsmtx = rows.last().unwrap();
        assert!(dsmtx.system.contains("DSMTX"));
        assert!(dsmtx.assumption.contains("no assumptions"));
        assert_eq!(dsmtx.exploitable.len(), 3);
        // No other row with "no assumptions" supports Spec-DSWP.
        for row in &rows[..rows.len() - 1] {
            if row.assumption.contains("no assumptions") {
                assert!(!row.exploitable.contains(&"Spec-DSWP"));
            }
        }
    }

    #[test]
    fn spec_kind_abbreviations() {
        assert_eq!(SpecKind::ControlFlow.to_string(), "CFS");
        assert_eq!(SpecKind::MemoryValue.to_string(), "MVS");
        assert_eq!(SpecKind::MemoryVersioning.to_string(), "MV");
    }
}
