//! Deterministic, seed-driven fault injection for the fabric.
//!
//! A real commodity cluster drops, delays, duplicates, and reorders
//! messages, and whole nodes stall under load. The paper's recovery
//! protocol (§4.3) must survive all of that, so this module gives every
//! queue an optional [`FaultInjector`] that perturbs the ship path with a
//! schedule derived *only* from a `u64` seed and per-class rates. Two runs
//! with the same [`FaultPlan`] and the same per-link send sequences draw
//! identical fault decisions, which is what makes a failing schedule
//! replayable from its `(seed, rates)` tuple.
//!
//! The injector is pure decision logic: it owns the RNG and the stall
//! window state but touches neither the transport nor the statistics.
//! [`crate::queue::SendPort`] interprets the decisions and accounts for
//! them in [`crate::stats::FabricStats`].

/// Per-class fault probabilities, each in `[0, 1]`.
///
/// The classes are mutually exclusive per decision: one uniform draw is
/// partitioned by cumulative thresholds, so `drop + delay + duplicate +
/// reorder + stall` must not exceed 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Packet is discarded; the sender must retry.
    pub drop: f64,
    /// Packet ship is deferred to a later attempt.
    pub delay: f64,
    /// Packet is shipped twice back-to-back.
    pub duplicate: f64,
    /// Packet is held and shipped after its successor (swapped on the wire).
    pub reorder: f64,
    /// The endpoint goes unresponsive for [`FaultRates::stall_ops`] ship
    /// attempts — the "crash" model: bounded unavailability that forces the
    /// peer into timeout-driven recovery.
    pub stall: f64,
    /// Length of a stall window, in consecutive ship attempts.
    pub stall_ops: u32,
}

impl FaultRates {
    /// All-zero rates: the injector never fires.
    pub const NONE: FaultRates = FaultRates {
        drop: 0.0,
        delay: 0.0,
        duplicate: 0.0,
        reorder: 0.0,
        stall: 0.0,
        stall_ops: 0,
    };

    /// A single-class schedule dropping packets with probability `p`.
    pub fn only_drop(p: f64) -> Self {
        FaultRates {
            drop: p,
            ..Self::NONE
        }
    }

    /// A single-class schedule delaying packets with probability `p`.
    pub fn only_delay(p: f64) -> Self {
        FaultRates {
            delay: p,
            ..Self::NONE
        }
    }

    /// A single-class schedule duplicating packets with probability `p`.
    pub fn only_duplicate(p: f64) -> Self {
        FaultRates {
            duplicate: p,
            ..Self::NONE
        }
    }

    /// A single-class schedule reordering packets with probability `p`.
    pub fn only_reorder(p: f64) -> Self {
        FaultRates {
            reorder: p,
            ..Self::NONE
        }
    }

    /// A single-class schedule stalling the endpoint with probability `p`
    /// for windows of `ops` ship attempts.
    pub fn only_stall(p: f64, ops: u32) -> Self {
        FaultRates {
            stall: p,
            stall_ops: ops,
            ..Self::NONE
        }
    }

    /// An even mix of every class, `p` total fault probability.
    pub fn uniform(p: f64) -> Self {
        let each = p / 5.0;
        FaultRates {
            drop: each,
            delay: each,
            duplicate: each,
            reorder: each,
            stall: each,
            stall_ops: 4,
        }
    }

    /// Sum of all class probabilities.
    pub fn total(&self) -> f64 {
        self.drop + self.delay + self.duplicate + self.reorder + self.stall
    }

    /// True when no class can ever fire.
    pub fn is_none(&self) -> bool {
        self.total() == 0.0
    }

    fn validate(&self) {
        for (name, p) in [
            ("drop", self.drop),
            ("delay", self.delay),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
            ("stall", self.stall),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "fault rate `{name}` = {p} outside [0, 1]"
            );
        }
        assert!(
            self.total() <= 1.0 + 1e-9,
            "fault rates sum to {} > 1",
            self.total()
        );
    }
}

impl std::fmt::Display for FaultRates {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "drop={} delay={} dup={} reorder={} stall={}x{}",
            self.drop, self.delay, self.duplicate, self.reorder, self.stall, self.stall_ops
        )
    }
}

/// What the injector decided for one ship attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Ship normally.
    None,
    /// Discard this attempt; the packet stays queued for retry.
    Drop,
    /// Defer this attempt; the packet stays queued for retry.
    Delay,
    /// Ship the packet twice.
    Duplicate,
    /// Hold the packet; ship it after its successor.
    Reorder,
    /// Endpoint is inside a stall window; the attempt does nothing.
    Stall,
}

/// Bounded exponential-backoff retry budget for faulted sends and timed
/// receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts before a send gives up with [`crate::FabricError::Timeout`].
    pub max_attempts: u32,
    /// Backoff before the second attempt, microseconds.
    pub base_backoff_us: u64,
    /// Backoff ceiling, microseconds.
    pub max_backoff_us: u64,
}

impl RetryPolicy {
    /// Defaults tuned for in-process queues: 64 attempts, 20 µs doubling
    /// to a 2 ms ceiling (worst case ≈ 120 ms of cumulative backoff).
    pub const DEFAULT: RetryPolicy = RetryPolicy {
        max_attempts: 64,
        base_backoff_us: 20,
        max_backoff_us: 2_000,
    };

    /// Backoff for the given (1-based) attempt number: exponential from
    /// `base_backoff_us`, capped at `max_backoff_us`.
    pub fn backoff_us(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(63);
        self.base_backoff_us
            .saturating_mul(1u64.checked_shl(shift).unwrap_or(u64::MAX))
            .min(self.max_backoff_us)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// A cluster-wide fault schedule: seed + rates.
///
/// The plan itself is immutable; each link derives its own
/// [`FaultInjector`] keyed by a stable link index, so injection on one
/// link never perturbs the decision stream of another.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
}

impl FaultPlan {
    /// Builds a plan from a seed and per-class rates.
    ///
    /// # Panics
    ///
    /// Panics if any rate is outside `[0, 1]` or the rates sum past 1.
    pub fn new(seed: u64, rates: FaultRates) -> Self {
        rates.validate();
        FaultPlan { seed, rates }
    }

    /// The seed the plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-class rates.
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// Derives the injector for link `link`. Deterministic: the same
    /// `(seed, link)` always yields the same decision stream.
    pub fn injector(&self, link: u64) -> FaultInjector {
        // Mix the link index into the seed so each link gets an
        // independent stream; splitmix64 output of (seed ^ f(link)).
        let mixed = splitmix64(&mut (self.seed ^ link.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        FaultInjector {
            rng: mixed,
            rates: self.rates,
            stalled_for: 0,
        }
    }
}

/// Per-link fault decision stream (splitmix64-driven).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: u64,
    rates: FaultRates,
    stalled_for: u32,
}

impl FaultInjector {
    /// Draws the fate of the next ship attempt.
    pub fn decide(&mut self) -> FaultDecision {
        // A stall window consumes attempts without advancing the RNG, so
        // the post-stall stream is independent of the window length.
        if self.stalled_for > 0 {
            self.stalled_for -= 1;
            return FaultDecision::Stall;
        }
        let u = unit_f64(splitmix64(&mut self.rng));
        let r = &self.rates;
        let mut edge = r.drop;
        if u < edge {
            return FaultDecision::Drop;
        }
        edge += r.delay;
        if u < edge {
            return FaultDecision::Delay;
        }
        edge += r.duplicate;
        if u < edge {
            return FaultDecision::Duplicate;
        }
        edge += r.reorder;
        if u < edge {
            return FaultDecision::Reorder;
        }
        edge += r.stall;
        if u < edge {
            self.stalled_for = r.stall_ops;
            return FaultDecision::Stall;
        }
        FaultDecision::None
    }

    /// The rates the injector was derived with.
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// True while the endpoint is inside a stall window.
    pub fn stalled(&self) -> bool {
        self.stalled_for > 0
    }
}

/// One splitmix64 step: advances `state` and returns the mixed output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a u64 to a uniform f64 in `[0, 1)` using the top 53 bits.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_decisions() {
        let plan = FaultPlan::new(0xC0FFEE, FaultRates::uniform(0.5));
        let mut a = plan.injector(3);
        let mut b = plan.injector(3);
        let seq_a: Vec<_> = (0..256).map(|_| a.decide()).collect();
        let seq_b: Vec<_> = (0..256).map(|_| b.decide()).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn different_links_get_different_streams() {
        let plan = FaultPlan::new(42, FaultRates::uniform(0.5));
        let mut a = plan.injector(0);
        let mut b = plan.injector(1);
        let seq_a: Vec<_> = (0..256).map(|_| a.decide()).collect();
        let seq_b: Vec<_> = (0..256).map(|_| b.decide()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn different_seeds_get_different_streams() {
        let ra = FaultPlan::new(1, FaultRates::uniform(0.5));
        let rb = FaultPlan::new(2, FaultRates::uniform(0.5));
        let seq_a: Vec<_> = {
            let mut i = ra.injector(0);
            (0..256).map(|_| i.decide()).collect()
        };
        let seq_b: Vec<_> = {
            let mut i = rb.injector(0);
            (0..256).map(|_| i.decide()).collect()
        };
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn zero_rates_never_fire() {
        let plan = FaultPlan::new(7, FaultRates::NONE);
        let mut inj = plan.injector(0);
        for _ in 0..1000 {
            assert_eq!(inj.decide(), FaultDecision::None);
        }
    }

    #[test]
    fn rate_one_always_fires() {
        let plan = FaultPlan::new(7, FaultRates::only_drop(1.0));
        let mut inj = plan.injector(0);
        for _ in 0..1000 {
            assert_eq!(inj.decide(), FaultDecision::Drop);
        }
    }

    #[test]
    fn empirical_rate_tracks_configured_rate() {
        let plan = FaultPlan::new(99, FaultRates::only_drop(0.25));
        let mut inj = plan.injector(0);
        let n = 20_000;
        let drops = (0..n)
            .filter(|_| inj.decide() == FaultDecision::Drop)
            .count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "empirical rate {rate}");
    }

    #[test]
    fn stall_window_spans_stall_ops_attempts() {
        let plan = FaultPlan::new(5, FaultRates::only_stall(1.0, 3));
        let mut inj = plan.injector(0);
        // First decide starts the window; then 3 more Stall decisions
        // drain it without consuming RNG draws.
        for _ in 0..4 {
            assert_eq!(inj.decide(), FaultDecision::Stall);
        }
        // With stall rate 1.0 the next draw opens a new window.
        assert_eq!(inj.decide(), FaultDecision::Stall);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let rp = RetryPolicy {
            max_attempts: 10,
            base_backoff_us: 10,
            max_backoff_us: 100,
        };
        assert_eq!(rp.backoff_us(1), 10);
        assert_eq!(rp.backoff_us(2), 20);
        assert_eq!(rp.backoff_us(3), 40);
        assert_eq!(rp.backoff_us(4), 80);
        assert_eq!(rp.backoff_us(5), 100, "capped");
        assert_eq!(rp.backoff_us(63), 100, "still capped at high attempts");
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn negative_rate_rejected() {
        let _ = FaultPlan::new(0, FaultRates::only_drop(-0.1));
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn oversubscribed_rates_rejected() {
        let _ = FaultPlan::new(
            0,
            FaultRates {
                drop: 0.5,
                delay: 0.6,
                ..FaultRates::NONE
            },
        );
    }

    #[test]
    fn rates_display_is_compact() {
        let s = FaultRates::uniform(0.5).to_string();
        assert!(s.contains("drop=0.1"));
        assert!(s.contains("stall=0.1x4"));
    }
}
