//! Reusable barrier used by the misspeculation-recovery protocol.
//!
//! §4.3 of the paper requires three global barriers during rollback: one to
//! ensure every thread has entered recovery mode, one after the speculative
//! queues are flushed, and one before parallel execution recommences. This
//! barrier is reusable and hands back the generation number so tests can
//! assert protocol phases.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

#[derive(Debug)]
struct State {
    /// Threads still expected in the current generation.
    remaining: usize,
    /// Completed generations.
    generation: u64,
}

#[derive(Debug)]
struct Inner {
    parties: usize,
    state: Mutex<State>,
    cond: Condvar,
}

/// A reusable counting barrier for a fixed set of participants.
///
/// Cloning yields another handle onto the same barrier.
#[derive(Debug, Clone)]
pub struct Barrier {
    inner: Arc<Inner>,
}

impl Barrier {
    /// Creates a barrier for `parties` participants.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1, "barrier needs at least one party");
        Barrier {
            inner: Arc::new(Inner {
                parties,
                state: Mutex::new(State {
                    remaining: parties,
                    generation: 0,
                }),
                cond: Condvar::new(),
            }),
        }
    }

    /// Blocks until all parties have called `wait` for this generation.
    ///
    /// Returns the generation number that just completed (starting at 0).
    pub fn wait(&self) -> u64 {
        let mut st = self.inner.state.lock();
        let gen = st.generation;
        st.remaining -= 1;
        if st.remaining == 0 {
            st.remaining = self.inner.parties;
            st.generation += 1;
            self.inner.cond.notify_all();
            gen
        } else {
            while st.generation == gen {
                self.inner.cond.wait(&mut st);
            }
            gen
        }
    }

    /// Number of participants.
    pub fn parties(&self) -> usize {
        self.inner.parties
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc as StdArc;

    #[test]
    fn single_party_never_blocks() {
        let b = Barrier::new(1);
        assert_eq!(b.wait(), 0);
        assert_eq!(b.wait(), 1);
        assert_eq!(b.wait(), 2);
    }

    #[test]
    fn all_parties_rendezvous() {
        const N: usize = 4;
        let b = Barrier::new(N);
        let before = StdArc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..N {
            let b = b.clone();
            let before = before.clone();
            handles.push(std::thread::spawn(move || {
                before.fetch_add(1, Ordering::SeqCst);
                b.wait();
                // After the barrier, every increment must be visible.
                assert_eq!(before.load(Ordering::SeqCst), N);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        const N: usize = 3;
        const ROUNDS: u64 = 5;
        let b = Barrier::new(N);
        let mut handles = Vec::new();
        for _ in 0..N {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    assert_eq!(b.wait(), round);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_parties_panics() {
        let _ = Barrier::new(0);
    }
}
