//! Transfer statistics.
//!
//! Figure 5(a) of the paper reports per-application bandwidth, computed by
//! dividing the total data transferred through DSMTX by execution time.
//! Every queue in the fabric shares a [`FabricStats`] handle so that the
//! runtime can make the same measurement.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared counters of fabric traffic.
///
/// Cloning is cheap; clones observe the same underlying counters.
#[derive(Debug, Clone, Default)]
pub struct FabricStats {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    /// Packets handed to the underlying transport (one per batch flush).
    packets: AtomicU64,
    /// Logical items produced (before batching).
    items: AtomicU64,
    /// Payload bytes moved (item size × items).
    bytes: AtomicU64,
}

impl FabricStats {
    /// Creates a fresh set of zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a packet of `items` logical items totalling `bytes` bytes.
    pub fn record_packet(&self, items: u64, bytes: u64) {
        self.inner.packets.fetch_add(1, Ordering::Relaxed);
        self.inner.items.fetch_add(items, Ordering::Relaxed);
        self.inner.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Number of transport packets sent so far.
    pub fn packets(&self) -> u64 {
        self.inner.packets.load(Ordering::Relaxed)
    }

    /// Number of logical items sent so far.
    pub fn items(&self) -> u64 {
        self.inner.items.load(Ordering::Relaxed)
    }

    /// Total payload bytes sent so far.
    pub fn bytes(&self) -> u64 {
        self.inner.bytes.load(Ordering::Relaxed)
    }

    /// Average batch size (items per packet), or 0.0 if nothing was sent.
    pub fn mean_batch(&self) -> f64 {
        let p = self.packets();
        if p == 0 {
            0.0
        } else {
            self.items() as f64 / p as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = FabricStats::new();
        s.record_packet(10, 80);
        s.record_packet(30, 240);
        assert_eq!(s.packets(), 2);
        assert_eq!(s.items(), 40);
        assert_eq!(s.bytes(), 320);
        assert!((s.mean_batch() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn clones_share_counters() {
        let s = FabricStats::new();
        let t = s.clone();
        s.record_packet(1, 8);
        t.record_packet(2, 16);
        assert_eq!(s.items(), 3);
        assert_eq!(t.bytes(), 24);
    }

    #[test]
    fn empty_stats_have_zero_mean_batch() {
        assert_eq!(FabricStats::new().mean_batch(), 0.0);
    }
}
