//! Transfer statistics and fabric telemetry.
//!
//! Figure 5(a) of the paper reports per-application bandwidth, computed by
//! dividing the total data transferred through DSMTX by execution time.
//! Every queue in the fabric shares a [`FabricStats`] handle so that the
//! runtime can make the same measurement.
//!
//! Beyond the send-side totals, the handle now carries the receive side of
//! the ledger (packets/items/bytes unpacked, items discarded by recovery
//! drains), a queue-depth gauge with a high-water mark, and log-bucketed
//! histograms of flush batch sizes and send/recv stalls — enough to see
//! whether the batching layer of §4.2 is actually amortizing transport
//! overhead, and where the pipeline blocks on the fabric.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dsmtx_obs::{schema, Gauge, Histogram, Registry};

/// Shared counters of fabric traffic.
///
/// Cloning is cheap; clones observe the same underlying counters.
/// Independent instances (e.g. one per queue) can be folded together with
/// [`FabricStats::merge`].
#[derive(Debug, Clone, Default)]
pub struct FabricStats {
    inner: Arc<Counters>,
    /// Items sent but not yet unpacked or drained; high-water mark is the
    /// deepest the fabric ever got.
    depth: Gauge,
    /// Items per shipped packet.
    batch_items: Histogram,
    /// Microseconds a `flush` blocked on a full transport (only stalls are
    /// recorded, so `count()` is the number of stalls).
    send_stall_us: Histogram,
    /// Microseconds a blocking `consume` waited for data to arrive.
    recv_stall_us: Histogram,
    /// Microseconds a packet dwelled in the transport between its ship
    /// and its unpack (the fabric-level component of queue wait).
    queue_dwell_us: Histogram,
}

#[derive(Debug, Default)]
struct Counters {
    /// Packets handed to the underlying transport (one per batch flush).
    packets: AtomicU64,
    /// Logical items produced (before batching).
    items: AtomicU64,
    /// Payload bytes moved (item size × items).
    bytes: AtomicU64,
    /// Packets unpacked by receivers.
    recv_packets: AtomicU64,
    /// Logical items unpacked by receivers.
    recv_items: AtomicU64,
    /// Payload bytes unpacked by receivers.
    recv_bytes: AtomicU64,
    /// Items discarded still-packed by recovery drains.
    drained_items: AtomicU64,
    /// Ship attempts discarded by an injected drop.
    fault_drops: AtomicU64,
    /// Ship attempts deferred by an injected delay.
    fault_delays: AtomicU64,
    /// Packets shipped twice by an injected duplicate.
    fault_dups: AtomicU64,
    /// Packets held and swapped on the wire by an injected reorder.
    fault_reorders: AtomicU64,
    /// Ship attempts swallowed by an endpoint stall window.
    fault_stalls: AtomicU64,
    /// Send attempts consumed while a fault plan was active (faulted or
    /// transport-full); each one draws from the retry budget.
    retries: AtomicU64,
    /// Sends that exhausted the retry budget.
    send_timeouts: AtomicU64,
    /// Receives that missed their deadline.
    recv_timeouts: AtomicU64,
    /// Items arriving in duplicate packets and discarded by seq dedup.
    dup_items_discarded: AtomicU64,
    /// Packets that arrived ahead of sequence and were stashed.
    ooo_packets: AtomicU64,
    /// Recycled batch buffers dropped because the bounded freelist was
    /// full (the next ship allocates fresh instead of reusing).
    freelist_drops: AtomicU64,
}

impl FabricStats {
    /// Creates a fresh set of zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a packet of `items` logical items totalling `bytes` bytes.
    pub fn record_packet(&self, items: u64, bytes: u64) {
        self.inner.packets.fetch_add(1, Ordering::Relaxed);
        self.inner.items.fetch_add(items, Ordering::Relaxed);
        self.inner.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.batch_items.record(items);
        self.depth.add(items as i64);
    }

    /// Records a received (unpacked) packet of `items` items / `bytes`
    /// bytes.
    pub fn record_recv(&self, items: u64, bytes: u64) {
        self.inner.recv_packets.fetch_add(1, Ordering::Relaxed);
        self.inner.recv_items.fetch_add(items, Ordering::Relaxed);
        self.inner.recv_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.depth.sub(items as i64);
    }

    /// Records `items` in-flight items discarded by a recovery drain.
    pub fn record_drained(&self, items: u64) {
        self.inner.drained_items.fetch_add(items, Ordering::Relaxed);
        self.depth.sub(items as i64);
    }

    /// Records one injected fault of the given class on the ship path.
    pub fn record_fault_drop(&self) {
        self.inner.fault_drops.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an injected delay decision.
    pub fn record_fault_delay(&self) {
        self.inner.fault_delays.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an injected duplicate (packet shipped twice).
    pub fn record_fault_duplicate(&self) {
        self.inner.fault_dups.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an injected reorder (packet held past its successor).
    pub fn record_fault_reorder(&self) {
        self.inner.fault_reorders.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a ship attempt swallowed by a stall window.
    pub fn record_fault_stall(&self) {
        self.inner.fault_stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one consumed send attempt under an active fault plan.
    pub fn record_retry(&self) {
        self.inner.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a send that exhausted its retry budget.
    pub fn record_send_timeout(&self) {
        self.inner.send_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a receive that missed its deadline.
    pub fn record_recv_timeout(&self) {
        self.inner.recv_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `items` discarded by receiver-side duplicate rejection.
    pub fn record_dup_discarded(&self, items: u64) {
        self.inner
            .dup_items_discarded
            .fetch_add(items, Ordering::Relaxed);
    }

    /// Records a packet stashed because it arrived ahead of sequence.
    pub fn record_ooo_stashed(&self) {
        self.inner.ooo_packets.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a recycled buffer dropped by a full freelist.
    pub fn record_freelist_drop(&self) {
        self.inner.freelist_drops.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a send-side stall (flush blocked on a full transport).
    pub fn record_send_stall_us(&self, us: u64) {
        self.send_stall_us.record(us);
    }

    /// Records a recv-side stall (consumer blocked waiting for data).
    pub fn record_recv_stall_us(&self, us: u64) {
        self.recv_stall_us.record(us);
    }

    /// Records one packet's ship → unpack dwell in the transport.
    pub fn record_queue_dwell_us(&self, us: u64) {
        self.queue_dwell_us.record(us);
    }

    /// Number of transport packets sent so far.
    pub fn packets(&self) -> u64 {
        self.inner.packets.load(Ordering::Relaxed)
    }

    /// Number of logical items sent so far.
    pub fn items(&self) -> u64 {
        self.inner.items.load(Ordering::Relaxed)
    }

    /// Total payload bytes sent so far.
    pub fn bytes(&self) -> u64 {
        self.inner.bytes.load(Ordering::Relaxed)
    }

    /// Number of transport packets unpacked so far.
    pub fn recv_packets(&self) -> u64 {
        self.inner.recv_packets.load(Ordering::Relaxed)
    }

    /// Number of logical items unpacked so far.
    pub fn recv_items(&self) -> u64 {
        self.inner.recv_items.load(Ordering::Relaxed)
    }

    /// Total payload bytes unpacked so far.
    pub fn recv_bytes(&self) -> u64 {
        self.inner.recv_bytes.load(Ordering::Relaxed)
    }

    /// Items discarded still-packed by recovery drains.
    pub fn drained_items(&self) -> u64 {
        self.inner.drained_items.load(Ordering::Relaxed)
    }

    /// Injected drops so far.
    pub fn fault_drops(&self) -> u64 {
        self.inner.fault_drops.load(Ordering::Relaxed)
    }

    /// Injected delays so far.
    pub fn fault_delays(&self) -> u64 {
        self.inner.fault_delays.load(Ordering::Relaxed)
    }

    /// Injected duplicates so far.
    pub fn fault_dups(&self) -> u64 {
        self.inner.fault_dups.load(Ordering::Relaxed)
    }

    /// Injected reorders so far.
    pub fn fault_reorders(&self) -> u64 {
        self.inner.fault_reorders.load(Ordering::Relaxed)
    }

    /// Stall-window attempts so far.
    pub fn fault_stalls(&self) -> u64 {
        self.inner.fault_stalls.load(Ordering::Relaxed)
    }

    /// Total injected faults across every class.
    pub fn faults_total(&self) -> u64 {
        self.fault_drops()
            + self.fault_delays()
            + self.fault_dups()
            + self.fault_reorders()
            + self.fault_stalls()
    }

    /// Send attempts consumed under an active fault plan.
    pub fn retries(&self) -> u64 {
        self.inner.retries.load(Ordering::Relaxed)
    }

    /// Sends that exhausted their retry budget.
    pub fn send_timeouts(&self) -> u64 {
        self.inner.send_timeouts.load(Ordering::Relaxed)
    }

    /// Receives that missed their deadline.
    pub fn recv_timeouts(&self) -> u64 {
        self.inner.recv_timeouts.load(Ordering::Relaxed)
    }

    /// Items discarded by receiver-side duplicate rejection.
    pub fn dup_items_discarded(&self) -> u64 {
        self.inner.dup_items_discarded.load(Ordering::Relaxed)
    }

    /// Packets stashed because they arrived ahead of sequence.
    pub fn ooo_packets(&self) -> u64 {
        self.inner.ooo_packets.load(Ordering::Relaxed)
    }

    /// Recycled buffers dropped by a full freelist.
    pub fn freelist_drops(&self) -> u64 {
        self.inner.freelist_drops.load(Ordering::Relaxed)
    }

    /// Items currently sent but neither unpacked nor drained.
    pub fn in_flight_items(&self) -> u64 {
        self.items()
            .saturating_sub(self.recv_items() + self.drained_items())
    }

    /// Deepest the fabric ever got, in items (high-water of the depth
    /// gauge).
    pub fn depth_high_water(&self) -> u64 {
        self.depth.high_water().max(0) as u64
    }

    /// Average batch size (items per packet), or 0.0 if nothing was sent.
    pub fn mean_batch(&self) -> f64 {
        let p = self.packets();
        if p == 0 {
            0.0
        } else {
            self.items() as f64 / p as f64
        }
    }

    /// Histogram of items per shipped packet.
    pub fn batch_items(&self) -> &Histogram {
        &self.batch_items
    }

    /// Histogram of send-side stall durations (µs).
    pub fn send_stall_us(&self) -> &Histogram {
        &self.send_stall_us
    }

    /// Histogram of recv-side stall durations (µs).
    pub fn recv_stall_us(&self) -> &Histogram {
        &self.recv_stall_us
    }

    /// Histogram of ship → unpack packet dwell times (µs).
    pub fn queue_dwell_us(&self) -> &Histogram {
        &self.queue_dwell_us
    }

    /// Folds `other`'s counters, gauge, and histograms into `self`
    /// (`other` is unchanged). Lets per-queue instances be aggregated
    /// into one fleet-wide view after a run.
    pub fn merge(&self, other: &FabricStats) {
        for (mine, theirs) in [
            (&self.inner.packets, &other.inner.packets),
            (&self.inner.items, &other.inner.items),
            (&self.inner.bytes, &other.inner.bytes),
            (&self.inner.recv_packets, &other.inner.recv_packets),
            (&self.inner.recv_items, &other.inner.recv_items),
            (&self.inner.recv_bytes, &other.inner.recv_bytes),
            (&self.inner.drained_items, &other.inner.drained_items),
            (&self.inner.fault_drops, &other.inner.fault_drops),
            (&self.inner.fault_delays, &other.inner.fault_delays),
            (&self.inner.fault_dups, &other.inner.fault_dups),
            (&self.inner.fault_reorders, &other.inner.fault_reorders),
            (&self.inner.fault_stalls, &other.inner.fault_stalls),
            (&self.inner.retries, &other.inner.retries),
            (&self.inner.send_timeouts, &other.inner.send_timeouts),
            (&self.inner.recv_timeouts, &other.inner.recv_timeouts),
            (
                &self.inner.dup_items_discarded,
                &other.inner.dup_items_discarded,
            ),
            (&self.inner.ooo_packets, &other.inner.ooo_packets),
            (&self.inner.freelist_drops, &other.inner.freelist_drops),
        ] {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.depth.merge(&other.depth);
        self.batch_items.merge(&other.batch_items);
        self.send_stall_us.merge(&other.send_stall_us);
        self.recv_stall_us.merge(&other.recv_stall_us);
        self.queue_dwell_us.merge(&other.queue_dwell_us);
    }

    /// Exports every counter, the depth gauge, and the histograms into
    /// `reg` under the shared [`dsmtx_obs::schema`] names.
    pub fn to_registry(&self, reg: &Registry) {
        reg.counter(schema::FABRIC_SENT_PACKETS, &[])
            .add(self.packets());
        reg.counter(schema::FABRIC_SENT_ITEMS, &[])
            .add(self.items());
        reg.counter(schema::FABRIC_SENT_BYTES, &[])
            .add(self.bytes());
        reg.counter(schema::FABRIC_RECV_PACKETS, &[])
            .add(self.recv_packets());
        reg.counter(schema::FABRIC_RECV_ITEMS, &[])
            .add(self.recv_items());
        reg.counter(schema::FABRIC_RECV_BYTES, &[])
            .add(self.recv_bytes());
        reg.counter(schema::FABRIC_DRAINED_ITEMS, &[])
            .add(self.drained_items());
        reg.gauge(schema::FABRIC_IN_FLIGHT_ITEMS, &[])
            .set(self.in_flight_items() as i64);
        reg.gauge(schema::FABRIC_DEPTH_HIGH_WATER, &[])
            .set(self.depth_high_water() as i64);
        reg.install_histogram(schema::FABRIC_BATCH_ITEMS, &[], self.batch_items.clone());
        reg.install_histogram(
            schema::FABRIC_SEND_STALL_US,
            &[],
            self.send_stall_us.clone(),
        );
        reg.install_histogram(
            schema::FABRIC_RECV_STALL_US,
            &[],
            self.recv_stall_us.clone(),
        );
        reg.install_histogram(
            schema::FABRIC_QUEUE_DWELL_US,
            &[],
            self.queue_dwell_us.clone(),
        );
        reg.counter(schema::FABRIC_FAULT_DROPS, &[])
            .add(self.fault_drops());
        reg.counter(schema::FABRIC_FAULT_DELAYS, &[])
            .add(self.fault_delays());
        reg.counter(schema::FABRIC_FAULT_DUPS, &[])
            .add(self.fault_dups());
        reg.counter(schema::FABRIC_FAULT_REORDERS, &[])
            .add(self.fault_reorders());
        reg.counter(schema::FABRIC_FAULT_STALLS, &[])
            .add(self.fault_stalls());
        reg.counter(schema::FABRIC_RETRIES, &[]).add(self.retries());
        reg.counter(schema::FABRIC_SEND_TIMEOUTS, &[])
            .add(self.send_timeouts());
        reg.counter(schema::FABRIC_RECV_TIMEOUTS, &[])
            .add(self.recv_timeouts());
        reg.counter(schema::FABRIC_DUP_ITEMS_DISCARDED, &[])
            .add(self.dup_items_discarded());
        reg.counter(schema::FABRIC_OOO_PACKETS, &[])
            .add(self.ooo_packets());
        reg.counter(schema::FABRIC_FREELIST_DROPS, &[])
            .add(self.freelist_drops());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = FabricStats::new();
        s.record_packet(10, 80);
        s.record_packet(30, 240);
        assert_eq!(s.packets(), 2);
        assert_eq!(s.items(), 40);
        assert_eq!(s.bytes(), 320);
        assert!((s.mean_batch() - 20.0).abs() < 1e-12);
        assert_eq!(s.batch_items().count(), 2);
        assert_eq!(s.batch_items().max(), 30);
    }

    #[test]
    fn clones_share_counters() {
        let s = FabricStats::new();
        let t = s.clone();
        s.record_packet(1, 8);
        t.record_packet(2, 16);
        assert_eq!(s.items(), 3);
        assert_eq!(t.bytes(), 24);
    }

    #[test]
    fn empty_stats_have_zero_mean_batch() {
        assert_eq!(FabricStats::new().mean_batch(), 0.0);
    }

    #[test]
    fn recv_and_drain_settle_in_flight() {
        let s = FabricStats::new();
        s.record_packet(10, 80);
        s.record_packet(6, 48);
        assert_eq!(s.in_flight_items(), 16);
        assert_eq!(s.depth_high_water(), 16);
        s.record_recv(10, 80);
        assert_eq!(s.recv_packets(), 1);
        assert_eq!(s.recv_items(), 10);
        assert_eq!(s.recv_bytes(), 80);
        assert_eq!(s.in_flight_items(), 6);
        s.record_drained(6);
        assert_eq!(s.drained_items(), 6);
        assert_eq!(s.in_flight_items(), 0);
        // High water stays at the peak even after the fabric empties.
        assert_eq!(s.depth_high_water(), 16);
    }

    #[test]
    fn stall_histograms_record_only_stalls() {
        let s = FabricStats::new();
        assert!(s.send_stall_us().is_empty());
        s.record_send_stall_us(120);
        s.record_recv_stall_us(40);
        s.record_recv_stall_us(60);
        assert_eq!(s.send_stall_us().count(), 1);
        assert_eq!(s.recv_stall_us().count(), 2);
        assert_eq!(s.recv_stall_us().sum(), 100);
        s.record_queue_dwell_us(25);
        assert_eq!(s.queue_dwell_us().count(), 1);
        assert_eq!(s.queue_dwell_us().sum(), 25);
    }

    #[test]
    fn merge_sums_counters_and_histograms() {
        let a = FabricStats::new();
        let b = FabricStats::new();
        a.record_packet(4, 32);
        a.record_recv(4, 32);
        b.record_packet(8, 64);
        b.record_drained(8);
        b.record_send_stall_us(500);
        a.merge(&b);
        assert_eq!(a.packets(), 2);
        assert_eq!(a.items(), 12);
        assert_eq!(a.bytes(), 96);
        assert_eq!(a.recv_items(), 4);
        assert_eq!(a.drained_items(), 8);
        assert_eq!(a.in_flight_items(), 0);
        assert_eq!(a.batch_items().count(), 2);
        assert_eq!(a.send_stall_us().count(), 1);
        // `b` is untouched.
        assert_eq!(b.packets(), 1);
    }

    #[test]
    fn fault_counters_accumulate_and_merge() {
        let a = FabricStats::new();
        a.record_fault_drop();
        a.record_fault_delay();
        a.record_fault_duplicate();
        a.record_fault_reorder();
        a.record_fault_stall();
        a.record_retry();
        a.record_retry();
        a.record_send_timeout();
        a.record_recv_timeout();
        a.record_dup_discarded(5);
        a.record_ooo_stashed();
        a.record_freelist_drop();
        assert_eq!(a.faults_total(), 5);
        assert_eq!(a.retries(), 2);
        assert_eq!(a.send_timeouts(), 1);
        assert_eq!(a.recv_timeouts(), 1);
        assert_eq!(a.dup_items_discarded(), 5);
        assert_eq!(a.ooo_packets(), 1);
        assert_eq!(a.freelist_drops(), 1);
        let b = FabricStats::new();
        b.record_fault_drop();
        b.record_freelist_drop();
        a.merge(&b);
        assert_eq!(a.fault_drops(), 2);
        assert_eq!(a.faults_total(), 6);
        assert_eq!(a.freelist_drops(), 2);
    }

    #[test]
    fn registry_export_covers_fault_schema() {
        let s = FabricStats::new();
        s.record_fault_drop();
        s.record_retry();
        s.record_send_timeout();
        let reg = Registry::new();
        s.to_registry(&reg);
        let dump = reg.to_jsonl();
        for name in [
            schema::FABRIC_FAULT_DROPS,
            schema::FABRIC_FAULT_DELAYS,
            schema::FABRIC_FAULT_DUPS,
            schema::FABRIC_FAULT_REORDERS,
            schema::FABRIC_FAULT_STALLS,
            schema::FABRIC_RETRIES,
            schema::FABRIC_SEND_TIMEOUTS,
            schema::FABRIC_RECV_TIMEOUTS,
            schema::FABRIC_DUP_ITEMS_DISCARDED,
            schema::FABRIC_OOO_PACKETS,
            schema::FABRIC_FREELIST_DROPS,
        ] {
            assert!(dump.contains(name), "missing {name} in:\n{dump}");
        }
        for line in dump.lines() {
            dsmtx_obs::json::validate(line).unwrap();
        }
    }

    #[test]
    fn registry_export_covers_the_schema() {
        let s = FabricStats::new();
        s.record_packet(4, 32);
        s.record_recv(4, 32);
        s.record_send_stall_us(10);
        let reg = Registry::new();
        s.to_registry(&reg);
        let dump = reg.to_jsonl();
        for name in [
            schema::FABRIC_SENT_PACKETS,
            schema::FABRIC_SENT_ITEMS,
            schema::FABRIC_SENT_BYTES,
            schema::FABRIC_RECV_PACKETS,
            schema::FABRIC_RECV_ITEMS,
            schema::FABRIC_RECV_BYTES,
            schema::FABRIC_DRAINED_ITEMS,
            schema::FABRIC_IN_FLIGHT_ITEMS,
            schema::FABRIC_DEPTH_HIGH_WATER,
            schema::FABRIC_BATCH_ITEMS,
            schema::FABRIC_SEND_STALL_US,
            schema::FABRIC_RECV_STALL_US,
            schema::FABRIC_QUEUE_DWELL_US,
        ] {
            assert!(dump.contains(name), "missing {name} in:\n{dump}");
        }
        for line in dump.lines() {
            dsmtx_obs::json::validate(line).unwrap();
        }
    }
}
