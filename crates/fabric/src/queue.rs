//! Batched message queues.
//!
//! The enhanced message queue of §4.2: instead of paying the full
//! per-message transport overhead for every produced value, the send side
//! buffers values and ships a whole packet when the batch threshold fills
//! (or on [`SendPort::flush`]). The receive side unpacks packets and hands
//! values out one at a time. Unlike `MPI_Bsend`, buffer space is managed
//! automatically; callers never allocate or recycle it. Internally the
//! receiver returns drained batch buffers to the sender over a freelist
//! channel, so steady-state traffic ships packets without allocating —
//! a fresh buffer is only allocated when the freelist is momentarily
//! empty (startup, or the consumer running behind).
//!
//! Queues are single-producer single-consumer, matching the paper's
//! point-to-point channels between pipeline stages.
//!
//! # Fault injection
//!
//! A queue built through [`channel_faulted`] carries an optional
//! [`FaultInjector`] that perturbs the ship path: packets are sequence
//! numbered, and injected drops/delays/stalls consume attempts from a
//! bounded [`RetryPolicy`] budget ([`FabricError::Retriable`] while budget
//! remains, [`FabricError::Timeout`] once it exhausts). Duplicates ship a
//! ghost copy with a stale sequence number; reorders hold a packet and swap
//! it with its successor on the wire. The receiver discards duplicates and
//! re-sequences out-of-order arrivals, so a correct run delivers the exact
//! produced sequence regardless of the schedule. Recovery pairs
//! [`SendPort::clear`] with [`RecvPort::drain`]; the drain arms a resync so
//! the next packet re-baselines the expected sequence number.

use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

use crossbeam::channel;

use crate::cost::CostModel;
use crate::error::{FabricError, Result};
use crate::fault::{FaultDecision, FaultInjector, RetryPolicy};
use crate::stats::FabricStats;

/// Upper bound on recycled batch buffers parked in a queue's freelist.
///
/// The freelist exists to keep steady-state traffic allocation-free, and
/// steady state needs only a handful of husks: the sender consumes at most
/// one per ship. A deep transport (`capacity` in the hundreds) would
/// otherwise pin `capacity` empty-but-sized buffers per link for the whole
/// run. Beyond this depth a returned husk is simply dropped (and counted
/// in [`FabricStats::freelist_drops`]) — the next ship allocates fresh,
/// which is the pre-freelist behaviour, not an error.
pub const FREELIST_DEPTH: usize = 32;

/// A packet on the wire: either a sequence-numbered batch of values or an
/// end-of-stream mark.
#[derive(Debug)]
enum Packet<T> {
    Data {
        seq: u64,
        batch: Vec<T>,
        /// When the packet hit the transport; the receiver turns this
        /// into the queue-dwell histogram (`fabric.queue_dwell_us`).
        shipped: Instant,
    },
    Eos,
}

/// Producer end of a batched queue.
///
/// Values accumulate in a local buffer until `batch` of them are pending,
/// then move as a single transport packet. Call [`SendPort::flush`] at
/// communication points (e.g. end of a subTX) to push out a partial batch.
#[derive(Debug)]
pub struct SendPort<T> {
    tx: channel::Sender<Packet<T>>,
    buf: Vec<T>,
    batch: usize,
    item_bytes: u64,
    cost: CostModel,
    stats: FabricStats,
    closed: bool,
    fault: Option<FaultInjector>,
    retry: RetryPolicy,
    /// Sequence number of the next logical packet.
    next_seq: u64,
    /// Consecutive consumed attempts for the packet at the head.
    attempts: u32,
    /// A reorder-held packet (seq already assigned) awaiting its successor.
    held: Option<(u64, Vec<T>)>,
    /// Batch buffers recycled by the receiver after unpacking.
    free_rx: channel::Receiver<Vec<T>>,
}

/// Consumer end of a batched queue.
#[derive(Debug)]
pub struct RecvPort<T> {
    rx: channel::Receiver<Packet<T>>,
    cur: VecDeque<T>,
    item_bytes: u64,
    cost: CostModel,
    stats: FabricStats,
    eos: bool,
    /// Next sequence number expected in order.
    expected_seq: u64,
    /// Packets that arrived ahead of sequence, keyed by seq.
    ooo: BTreeMap<u64, Vec<T>>,
    /// Accept the next data packet's seq as the new baseline (armed by
    /// [`RecvPort::drain`], because the peer's `clear` may have retired
    /// sequence numbers that will never arrive).
    resync: bool,
    /// Returns drained batch buffers to the sender for reuse.
    free_tx: channel::Sender<Vec<T>>,
}

/// Creates a batched SPSC queue.
///
/// * `batch` — number of items that triggers an automatic flush (≥ 1).
/// * `capacity` — maximum number of in-flight packets; bounds how far a
///   producer stage can run ahead of its consumer (the paper bounds
///   outstanding MTX versions the same way).
///
/// # Panics
///
/// Panics if `batch` or `capacity` is zero.
pub fn channel<T>(batch: usize, capacity: usize) -> (SendPort<T>, RecvPort<T>) {
    channel_with(batch, capacity, CostModel::FREE, FabricStats::new())
}

/// Creates a batched SPSC queue with an explicit cost model and shared
/// statistics handle.
///
/// # Panics
///
/// Panics if `batch` or `capacity` is zero.
pub fn channel_with<T>(
    batch: usize,
    capacity: usize,
    cost: CostModel,
    stats: FabricStats,
) -> (SendPort<T>, RecvPort<T>) {
    channel_faulted(batch, capacity, cost, stats, None, RetryPolicy::DEFAULT)
}

/// Creates a batched SPSC queue whose send path runs under an optional
/// fault injector with the given retry budget.
///
/// # Panics
///
/// Panics if `batch` or `capacity` is zero.
pub fn channel_faulted<T>(
    batch: usize,
    capacity: usize,
    cost: CostModel,
    stats: FabricStats,
    fault: Option<FaultInjector>,
    retry: RetryPolicy,
) -> (SendPort<T>, RecvPort<T>) {
    assert!(batch >= 1, "batch must be at least 1");
    assert!(capacity >= 1, "capacity must be at least 1");
    let (tx, rx) = channel::bounded(capacity);
    // The freelist is bounded by the transport's depth (at most `capacity`
    // husks can be waiting to come home) and hard-capped at
    // [`FREELIST_DEPTH`] so a deep transport doesn't pin a matching pile
    // of idle buffers. A full freelist just drops the husk.
    let (free_tx, free_rx) = channel::bounded(capacity.min(FREELIST_DEPTH));
    (
        SendPort {
            tx,
            buf: Vec::with_capacity(batch),
            batch,
            item_bytes: std::mem::size_of::<T>() as u64,
            cost,
            stats: stats.clone(),
            closed: false,
            fault,
            retry,
            next_seq: 0,
            attempts: 0,
            held: None,
            free_rx,
        },
        RecvPort {
            rx,
            cur: VecDeque::new(),
            item_bytes: std::mem::size_of::<T>() as u64,
            cost,
            stats,
            eos: false,
            expected_seq: 0,
            ooo: BTreeMap::new(),
            resync: false,
            free_tx,
        },
    )
}

impl<T> SendPort<T> {
    /// Enqueues one value, shipping a packet when the batch fills.
    ///
    /// If the transport is momentarily full — or an injected fault eats the
    /// ship attempt — the value simply stays buffered; like the paper's
    /// queue, buffer space is managed automatically and a producer is never
    /// forced to block mid-compute. Use [`SendPort::flush`] or
    /// [`SendPort::try_flush`] at communication points to guarantee
    /// delivery.
    ///
    /// # Errors
    ///
    /// * [`FabricError::Disconnected`] if the consumer was dropped.
    /// * [`FabricError::Timeout`] if the fault-retry budget exhausted.
    pub fn produce(&mut self, value: T) -> Result<()> {
        debug_assert!(!self.closed, "produce after close");
        self.buf.push(value);
        if self.buf.len() >= self.batch {
            match self.try_flush() {
                Ok(_) => {}
                // The attempt was faulted; the batch stays buffered and a
                // later flush retries.
                Err(FabricError::Retriable) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Ships any buffered values as a packet, blocking while the transport
    /// is full. Under an active fault plan the blocking wait becomes a
    /// bounded exponential-backoff retry loop. No-op when nothing is
    /// pending.
    ///
    /// # Errors
    ///
    /// * [`FabricError::Disconnected`] if the consumer was dropped.
    /// * [`FabricError::Timeout`] if the fault-retry budget exhausted.
    pub fn flush(&mut self) -> Result<()> {
        if self.buf.is_empty() && self.held.is_none() {
            return Ok(());
        }
        if self.fault.is_none() {
            return self.flush_plain();
        }
        // Faulted path: poll `try_flush`, sleeping the policy's backoff
        // between attempts, until the packet ships or the budget runs out.
        loop {
            match self.try_flush() {
                Ok(true) => return Ok(()),
                Ok(false) | Err(FabricError::Retriable) => {
                    let us = self.retry.backoff_us(self.attempts.max(1));
                    std::thread::sleep(Duration::from_micros(us));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// A buffer for the next batch: a husk the receiver recycled when one
    /// is waiting, a fresh allocation otherwise.
    fn next_buf(&mut self) -> Vec<T> {
        self.free_rx
            .try_recv()
            .unwrap_or_else(|_| Vec::with_capacity(self.batch))
    }

    /// Fault-free flush: try once, then block on the transport.
    fn flush_plain(&mut self) -> Result<()> {
        // `take` leaves a capacity-zero Vec; a real buffer is pulled from
        // the freelist only after the packet actually ships, so a full
        // transport or a disconnect never wastes an allocation.
        let batch = std::mem::take(&mut self.buf);
        let items = batch.len() as u64;
        let seq = self.next_seq;
        self.cost.charge_send();
        // Fast path: transport has room. Otherwise time the stall so the
        // telemetry shows where the pipeline blocks on the fabric.
        let batch = match self.tx.try_send(Packet::Data {
            seq,
            batch,
            shipped: Instant::now(),
        }) {
            Ok(()) => {
                self.next_seq += 1;
                self.stats.record_packet(items, items * self.item_bytes);
                self.buf = self.next_buf();
                return Ok(());
            }
            Err(channel::TrySendError::Full(Packet::Data { batch, .. })) => batch,
            Err(channel::TrySendError::Full(_)) => unreachable!("data packet returned"),
            Err(channel::TrySendError::Disconnected(_)) => return Err(FabricError::Disconnected),
        };
        let stalled = Instant::now();
        // Stamp at the blocking send, not before the stall: dwell
        // measures time in the transport, not time blocked entering it.
        self.tx
            .send(Packet::Data {
                seq,
                batch,
                shipped: Instant::now(),
            })
            .map_err(|_| FabricError::Disconnected)?;
        self.next_seq += 1;
        self.stats
            .record_send_stall_us(stalled.elapsed().as_micros() as u64);
        self.stats.record_packet(items, items * self.item_bytes);
        self.buf = self.next_buf();
        Ok(())
    }

    /// Ships buffered values without blocking.
    ///
    /// Returns `Ok(true)` when nothing remains pending (sent, or nothing
    /// to send) and `Ok(false)` when the transport is full — retry later.
    /// Interruptible senders (the DSMTX recovery protocol) poll this
    /// instead of [`SendPort::flush`].
    ///
    /// # Errors
    ///
    /// * [`FabricError::Retriable`] — an injected fault consumed this
    ///   attempt; the packet stays queued and budget remains.
    /// * [`FabricError::Timeout`] — the retry budget exhausted.
    /// * [`FabricError::Disconnected`] if the consumer was dropped.
    pub fn try_flush(&mut self) -> Result<bool> {
        if self.buf.is_empty() && self.held.is_none() {
            return Ok(true);
        }
        if self.fault.is_none() {
            return self.try_flush_plain();
        }
        self.try_flush_faulted()
    }

    /// Fault-free non-blocking ship of the buffered batch.
    fn try_flush_plain(&mut self) -> Result<bool> {
        if self.buf.is_empty() {
            return Ok(true);
        }
        let batch = std::mem::take(&mut self.buf);
        let seq = self.next_seq;
        match self.raw_try_send(seq, batch)? {
            None => {
                self.next_seq += 1;
                self.buf = self.next_buf();
                Ok(true)
            }
            Some(batch) => {
                // Put the batch back; the next flush retries.
                self.buf = batch;
                Ok(false)
            }
        }
    }

    /// Ship path under an active fault injector.
    fn try_flush_faulted(&mut self) -> Result<bool> {
        if !self.buf.is_empty() {
            // One held packet at a time: while a reordered packet waits,
            // its successor ships untouched (that IS the swap).
            let decision = if self.held.is_some() {
                FaultDecision::None
            } else {
                self.fault.as_mut().expect("faulted path").decide()
            };
            match decision {
                FaultDecision::Drop => {
                    self.stats.record_fault_drop();
                    return self.consume_attempt(true);
                }
                FaultDecision::Delay => {
                    self.stats.record_fault_delay();
                    return self.consume_attempt(true);
                }
                FaultDecision::Stall => {
                    self.stats.record_fault_stall();
                    return self.consume_attempt(true);
                }
                FaultDecision::Reorder => {
                    // Hold the packet with its seq; it ships right after
                    // its successor (or at the next flush, if no successor
                    // materializes), arriving out of order at the peer.
                    // Reporting `false` keeps pollers coming back until
                    // the held packet actually leaves.
                    let fresh = self.next_buf();
                    let batch = std::mem::replace(&mut self.buf, fresh);
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    self.held = Some((seq, batch));
                    self.attempts = 0;
                    self.stats.record_fault_reorder();
                    return Ok(false);
                }
                FaultDecision::None | FaultDecision::Duplicate => {
                    let batch = std::mem::take(&mut self.buf);
                    let seq = self.next_seq;
                    match self.raw_try_send(seq, batch)? {
                        None => {
                            self.next_seq += 1;
                            self.attempts = 0;
                            self.buf = self.next_buf();
                            if decision == FaultDecision::Duplicate {
                                // Best-effort ghost copy with the stale
                                // seq; the receiver must discard it. (No
                                // payload: `T` need not be `Clone`.)
                                self.stats.record_fault_duplicate();
                                let _ = self.tx.try_send(Packet::Data {
                                    seq,
                                    batch: Vec::new(),
                                    shipped: Instant::now(),
                                });
                            }
                        }
                        Some(batch) => {
                            self.buf = batch;
                            return self.consume_attempt(false);
                        }
                    }
                }
            }
        }
        self.ship_held()
    }

    /// Attempts to ship a reorder-held packet. Returns `Ok(true)` when
    /// nothing remains pending.
    fn ship_held(&mut self) -> Result<bool> {
        if let Some((seq, batch)) = self.held.take() {
            match self.raw_try_send(seq, batch)? {
                None => {}
                Some(batch) => {
                    self.held = Some((seq, batch));
                    return self.consume_attempt(false);
                }
            }
        }
        Ok(self.buf.is_empty() && self.held.is_none())
    }

    /// Books one consumed attempt against the retry budget.
    ///
    /// `faulted` distinguishes an injected fault ([`FabricError::Retriable`])
    /// from a merely full transport (`Ok(false)`); both draw budget while a
    /// fault plan is active, so a stalled peer converges to
    /// [`FabricError::Timeout`] instead of blocking forever.
    fn consume_attempt(&mut self, faulted: bool) -> Result<bool> {
        self.stats.record_retry();
        self.attempts += 1;
        if self.attempts >= self.retry.max_attempts {
            self.attempts = 0;
            self.stats.record_send_timeout();
            return Err(FabricError::Timeout);
        }
        if faulted {
            Err(FabricError::Retriable)
        } else {
            Ok(false)
        }
    }

    /// One physical ship attempt: `Ok(None)` shipped (stats charged),
    /// `Ok(Some(batch))` transport full (batch returned).
    fn raw_try_send(&mut self, seq: u64, batch: Vec<T>) -> Result<Option<Vec<T>>> {
        let items = batch.len() as u64;
        match self.tx.try_send(Packet::Data {
            seq,
            batch,
            shipped: Instant::now(),
        }) {
            Ok(()) => {
                self.cost.charge_send();
                self.stats.record_packet(items, items * self.item_bytes);
                Ok(None)
            }
            Err(channel::TrySendError::Full(Packet::Data { batch, .. })) => Ok(Some(batch)),
            Err(channel::TrySendError::Full(_)) => unreachable!("data packet returned"),
            Err(channel::TrySendError::Disconnected(_)) => Err(FabricError::Disconnected),
        }
    }

    /// Flushes and sends the end-of-stream mark. Further `produce` calls
    /// are a logic error.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::Disconnected`] if the consumer was dropped,
    /// or [`FabricError::Timeout`] if a faulted flush exhausted its budget.
    pub fn close(&mut self) -> Result<()> {
        if self.closed {
            return Ok(());
        }
        self.flush()?;
        self.closed = true;
        self.tx
            .send(Packet::Eos)
            .map_err(|_| FabricError::Disconnected)
    }

    /// Discards all locally buffered (not yet shipped) values, any
    /// reorder-held packet, and the pending retry count.
    ///
    /// Used during misspeculation recovery: buffered speculative values
    /// must not survive the rollback (§4.3 step "flush queues"). Under an
    /// active fault plan the peer must [`RecvPort::drain`] in the same
    /// recovery round, because dropping a held packet retires its sequence
    /// number — the drain's resync forgives the gap.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.held = None;
        self.attempts = 0;
    }

    /// Number of values currently buffered (not yet shipped), including a
    /// reorder-held packet.
    pub fn buffered(&self) -> usize {
        self.buf.len() + self.held.as_ref().map_or(0, |(_, b)| b.len())
    }

    /// The configured batch threshold.
    pub fn batch(&self) -> usize {
        self.batch
    }
}

impl<T> RecvPort<T> {
    /// Blocks until one value is available and returns it.
    ///
    /// # Errors
    ///
    /// * [`FabricError::EndOfStream`] after the producer [`SendPort::close`]s.
    /// * [`FabricError::Disconnected`] if the producer was dropped without
    ///   closing.
    pub fn consume(&mut self) -> Result<T> {
        loop {
            if let Some(v) = self.cur.pop_front() {
                return Ok(v);
            }
            if self.eos {
                return Err(FabricError::EndOfStream);
            }
            // Only a wait that actually blocks counts as a recv stall.
            let pkt = match self.rx.try_recv() {
                Ok(pkt) => pkt,
                Err(channel::TryRecvError::Empty) => {
                    let stalled = Instant::now();
                    let pkt = self.rx.recv().map_err(|_| FabricError::Disconnected)?;
                    self.stats
                        .record_recv_stall_us(stalled.elapsed().as_micros() as u64);
                    pkt
                }
                Err(channel::TryRecvError::Disconnected) => return Err(FabricError::Disconnected),
            };
            self.unpack(pkt);
        }
    }

    /// Blocks for at most `timeout`, polling for a value.
    ///
    /// # Errors
    ///
    /// * [`FabricError::Timeout`] when the deadline passes with no data.
    /// * Same conditions as [`RecvPort::consume`] otherwise.
    pub fn consume_deadline(&mut self, timeout: Duration) -> Result<T> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.try_consume()? {
                Some(v) => return Ok(v),
                None => {
                    if Instant::now() >= deadline {
                        self.stats.record_recv_timeout();
                        return Err(FabricError::Timeout);
                    }
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }

    /// Accepts one in-order batch into the delivery buffer and sends the
    /// emptied buffer home for reuse.
    fn accept(&mut self, mut batch: Vec<T>) {
        self.cost.charge_recv();
        let items = batch.len() as u64;
        self.stats.record_recv(items, items * self.item_bytes);
        self.cur.extend(batch.drain(..));
        self.recycle(batch);
    }

    /// Returns an emptied batch buffer to the sender's freelist; dropped
    /// if the freelist is full (counted) or the sender is gone (not a
    /// drop — nobody is left to reuse it).
    fn recycle(&mut self, mut batch: Vec<T>) {
        batch.clear();
        if let Err(channel::TrySendError::Full(_)) = self.free_tx.try_send(batch) {
            self.stats.record_freelist_drop();
        }
    }

    /// Sequences one packet: dedup stale copies, stash early arrivals,
    /// deliver in-order runs.
    fn unpack(&mut self, pkt: Packet<T>) {
        match pkt {
            Packet::Data {
                seq,
                batch,
                shipped,
            } => {
                self.stats
                    .record_queue_dwell_us(shipped.elapsed().as_micros() as u64);
                if self.resync {
                    // First packet after a recovery drain re-baselines the
                    // sequence (the wire was empty inside the barriers, so
                    // whatever arrives next is the peer's new head).
                    self.resync = false;
                    self.expected_seq = seq;
                }
                if seq < self.expected_seq {
                    // Stale duplicate: already delivered under this seq.
                    self.stats.record_dup_discarded(batch.len() as u64);
                    self.recycle(batch);
                    return;
                }
                if seq > self.expected_seq {
                    // Ahead of sequence (reordered): stash until the gap
                    // fills. A duplicate of a stashed packet is discarded.
                    match self.ooo.entry(seq) {
                        std::collections::btree_map::Entry::Vacant(e) => {
                            e.insert(batch);
                            self.stats.record_ooo_stashed();
                        }
                        std::collections::btree_map::Entry::Occupied(_) => {
                            self.stats.record_dup_discarded(batch.len() as u64);
                            self.recycle(batch);
                        }
                    }
                    return;
                }
                self.accept(batch);
                self.expected_seq += 1;
                while let Some(batch) = self.ooo.remove(&self.expected_seq) {
                    self.accept(batch);
                    self.expected_seq += 1;
                }
            }
            Packet::Eos => {
                // Close ships every held packet first, so the stash is
                // normally empty here; deliver leftovers in seq order
                // defensively rather than lose data.
                let leftovers = std::mem::take(&mut self.ooo);
                for (_, batch) in leftovers {
                    self.accept(batch);
                }
                self.eos = true;
            }
        }
    }

    /// Returns one value if immediately available, without blocking.
    ///
    /// `Ok(None)` means no data is currently queued.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RecvPort::consume`].
    pub fn try_consume(&mut self) -> Result<Option<T>> {
        loop {
            if let Some(v) = self.cur.pop_front() {
                return Ok(Some(v));
            }
            if self.eos {
                return Err(FabricError::EndOfStream);
            }
            match self.rx.try_recv() {
                Ok(pkt) => self.unpack(pkt),
                Err(channel::TryRecvError::Empty) => return Ok(None),
                Err(channel::TryRecvError::Disconnected) => return Err(FabricError::Disconnected),
            }
        }
    }

    /// Discards every value currently in flight, stashed out-of-order, or
    /// partially unpacked, and arms a sequence resync.
    ///
    /// Used during misspeculation recovery while all threads are inside the
    /// recovery barriers, so no new speculative packets can race in. An
    /// end-of-stream mark encountered while draining is preserved.
    pub fn drain(&mut self) -> usize {
        let mut dropped = self.cur.len();
        self.cur.clear();
        let mut still_packed = 0u64;
        for (_, batch) in std::mem::take(&mut self.ooo) {
            dropped += batch.len();
            still_packed += batch.len() as u64;
        }
        // Items still packed on the wire were never counted as received;
        // account for them as drained so in-flight bookkeeping settles.
        while let Ok(pkt) = self.rx.try_recv() {
            match pkt {
                Packet::Data { seq, batch, .. } => {
                    if seq < self.expected_seq {
                        // Ghost duplicate: its send was never counted.
                        self.stats.record_dup_discarded(batch.len() as u64);
                    } else {
                        still_packed += batch.len() as u64;
                        dropped += batch.len();
                    }
                }
                Packet::Eos => self.eos = true,
            }
        }
        if still_packed > 0 {
            self.stats.record_drained(still_packed);
        }
        self.resync = true;
        dropped
    }

    /// True once the end-of-stream mark has been observed and all prior
    /// values consumed.
    pub fn is_eos(&self) -> bool {
        self.eos && self.cur.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_in_order() {
        let (mut tx, mut rx) = channel::<u32>(4, 16);
        for v in 0..10 {
            tx.produce(v).unwrap();
        }
        tx.flush().unwrap();
        for v in 0..10 {
            assert_eq!(rx.consume().unwrap(), v);
        }
    }

    #[test]
    fn try_consume_sees_nothing_before_flush() {
        let (mut tx, mut rx) = channel::<u32>(100, 16);
        tx.produce(7).unwrap();
        assert_eq!(rx.try_consume().unwrap(), None);
        tx.flush().unwrap();
        assert_eq!(rx.try_consume().unwrap(), Some(7));
        assert_eq!(rx.try_consume().unwrap(), None);
    }

    #[test]
    fn batch_of_one_ships_immediately() {
        let (mut tx, mut rx) = channel::<u8>(1, 16);
        tx.produce(9).unwrap();
        assert_eq!(rx.try_consume().unwrap(), Some(9));
    }

    #[test]
    fn close_yields_end_of_stream() {
        let (mut tx, mut rx) = channel::<u8>(8, 16);
        tx.produce(1).unwrap();
        tx.close().unwrap();
        assert_eq!(rx.consume().unwrap(), 1);
        assert_eq!(rx.consume(), Err(FabricError::EndOfStream));
        assert!(rx.is_eos());
    }

    #[test]
    fn dropped_sender_reports_disconnect() {
        let (tx, mut rx) = channel::<u8>(8, 16);
        drop(tx);
        assert_eq!(rx.consume(), Err(FabricError::Disconnected));
    }

    #[test]
    fn dropped_receiver_reports_disconnect_on_flush() {
        let (mut tx, rx) = channel::<u8>(8, 16);
        tx.produce(1).unwrap();
        drop(rx);
        assert_eq!(tx.flush(), Err(FabricError::Disconnected));
    }

    #[test]
    fn drain_discards_in_flight_and_partial() {
        let (mut tx, mut rx) = channel::<u32>(2, 16);
        for v in 0..6 {
            tx.produce(v).unwrap();
        }
        // Unpack the first packet partially.
        assert_eq!(rx.consume().unwrap(), 0);
        let dropped = rx.drain();
        assert_eq!(dropped, 5);
        assert_eq!(rx.try_consume().unwrap(), None);
    }

    #[test]
    fn drain_preserves_eos() {
        let (mut tx, mut rx) = channel::<u32>(2, 16);
        tx.produce(1).unwrap();
        tx.close().unwrap();
        rx.drain();
        assert_eq!(rx.consume(), Err(FabricError::EndOfStream));
    }

    #[test]
    fn clear_discards_unshipped_only() {
        let (mut tx, mut rx) = channel::<u32>(4, 16);
        for v in 0..4 {
            tx.produce(v).unwrap(); // exactly one full batch ships
        }
        tx.produce(99).unwrap(); // stays buffered
        assert_eq!(tx.buffered(), 1);
        tx.clear();
        assert_eq!(tx.buffered(), 0);
        tx.close().unwrap();
        let mut seen = Vec::new();
        while let Ok(v) = rx.consume() {
            seen.push(v);
        }
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn batch_buffers_are_recycled_through_the_freelist() {
        let (mut tx, mut rx) = channel::<u32>(4, 16);
        for v in 0..4 {
            tx.produce(v).unwrap(); // fills the batch: one packet ships
        }
        for _ in 0..4 {
            rx.consume().unwrap();
        }
        // The receiver sends the drained husk home, emptied but with its
        // capacity intact.
        let husk = tx.free_rx.try_recv().expect("drained husk returned home");
        assert!(husk.is_empty());
        assert!(husk.capacity() >= 4);

        // Round two (husk above was stolen by the test, so this ship
        // allocates): the sender pulls the returned husk on its next ship.
        for v in 0..4 {
            tx.produce(v).unwrap();
        }
        for _ in 0..4 {
            rx.consume().unwrap();
        }
        for v in 0..4 {
            tx.produce(v).unwrap(); // ship reuses the freelisted husk
        }
        assert!(
            tx.free_rx.try_recv().is_err(),
            "husk taken for the next batch"
        );
        assert!(tx.buf.capacity() >= 4, "recycled buffer keeps capacity");
    }

    #[test]
    fn freelist_is_bounded_and_overflow_drops_are_counted() {
        let stats = FabricStats::new();
        // Transport depth 64 but the freelist is capped at FREELIST_DEPTH.
        let (tx, mut rx) = channel_with::<u32>(4, 64, CostModel::FREE, stats.clone());
        for _ in 0..FREELIST_DEPTH + 5 {
            rx.recycle(Vec::with_capacity(4));
        }
        assert_eq!(stats.freelist_drops(), 5, "overflow husks are counted");
        // Every parked husk is still reclaimable by the sender.
        for _ in 0..FREELIST_DEPTH {
            assert!(tx.free_rx.try_recv().is_ok());
        }
        assert!(tx.free_rx.try_recv().is_err(), "freelist holds only DEPTH");
    }

    #[test]
    fn shallow_transport_keeps_shallow_freelist() {
        let stats = FabricStats::new();
        let (tx, mut rx) = channel_with::<u32>(4, 2, CostModel::FREE, stats.clone());
        for _ in 0..3 {
            rx.recycle(Vec::new());
        }
        // capacity (2) < FREELIST_DEPTH: the smaller bound wins.
        assert_eq!(stats.freelist_drops(), 1);
        assert!(tx.free_rx.try_recv().is_ok());
        assert!(tx.free_rx.try_recv().is_ok());
        assert!(tx.free_rx.try_recv().is_err());
    }

    #[test]
    fn stats_count_packets_items_bytes() {
        let stats = FabricStats::new();
        let (mut tx, _rx) = channel_with::<u64>(4, 16, CostModel::FREE, stats.clone());
        for v in 0..8u64 {
            tx.produce(v).unwrap();
        }
        assert_eq!(stats.packets(), 2);
        assert_eq!(stats.items(), 8);
        assert_eq!(stats.bytes(), 64);
        assert!((stats.mean_batch() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn recv_side_stats_mirror_send_side() {
        let stats = FabricStats::new();
        let (mut tx, mut rx) = channel_with::<u64>(4, 16, CostModel::FREE, stats.clone());
        for v in 0..8u64 {
            tx.produce(v).unwrap();
        }
        assert_eq!(stats.in_flight_items(), 8);
        for _ in 0..8 {
            rx.consume().unwrap();
        }
        assert_eq!(stats.recv_packets(), 2);
        assert_eq!(stats.recv_items(), 8);
        assert_eq!(stats.recv_bytes(), 64);
        assert_eq!(stats.in_flight_items(), 0);
        assert_eq!(stats.depth_high_water(), 8);
        assert_eq!(stats.batch_items().count(), 2);
    }

    #[test]
    fn drain_counts_only_still_packed_items() {
        let stats = FabricStats::new();
        let (mut tx, mut rx) = channel_with::<u32>(2, 16, CostModel::FREE, stats.clone());
        for v in 0..6 {
            tx.produce(v).unwrap();
        }
        // Unpack the first packet partially: 2 items become "received".
        assert_eq!(rx.consume().unwrap(), 0);
        rx.drain();
        assert_eq!(stats.recv_items(), 2);
        assert_eq!(stats.drained_items(), 4);
        assert_eq!(stats.in_flight_items(), 0);
    }

    #[test]
    fn consumer_blocking_on_empty_records_recv_stall() {
        let stats = FabricStats::new();
        let (mut tx, mut rx) = channel_with::<u32>(1, 4, CostModel::FREE, stats.clone());
        let consumer = std::thread::spawn(move || rx.consume().unwrap());
        // The consumer reaches its blocking recv well within this margin,
        // so the wait is a genuine stall.
        std::thread::sleep(std::time::Duration::from_millis(20));
        tx.produce(7).unwrap();
        assert_eq!(consumer.join().unwrap(), 7);
        assert_eq!(stats.recv_stall_us().count(), 1, "one recv stall");
    }

    #[test]
    fn flush_blocking_on_full_records_send_stall() {
        let stats = FabricStats::new();
        let (mut tx, mut rx) = channel_with::<u32>(1, 1, CostModel::FREE, stats.clone());
        tx.produce(1).unwrap(); // ships, fills the single transport slot
        tx.produce(2).unwrap(); // transport full: stays buffered
        assert_eq!(tx.buffered(), 1);
        let consumer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            let mut got = Vec::new();
            while let Ok(v) = rx.consume() {
                got.push(v);
            }
            got
        });
        tx.flush().unwrap(); // try_send hits Full, then blocks ~20ms
        tx.close().unwrap();
        assert_eq!(consumer.join().unwrap(), vec![1, 2]);
        assert_eq!(stats.send_stall_us().count(), 1, "one send stall");
    }

    #[test]
    fn cross_thread_transfer() {
        let (mut tx, mut rx) = channel::<u64>(32, 64);
        let producer = std::thread::spawn(move || {
            for v in 0..10_000u64 {
                tx.produce(v).unwrap();
            }
            tx.close().unwrap();
        });
        let mut expected = 0u64;
        while let Ok(v) = rx.consume() {
            assert_eq!(v, expected);
            expected += 1;
        }
        assert_eq!(expected, 10_000);
        producer.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "batch must be at least 1")]
    fn zero_batch_panics() {
        let _ = channel::<u8>(0, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_panics() {
        let _ = channel::<u8>(1, 0);
    }
}

#[cfg(test)]
mod try_flush_tests {
    use super::*;

    #[test]
    fn try_flush_reports_full_and_retries() {
        let (mut tx, mut rx) = channel::<u32>(1, 1);
        tx.produce(1).unwrap(); // fills the single transport slot
        tx.produce(2).unwrap(); // transport full: stays buffered
        assert!(!tx.try_flush().unwrap(), "transport full");
        assert_eq!(tx.buffered(), 1, "batch put back");
        assert_eq!(rx.consume().unwrap(), 1);
        assert!(tx.try_flush().unwrap());
        assert_eq!(rx.consume().unwrap(), 2);
    }

    #[test]
    fn try_flush_empty_is_true() {
        let (mut tx, _rx) = channel::<u32>(4, 4);
        assert!(tx.try_flush().unwrap());
    }

    #[test]
    fn produce_never_blocks_when_transport_full() {
        let (mut tx, mut rx) = channel::<u32>(1, 1);
        for v in 0..100 {
            tx.produce(v).unwrap(); // must not block even with capacity 1
        }
        // Everything is recoverable: drain interleaved with flushes.
        let mut seen = Vec::new();
        loop {
            while let Some(v) = rx.try_consume().unwrap() {
                seen.push(v);
            }
            if tx.try_flush().unwrap() && tx.buffered() == 0 {
                while let Some(v) = rx.try_consume().unwrap() {
                    seen.push(v);
                }
                break;
            }
        }
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultRates};

    fn faulted_pair<T>(
        rates: FaultRates,
        seed: u64,
        retry: RetryPolicy,
    ) -> (SendPort<T>, RecvPort<T>, FabricStats) {
        let stats = FabricStats::new();
        let plan = FaultPlan::new(seed, rates);
        let (tx, rx) = channel_faulted(
            4,
            64,
            CostModel::FREE,
            stats.clone(),
            Some(plan.injector(0)),
            retry,
        );
        (tx, rx, stats)
    }

    /// Pump every produced value through a faulted link, retrying faulted
    /// attempts, and return what the receiver saw.
    fn pump(values: &[u32], rates: FaultRates, seed: u64) -> Vec<u32> {
        let (mut tx, mut rx, _stats) = faulted_pair::<u32>(rates, seed, RetryPolicy::DEFAULT);
        let mut seen = Vec::new();
        for &v in values {
            tx.produce(v).unwrap();
            while let Some(got) = rx.try_consume().unwrap() {
                seen.push(got);
            }
        }
        loop {
            let done = match tx.try_flush() {
                Ok(done) => done,
                Err(FabricError::Retriable) => false,
                Err(e) => panic!("unexpected {e}"),
            };
            while let Some(got) = rx.try_consume().unwrap() {
                seen.push(got);
            }
            if done {
                break;
            }
        }
        seen
    }

    #[test]
    fn drops_are_retried_to_exact_delivery() {
        let vals: Vec<u32> = (0..200).collect();
        assert_eq!(pump(&vals, FaultRates::only_drop(0.3), 11), vals);
    }

    #[test]
    fn delays_are_retried_to_exact_delivery() {
        let vals: Vec<u32> = (0..200).collect();
        assert_eq!(pump(&vals, FaultRates::only_delay(0.3), 12), vals);
    }

    #[test]
    fn duplicates_are_discarded_by_seq() {
        let vals: Vec<u32> = (0..200).collect();
        let seen = pump(&vals, FaultRates::only_duplicate(0.5), 13);
        assert_eq!(seen, vals, "ghost copies must not surface");
    }

    #[test]
    fn reorders_are_resequenced() {
        let vals: Vec<u32> = (0..200).collect();
        let (mut tx, mut rx, stats) =
            faulted_pair::<u32>(FaultRates::only_reorder(0.4), 14, RetryPolicy::DEFAULT);
        for &v in &vals {
            tx.produce(v).unwrap();
        }
        tx.close().unwrap(); // ships any held packet before Eos
        let mut seen = Vec::new();
        while let Ok(v) = rx.consume() {
            seen.push(v);
        }
        assert_eq!(seen, vals);
        assert!(stats.fault_reorders() > 0, "schedule must actually reorder");
        assert!(stats.ooo_packets() > 0, "receiver must see packets early");
    }

    #[test]
    fn payload_duplicate_is_discarded_by_seq() {
        // Hand-inject a full-payload retransmit of an already-delivered
        // seq; a receiver that ignores seq would deliver items twice.
        let stats = FabricStats::new();
        let (mut tx, mut rx) = channel_with::<u32>(1, 16, CostModel::FREE, stats.clone());
        tx.produce(5).unwrap(); // seq 0 ships
        assert_eq!(rx.consume().unwrap(), 5);
        tx.tx
            .send(Packet::Data {
                seq: 0,
                batch: vec![5],
                shipped: Instant::now(),
            })
            .unwrap();
        tx.produce(6).unwrap(); // seq 1
        assert_eq!(rx.consume().unwrap(), 6, "stale retransmit skipped");
        assert_eq!(stats.dup_items_discarded(), 1);
    }

    #[test]
    fn permanent_fault_times_out_after_budget() {
        let retry = RetryPolicy {
            max_attempts: 8,
            base_backoff_us: 1,
            max_backoff_us: 10,
        };
        let (mut tx, _rx, stats) = faulted_pair::<u32>(FaultRates::only_drop(1.0), 15, retry);
        tx.produce(1).unwrap();
        let mut outcome = None;
        for _ in 0..100 {
            match tx.try_flush() {
                Err(FabricError::Retriable) => continue,
                other => {
                    outcome = Some(other);
                    break;
                }
            }
        }
        assert_eq!(outcome, Some(Err(FabricError::Timeout)));
        assert_eq!(stats.send_timeouts(), 1);
        assert_eq!(stats.retries(), 8);
        assert!(stats.fault_drops() >= 8);
    }

    #[test]
    fn blocking_flush_times_out_under_permanent_fault() {
        let retry = RetryPolicy {
            max_attempts: 4,
            base_backoff_us: 1,
            max_backoff_us: 5,
        };
        let (mut tx, _rx, _stats) = faulted_pair::<u32>(FaultRates::only_drop(1.0), 16, retry);
        tx.buf.push(1);
        assert_eq!(tx.flush(), Err(FabricError::Timeout));
    }

    #[test]
    fn stall_window_consumes_budget_then_recovers() {
        let retry = RetryPolicy {
            max_attempts: 32,
            base_backoff_us: 1,
            max_backoff_us: 5,
        };
        // Stall every draw with short windows: attempts burn during the
        // window, then ships succeed again.
        let (mut tx, mut rx, stats) =
            faulted_pair::<u32>(FaultRates::only_stall(0.3, 4), 17, retry);
        let vals: Vec<u32> = (0..100).collect();
        for &v in &vals {
            tx.produce(v).unwrap();
        }
        tx.close().unwrap();
        let mut seen = Vec::new();
        while let Ok(v) = rx.consume() {
            seen.push(v);
        }
        assert_eq!(seen, vals);
        assert!(stats.fault_stalls() > 0);
    }

    #[test]
    fn full_transport_counts_attempts_only_when_faulted() {
        // Fault-free: a full transport never times out, it just reports
        // Ok(false) forever (existing backpressure semantics).
        let (mut tx, _rx) = channel::<u32>(1, 1);
        tx.produce(1).unwrap();
        tx.produce(2).unwrap();
        for _ in 0..200 {
            assert!(!tx.try_flush().unwrap());
        }
        // Faulted: the same situation draws down the budget.
        let retry = RetryPolicy {
            max_attempts: 8,
            base_backoff_us: 1,
            max_backoff_us: 5,
        };
        let stats = FabricStats::new();
        let plan = FaultPlan::new(3, FaultRates::only_drop(0.0));
        let (mut ftx, _frx) = channel_faulted::<u32>(
            1,
            1,
            CostModel::FREE,
            stats.clone(),
            Some(plan.injector(0)),
            retry,
        );
        ftx.produce(1).unwrap(); // ships, fills the slot
        ftx.produce(2).unwrap(); // full: buffered
        let mut timed_out = false;
        for _ in 0..100 {
            match ftx.try_flush() {
                Ok(false) => continue,
                Err(FabricError::Timeout) => {
                    timed_out = true;
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(timed_out, "stalled peer must converge to Timeout");
    }

    #[test]
    fn clear_drops_held_packet_and_drain_resyncs() {
        let (mut tx, mut rx, _stats) =
            faulted_pair::<u32>(FaultRates::only_reorder(1.0), 18, RetryPolicy::DEFAULT);
        tx.produce(1).unwrap();
        tx.produce(2).unwrap();
        tx.produce(3).unwrap();
        tx.produce(4).unwrap(); // one batch held for reorder
        assert!(tx.buffered() > 0, "reorder must hold the batch");
        // Recovery: both ends reset.
        tx.clear();
        let _ = rx.drain();
        assert_eq!(tx.buffered(), 0);
        // Post-recovery traffic flows despite the retired seq numbers —
        // but rate 1.0 holds every batch, so close() ships it with Eos.
        for v in [7, 8, 9, 10] {
            tx.produce(v).unwrap();
        }
        tx.close().unwrap();
        let mut seen = Vec::new();
        while let Ok(v) = rx.consume() {
            seen.push(v);
        }
        assert_eq!(seen, vec![7, 8, 9, 10]);
    }

    #[test]
    fn consume_deadline_times_out_on_silence() {
        let stats = FabricStats::new();
        let (_tx, mut rx) = channel_with::<u32>(1, 4, CostModel::FREE, stats.clone());
        let err = rx.consume_deadline(Duration::from_millis(5)).unwrap_err();
        assert_eq!(err, FabricError::Timeout);
        assert_eq!(stats.recv_timeouts(), 1);
    }

    #[test]
    fn consume_deadline_returns_data_when_present() {
        let (mut tx, mut rx) = channel::<u32>(1, 4);
        tx.produce(42).unwrap();
        assert_eq!(rx.consume_deadline(Duration::from_millis(50)).unwrap(), 42);
    }

    #[test]
    fn faulted_cross_thread_transfer_is_exact() {
        let stats = FabricStats::new();
        let plan = FaultPlan::new(0xFEED, FaultRates::uniform(0.2));
        let (mut tx, mut rx) = channel_faulted::<u64>(
            8,
            32,
            CostModel::FREE,
            stats.clone(),
            Some(plan.injector(7)),
            // A huge budget: the consumer thread may be descheduled, and
            // this test is about delivery, not timeout conversion.
            RetryPolicy {
                max_attempts: 1_000_000,
                base_backoff_us: 1,
                max_backoff_us: 50,
            },
        );
        let producer = std::thread::spawn(move || {
            for v in 0..5_000u64 {
                tx.produce(v).unwrap();
            }
            tx.close().unwrap();
        });
        let mut expected = 0u64;
        while let Ok(v) = rx.consume() {
            assert_eq!(v, expected);
            expected += 1;
        }
        assert_eq!(expected, 5_000);
        producer.join().unwrap();
        assert!(stats.faults_total() > 0, "schedule must actually fire");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::fault::{FaultPlan, FaultRates};
    use proptest::prelude::*;

    proptest! {
        /// Any batch/capacity combination delivers the exact sequence when
        /// the consumer drains interleaved with flush retries.
        #[test]
        fn exact_delivery_for_any_tuning(
            values in proptest::collection::vec(any::<u32>(), 0..300),
            batch in 1usize..20,
            capacity in 1usize..8,
        ) {
            let (mut tx, mut rx) = channel::<u32>(batch, capacity);
            let mut seen = Vec::with_capacity(values.len());
            for &v in &values {
                tx.produce(v).unwrap();
                // Interleave draining so small capacities make progress.
                while let Some(got) = rx.try_consume().unwrap() {
                    seen.push(got);
                }
            }
            loop {
                let done = tx.try_flush().unwrap();
                while let Some(got) = rx.try_consume().unwrap() {
                    seen.push(got);
                }
                if done && tx.buffered() == 0 {
                    break;
                }
            }
            prop_assert_eq!(seen, values);
        }

        /// Stats account exactly for every produced item.
        #[test]
        fn stats_count_every_item(
            n in 0u64..500,
            batch in 1usize..64,
        ) {
            let stats = FabricStats::new();
            let (mut tx, mut rx) =
                channel_with::<u64>(batch, 1024, CostModel::FREE, stats.clone());
            for v in 0..n {
                tx.produce(v).unwrap();
            }
            tx.flush().unwrap();
            prop_assert_eq!(stats.items(), n);
            prop_assert_eq!(stats.bytes(), n * 8);
            let mut count = 0;
            while rx.try_consume().unwrap().is_some() {
                count += 1;
            }
            prop_assert_eq!(count, n);
        }

        /// drain() always leaves the receiver empty, regardless of what
        /// was in flight or partially unpacked.
        #[test]
        fn drain_leaves_nothing(
            produced in 0usize..200,
            consumed_first in 0usize..200,
            batch in 1usize..16,
        ) {
            let (mut tx, mut rx) = channel::<usize>(batch, 256);
            for v in 0..produced {
                tx.produce(v).unwrap();
            }
            tx.flush().unwrap();
            for _ in 0..consumed_first.min(produced) {
                let _ = rx.try_consume().unwrap();
            }
            rx.drain();
            prop_assert_eq!(rx.try_consume().unwrap(), None);
        }

        /// Any seeded fault schedule still delivers the exact sequence
        /// once faulted attempts are retried.
        #[test]
        fn exact_delivery_under_any_fault_schedule(
            n in 0u32..300,
            seed in any::<u64>(),
            p in 0.0f64..0.6,
            batch in 1usize..12,
        ) {
            let plan = FaultPlan::new(seed, FaultRates::uniform(p));
            let (mut tx, mut rx) = channel_faulted::<u32>(
                batch, 64, CostModel::FREE, FabricStats::new(),
                Some(plan.injector(0)), RetryPolicy::DEFAULT,
            );
            let mut seen = Vec::new();
            for v in 0..n {
                tx.produce(v).unwrap();
                while let Some(got) = rx.try_consume().unwrap() {
                    seen.push(got);
                }
            }
            loop {
                let done = match tx.try_flush() {
                    Ok(done) => done,
                    Err(FabricError::Retriable) => false,
                    Err(e) => panic!("unexpected fabric error: {e}"),
                };
                while let Some(got) = rx.try_consume().unwrap() {
                    seen.push(got);
                }
                if done {
                    break;
                }
            }
            prop_assert_eq!(seen, (0..n).collect::<Vec<_>>());
        }
    }
}
