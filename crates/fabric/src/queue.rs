//! Batched message queues.
//!
//! The enhanced message queue of §4.2: instead of paying the full
//! per-message transport overhead for every produced value, the send side
//! buffers values and ships a whole packet when the batch threshold fills
//! (or on [`SendPort::flush`]). The receive side unpacks packets and hands
//! values out one at a time. Unlike `MPI_Bsend`, buffer space is managed
//! automatically; callers never allocate or recycle it.
//!
//! Queues are single-producer single-consumer, matching the paper's
//! point-to-point channels between pipeline stages.

use std::time::Instant;

use crossbeam::channel;

use crate::cost::CostModel;
use crate::error::{FabricError, Result};
use crate::stats::FabricStats;

/// A packet on the wire: either a batch of values or an end-of-stream mark.
#[derive(Debug)]
enum Packet<T> {
    Data(Vec<T>),
    Eos,
}

/// Producer end of a batched queue.
///
/// Values accumulate in a local buffer until `batch` of them are pending,
/// then move as a single transport packet. Call [`SendPort::flush`] at
/// communication points (e.g. end of a subTX) to push out a partial batch.
#[derive(Debug)]
pub struct SendPort<T> {
    tx: channel::Sender<Packet<T>>,
    buf: Vec<T>,
    batch: usize,
    item_bytes: u64,
    cost: CostModel,
    stats: FabricStats,
    closed: bool,
}

/// Consumer end of a batched queue.
#[derive(Debug)]
pub struct RecvPort<T> {
    rx: channel::Receiver<Packet<T>>,
    cur: std::vec::IntoIter<T>,
    item_bytes: u64,
    cost: CostModel,
    stats: FabricStats,
    eos: bool,
}

/// Creates a batched SPSC queue.
///
/// * `batch` — number of items that triggers an automatic flush (≥ 1).
/// * `capacity` — maximum number of in-flight packets; bounds how far a
///   producer stage can run ahead of its consumer (the paper bounds
///   outstanding MTX versions the same way).
///
/// # Panics
///
/// Panics if `batch` or `capacity` is zero.
pub fn channel<T>(batch: usize, capacity: usize) -> (SendPort<T>, RecvPort<T>) {
    channel_with(batch, capacity, CostModel::FREE, FabricStats::new())
}

/// Creates a batched SPSC queue with an explicit cost model and shared
/// statistics handle.
///
/// # Panics
///
/// Panics if `batch` or `capacity` is zero.
pub fn channel_with<T>(
    batch: usize,
    capacity: usize,
    cost: CostModel,
    stats: FabricStats,
) -> (SendPort<T>, RecvPort<T>) {
    assert!(batch >= 1, "batch must be at least 1");
    assert!(capacity >= 1, "capacity must be at least 1");
    let (tx, rx) = channel::bounded(capacity);
    (
        SendPort {
            tx,
            buf: Vec::with_capacity(batch),
            batch,
            item_bytes: std::mem::size_of::<T>() as u64,
            cost,
            stats: stats.clone(),
            closed: false,
        },
        RecvPort {
            rx,
            cur: Vec::new().into_iter(),
            item_bytes: std::mem::size_of::<T>() as u64,
            cost,
            stats,
            eos: false,
        },
    )
}

impl<T> SendPort<T> {
    /// Enqueues one value, shipping a packet when the batch fills.
    ///
    /// If the transport is momentarily full the value simply stays
    /// buffered — like the paper's queue, buffer space is managed
    /// automatically and a producer is never forced to block mid-compute.
    /// Use [`SendPort::flush`] or [`SendPort::try_flush`] at communication
    /// points to guarantee delivery.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::Disconnected`] if the consumer was dropped.
    pub fn produce(&mut self, value: T) -> Result<()> {
        debug_assert!(!self.closed, "produce after close");
        self.buf.push(value);
        if self.buf.len() >= self.batch {
            self.try_flush()?;
        }
        Ok(())
    }

    /// Ships any buffered values as a packet, blocking while the transport
    /// is full. No-op when the buffer is empty.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::Disconnected`] if the consumer was dropped.
    pub fn flush(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let batch = std::mem::replace(&mut self.buf, Vec::with_capacity(self.batch));
        let items = batch.len() as u64;
        self.cost.charge_send();
        // Fast path: transport has room. Otherwise time the stall so the
        // telemetry shows where the pipeline blocks on the fabric.
        let batch = match self.tx.try_send(Packet::Data(batch)) {
            Ok(()) => {
                self.stats.record_packet(items, items * self.item_bytes);
                return Ok(());
            }
            Err(channel::TrySendError::Full(Packet::Data(batch))) => batch,
            Err(channel::TrySendError::Full(_)) => unreachable!("data packet returned"),
            Err(channel::TrySendError::Disconnected(_)) => return Err(FabricError::Disconnected),
        };
        let stalled = Instant::now();
        self.tx
            .send(Packet::Data(batch))
            .map_err(|_| FabricError::Disconnected)?;
        self.stats
            .record_send_stall_us(stalled.elapsed().as_micros() as u64);
        self.stats.record_packet(items, items * self.item_bytes);
        Ok(())
    }

    /// Ships buffered values without blocking.
    ///
    /// Returns `Ok(true)` when the buffer is now empty (sent, or nothing
    /// to send) and `Ok(false)` when the transport is full — retry later.
    /// Interruptible senders (the DSMTX recovery protocol) poll this
    /// instead of [`SendPort::flush`].
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::Disconnected`] if the consumer was dropped.
    pub fn try_flush(&mut self) -> Result<bool> {
        if self.buf.is_empty() {
            return Ok(true);
        }
        let batch = std::mem::replace(&mut self.buf, Vec::with_capacity(self.batch));
        let items = batch.len() as u64;
        match self.tx.try_send(Packet::Data(batch)) {
            Ok(()) => {
                self.cost.charge_send();
                self.stats.record_packet(items, items * self.item_bytes);
                Ok(true)
            }
            Err(channel::TrySendError::Full(Packet::Data(batch))) => {
                // Put the batch back; the next flush retries.
                self.buf = batch;
                Ok(false)
            }
            Err(channel::TrySendError::Full(_)) => unreachable!("data packet returned"),
            Err(channel::TrySendError::Disconnected(_)) => Err(FabricError::Disconnected),
        }
    }

    /// Flushes and sends the end-of-stream mark. Further `produce` calls
    /// are a logic error.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::Disconnected`] if the consumer was dropped.
    pub fn close(&mut self) -> Result<()> {
        if self.closed {
            return Ok(());
        }
        self.flush()?;
        self.closed = true;
        self.tx
            .send(Packet::Eos)
            .map_err(|_| FabricError::Disconnected)
    }

    /// Discards all locally buffered (not yet shipped) values.
    ///
    /// Used during misspeculation recovery: buffered speculative values
    /// must not survive the rollback (§4.3 step "flush queues").
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Number of values currently buffered (not yet shipped).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// The configured batch threshold.
    pub fn batch(&self) -> usize {
        self.batch
    }
}

impl<T> RecvPort<T> {
    /// Blocks until one value is available and returns it.
    ///
    /// # Errors
    ///
    /// * [`FabricError::EndOfStream`] after the producer [`SendPort::close`]s.
    /// * [`FabricError::Disconnected`] if the producer was dropped without
    ///   closing.
    pub fn consume(&mut self) -> Result<T> {
        loop {
            if let Some(v) = self.cur.next() {
                return Ok(v);
            }
            if self.eos {
                return Err(FabricError::EndOfStream);
            }
            // Only a wait that actually blocks counts as a recv stall.
            let pkt = match self.rx.try_recv() {
                Ok(pkt) => pkt,
                Err(channel::TryRecvError::Empty) => {
                    let stalled = Instant::now();
                    let pkt = self.rx.recv().map_err(|_| FabricError::Disconnected)?;
                    self.stats
                        .record_recv_stall_us(stalled.elapsed().as_micros() as u64);
                    pkt
                }
                Err(channel::TryRecvError::Disconnected) => return Err(FabricError::Disconnected),
            };
            self.unpack(pkt);
        }
    }

    /// Charges the cost model and records receive stats for one packet.
    fn unpack(&mut self, pkt: Packet<T>) {
        match pkt {
            Packet::Data(batch) => {
                self.cost.charge_recv();
                let items = batch.len() as u64;
                self.stats.record_recv(items, items * self.item_bytes);
                self.cur = batch.into_iter();
            }
            Packet::Eos => self.eos = true,
        }
    }

    /// Returns one value if immediately available, without blocking.
    ///
    /// `Ok(None)` means no data is currently queued.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RecvPort::consume`].
    pub fn try_consume(&mut self) -> Result<Option<T>> {
        loop {
            if let Some(v) = self.cur.next() {
                return Ok(Some(v));
            }
            if self.eos {
                return Err(FabricError::EndOfStream);
            }
            match self.rx.try_recv() {
                Ok(pkt) => self.unpack(pkt),
                Err(channel::TryRecvError::Empty) => return Ok(None),
                Err(channel::TryRecvError::Disconnected) => return Err(FabricError::Disconnected),
            }
        }
    }

    /// Discards every value currently in flight or partially unpacked.
    ///
    /// Used during misspeculation recovery while all threads are inside the
    /// recovery barriers, so no new speculative packets can race in. An
    /// end-of-stream mark encountered while draining is preserved.
    pub fn drain(&mut self) -> usize {
        let mut dropped = self.cur.len();
        self.cur = Vec::new().into_iter();
        // Items still packed on the wire were never counted as received;
        // account for them as drained so in-flight bookkeeping settles.
        let mut still_packed = 0u64;
        while let Ok(pkt) = self.rx.try_recv() {
            match pkt {
                Packet::Data(batch) => {
                    still_packed += batch.len() as u64;
                    dropped += batch.len();
                }
                Packet::Eos => self.eos = true,
            }
        }
        if still_packed > 0 {
            self.stats.record_drained(still_packed);
        }
        dropped
    }

    /// True once the end-of-stream mark has been observed and all prior
    /// values consumed.
    pub fn is_eos(&self) -> bool {
        self.eos && self.cur.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_in_order() {
        let (mut tx, mut rx) = channel::<u32>(4, 16);
        for v in 0..10 {
            tx.produce(v).unwrap();
        }
        tx.flush().unwrap();
        for v in 0..10 {
            assert_eq!(rx.consume().unwrap(), v);
        }
    }

    #[test]
    fn try_consume_sees_nothing_before_flush() {
        let (mut tx, mut rx) = channel::<u32>(100, 16);
        tx.produce(7).unwrap();
        assert_eq!(rx.try_consume().unwrap(), None);
        tx.flush().unwrap();
        assert_eq!(rx.try_consume().unwrap(), Some(7));
        assert_eq!(rx.try_consume().unwrap(), None);
    }

    #[test]
    fn batch_of_one_ships_immediately() {
        let (mut tx, mut rx) = channel::<u8>(1, 16);
        tx.produce(9).unwrap();
        assert_eq!(rx.try_consume().unwrap(), Some(9));
    }

    #[test]
    fn close_yields_end_of_stream() {
        let (mut tx, mut rx) = channel::<u8>(8, 16);
        tx.produce(1).unwrap();
        tx.close().unwrap();
        assert_eq!(rx.consume().unwrap(), 1);
        assert_eq!(rx.consume(), Err(FabricError::EndOfStream));
        assert!(rx.is_eos());
    }

    #[test]
    fn dropped_sender_reports_disconnect() {
        let (tx, mut rx) = channel::<u8>(8, 16);
        drop(tx);
        assert_eq!(rx.consume(), Err(FabricError::Disconnected));
    }

    #[test]
    fn dropped_receiver_reports_disconnect_on_flush() {
        let (mut tx, rx) = channel::<u8>(8, 16);
        tx.produce(1).unwrap();
        drop(rx);
        assert_eq!(tx.flush(), Err(FabricError::Disconnected));
    }

    #[test]
    fn drain_discards_in_flight_and_partial() {
        let (mut tx, mut rx) = channel::<u32>(2, 16);
        for v in 0..6 {
            tx.produce(v).unwrap();
        }
        // Unpack the first packet partially.
        assert_eq!(rx.consume().unwrap(), 0);
        let dropped = rx.drain();
        assert_eq!(dropped, 5);
        assert_eq!(rx.try_consume().unwrap(), None);
    }

    #[test]
    fn drain_preserves_eos() {
        let (mut tx, mut rx) = channel::<u32>(2, 16);
        tx.produce(1).unwrap();
        tx.close().unwrap();
        rx.drain();
        assert_eq!(rx.consume(), Err(FabricError::EndOfStream));
    }

    #[test]
    fn clear_discards_unshipped_only() {
        let (mut tx, mut rx) = channel::<u32>(4, 16);
        for v in 0..4 {
            tx.produce(v).unwrap(); // exactly one full batch ships
        }
        tx.produce(99).unwrap(); // stays buffered
        assert_eq!(tx.buffered(), 1);
        tx.clear();
        assert_eq!(tx.buffered(), 0);
        tx.close().unwrap();
        let mut seen = Vec::new();
        while let Ok(v) = rx.consume() {
            seen.push(v);
        }
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn stats_count_packets_items_bytes() {
        let stats = FabricStats::new();
        let (mut tx, _rx) = channel_with::<u64>(4, 16, CostModel::FREE, stats.clone());
        for v in 0..8u64 {
            tx.produce(v).unwrap();
        }
        assert_eq!(stats.packets(), 2);
        assert_eq!(stats.items(), 8);
        assert_eq!(stats.bytes(), 64);
        assert!((stats.mean_batch() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn recv_side_stats_mirror_send_side() {
        let stats = FabricStats::new();
        let (mut tx, mut rx) = channel_with::<u64>(4, 16, CostModel::FREE, stats.clone());
        for v in 0..8u64 {
            tx.produce(v).unwrap();
        }
        assert_eq!(stats.in_flight_items(), 8);
        for _ in 0..8 {
            rx.consume().unwrap();
        }
        assert_eq!(stats.recv_packets(), 2);
        assert_eq!(stats.recv_items(), 8);
        assert_eq!(stats.recv_bytes(), 64);
        assert_eq!(stats.in_flight_items(), 0);
        assert_eq!(stats.depth_high_water(), 8);
        assert_eq!(stats.batch_items().count(), 2);
    }

    #[test]
    fn drain_counts_only_still_packed_items() {
        let stats = FabricStats::new();
        let (mut tx, mut rx) = channel_with::<u32>(2, 16, CostModel::FREE, stats.clone());
        for v in 0..6 {
            tx.produce(v).unwrap();
        }
        // Unpack the first packet partially: 2 items become "received".
        assert_eq!(rx.consume().unwrap(), 0);
        rx.drain();
        assert_eq!(stats.recv_items(), 2);
        assert_eq!(stats.drained_items(), 4);
        assert_eq!(stats.in_flight_items(), 0);
    }

    #[test]
    fn consumer_blocking_on_empty_records_recv_stall() {
        let stats = FabricStats::new();
        let (mut tx, mut rx) = channel_with::<u32>(1, 4, CostModel::FREE, stats.clone());
        let consumer = std::thread::spawn(move || rx.consume().unwrap());
        // The consumer reaches its blocking recv well within this margin,
        // so the wait is a genuine stall.
        std::thread::sleep(std::time::Duration::from_millis(20));
        tx.produce(7).unwrap();
        assert_eq!(consumer.join().unwrap(), 7);
        assert_eq!(stats.recv_stall_us().count(), 1, "one recv stall");
    }

    #[test]
    fn flush_blocking_on_full_records_send_stall() {
        let stats = FabricStats::new();
        let (mut tx, mut rx) = channel_with::<u32>(1, 1, CostModel::FREE, stats.clone());
        tx.produce(1).unwrap(); // ships, fills the single transport slot
        tx.produce(2).unwrap(); // transport full: stays buffered
        assert_eq!(tx.buffered(), 1);
        let consumer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            let mut got = Vec::new();
            while let Ok(v) = rx.consume() {
                got.push(v);
            }
            got
        });
        tx.flush().unwrap(); // try_send hits Full, then blocks ~20ms
        tx.close().unwrap();
        assert_eq!(consumer.join().unwrap(), vec![1, 2]);
        assert_eq!(stats.send_stall_us().count(), 1, "one send stall");
    }

    #[test]
    fn cross_thread_transfer() {
        let (mut tx, mut rx) = channel::<u64>(32, 64);
        let producer = std::thread::spawn(move || {
            for v in 0..10_000u64 {
                tx.produce(v).unwrap();
            }
            tx.close().unwrap();
        });
        let mut expected = 0u64;
        while let Ok(v) = rx.consume() {
            assert_eq!(v, expected);
            expected += 1;
        }
        assert_eq!(expected, 10_000);
        producer.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "batch must be at least 1")]
    fn zero_batch_panics() {
        let _ = channel::<u8>(0, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_panics() {
        let _ = channel::<u8>(1, 0);
    }
}

#[cfg(test)]
mod try_flush_tests {
    use super::*;

    #[test]
    fn try_flush_reports_full_and_retries() {
        let (mut tx, mut rx) = channel::<u32>(1, 1);
        tx.produce(1).unwrap(); // fills the single transport slot
        tx.produce(2).unwrap(); // transport full: stays buffered
        assert!(!tx.try_flush().unwrap(), "transport full");
        assert_eq!(tx.buffered(), 1, "batch put back");
        assert_eq!(rx.consume().unwrap(), 1);
        assert!(tx.try_flush().unwrap());
        assert_eq!(rx.consume().unwrap(), 2);
    }

    #[test]
    fn try_flush_empty_is_true() {
        let (mut tx, _rx) = channel::<u32>(4, 4);
        assert!(tx.try_flush().unwrap());
    }

    #[test]
    fn produce_never_blocks_when_transport_full() {
        let (mut tx, mut rx) = channel::<u32>(1, 1);
        for v in 0..100 {
            tx.produce(v).unwrap(); // must not block even with capacity 1
        }
        // Everything is recoverable: drain interleaved with flushes.
        let mut seen = Vec::new();
        loop {
            while let Some(v) = rx.try_consume().unwrap() {
                seen.push(v);
            }
            if tx.try_flush().unwrap() && tx.buffered() == 0 {
                while let Some(v) = rx.try_consume().unwrap() {
                    seen.push(v);
                }
                break;
            }
        }
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any batch/capacity combination delivers the exact sequence when
        /// the consumer drains interleaved with flush retries.
        #[test]
        fn exact_delivery_for_any_tuning(
            values in proptest::collection::vec(any::<u32>(), 0..300),
            batch in 1usize..20,
            capacity in 1usize..8,
        ) {
            let (mut tx, mut rx) = channel::<u32>(batch, capacity);
            let mut seen = Vec::with_capacity(values.len());
            for &v in &values {
                tx.produce(v).unwrap();
                // Interleave draining so small capacities make progress.
                while let Some(got) = rx.try_consume().unwrap() {
                    seen.push(got);
                }
            }
            loop {
                let done = tx.try_flush().unwrap();
                while let Some(got) = rx.try_consume().unwrap() {
                    seen.push(got);
                }
                if done && tx.buffered() == 0 {
                    break;
                }
            }
            prop_assert_eq!(seen, values);
        }

        /// Stats account exactly for every produced item.
        #[test]
        fn stats_count_every_item(
            n in 0u64..500,
            batch in 1usize..64,
        ) {
            let stats = FabricStats::new();
            let (mut tx, mut rx) =
                channel_with::<u64>(batch, 1024, CostModel::FREE, stats.clone());
            for v in 0..n {
                tx.produce(v).unwrap();
            }
            tx.flush().unwrap();
            prop_assert_eq!(stats.items(), n);
            prop_assert_eq!(stats.bytes(), n * 8);
            let mut count = 0;
            while rx.try_consume().unwrap().is_some() {
                count += 1;
            }
            prop_assert_eq!(count, n);
        }

        /// drain() always leaves the receiver empty, regardless of what
        /// was in flight or partially unpacked.
        #[test]
        fn drain_leaves_nothing(
            produced in 0usize..200,
            consumed_first in 0usize..200,
            batch in 1usize..16,
        ) {
            let (mut tx, mut rx) = channel::<usize>(batch, 256);
            for v in 0..produced {
                tx.produce(v).unwrap();
            }
            tx.flush().unwrap();
            for _ in 0..consumed_first.min(produced) {
                let _ = rx.try_consume().unwrap();
            }
            rx.drain();
            prop_assert_eq!(rx.try_consume().unwrap(), None);
        }
    }
}
