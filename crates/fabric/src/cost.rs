//! Modelled per-message send/receive cost.
//!
//! The paper reports that `MPI_Send` and `MPI_Recv` execute between 500 and
//! 2,295 instructions to move 8 bytes (§4.2, citing the OpenMPI
//! implementation). DSMTX's batched queues amortize that fixed cost over an
//! entire packet. To reproduce the unbatched-vs-batched contrast of
//! Figure 5(b) on a machine where the real transport is a fast in-process
//! channel, [`CostModel`] lets a queue *charge* an artificial per-packet
//! cost by spinning for a configurable number of work units.

/// Per-packet overhead charged when a packet is sent or received.
///
/// The unit is an abstract "instruction"; [`CostModel::charge`] burns
/// roughly that many arithmetic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Instructions charged on each packet send.
    pub send_instructions: u32,
    /// Instructions charged on each packet receive.
    pub recv_instructions: u32,
}

impl CostModel {
    /// No artificial overhead: the raw in-process channel cost only.
    pub const FREE: CostModel = CostModel {
        send_instructions: 0,
        recv_instructions: 0,
    };

    /// The paper's measured OpenMPI cost: ~500 instructions to send and up
    /// to ~2,295 to receive 8 bytes.
    pub const OPENMPI: CostModel = CostModel {
        send_instructions: 500,
        recv_instructions: 2295,
    };

    /// Creates a symmetric model charging `instructions` on both ends.
    pub fn symmetric(instructions: u32) -> Self {
        CostModel {
            send_instructions: instructions,
            recv_instructions: instructions,
        }
    }

    /// Burns approximately `instructions` cheap ALU operations.
    ///
    /// The spin is side-effect-free but opaque to the optimizer, so the
    /// charged time scales linearly with the requested instruction count.
    #[inline]
    pub fn charge(instructions: u32) {
        let mut acc: u64 = 0x9E37_79B9_7F4A_7C15;
        for i in 0..instructions {
            acc = acc.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ u64::from(i);
            std::hint::black_box(acc);
        }
    }

    /// Charges the send-side cost.
    #[inline]
    pub fn charge_send(&self) {
        if self.send_instructions > 0 {
            Self::charge(self.send_instructions);
        }
    }

    /// Charges the receive-side cost.
    #[inline]
    pub fn charge_recv(&self) {
        if self.recv_instructions > 0 {
            Self::charge(self.recv_instructions);
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::FREE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn free_model_charges_nothing_observable() {
        // Must complete essentially instantly.
        let t = Instant::now();
        for _ in 0..10_000 {
            CostModel::FREE.charge_send();
            CostModel::FREE.charge_recv();
        }
        assert!(t.elapsed().as_millis() < 500);
    }

    #[test]
    fn charge_scales_with_instruction_count() {
        // 100x the instructions should take measurably longer (allow slack
        // for noisy CI machines: just require any increase).
        let reps = 2_000;
        let t0 = Instant::now();
        for _ in 0..reps {
            CostModel::charge(10);
        }
        let small = t0.elapsed();
        let t1 = Instant::now();
        for _ in 0..reps {
            CostModel::charge(1_000);
        }
        let large = t1.elapsed();
        assert!(large > small, "large={large:?} small={small:?}");
    }

    #[test]
    fn openmpi_model_matches_paper_numbers() {
        assert_eq!(CostModel::OPENMPI.send_instructions, 500);
        assert_eq!(CostModel::OPENMPI.recv_instructions, 2295);
    }
}
