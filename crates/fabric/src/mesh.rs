//! Topology builder: named endpoints connected by batched queues.
//!
//! A DSMTX system wires a fixed communication topology at start-up: each
//! worker connects to the workers executing later subTXs, to the try-commit
//! unit, and to the commit unit — and *only* to those (the paper stresses
//! that the channel count must not grow quadratically in the thread count).
//! [`MeshBuilder`] declares that topology once; [`Mesh::take_ports`] then
//! hands every spawned thread its private bundle of ports.

use std::collections::HashMap;

use crate::barrier::Barrier;
use crate::cost::CostModel;
use crate::error::{FabricError, Result};
use crate::fault::{FaultPlan, RetryPolicy};
use crate::queue::{channel_faulted, RecvPort, SendPort};
use crate::stats::FabricStats;

/// Identifier of a mesh endpoint (a thread-to-be).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EndpointId(pub usize);

impl std::fmt::Display for EndpointId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// One declared directed queue.
#[derive(Debug, Clone, Copy)]
struct Link {
    from: EndpointId,
    to: EndpointId,
    batch: usize,
    capacity: usize,
    /// Whether the builder's fault plan (if any) applies to this link.
    faulted: bool,
}

/// Declares endpoints and queues, then builds a [`Mesh`].
#[derive(Debug)]
pub struct MeshBuilder {
    names: Vec<String>,
    links: Vec<Link>,
    cost: CostModel,
    stats: FabricStats,
    fault: Option<FaultPlan>,
    retry: RetryPolicy,
}

impl MeshBuilder {
    /// Starts an empty topology with no artificial message cost.
    pub fn new() -> Self {
        MeshBuilder {
            names: Vec::new(),
            links: Vec::new(),
            cost: CostModel::FREE,
            stats: FabricStats::new(),
            fault: None,
            retry: RetryPolicy::DEFAULT,
        }
    }

    /// Sets the per-packet cost model applied to every queue.
    pub fn cost_model(&mut self, cost: CostModel) -> &mut Self {
        self.cost = cost;
        self
    }

    /// Installs a fault plan. Links declared with
    /// [`MeshBuilder::connect_faulted`] derive their injector from it,
    /// keyed by declaration order, so the schedule is a pure function of
    /// `(plan seed, wiring order)`.
    pub fn fault_plan(&mut self, plan: FaultPlan) -> &mut Self {
        self.fault = Some(plan);
        self
    }

    /// Sets the retry budget used by every faulted link.
    pub fn retry_policy(&mut self, retry: RetryPolicy) -> &mut Self {
        self.retry = retry;
        self
    }

    /// Registers an endpoint and returns its id.
    pub fn endpoint(&mut self, name: impl Into<String>) -> EndpointId {
        let id = EndpointId(self.names.len());
        self.names.push(name.into());
        id
    }

    /// Declares a directed queue `from → to`.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::BadTopology`] for unknown endpoints,
    /// self-loops, or duplicate links.
    pub fn connect(
        &mut self,
        from: EndpointId,
        to: EndpointId,
        batch: usize,
        capacity: usize,
    ) -> Result<&mut Self> {
        self.connect_impl(from, to, batch, capacity, false)
    }

    /// Declares a directed queue `from → to` that the builder's fault plan
    /// (if any) injects into. Without a plan it behaves exactly like
    /// [`MeshBuilder::connect`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`MeshBuilder::connect`].
    pub fn connect_faulted(
        &mut self,
        from: EndpointId,
        to: EndpointId,
        batch: usize,
        capacity: usize,
    ) -> Result<&mut Self> {
        self.connect_impl(from, to, batch, capacity, true)
    }

    fn connect_impl(
        &mut self,
        from: EndpointId,
        to: EndpointId,
        batch: usize,
        capacity: usize,
        faulted: bool,
    ) -> Result<&mut Self> {
        if from.0 >= self.names.len() || to.0 >= self.names.len() {
            return Err(FabricError::BadTopology(format!(
                "link {from} -> {to} references undeclared endpoint"
            )));
        }
        if from == to {
            return Err(FabricError::BadTopology(format!("self-loop at {from}")));
        }
        if self.links.iter().any(|l| l.from == from && l.to == to) {
            return Err(FabricError::BadTopology(format!(
                "duplicate link {from} -> {to}"
            )));
        }
        self.links.push(Link {
            from,
            to,
            batch,
            capacity,
            faulted,
        });
        Ok(self)
    }

    /// Builds the mesh, materializing every declared queue.
    pub fn build<T>(&self) -> Mesh<T> {
        let mut ports: HashMap<EndpointId, Ports<T>> = HashMap::new();
        for id in 0..self.names.len() {
            ports.insert(EndpointId(id), Ports::default());
        }
        for (index, link) in self.links.iter().enumerate() {
            let injector = match &self.fault {
                Some(plan) if link.faulted => Some(plan.injector(index as u64)),
                _ => None,
            };
            let (tx, rx) = channel_faulted(
                link.batch,
                link.capacity,
                self.cost,
                self.stats.clone(),
                injector,
                self.retry,
            );
            ports
                .get_mut(&link.from)
                .expect("declared")
                .sends
                .push((link.to, tx));
            ports
                .get_mut(&link.to)
                .expect("declared")
                .recvs
                .push((link.from, rx));
        }
        Mesh {
            names: self.names.clone(),
            ports,
            barrier: Barrier::new(self.names.len().max(1)),
            stats: self.stats.clone(),
        }
    }

    /// Endpoint count declared so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no endpoint has been declared.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl Default for MeshBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// The port bundle owned by one endpoint after the mesh is built.
#[derive(Debug)]
pub struct Ports<T> {
    /// Outgoing queues, keyed by destination.
    pub sends: Vec<(EndpointId, SendPort<T>)>,
    /// Incoming queues, keyed by source.
    pub recvs: Vec<(EndpointId, RecvPort<T>)>,
}

impl<T> Default for Ports<T> {
    fn default() -> Self {
        Ports {
            sends: Vec::new(),
            recvs: Vec::new(),
        }
    }
}

impl<T> Ports<T> {
    /// Borrows the send port toward `to`, if connected.
    pub fn send_to(&mut self, to: EndpointId) -> Option<&mut SendPort<T>> {
        self.sends
            .iter_mut()
            .find(|(id, _)| *id == to)
            .map(|(_, p)| p)
    }

    /// Borrows the receive port from `from`, if connected.
    pub fn recv_from(&mut self, from: EndpointId) -> Option<&mut RecvPort<T>> {
        self.recvs
            .iter_mut()
            .find(|(id, _)| *id == from)
            .map(|(_, p)| p)
    }
}

/// A fully built topology; each endpoint's ports can be taken exactly once.
#[derive(Debug)]
pub struct Mesh<T> {
    names: Vec<String>,
    ports: HashMap<EndpointId, Ports<T>>,
    barrier: Barrier,
    stats: FabricStats,
}

impl<T> Mesh<T> {
    /// Removes and returns the port bundle for `id`.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::UnknownEndpoint`] if `id` was never declared
    /// or its ports were already taken.
    pub fn take_ports(&mut self, id: EndpointId) -> Result<Ports<T>> {
        self.ports
            .remove(&id)
            .ok_or_else(|| FabricError::UnknownEndpoint(id.to_string()))
    }

    /// The global barrier spanning all endpoints.
    pub fn barrier(&self) -> Barrier {
        self.barrier.clone()
    }

    /// Shared traffic statistics for every queue in the mesh.
    pub fn stats(&self) -> FabricStats {
        self.stats.clone()
    }

    /// The display name given to `id` at declaration time.
    pub fn name(&self, id: EndpointId) -> Option<&str> {
        self.names.get(id.0).map(String::as_str)
    }

    /// Number of endpoints in the mesh.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the mesh has no endpoints.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_declared_topology() {
        let mut b = MeshBuilder::new();
        let w0 = b.endpoint("w0");
        let w1 = b.endpoint("w1");
        let commit = b.endpoint("commit");
        b.connect(w0, w1, 4, 8).unwrap();
        b.connect(w0, commit, 4, 8).unwrap();
        b.connect(w1, commit, 4, 8).unwrap();
        let mut mesh = b.build::<u64>();
        assert_eq!(mesh.len(), 3);
        assert_eq!(mesh.name(w0), Some("w0"));

        let mut p0 = mesh.take_ports(w0).unwrap();
        let mut p1 = mesh.take_ports(w1).unwrap();
        let mut pc = mesh.take_ports(commit).unwrap();
        assert_eq!(p0.sends.len(), 2);
        assert_eq!(p0.recvs.len(), 0);
        assert_eq!(p1.sends.len(), 1);
        assert_eq!(p1.recvs.len(), 1);
        assert_eq!(pc.recvs.len(), 2);

        p0.send_to(w1).unwrap().produce(42).unwrap();
        p0.send_to(w1).unwrap().flush().unwrap();
        assert_eq!(p1.recv_from(w0).unwrap().consume().unwrap(), 42);

        p1.send_to(commit).unwrap().produce(7).unwrap();
        p1.send_to(commit).unwrap().flush().unwrap();
        assert_eq!(pc.recv_from(w1).unwrap().consume().unwrap(), 7);
    }

    #[test]
    fn ports_taken_once() {
        let mut b = MeshBuilder::new();
        let w0 = b.endpoint("w0");
        let mut mesh = b.build::<u8>();
        assert!(mesh.take_ports(w0).is_ok());
        assert!(matches!(
            mesh.take_ports(w0),
            Err(FabricError::UnknownEndpoint(_))
        ));
    }

    #[test]
    fn rejects_self_loop_and_duplicates() {
        let mut b = MeshBuilder::new();
        let w0 = b.endpoint("w0");
        let w1 = b.endpoint("w1");
        assert!(matches!(
            b.connect(w0, w0, 1, 1),
            Err(FabricError::BadTopology(_))
        ));
        b.connect(w0, w1, 1, 1).unwrap();
        assert!(matches!(
            b.connect(w0, w1, 1, 1),
            Err(FabricError::BadTopology(_))
        ));
    }

    #[test]
    fn rejects_undeclared_endpoint() {
        let mut b = MeshBuilder::new();
        let w0 = b.endpoint("w0");
        let ghost = EndpointId(99);
        assert!(matches!(
            b.connect(w0, ghost, 1, 1),
            Err(FabricError::BadTopology(_))
        ));
    }

    #[test]
    fn mesh_stats_aggregate_all_queues() {
        let mut b = MeshBuilder::new();
        let a = b.endpoint("a");
        let c = b.endpoint("c");
        b.connect(a, c, 1, 8).unwrap();
        let mut mesh = b.build::<u64>();
        let stats = mesh.stats();
        let mut pa = mesh.take_ports(a).unwrap();
        pa.send_to(c).unwrap().produce(1).unwrap();
        pa.send_to(c).unwrap().produce(2).unwrap();
        assert_eq!(stats.items(), 2);
        assert_eq!(stats.bytes(), 16);
    }

    #[test]
    fn mesh_stats_cover_both_directions() {
        let mut b = MeshBuilder::new();
        let a = b.endpoint("a");
        let c = b.endpoint("c");
        b.connect(a, c, 2, 8).unwrap();
        let mut mesh = b.build::<u64>();
        let stats = mesh.stats();
        let mut pa = mesh.take_ports(a).unwrap();
        let mut pc = mesh.take_ports(c).unwrap();
        let tx = pa.send_to(c).unwrap();
        for v in 0..4u64 {
            tx.produce(v).unwrap();
        }
        assert_eq!(stats.in_flight_items(), 4);
        assert_eq!(stats.depth_high_water(), 4);
        let rx = pc.recv_from(a).unwrap();
        for v in 0..4u64 {
            assert_eq!(rx.consume().unwrap(), v);
        }
        assert_eq!(stats.recv_items(), 4);
        assert_eq!(stats.recv_bytes(), 32);
        assert_eq!(stats.in_flight_items(), 0);
        assert_eq!(stats.batch_items().count(), 2);
    }

    #[test]
    fn faulted_links_inject_and_plain_links_do_not() {
        use crate::fault::{FaultPlan, FaultRates};
        let mut b = MeshBuilder::new();
        let a = b.endpoint("a");
        let c = b.endpoint("c");
        let d = b.endpoint("d");
        b.fault_plan(FaultPlan::new(9, FaultRates::only_drop(1.0)));
        b.connect_faulted(a, c, 1, 8).unwrap();
        b.connect(a, d, 1, 8).unwrap();
        let mut mesh = b.build::<u64>();
        let stats = mesh.stats();
        let mut pa = mesh.take_ports(a).unwrap();
        let mut pd = mesh.take_ports(d).unwrap();
        // The faulted link drops every ship attempt…
        pa.send_to(c).unwrap().produce(1).unwrap();
        assert!(stats.fault_drops() > 0, "plan applies to faulted link");
        // …while the plain link delivers untouched.
        pa.send_to(d).unwrap().produce(2).unwrap();
        assert_eq!(pd.recv_from(a).unwrap().consume().unwrap(), 2);
    }

    #[test]
    fn connect_faulted_without_plan_is_plain() {
        let mut b = MeshBuilder::new();
        let a = b.endpoint("a");
        let c = b.endpoint("c");
        b.connect_faulted(a, c, 1, 8).unwrap();
        let mut mesh = b.build::<u64>();
        let stats = mesh.stats();
        let mut pa = mesh.take_ports(a).unwrap();
        let mut pc = mesh.take_ports(c).unwrap();
        pa.send_to(c).unwrap().produce(5).unwrap();
        assert_eq!(pc.recv_from(a).unwrap().consume().unwrap(), 5);
        assert_eq!(stats.faults_total(), 0);
    }

    #[test]
    fn barrier_spans_all_endpoints() {
        let mut b = MeshBuilder::new();
        b.endpoint("a");
        b.endpoint("b");
        let mesh = b.build::<u8>();
        assert_eq!(mesh.barrier().parties(), 2);
    }
}
