//! Error types for fabric operations.

use std::fmt;

/// Convenience alias for fabric results.
pub type Result<T> = std::result::Result<T, FabricError>;

/// Errors produced by queue and mesh operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// The peer end of a queue has been dropped; no further transfer is
    /// possible.
    Disconnected,
    /// A receive was attempted after the sender signalled end-of-stream.
    EndOfStream,
    /// A mesh endpoint or queue name did not resolve.
    UnknownEndpoint(String),
    /// A queue between the named endpoints was requested twice or never
    /// declared.
    BadTopology(String),
    /// A transfer attempt was consumed by an injected fault or a full
    /// transport while a fault plan is active; retry budget remains.
    Retriable,
    /// The bounded retry budget (or a receive deadline) was exhausted.
    /// The runtime treats this as a fabric fault and enters recovery.
    Timeout,
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Disconnected => write!(f, "peer endpoint disconnected"),
            FabricError::EndOfStream => write!(f, "end of stream"),
            FabricError::UnknownEndpoint(name) => write!(f, "unknown endpoint `{name}`"),
            FabricError::BadTopology(msg) => write!(f, "bad topology: {msg}"),
            FabricError::Retriable => write!(f, "transfer attempt faulted; retry"),
            FabricError::Timeout => write!(f, "transfer timed out after retries"),
        }
    }
}

impl std::error::Error for FabricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        for e in [
            FabricError::Disconnected,
            FabricError::EndOfStream,
            FabricError::UnknownEndpoint("w0".into()),
            FabricError::BadTopology("dup".into()),
            FabricError::Retriable,
            FabricError::Timeout,
        ] {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FabricError>();
    }
}
