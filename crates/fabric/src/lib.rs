//! Message-passing fabric for the DSMTX runtime.
//!
//! A commodity cluster has no shared memory: every byte that moves between
//! two workers moves through an explicit message. This crate is the
//! in-process stand-in for the OpenMPI layer the paper builds on. Each
//! DSMTX "process" is an OS thread whose program state is private; the only
//! way state crosses a thread boundary is through the queues built here.
//!
//! The centerpiece is the **batched queue** ([`queue`]): the paper measures
//! that a single `MPI_Send`/`MPI_Recv` pair costs 500–2,295 instructions to
//! move 8 bytes, and that buffering produced values until a batch fills
//! raises sustained queue bandwidth from ~13 MB/s to ~480 MB/s (§4.2, §5.3).
//! [`queue::SendPort`] buffers items and ships a whole packet when the batch
//! threshold fills; an optional [`cost::CostModel`] charges the modelled
//! per-message overhead so the unbatched/batched contrast of Figure 5(b) can
//! be reproduced on real threads.
//!
//! # Example
//!
//! ```
//! use dsmtx_fabric::queue::channel;
//!
//! let (mut tx, mut rx) = channel::<u64>(/*batch*/ 64, /*capacity*/ 1024);
//! for v in 0..1000u64 {
//!     tx.produce(v).unwrap();
//! }
//! tx.flush().unwrap();
//! for v in 0..1000u64 {
//!     assert_eq!(rx.consume().unwrap(), v);
//! }
//! ```

pub mod barrier;
pub mod cost;
pub mod error;
pub mod fault;
pub mod mesh;
pub mod queue;
pub mod stats;

pub use barrier::Barrier;
pub use cost::CostModel;
pub use error::{FabricError, Result};
pub use fault::{FaultDecision, FaultInjector, FaultPlan, FaultRates, RetryPolicy};
pub use mesh::{EndpointId, Mesh, MeshBuilder};
pub use queue::{channel, channel_faulted, RecvPort, SendPort, FREELIST_DEPTH};
pub use stats::FabricStats;
