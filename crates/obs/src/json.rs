//! Hand-rolled JSON helpers: string escaping for the exporters and a
//! strict validator used by tests to prove exported documents parse.

/// Renders `s` as a JSON string literal (quotes included).
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Strict recursive-descent check that `s` is exactly one JSON value.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string_lit(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos:?}")),
        None => Err("unexpected end of input".into()),
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at offset {}", c as char, pos))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'{')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        string_lit(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'[')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn string_lit(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'"')?;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(format!("bad \\u escape at {pos}")),
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    if *pos == int_start {
        return Err(format!("number without digits at offset {start}"));
    }
    // Leading zero must stand alone.
    if b[int_start] == b'0' && *pos - int_start > 1 {
        return Err(format!("leading zero at offset {int_start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(format!("empty fraction at offset {frac_start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(format!("empty exponent at offset {exp_start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
        validate(&string("quote \" backslash \\ newline \n tab \t")).unwrap();
    }

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "0",
            "-12.5e3",
            "true",
            "null",
            r#"{"a":[1,2,{"b":"cé"}],"d":false}"#,
            r#"  { "x" : [ ] }  "#,
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "{} extra",
            "{'single':1}",
        ] {
            assert!(validate(doc).is_err(), "should reject: {doc}");
        }
    }
}
