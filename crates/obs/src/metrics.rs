//! Counters, gauges, and the labeled metric registry.

use crate::hist::Histogram;
use crate::json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Monotonic counter; clones share the same cell.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Folds `other`'s count into `self`.
    pub fn merge(&self, other: &Counter) {
        self.add(other.value());
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.value())
    }
}

/// Level metric with a high-water mark; clones share the same cells.
///
/// `add`/`sub` keep a current level (e.g. queue depth) while the
/// high-water mark records the maximum level ever seen.
#[derive(Clone, Default)]
pub struct Gauge {
    inner: Arc<GaugeInner>,
}

#[derive(Default)]
struct GaugeInner {
    current: AtomicI64,
    high_water: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&self, delta: i64) {
        let now = self.inner.current.fetch_add(delta, Ordering::Relaxed) + delta;
        self.inner.high_water.fetch_max(now, Ordering::Relaxed);
    }

    pub fn sub(&self, delta: i64) {
        self.add(-delta);
    }

    pub fn set(&self, value: i64) {
        self.inner.current.store(value, Ordering::Relaxed);
        self.inner.high_water.fetch_max(value, Ordering::Relaxed);
    }

    pub fn value(&self) -> i64 {
        self.inner.current.load(Ordering::Relaxed)
    }

    pub fn high_water(&self) -> i64 {
        self.inner.high_water.load(Ordering::Relaxed)
    }

    /// Folds `other` into `self`: levels add, high-water marks take the
    /// max (an aggregate queue's depth is the sum of its members').
    pub fn merge(&self, other: &Gauge) {
        if other.value() != 0 {
            self.add(other.value());
        }
        self.inner
            .high_water
            .fetch_max(other.high_water(), Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({}, high {})", self.value(), self.high_water())
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

type Key = (String, Vec<(String, String)>);

/// Get-or-create registry of labeled metrics; clones share contents.
///
/// Handles are cheap to clone out of the registry once and update
/// lock-free afterwards; the registry lock is only taken at
/// registration and export time.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<Key, Metric>>>,
}

fn key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    (name.to_string(), labels)
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter handle for `name` + `labels`, created on first use.
    ///
    /// Panics if the same name+labels was registered as another type —
    /// that is a schema bug worth failing loudly on.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, labels, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("{name} already registered as {}", other.kind()),
        }
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, labels, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("{name} already registered as {}", other.kind()),
        }
    }

    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.get_or_insert(name, labels, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!("{name} already registered as {}", other.kind()),
        }
    }

    /// Registers an already-built histogram (e.g. one the fabric has
    /// been recording into) under `name` + `labels`, replacing any
    /// previous entry.
    pub fn install_histogram(&self, name: &str, labels: &[(&str, &str)], hist: Histogram) {
        self.lock()
            .insert(key(name, labels), Metric::Histogram(hist));
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        self.lock()
            .entry(key(name, labels))
            .or_insert_with(make)
            .clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<Key, Metric>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One JSON object per metric, one per line, sorted by name+labels.
    ///
    /// Counters: `{"name","labels","type":"counter","value"}`. Gauges
    /// add `"high_water"`. Histograms carry `count/sum/mean/min/max/
    /// p50/p90/p99` plus the non-empty `[lower_bound, count]` buckets.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ((name, labels), metric) in self.lock().iter() {
            out.push('{');
            out.push_str(&format!("\"name\":{},", json::string(name)));
            out.push_str("\"labels\":{");
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}:{}", json::string(k), json::string(v)));
            }
            out.push_str("},");
            out.push_str(&format!("\"type\":\"{}\",", metric.kind()));
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("\"value\":{}", c.value()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!(
                        "\"value\":{},\"high_water\":{}",
                        g.value(),
                        g.high_water()
                    ));
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!(
                        "\"count\":{},\"sum\":{},\"mean\":{:.3},\"min\":{},\"max\":{},\
                         \"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                        h.count(),
                        h.sum(),
                        h.mean(),
                        h.min(),
                        h.max(),
                        h.p50(),
                        h.p90(),
                        h.p99()
                    ));
                    for (i, (lo, n)) in h.snapshot().iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("[{lo},{n}]"));
                    }
                    out.push(']');
                }
            }
            out.push_str("}\n");
        }
        out
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Registry({} metrics)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);

        let g = Gauge::new();
        g.add(10);
        g.sub(3);
        assert_eq!(g.value(), 7);
        assert_eq!(g.high_water(), 10);
        g.set(2);
        assert_eq!(g.value(), 2);
        assert_eq!(g.high_water(), 10);
    }

    #[test]
    fn merge_semantics() {
        let a = Counter::new();
        let b = Counter::new();
        a.add(3);
        b.add(4);
        a.merge(&b);
        assert_eq!(a.value(), 7);

        let g1 = Gauge::new();
        let g2 = Gauge::new();
        g1.add(5);
        g2.add(9);
        g2.sub(9);
        g1.merge(&g2);
        assert_eq!(g1.value(), 5);
        assert_eq!(g1.high_water(), 9);
    }

    #[test]
    fn registry_reuses_handles_by_name_and_labels() {
        let r = Registry::new();
        let a = r.counter("x", &[("q", "1")]);
        let b = r.counter("x", &[("q", "1")]);
        let c = r.counter("x", &[("q", "2")]);
        a.inc();
        b.inc();
        c.inc();
        assert_eq!(a.value(), 2);
        assert_eq!(c.value(), 1);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = Registry::new();
        let a = r.counter("x", &[("a", "1"), ("b", "2")]);
        let b = r.counter("x", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.value(), 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x", &[]);
        let _ = r.gauge("x", &[]);
    }

    #[test]
    fn jsonl_is_deterministically_ordered() {
        // Register in scrambled order; the dump must come out sorted by
        // name then labels so metric snapshots diff cleanly in goldens.
        let r = Registry::new();
        r.counter("z.last", &[]).inc();
        r.counter("a.first", &[("shard", "2")]).inc();
        r.counter("a.first", &[("shard", "1")]).inc();
        r.gauge("m.middle", &[]).set(3);
        let dump = r.to_jsonl();
        let names: Vec<&str> = dump
            .lines()
            .map(|l| {
                let start = l.find("\"name\":\"").unwrap() + 8;
                &l[start..start + l[start..].find('"').unwrap()]
            })
            .collect();
        assert_eq!(names, ["a.first", "a.first", "m.middle", "z.last"]);
        assert!(dump.lines().next().unwrap().contains("\"shard\":\"1\""));
        assert!(dump.lines().nth(1).unwrap().contains("\"shard\":\"2\""));
        // Byte-identical on re-export: the snapshot is diffable.
        assert_eq!(dump, r.to_jsonl());
    }

    #[test]
    fn jsonl_is_valid_json_per_line() {
        let r = Registry::new();
        r.counter("runs", &[]).add(2);
        r.gauge("depth", &[("queue", "w0->tc")]).add(5);
        let h = r.histogram("lat_us", &[("stage", "0")]);
        for v in [1u64, 50, 999, 12345] {
            h.record(v);
        }
        let dump = r.to_jsonl();
        assert_eq!(dump.lines().count(), 3);
        for line in dump.lines() {
            crate::json::validate(line).expect("each JSONL line parses");
        }
        assert!(dump.contains("\"type\":\"histogram\""));
        assert!(dump.contains("\"p99\":"));
    }
}
