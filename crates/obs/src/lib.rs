//! Observability layer for the DSMTX reproduction.
//!
//! The paper's argument is quantitative (bandwidth, latency tolerance,
//! recovery cost), so every layer of this runtime reports into a shared
//! vocabulary defined here:
//!
//! - [`Histogram`] — lock-free log-bucketed latency/size histogram with
//!   ±12.5% relative error, mergeable across threads and queues;
//! - [`Counter`] / [`Gauge`] — monotonic and level metrics with a
//!   high-water mark;
//! - [`Registry`] — labeled get-or-create metric handles plus a JSONL
//!   export, so simulated and real runs emit the same schema
//!   ([`schema`] holds the shared metric names);
//! - [`ChromeTrace`] — a `chrome://tracing` / Perfetto `trace_event`
//!   JSON writer for per-MTX lifecycle spans;
//! - [`json`] — the escaping and validation helpers backing both
//!   exporters.
//!
//! This crate has no dependencies (std only) so it can sit below the
//! fabric in the crate DAG.

pub mod chrome;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod span;

pub use chrome::ChromeTrace;
pub use hist::Histogram;
pub use metrics::{Counter, Gauge, Registry};
pub use span::{check_spans, AbortCause, ConflictInfo, MtxSpan, SpanOutcome, StageSpan};

/// Shared metric names: the sim engine and the real runtime both emit
/// these, so a JSONL dump from either is comparable row-for-row.
pub mod schema {
    /// Per-stage subTX execution time, labeled `stage`.
    pub const STAGE_EXEC_US: &str = "stage.exec_us";
    /// Last `SubTxEnd` of an MTX to its `Validated` event.
    pub const MTX_VALIDATION_WAIT_US: &str = "mtx.validation_wait_us";
    /// `Validated` to `Committed` (commit-queue wait).
    pub const MTX_COMMIT_WAIT_US: &str = "mtx.commit_wait_us";
    /// First `SubTxBegin` to `Committed`.
    pub const MTX_TOTAL_LATENCY_US: &str = "mtx.total_latency_us";
    /// Inter-commit period observed at the commit unit.
    pub const MTX_COMMIT_PERIOD_US: &str = "mtx.commit_period_us";
    /// Busy fraction (0..=1, scaled by 1e6 when stored in a gauge) of a
    /// worker/try-commit/commit track, labeled `role`.
    pub const ROLE_BUSY_PPM: &str = "role.busy_ppm";

    /// Per-MTX critical-path decomposition (from [`crate::MtxSpan`]):
    /// time blocked on upstream frames before user code ran.
    pub const MTX_QUEUE_WAIT_US: &str = "mtx.queue_wait_us";
    /// Time inside user code (summed across stages).
    pub const MTX_EXEC_US: &str = "mtx.exec_us";
    /// Time flushing validation/commit streams to the shards.
    pub const MTX_FLUSH_US: &str = "mtx.flush_us";

    /// Aborted speculative attempts by attributed cause, labeled
    /// `cause` with an [`crate::AbortCause`] name. A nonzero
    /// `cause="unpredicted"` count is a soundness red flag.
    pub const WHY_ABORTS: &str = "why.aborts";
    /// Speculative attempts observed by the span builder.
    pub const WHY_ATTEMPTS: &str = "why.attempts";

    /// Whole-run roll-ups.
    pub const RUN_ELAPSED_US: &str = "run.elapsed_us";
    pub const RUN_COMMITTED: &str = "run.committed";
    pub const RUN_RECOVERIES: &str = "run.recoveries";
    pub const RUN_BYTES: &str = "run.bytes";
    pub const RUN_BANDWIDTH_BPS: &str = "run.bandwidth_bps";
    pub const RUN_SPEEDUP_MILLI: &str = "run.speedup_milli";
    pub const RUN_TRACE_DROPPED: &str = "run.trace_dropped";
    /// Trace events discarded after the capacity-bounded sink filled.
    /// Nonzero means the span set is incomplete — `repro why` output
    /// and the drop counter both surface it.
    pub const TRACE_EVENTS_DROPPED: &str = "trace.events_dropped";
    /// Fabric timeouts raised to the control plane (each one requests a
    /// timeout-driven recovery round).
    pub const RUN_FABRIC_TIMEOUTS: &str = "run.fabric_timeouts";
    /// Recovery rounds entered because of a fabric fault (subset of
    /// `run.recoveries`).
    pub const RUN_FAULT_RECOVERIES: &str = "run.fault_recoveries";
    /// Disconnected channels reported while running (typed shutdowns).
    pub const RUN_CHANNEL_DOWNS: &str = "run.channel_downs";

    /// Per-try-commit-shard metrics (§3.2 parallel speculation units),
    /// labeled `shard`. At `unit_shards = 1` the single shard carries
    /// the whole validation plane.
    ///
    /// Arrival of a subTX's validation stream to the start of its
    /// program-order replay (how far the shard's image lags the workers).
    pub const SHARD_REPLAY_LAG_US: &str = "shard.replay_lag_us";
    /// Arrival of an MTX's final-stage stream to its verdict send.
    pub const SHARD_VERDICT_LATENCY_US: &str = "shard.verdict_latency_us";
    /// Busy fraction of the shard's thread, parts per million.
    pub const SHARD_OCCUPANCY_PPM: &str = "shard.occupancy_ppm";
    /// MTXs this shard validated (sent `VerdictOk` for).
    pub const SHARD_VALIDATED: &str = "shard.validated";
    /// Conflicts this shard detected in its page partition.
    pub const SHARD_CONFLICTS: &str = "shard.conflicts";
    /// COA pages this shard fetched into its replay image.
    pub const SHARD_COA_FETCHES: &str = "shard.coa_fetches";

    /// Fabric counters (send and recv side) and distributions.
    pub const FABRIC_SENT_PACKETS: &str = "fabric.sent_packets";
    pub const FABRIC_SENT_ITEMS: &str = "fabric.sent_items";
    pub const FABRIC_SENT_BYTES: &str = "fabric.sent_bytes";
    pub const FABRIC_RECV_PACKETS: &str = "fabric.recv_packets";
    pub const FABRIC_RECV_ITEMS: &str = "fabric.recv_items";
    pub const FABRIC_RECV_BYTES: &str = "fabric.recv_bytes";
    pub const FABRIC_DRAINED_ITEMS: &str = "fabric.drained_items";
    pub const FABRIC_IN_FLIGHT_ITEMS: &str = "fabric.in_flight_items";
    pub const FABRIC_DEPTH_HIGH_WATER: &str = "fabric.depth_high_water";
    pub const FABRIC_BATCH_ITEMS: &str = "fabric.batch_items";
    pub const FABRIC_SEND_STALL_US: &str = "fabric.send_stall_us";
    pub const FABRIC_RECV_STALL_US: &str = "fabric.recv_stall_us";
    /// Ship → unpack dwell of a packet in the queue (the fabric-level
    /// component of an MTX's queue wait).
    pub const FABRIC_QUEUE_DWELL_US: &str = "fabric.queue_dwell_us";

    /// Injected-fault and retry counters (zero on fault-free runs).
    pub const FABRIC_FAULT_DROPS: &str = "fabric.fault.drops";
    pub const FABRIC_FAULT_DELAYS: &str = "fabric.fault.delays";
    pub const FABRIC_FAULT_DUPS: &str = "fabric.fault.dups";
    pub const FABRIC_FAULT_REORDERS: &str = "fabric.fault.reorders";
    pub const FABRIC_FAULT_STALLS: &str = "fabric.fault.stalls";
    pub const FABRIC_RETRIES: &str = "fabric.retries";
    pub const FABRIC_SEND_TIMEOUTS: &str = "fabric.send_timeouts";
    pub const FABRIC_RECV_TIMEOUTS: &str = "fabric.recv_timeouts";
    pub const FABRIC_DUP_ITEMS_DISCARDED: &str = "fabric.dup_items_discarded";
    pub const FABRIC_OOO_PACKETS: &str = "fabric.ooo_packets";
    /// Batch buffers dropped at recycle because the bounded freelist was
    /// full (the allocator takes over; a liveness-neutral shed).
    pub const FABRIC_FREELIST_DROPS: &str = "fabric.freelist_drops";

    /// Validation-plane compaction counters (worker-side access filtering
    /// and packed `AccessBlock` frames).
    ///
    /// Records the unpacked encoding would have shipped across the
    /// validation plane (accesses plus per-shard framing messages).
    pub const VALPLANE_RECORDS_PRE: &str = "valplane.records_pre";
    /// Fabric items actually shipped (block frames; each carries many
    /// records).
    pub const VALPLANE_RECORDS_POST: &str = "valplane.records_post";
    /// Access records suppressed by the worker-side store buffer
    /// (coalesced stores and duplicate loads).
    pub const VALPLANE_RECORDS_FILTERED: &str = "valplane.records_filtered";
    /// Bytes the unpacked encoding would have put on the wire.
    pub const VALPLANE_BYTES_PRE: &str = "valplane.bytes_pre";
    /// Bytes actually on the wire (frames plus packed payloads).
    pub const VALPLANE_BYTES_POST: &str = "valplane.bytes_post";
    /// `AccessBlock` frames shipped across validation and commit planes.
    pub const VALPLANE_BLOCKS: &str = "valplane.blocks";
    /// Access records carried inside those blocks (post-filter).
    pub const VALPLANE_BLOCK_RECORDS: &str = "valplane.block_records";

    /// Worker-side COA page cache (epoch-tagged committed copies).
    ///
    /// Fetches served without a page payload on the wire (local serves
    /// plus `CoaFresh` revalidations).
    pub const COA_CACHE_HITS: &str = "coa_cache.hits";
    /// Full-page fetches of pages the cache did not hold.
    pub const COA_CACHE_MISSES: &str = "coa_cache.misses";
    /// Full-page refetches replacing an outdated cached copy.
    pub const COA_CACHE_STALE: &str = "coa_cache.stale";

    /// Dependence-analyzer counters (the `dsmtx-analyze` static side),
    /// labeled `workload`.
    ///
    /// Dependence edges classified from the recorded sequential stream.
    pub const ANALYZE_EDGES: &str = "analyze.edges";
    /// Loop-carried flow edges — the dependences speculation can break.
    pub const ANALYZE_CARRIED_FLOWS: &str = "analyze.carried_flows";
    /// Error-severity lint findings (CI gate fails on any for a shipped
    /// plan).
    pub const ANALYZE_FINDINGS_ERROR: &str = "analyze.findings_error";
    /// Warning-severity lint findings.
    pub const ANALYZE_FINDINGS_WARNING: &str = "analyze.findings_warning";
    /// Pages in the analyzer's conservative conflict superset.
    pub const ANALYZE_PREDICTED_PAGES: &str = "analyze.predicted_pages";

    /// Predicted-vs-observed certification counters, labeled `workload`
    /// and `shards`.
    ///
    /// Certification runs checked (one per workload × shard count).
    pub const CERT_RUNS: &str = "cert.runs";
    /// Distinct pages where the certified run observed try-commit
    /// conflicts.
    pub const CERT_OBSERVED_PAGES: &str = "cert.observed_pages";
    /// Observed conflict pages the analyzer failed to predict — any
    /// nonzero value is an analyzer soundness bug.
    pub const CERT_UNPREDICTED_PAGES: &str = "cert.unpredicted_pages";

    /// Auto-partitioner counters (the `repro plan` planning pass),
    /// labeled `workload`.
    ///
    /// Strongly connected components condensed from the address
    /// dependence graph.
    pub const PLAN_SCCS: &str = "plan.sccs";
    /// Candidate plans that passed the linter and were ranked.
    pub const PLAN_CANDIDATES: &str = "plan.candidates";
    /// Candidate plans refused for Error-severity findings.
    pub const PLAN_REJECTED: &str = "plan.rejected";
    /// Addresses where the auto and hand partitions agree.
    pub const PLAN_AGREEMENTS: &str = "plan.agreements";
    /// Addresses where they diverge.
    pub const PLAN_DIVERGENCES: &str = "plan.divergences";

    /// Auto-plan execution (`repro plan --apply`) counters, labeled
    /// `workload` and `shards`.
    ///
    /// Value-validation conflicts the auto plan's replay run observed.
    pub const PLAN_APPLY_CONFLICTS: &str = "plan.apply.conflicts";
    /// Observed conflict pages outside the auto plan's own predicted
    /// superset — nonzero fails the gate.
    pub const PLAN_APPLY_UNPREDICTED: &str = "plan.apply.unpredicted";
}
