//! Chrome `trace_event` JSON writer.
//!
//! Produces the "JSON Array Format" wrapped in an object
//! (`{"traceEvents": [...]}`), which both `chrome://tracing` and
//! Perfetto load directly. Only the event kinds this runtime needs are
//! supported: complete spans (`"ph":"X"`), instants (`"ph":"i"`),
//! counters (`"ph":"C"`), and thread-name metadata (`"ph":"M"`).
//! Timestamps and durations are microseconds, per the format spec.

use crate::json;

/// Accumulates trace events and renders them as one JSON document.
#[derive(Default, Debug)]
pub struct ChromeTrace {
    events: Vec<String>,
}

fn args_json(args: &[(&str, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json::string(k));
        out.push(':');
        out.push_str(&json::string(v));
    }
    out.push('}');
    out
}

impl ChromeTrace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Names a track: shows as the row label in the trace viewer.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":{}}}}}",
            json::string(name)
        ));
    }

    /// Orders a track within the process view (lower sorts first).
    pub fn thread_sort_index(&mut self, pid: u64, tid: u64, index: i64) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"sort_index\":{index}}}}}"
        ));
    }

    /// Complete span (`ph:"X"`): one box on a track.
    ///
    /// The argument list mirrors the trace_event field list one-to-one;
    /// a builder would only rename the same seven fields.
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        cat: &str,
        ts_us: u64,
        dur_us: u64,
        args: &[(&str, String)],
    ) {
        self.events.push(format!(
            "{{\"ph\":\"X\",\"name\":{},\"cat\":{},\"pid\":{pid},\"tid\":{tid},\
             \"ts\":{ts_us},\"dur\":{dur_us},\"args\":{}}}",
            json::string(name),
            json::string(cat),
            args_json(args)
        ));
    }

    /// Instant event (`ph:"i"`, thread scope): a tick mark.
    pub fn instant(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        cat: &str,
        ts_us: u64,
        args: &[(&str, String)],
    ) {
        self.events.push(format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"name\":{},\"cat\":{},\"pid\":{pid},\"tid\":{tid},\
             \"ts\":{ts_us},\"args\":{}}}",
            json::string(name),
            json::string(cat),
            args_json(args)
        ));
    }

    /// Counter sample (`ph:"C"`): plotted as a stacked area chart.
    pub fn counter(&mut self, pid: u64, name: &str, ts_us: u64, series: &[(&str, i64)]) {
        let mut args = String::from("{");
        for (i, (k, v)) in series.iter().enumerate() {
            if i > 0 {
                args.push(',');
            }
            args.push_str(&json::string(k));
            args.push(':');
            args.push_str(&v.to_string());
        }
        args.push('}');
        self.events.push(format!(
            "{{\"ph\":\"C\",\"name\":{},\"pid\":{pid},\"ts\":{ts_us},\"args\":{args}}}",
            json::string(name)
        ));
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Full document: `{"traceEvents":[...],"displayTimeUnit":"ms"}`.
    pub fn render(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(e);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_json() {
        let mut t = ChromeTrace::new();
        t.thread_name(1, 0, "worker0");
        t.thread_sort_index(1, 0, 0);
        t.span(1, 0, "mtx3", "subtx", 10, 25, &[("stage", "1".into())]);
        t.instant(1, 100, "validated mtx3", "validate", 40, &[]);
        t.counter(1, "queue depth", 12, &[("w0->tc", 5)]);
        let doc = t.render();
        crate::json::validate(&doc).expect("chrome trace parses");
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ph\":\"M\""));
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"traceEvents\""));
    }

    #[test]
    fn escapes_names() {
        let mut t = ChromeTrace::new();
        t.span(1, 0, "weird \"name\"\n", "c", 0, 1, &[]);
        crate::json::validate(&t.render()).unwrap();
    }

    #[test]
    fn empty_trace_is_valid() {
        let t = ChromeTrace::new();
        crate::json::validate(&t.render()).unwrap();
        assert!(t.is_empty());
    }
}
