//! Lock-cheap log-bucketed histogram.
//!
//! Values 0..=3 get exact buckets; above that each power-of-two octave is
//! split into 4 sub-buckets, giving a worst-case relative error of 12.5%
//! across the full `u64` range in 256 fixed slots (2 KiB of atomics).
//! `record` is two relaxed `fetch_add`s plus a `fetch_min`/`fetch_max` —
//! cheap enough for per-packet fabric paths. Handles are `Clone` and
//! share the underlying buckets, and whole histograms [`merge`] so
//! per-queue or per-thread instances can be aggregated after a run.
//!
//! [`merge`]: Histogram::merge

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const EXACT: usize = 4; // values 0..=3 are exact
const SUB_BITS: u32 = 2; // 4 sub-buckets per octave
const SLOTS: usize = 256;

struct Inner {
    buckets: [AtomicU64; SLOTS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// Mergeable log-bucketed histogram; clones share storage.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<Inner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < EXACT as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= 2
    let sub = ((v >> (octave - SUB_BITS)) & 0b11) as usize;
    EXACT + (octave as usize - 2) * 4 + sub
}

/// Smallest value mapping to bucket `i`.
fn bucket_lower(i: usize) -> u64 {
    if i < EXACT {
        return i as u64;
    }
    let octave = (i - EXACT) / 4 + 2;
    if octave >= 64 {
        // Slots past the top octave are unreachable from `bucket_index`.
        return u64::MAX;
    }
    let sub = ((i - EXACT) % 4) as u64;
    (1u64 << octave) + (sub << (octave as u32 - SUB_BITS))
}

/// Representative (midpoint) value for bucket `i`.
fn bucket_mid(i: usize) -> u64 {
    if i < EXACT {
        return i as u64;
    }
    let lo = bucket_lower(i);
    let hi = if i + 1 < SLOTS {
        bucket_lower(i + 1).saturating_sub(1)
    } else {
        u64::MAX
    };
    lo + (hi - lo) / 2
}

impl Histogram {
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                buckets: [const { AtomicU64::new(0) }; SLOTS],
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    pub fn record(&self, value: u64) {
        let i = bucket_index(value);
        self.inner.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
        self.inner.min.fetch_min(value, Ordering::Relaxed);
        self.inner.max.fetch_max(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.inner.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> u64 {
        self.inner.max.load(Ordering::Relaxed)
    }

    /// Value at quantile `q` in `[0, 1]`, within the bucket resolution
    /// (±12.5%), clamped to the exact observed min/max.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for i in 0..SLOTS {
            cum += self.inner.buckets[i].load(Ordering::Relaxed);
            if cum >= target {
                return bucket_mid(i).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds `other`'s observations into `self` (other is unchanged).
    pub fn merge(&self, other: &Histogram) {
        for i in 0..SLOTS {
            let n = other.inner.buckets[i].load(Ordering::Relaxed);
            if n > 0 {
                self.inner.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.inner.count.fetch_add(other.count(), Ordering::Relaxed);
        self.inner.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.inner
            .min
            .fetch_min(other.inner.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.inner.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        (0..SLOTS)
            .filter_map(|i| {
                let n = self.inner.buckets[i].load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_lower(i), n))
            })
            .collect()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("mean", &self.mean())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut prev = 0;
        let reachable = bucket_index(u64::MAX) + 1;
        for i in 1..reachable {
            let lo = bucket_lower(i);
            assert!(lo > prev, "bucket {i} lower {lo} <= {prev}");
            prev = lo;
        }
        // Every value maps into a bucket whose range contains it.
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 100, 1 << 20, u64::MAX / 3] {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v);
            if i + 1 < SLOTS {
                assert!(v < bucket_lower(i + 1), "v={v} idx={i}");
            }
        }
    }

    #[test]
    fn exact_small_values() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 3);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 3);
    }

    #[test]
    fn quantiles_within_relative_error() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.p50() as f64;
        let p99 = h.p99() as f64;
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.13, "p50 {p50}");
        assert!((p99 - 9900.0).abs() / 9900.0 < 0.13, "p99 {p99}");
        assert!((h.mean() - 5000.5).abs() < 0.51);
    }

    #[test]
    fn merge_equals_union() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            a.record(v);
        }
        for v in 100..1000u64 {
            b.record(v * 17);
        }
        let both = Histogram::new();
        for v in 0..100u64 {
            both.record(v);
        }
        for v in 100..1000u64 {
            both.record(v * 17);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum(), both.sum());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        assert_eq!(a.p50(), both.p50());
        assert_eq!(a.p99(), both.p99());
        assert_eq!(a.snapshot(), both.snapshot());
    }

    #[test]
    fn clones_share_storage() {
        let h = Histogram::new();
        let h2 = h.clone();
        h2.record(42);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 42);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for v in 0..10_000u64 {
                        h.record(v + t);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.snapshot().is_empty());
    }
}
