//! MTX lifecycle spans and the abort-cause taxonomy.
//!
//! A [`MtxSpan`] is one speculative *attempt* of one MTX, stitched
//! together from the events every role records as the iteration flows
//! through the §4 pipeline:
//!
//! ```text
//!   spawn ── queue wait ── execute ── flush ─┐ (per stage, per worker)
//!                                            ▼
//!                          validation lag (try-commit replay reaches it)
//!                                            ▼
//!                                     validated / conflict
//!                                            ▼
//!                          commit-order hold (group commit in order)
//!                                            ▼
//!                                    committed / aborted
//! ```
//!
//! Retries chain onto their original span: an MTX squashed by recovery
//! re-runs with a strictly larger `attempt`, so the span set for one
//! `mtx` id is an ordered chain whose last link either committed or was
//! cut off by termination. Aborted attempts carry an [`AbortCause`] —
//! the misspeculation-attribution verdict joined from the dependence
//! analyzer's predictions (`dsmtx-analyze`) and the run's fault record.
//!
//! This crate is std-only and sits below the runtime in the crate DAG,
//! so spans use raw `u64` MTX ids and `u16` stage/shard indices rather
//! than the runtime's newtypes.

/// Why a speculative MTX attempt aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AbortCause {
    /// The conflicting page was predicted by the dependence analyzer as
    /// a speculated loop-carried dependence (or an escaped-state page):
    /// the abort is the price of a speculation the plan knowingly takes.
    PredictedCarriedDep,
    /// The attempt was squashed by a fault-induced recovery round
    /// (fabric timeout / channel down), not by a data conflict of its
    /// own.
    FaultInducedRetry,
    /// The conflicting page was only ever flagged as a cross-stage
    /// output dependence: the value replay conflicted on a page whose
    /// final value is order-insensitive — a casualty of page-granular
    /// sharding, not a real flow violation.
    CrossShardFalseConflict,
    /// No prediction covers this abort. Any occurrence is a red flag:
    /// either the analyzer is unsound or the runtime misattributed.
    Unpredicted,
}

impl AbortCause {
    /// All causes, in severity-of-surprise order.
    pub const ALL: [AbortCause; 4] = [
        AbortCause::PredictedCarriedDep,
        AbortCause::FaultInducedRetry,
        AbortCause::CrossShardFalseConflict,
        AbortCause::Unpredicted,
    ];

    /// Stable snake_case name used in JSONL output and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            AbortCause::PredictedCarriedDep => "predicted_carried_dep",
            AbortCause::FaultInducedRetry => "fault_induced_retry",
            AbortCause::CrossShardFalseConflict => "cross_shard_false_conflict",
            AbortCause::Unpredicted => "unpredicted",
        }
    }
}

impl std::fmt::Display for AbortCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How one attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// Group-committed by the commit unit.
    Committed,
    /// Squashed: conflicted at try-commit or cut down by a recovery.
    Aborted,
    /// Still in flight when the trace ended (normal at termination).
    Incomplete,
}

/// One stage's execution interval inside an attempt, on one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSpan {
    /// Pipeline stage index.
    pub stage: u16,
    /// Worker that ran the subTX.
    pub worker: u32,
    /// SubTX entry (`mtx_begin`): the spawn point of this stage's work.
    pub begin_us: u64,
    /// All upstream frames received; user code starts.
    pub exec_begin_us: u64,
    /// User code done; validation/commit flush starts.
    pub flush_begin_us: u64,
    /// SubTX exit (`mtx_end`): flush shipped.
    pub end_us: u64,
}

impl StageSpan {
    /// Queue wait: blocked on upstream frames before executing.
    pub fn queue_wait_us(&self) -> u64 {
        self.exec_begin_us.saturating_sub(self.begin_us)
    }

    /// Time inside user code.
    pub fn exec_us(&self) -> u64 {
        self.flush_begin_us.saturating_sub(self.exec_begin_us)
    }

    /// Time shipping validation/commit streams to the shards.
    pub fn flush_us(&self) -> u64 {
        self.end_us.saturating_sub(self.flush_begin_us)
    }

    /// Checks the child intervals nest: begin ≤ exec ≤ flush ≤ end.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first ordering violation.
    pub fn well_formed(&self) -> Result<(), String> {
        let ts = [
            self.begin_us,
            self.exec_begin_us,
            self.flush_begin_us,
            self.end_us,
        ];
        if ts.windows(2).any(|w| w[0] > w[1]) {
            return Err(format!(
                "stage {} on worker {}: phases out of order ({} ≤ {} ≤ {} ≤ {} fails)",
                self.stage, self.worker, ts[0], ts[1], ts[2], ts[3]
            ));
        }
        Ok(())
    }
}

/// Conflict details captured at the owning try-commit shard when value
/// replay diverged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConflictInfo {
    /// Page whose replayed load mismatched committed state.
    pub page: u64,
    /// Try-commit shard owning that page partition.
    pub shard: u16,
    /// Earliest speculative MTX that wrote the page in the current
    /// speculation window, if any store reached the shard first.
    pub first_writer_mtx: Option<u64>,
    /// Attempt number of that first writer.
    pub first_writer_attempt: u32,
    /// When the shard detected the divergence.
    pub at_us: u64,
}

/// One speculative attempt of one MTX: the unit of causal analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct MtxSpan {
    /// MTX (iteration) id.
    pub mtx: u64,
    /// Attempt number; retries after recovery get strictly larger ones.
    pub attempt: u32,
    /// Per-stage execution intervals, ascending by stage.
    pub stages: Vec<StageSpan>,
    /// When the last try-commit shard validated the whole MTX.
    pub validated_us: Option<u64>,
    /// When the commit unit group-committed it.
    pub committed_us: Option<u64>,
    /// Conflict record, when this attempt itself conflicted.
    pub conflict: Option<ConflictInfo>,
    /// When a recovery squashed this attempt (its own conflict, another
    /// MTX's, or a fault round).
    pub squashed_us: Option<u64>,
    /// True when the squashing recovery was fault-induced.
    pub fault_squashed: bool,
    /// Attributed abort cause (None until attribution runs, and for
    /// committed attempts).
    pub cause: Option<AbortCause>,
}

impl MtxSpan {
    /// A fresh span with no recorded lifecycle yet.
    pub fn new(mtx: u64, attempt: u32) -> Self {
        MtxSpan {
            mtx,
            attempt,
            stages: Vec::new(),
            validated_us: None,
            committed_us: None,
            conflict: None,
            squashed_us: None,
            fault_squashed: false,
            cause: None,
        }
    }

    /// How the attempt ended.
    pub fn outcome(&self) -> SpanOutcome {
        if self.committed_us.is_some() {
            SpanOutcome::Committed
        } else if self.conflict.is_some() || self.squashed_us.is_some() {
            SpanOutcome::Aborted
        } else {
            SpanOutcome::Incomplete
        }
    }

    /// Earliest stage begin (the attempt's spawn point).
    pub fn begin_us(&self) -> Option<u64> {
        self.stages.iter().map(|s| s.begin_us).min()
    }

    /// Latest event on the attempt: commit, squash, validation, or the
    /// last stage end.
    pub fn end_us(&self) -> Option<u64> {
        [
            self.committed_us,
            self.squashed_us,
            self.validated_us,
            self.conflict.map(|c| c.at_us),
            self.stages.iter().map(|s| s.end_us).max(),
        ]
        .into_iter()
        .flatten()
        .max()
    }

    /// Summed time blocked on upstream frames across stages.
    pub fn queue_wait_us(&self) -> u64 {
        self.stages.iter().map(StageSpan::queue_wait_us).sum()
    }

    /// Summed time inside user code across stages.
    pub fn exec_us(&self) -> u64 {
        self.stages.iter().map(StageSpan::exec_us).sum()
    }

    /// Summed time flushing validation/commit streams across stages.
    pub fn flush_us(&self) -> u64 {
        self.stages.iter().map(StageSpan::flush_us).sum()
    }

    /// Last stage end → validated: how far the try-commit replay lagged.
    pub fn validation_lag_us(&self) -> Option<u64> {
        let end = self.stages.iter().map(|s| s.end_us).max()?;
        Some(self.validated_us?.saturating_sub(end))
    }

    /// Validated → committed: held for group-commit order.
    pub fn commit_hold_us(&self) -> Option<u64> {
        Some(self.committed_us?.saturating_sub(self.validated_us?))
    }

    /// Spawn → final event.
    pub fn total_us(&self) -> u64 {
        match (self.begin_us(), self.end_us()) {
            (Some(b), Some(e)) => e.saturating_sub(b),
            _ => 0,
        }
    }

    /// Structural validity of this attempt in isolation: each stage's
    /// phases nest, stages don't run backwards in stage order, and the
    /// post-execution milestones follow the last stage end.
    ///
    /// # Errors
    ///
    /// Every violation found, human-readable.
    pub fn well_formed(&self) -> Result<(), Vec<String>> {
        let tag = format!("mtx{}#a{}", self.mtx, self.attempt);
        let mut errs = Vec::new();
        for s in &self.stages {
            if let Err(e) = s.well_formed() {
                errs.push(format!("{tag}: {e}"));
            }
        }
        for w in self.stages.windows(2) {
            if w[0].stage >= w[1].stage {
                errs.push(format!(
                    "{tag}: stages not ascending ({} then {})",
                    w[0].stage, w[1].stage
                ));
            }
        }
        let last_end = self.stages.iter().map(|s| s.end_us).max();
        if let (Some(end), Some(v)) = (last_end, self.validated_us) {
            if v < end {
                errs.push(format!(
                    "{tag}: validated at {v}us before last stage end {end}us"
                ));
            }
        }
        if let (Some(v), Some(c)) = (self.validated_us, self.committed_us) {
            if c < v {
                errs.push(format!("{tag}: committed at {c}us before validated {v}us"));
            }
        }
        if self.committed_us.is_some() && (self.conflict.is_some() || self.squashed_us.is_some()) {
            errs.push(format!("{tag}: both committed and aborted"));
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }
}

/// Checks a whole span set: every span is well-formed and, per MTX,
/// attempts are strictly increasing with non-overlapping intervals
/// (a retry can only start after the attempt it replaces ended).
///
/// # Errors
///
/// Every violation found, human-readable.
pub fn check_spans(spans: &[MtxSpan]) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();
    for s in spans {
        if let Err(mut e) = s.well_formed() {
            errs.append(&mut e);
        }
    }
    // Group attempts by mtx, in span-set order.
    let mut by_mtx: std::collections::BTreeMap<u64, Vec<&MtxSpan>> =
        std::collections::BTreeMap::new();
    for s in spans {
        by_mtx.entry(s.mtx).or_default().push(s);
    }
    for (mtx, chain) in by_mtx {
        for w in chain.windows(2) {
            let (a, b) = (w[0], w[1]);
            if b.attempt <= a.attempt {
                errs.push(format!(
                    "mtx{mtx}: attempts not strictly increasing ({} then {})",
                    a.attempt, b.attempt
                ));
            }
            if let (Some(a_end), Some(b_begin)) = (a.end_us(), b.begin_us()) {
                if b_begin < a_end {
                    errs.push(format!(
                        "mtx{mtx}: attempt {} begins at {b_begin}us inside attempt {}'s interval (ends {a_end}us)",
                        b.attempt, a.attempt
                    ));
                }
            }
            if a.committed_us.is_some() {
                errs.push(format!(
                    "mtx{mtx}: attempt {} follows already-committed attempt {}",
                    b.attempt, a.attempt
                ));
            }
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        errs.sort();
        Err(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(stage: u16, begin: u64, exec: u64, flush: u64, end: u64) -> StageSpan {
        StageSpan {
            stage,
            worker: 0,
            begin_us: begin,
            exec_begin_us: exec,
            flush_begin_us: flush,
            end_us: end,
        }
    }

    fn committed(mtx: u64, attempt: u32, base: u64) -> MtxSpan {
        let mut s = MtxSpan::new(mtx, attempt);
        s.stages
            .push(stage(0, base, base + 10, base + 60, base + 70));
        s.validated_us = Some(base + 90);
        s.committed_us = Some(base + 120);
        s
    }

    #[test]
    fn phase_decomposition_adds_up() {
        let s = committed(7, 0, 100);
        assert_eq!(s.queue_wait_us(), 10);
        assert_eq!(s.exec_us(), 50);
        assert_eq!(s.flush_us(), 10);
        assert_eq!(s.validation_lag_us(), Some(20));
        assert_eq!(s.commit_hold_us(), Some(30));
        assert_eq!(s.total_us(), 120);
        assert_eq!(s.outcome(), SpanOutcome::Committed);
        s.well_formed().unwrap();
    }

    #[test]
    fn aborted_and_incomplete_outcomes() {
        let mut a = MtxSpan::new(3, 0);
        a.stages.push(stage(0, 0, 1, 2, 3));
        a.conflict = Some(ConflictInfo {
            page: 9,
            shard: 1,
            first_writer_mtx: Some(2),
            first_writer_attempt: 0,
            at_us: 5,
        });
        assert_eq!(a.outcome(), SpanOutcome::Aborted);
        assert_eq!(a.end_us(), Some(5));

        let mut i = MtxSpan::new(4, 0);
        i.stages.push(stage(0, 0, 1, 2, 3));
        assert_eq!(i.outcome(), SpanOutcome::Incomplete);
    }

    #[test]
    fn backwards_phases_are_rejected() {
        let mut s = MtxSpan::new(1, 0);
        s.stages.push(stage(0, 10, 5, 20, 30)); // exec before begin
        let errs = s.well_formed().unwrap_err();
        assert!(errs[0].contains("phases out of order"), "{errs:?}");
    }

    #[test]
    fn validated_before_end_is_rejected() {
        let mut s = committed(1, 0, 100);
        s.validated_us = Some(100); // before stage end at 170
        let errs = s.well_formed().unwrap_err();
        assert!(errs[0].contains("before last stage end"), "{errs:?}");
    }

    #[test]
    fn retry_chain_must_order_and_not_overlap() {
        let mut a = MtxSpan::new(5, 0);
        a.stages.push(stage(0, 0, 1, 2, 10));
        a.squashed_us = Some(12);
        let b = committed(5, 1, 20);
        check_spans(&[a.clone(), b.clone()]).unwrap();

        // Same attempt number twice.
        let mut dup = b.clone();
        dup.attempt = 0;
        let errs = check_spans(&[a.clone(), dup]).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("strictly increasing")),
            "{errs:?}"
        );

        // Retry starting inside the squashed attempt's interval.
        let mut overlap = committed(5, 1, 5);
        overlap.validated_us = Some(75);
        overlap.committed_us = Some(80);
        let errs = check_spans(&[a, overlap]).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("inside attempt")),
            "{errs:?}"
        );
    }

    #[test]
    fn retry_after_commit_is_rejected() {
        let a = committed(6, 0, 0);
        let b = committed(6, 1, 200);
        let errs = check_spans(&[a, b]).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("already-committed")),
            "{errs:?}"
        );
    }

    #[test]
    fn cause_names_are_stable() {
        let names: Vec<&str> = AbortCause::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            [
                "predicted_carried_dep",
                "fault_induced_retry",
                "cross_shard_false_conflict",
                "unpredicted"
            ]
        );
        assert_eq!(AbortCause::Unpredicted.to_string(), "unpredicted");
    }
}
