//! Memory pages and page diffs.

use dsmtx_uva::PAGE_WORDS;

const WORDS: usize = PAGE_WORDS as usize;

/// One 4 KiB page: 512 eight-byte words, the unit of Copy-On-Access.
///
/// Sending a whole page in response to a single-word request is the paper's
/// constructive prefetch: nearby words are speculated to be needed soon.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    words: Box<[u64; WORDS]>,
}

impl Page {
    /// A zero-filled page, as handed out by demand-zero allocation.
    pub fn zeroed() -> Self {
        Page {
            words: Box::new([0; WORDS]),
        }
    }

    /// Reads the word at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 512`.
    #[inline]
    pub fn word(&self, index: usize) -> u64 {
        self.words[index]
    }

    /// Writes the word at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 512`.
    #[inline]
    pub fn set_word(&mut self, index: usize, value: u64) {
        self.words[index] = value;
    }

    /// Iterates over `(index, word)` pairs of non-zero words.
    pub fn nonzero_words(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.words
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, w)| w != 0)
    }

    /// Computes the word-granularity difference `self → other`.
    ///
    /// Distributed Multiversioning diffs pages like this for commit; DSMTX
    /// argues word-granularity logs beat page diffing for sparse access
    /// patterns (§6). The diff is still useful in tests as the ground truth
    /// of what changed.
    pub fn diff(&self, other: &Page) -> PageDiff {
        PageDiff {
            changes: self
                .words
                .iter()
                .zip(other.words.iter())
                .enumerate()
                .filter(|(_, (a, b))| a != b)
                .map(|(i, (_, b))| (i as u16, *b))
                .collect(),
        }
    }

    /// Applies a diff produced by [`Page::diff`].
    pub fn apply(&mut self, diff: &PageDiff) {
        for &(i, v) in &diff.changes {
            self.words[i as usize] = v;
        }
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::zeroed()
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let nz = self.nonzero_words().count();
        write!(f, "Page({nz} nonzero words)")
    }
}

/// A sparse word-granularity page delta.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PageDiff {
    changes: Vec<(u16, u64)>,
}

impl PageDiff {
    /// Number of changed words.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True when the diff changes nothing.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Iterates over `(word index, new value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.changes.iter().map(|&(i, v)| (i as usize, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_all_zero() {
        let p = Page::zeroed();
        assert_eq!(p.nonzero_words().count(), 0);
        assert_eq!(p.word(0), 0);
        assert_eq!(p.word(WORDS - 1), 0);
    }

    #[test]
    fn set_and_get() {
        let mut p = Page::zeroed();
        p.set_word(7, 42);
        p.set_word(511, u64::MAX);
        assert_eq!(p.word(7), 42);
        assert_eq!(p.word(511), u64::MAX);
        assert_eq!(p.nonzero_words().count(), 2);
    }

    #[test]
    #[should_panic]
    fn out_of_page_index_panics() {
        let p = Page::zeroed();
        let _ = p.word(WORDS);
    }

    #[test]
    fn diff_then_apply_reproduces_target() {
        let mut a = Page::zeroed();
        a.set_word(3, 10);
        a.set_word(100, 20);
        let mut b = a.clone();
        b.set_word(3, 11);
        b.set_word(200, 5);
        let d = a.diff(&b);
        assert_eq!(d.len(), 2);
        let mut a2 = a.clone();
        a2.apply(&d);
        assert_eq!(a2, b);
    }

    #[test]
    fn identical_pages_have_empty_diff() {
        let a = Page::zeroed();
        assert!(a.diff(&a.clone()).is_empty());
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Page::zeroed()).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_page() -> impl Strategy<Value = Page> {
        proptest::collection::vec((0usize..WORDS, any::<u64>()), 0..64).prop_map(|writes| {
            let mut p = Page::zeroed();
            for (i, v) in writes {
                p.set_word(i, v);
            }
            p
        })
    }

    proptest! {
        /// diff/apply is an exact inverse for arbitrary page pairs.
        #[test]
        fn diff_apply_roundtrip(a in arb_page(), b in arb_page()) {
            let d = a.diff(&b);
            let mut a2 = a.clone();
            a2.apply(&d);
            prop_assert_eq!(a2, b);
        }

        /// A diff never reports more changes than the number of differing words.
        #[test]
        fn diff_is_minimal(a in arb_page(), b in arb_page()) {
            let d = a.diff(&b);
            for (i, v) in d.iter() {
                prop_assert_ne!(a.word(i), v);
                prop_assert_eq!(b.word(i), v);
            }
        }
    }
}
