//! A worker's speculative memory: page table + ordered access log.
//!
//! All speculative loads and stores of an MTX happen in the private memory
//! of the worker executing the subTX (§3.1). [`SpecMem`] wraps the page
//! table and records every access *in program order*: stores are needed for
//! uncommitted value forwarding and group commit; loads are needed for
//! value-based validation; and the interleaving matters because the
//! try-commit unit replays the stream — a load must be checked against the
//! memory image as of that point in the program, not after later stores.
//!
//! Faults are surfaced to the caller through a `fetch` closure so the
//! runtime can perform the Copy-On-Access round trip to the commit unit.
//!
//! Uncommitted values forwarded from earlier subTXs may land on pages that
//! are not yet locally resident; they are kept in a pending overlay and
//! re-applied when the page is eventually fetched, so committed page
//! content and newer forwarded words never clobber one another.

use dsmtx_uva::{PageId, VAddr};
use fxhash::FxHashMap;

use crate::page::Page;
use crate::table::PageTable;

/// Whether an access was a load or a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Speculative load; `value` is the observed (predicted) value.
    Load,
    /// Speculative store; `value` is the stored value.
    Store,
}

/// One logged access in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRecord {
    /// Load or store.
    pub kind: AccessKind,
    /// The touched address.
    pub addr: VAddr,
    /// Stored or observed value.
    pub value: u64,
}

/// Private speculative memory of one worker.
#[derive(Debug, Default)]
pub struct SpecMem {
    table: PageTable,
    /// Forwarded words for pages not yet resident: page → (word, value) in
    /// arrival order. Fx-hashed: interior keys, replayed on the
    /// validation hot path.
    pending: FxHashMap<PageId, Vec<(usize, u64)>>,
    /// Program-ordered access log of the current subTX.
    log: Vec<AccessRecord>,
}

impl SpecMem {
    /// An empty, fully protected memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Speculatively loads the word at `addr`, logging the observation.
    ///
    /// `fetch` services a Copy-On-Access fault by producing the committed
    /// page (typically via a round trip to the commit unit).
    ///
    /// # Errors
    ///
    /// Propagates any error from `fetch`.
    pub fn read<E>(
        &mut self,
        addr: VAddr,
        fetch: impl FnOnce(PageId) -> Result<Page, E>,
    ) -> Result<u64, E> {
        self.ensure_resident(addr.page(), fetch)?;
        let value = self.table.read(addr).expect("page just ensured resident");
        self.log.push(AccessRecord {
            kind: AccessKind::Load,
            addr,
            value,
        });
        Ok(value)
    }

    /// Loads without logging — for reads the parallelization plan knows are
    /// speculation-free (e.g. provably loop-invariant data). Using this is
    /// an optimization the paper's manual parallelizations apply; misuse
    /// converts a detectable misspeculation into silent wrong output, so
    /// prefer [`SpecMem::read`].
    ///
    /// # Errors
    ///
    /// Propagates any error from `fetch`.
    pub fn read_unlogged<E>(
        &mut self,
        addr: VAddr,
        fetch: impl FnOnce(PageId) -> Result<Page, E>,
    ) -> Result<u64, E> {
        self.ensure_resident(addr.page(), fetch)?;
        Ok(self.table.read(addr).expect("page just ensured resident"))
    }

    /// Speculatively stores `value` at `addr`, logging the store.
    ///
    /// # Errors
    ///
    /// Propagates any error from `fetch` (a store to a protected page also
    /// faults, because the rest of the page must hold committed data).
    pub fn write<E>(
        &mut self,
        addr: VAddr,
        value: u64,
        fetch: impl FnOnce(PageId) -> Result<Page, E>,
    ) -> Result<(), E> {
        self.ensure_resident(addr.page(), fetch)?;
        self.table
            .write(addr, value)
            .expect("page just ensured resident");
        self.log.push(AccessRecord {
            kind: AccessKind::Store,
            addr,
            value,
        });
        Ok(())
    }

    /// Stores without logging — for per-worker private scratch (memory
    /// versioning): the value stays in this worker's version only, is
    /// never validated, forwarded, or committed, and disappears on
    /// rollback.
    ///
    /// # Errors
    ///
    /// Propagates any error from `fetch`.
    pub fn write_unlogged<E>(
        &mut self,
        addr: VAddr,
        value: u64,
        fetch: impl FnOnce(PageId) -> Result<Page, E>,
    ) -> Result<(), E> {
        self.ensure_resident(addr.page(), fetch)?;
        self.table
            .write(addr, value)
            .expect("page just ensured resident");
        Ok(())
    }

    /// Applies an uncommitted value forwarded from an earlier subTX.
    ///
    /// Not logged: the forwarding subTX already logged the store. If the
    /// page is not resident the word is kept pending and applied after the
    /// eventual COA install.
    pub fn apply_forwarded(&mut self, addr: VAddr, value: u64) {
        let page_id = addr.page();
        if self.table.is_resident(page_id) {
            self.table.write(addr, value).expect("resident");
        } else {
            self.pending
                .entry(page_id)
                .or_default()
                .push((addr.word_in_page(), value));
        }
    }

    fn ensure_resident<E>(
        &mut self,
        page_id: PageId,
        fetch: impl FnOnce(PageId) -> Result<Page, E>,
    ) -> Result<(), E> {
        if self.table.is_resident(page_id) {
            return Ok(());
        }
        let mut page = fetch(page_id)?;
        // Newer forwarded words override the committed image.
        if let Some(pending) = self.pending.remove(&page_id) {
            for (word, value) in pending {
                page.set_word(word, value);
            }
        }
        self.table.install(page_id, page);
        Ok(())
    }

    /// Drains the program-ordered access log (end of subTX).
    pub fn drain_log(&mut self) -> Vec<AccessRecord> {
        std::mem::take(&mut self.log)
    }

    /// Views the access log without draining.
    pub fn log(&self) -> &[AccessRecord] {
        &self.log
    }

    /// Extracts only the stores of `records`, preserving program order.
    pub fn stores_of(records: &[AccessRecord]) -> impl Iterator<Item = (VAddr, u64)> + '_ {
        records
            .iter()
            .filter(|r| r.kind == AccessKind::Store)
            .map(|r| (r.addr, r.value))
    }

    /// Rolls back all speculative state: re-protects every page, discards
    /// pending forwards and the access log. Returns the number of pages
    /// dropped (§4.3 step 4 re-installs access protection on the heap).
    pub fn rollback(&mut self) -> usize {
        self.pending.clear();
        self.log.clear();
        self.table.protect_all()
    }

    /// Number of COA installs performed so far.
    pub fn faults_served(&self) -> u64 {
        self.table.faults_served()
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.table.resident_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmtx_uva::OwnerId;
    use std::convert::Infallible;

    fn a(off: u64) -> VAddr {
        VAddr::new(OwnerId(0), off)
    }

    fn zero_fetch(_: PageId) -> Result<Page, Infallible> {
        Ok(Page::zeroed())
    }

    fn committed_fetch(value: u64) -> impl Fn(PageId) -> Result<Page, Infallible> {
        move |_| {
            let mut p = Page::zeroed();
            for w in 0..8 {
                p.set_word(w, value);
            }
            Ok(p)
        }
    }

    #[test]
    fn read_fetches_and_logs() {
        let mut m = SpecMem::new();
        let v = m.read(a(8), committed_fetch(9)).unwrap();
        assert_eq!(v, 9);
        assert_eq!(
            m.log(),
            &[AccessRecord {
                kind: AccessKind::Load,
                addr: a(8),
                value: 9
            }]
        );
        assert_eq!(m.faults_served(), 1);
        // Second read of the same page: no new fault.
        let _ = m.read(a(16), committed_fetch(9)).unwrap();
        assert_eq!(m.faults_served(), 1);
    }

    #[test]
    fn write_then_read_sees_own_store_in_order() {
        let mut m = SpecMem::new();
        let before = m.read(a(8), zero_fetch).unwrap();
        m.write(a(8), 5, zero_fetch).unwrap();
        let after = m.read(a(8), zero_fetch).unwrap();
        assert_eq!(before, 0);
        assert_eq!(after, 5);
        let log = m.drain_log();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].kind, AccessKind::Load);
        assert_eq!(log[0].value, 0);
        assert_eq!(log[1].kind, AccessKind::Store);
        assert_eq!(log[2].kind, AccessKind::Load);
        assert_eq!(log[2].value, 5);
        assert!(m.log().is_empty());
    }

    #[test]
    fn forwarded_value_visible_before_fetch() {
        let mut m = SpecMem::new();
        // Earlier subTX forwards a store to a page we have never touched.
        m.apply_forwarded(a(8), 42);
        // The later fetch returns committed content; the forwarded word
        // must override it, other words must keep committed values.
        let v = m.read(a(8), committed_fetch(7)).unwrap();
        assert_eq!(v, 42);
        let other = m.read(a(16), committed_fetch(7)).unwrap();
        assert_eq!(other, 7);
    }

    #[test]
    fn forwarded_value_applies_directly_when_resident() {
        let mut m = SpecMem::new();
        let _ = m.read(a(8), zero_fetch).unwrap();
        m.apply_forwarded(a(8), 13);
        assert_eq!(m.read(a(8), zero_fetch).unwrap(), 13);
    }

    #[test]
    fn forwarded_values_are_not_logged() {
        let mut m = SpecMem::new();
        m.apply_forwarded(a(8), 1);
        assert!(m.log().is_empty());
    }

    #[test]
    fn later_forward_wins_over_earlier_pending() {
        let mut m = SpecMem::new();
        m.apply_forwarded(a(8), 1);
        m.apply_forwarded(a(8), 2);
        assert_eq!(m.read(a(8), zero_fetch).unwrap(), 2);
    }

    #[test]
    fn rollback_discards_everything() {
        let mut m = SpecMem::new();
        m.write(a(8), 5, zero_fetch).unwrap();
        m.apply_forwarded(a(4096 * 3), 9);
        assert_eq!(m.rollback(), 1);
        assert!(m.log().is_empty());
        assert_eq!(m.resident_pages(), 0);
        // After rollback the next access refetches committed state and the
        // pending forward is gone.
        assert_eq!(m.read(a(4096 * 3), committed_fetch(7)).unwrap(), 7);
    }

    #[test]
    fn stores_of_filters_and_orders() {
        let mut m = SpecMem::new();
        let _ = m.read(a(8), zero_fetch).unwrap();
        m.write(a(8), 1, zero_fetch).unwrap();
        m.write(a(16), 2, zero_fetch).unwrap();
        let log = m.drain_log();
        let stores: Vec<_> = SpecMem::stores_of(&log).collect();
        assert_eq!(stores, vec![(a(8), 1), (a(16), 2)]);
    }

    #[test]
    fn write_unlogged_is_private() {
        let mut m = SpecMem::new();
        m.write_unlogged(a(8), 9, zero_fetch).unwrap();
        assert!(m.log().is_empty());
        assert_eq!(m.read_unlogged(a(8), zero_fetch).unwrap(), 9);
        m.rollback();
        assert_eq!(m.read_unlogged(a(8), zero_fetch).unwrap(), 0);
    }

    #[test]
    fn read_unlogged_leaves_no_trace() {
        let mut m = SpecMem::new();
        let _ = m.read_unlogged(a(8), committed_fetch(3)).unwrap();
        assert!(m.log().is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use dsmtx_uva::OwnerId;
    use proptest::prelude::*;
    use std::convert::Infallible;

    fn a(off: u64) -> VAddr {
        VAddr::new(OwnerId(0), off * 8)
    }

    proptest! {
        /// SpecMem behaves like a plain map from the program's perspective:
        /// any sequence of reads/writes observes exactly the last local
        /// write (or the committed value from the fetch closure).
        #[test]
        fn reads_match_reference_model(
            ops in proptest::collection::vec((0u64..2048, any::<u64>(), any::<bool>()), 1..200),
            committed in any::<u64>(),
        ) {
            let mut m = SpecMem::new();
            let mut model: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
            let fetch = |_: PageId| -> Result<Page, Infallible> {
                let mut p = Page::zeroed();
                for w in 0..512 {
                    p.set_word(w, committed);
                }
                Ok(p)
            };
            for (word, value, is_write) in ops {
                if is_write {
                    m.write(a(word), value, fetch).unwrap();
                    model.insert(word, value);
                } else {
                    let got = m.read(a(word), fetch).unwrap();
                    let want = model.get(&word).copied().unwrap_or(committed);
                    prop_assert_eq!(got, want);
                }
            }
        }

        /// The access log replayed against the committed image reproduces
        /// the final private state for every written address.
        #[test]
        fn log_replay_reconstructs_state(
            ops in proptest::collection::vec((0u64..512, any::<u64>()), 1..100),
        ) {
            let mut m = SpecMem::new();
            let fetch = |_: PageId| -> Result<Page, Infallible> { Ok(Page::zeroed()) };
            for (word, value) in &ops {
                m.write(a(*word), *value, fetch).unwrap();
            }
            let log = m.drain_log();
            let mut replay: std::collections::HashMap<VAddr, u64> = Default::default();
            for (addr, value) in SpecMem::stores_of(&log) {
                replay.insert(addr, value);
            }
            for (word, _) in &ops {
                let live = m.read_unlogged(a(*word), fetch).unwrap();
                prop_assert_eq!(replay[&a(*word)], live);
            }
        }
    }
}
