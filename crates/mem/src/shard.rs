//! Address-partitioned sharding of speculation-unit work.
//!
//! §3.2 of the paper notes the validation and commit "algorithms … are
//! parallelizable": value-based validation of a load depends only on the
//! prior stores to the *same address*, so the access stream of a subTX can
//! be split across N try-commit shards as long as every access to a given
//! page always lands on the same shard. [`shard_of`] is that routing
//! function — a pure, process-independent hash partition of [`PageId`]
//! space — and [`partition_stream`] applies it to a drained access log,
//! preserving program order within each shard.
//!
//! Stability matters twice over: workers and try-commit shards live on
//! different threads (in the paper, different nodes) and must agree on the
//! partition without communicating, and the differential tests assert that
//! runs at different shard counts commit byte-identical memory — which
//! only holds if routing is deterministic.

use std::collections::BTreeMap;

use dsmtx_uva::PageId;

use crate::spec::AccessRecord;

/// Fibonacci-hashing multiplier (2^64 / φ), chosen so that the high bits
/// mix even when page ids are small and sequential — the common case for
/// dense arrays starting at offset 0.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// The try-commit shard responsible for `page` when `n_shards` shards run.
///
/// Always 0 for `n_shards <= 1` (the single-unit configuration). The
/// function is pure and stable: every thread and every run computes the
/// same partition.
#[inline]
pub fn shard_of(page: PageId, n_shards: usize) -> usize {
    if n_shards <= 1 {
        return 0;
    }
    let mixed = (page.0.wrapping_mul(GOLDEN) >> 32) as usize;
    mixed % n_shards
}

/// An explicit page→shard placement shipped with a plan, overriding the
/// hash partition of [`shard_of`] for the pages it names.
///
/// The map is profile-guided: [`ShardMap::balance`] weighs a recorded
/// store stream and greedily places the heaviest pages on the
/// least-loaded shard, which evens out the skew a pure hash can leave
/// when one or two pages carry most of the stores. Pages outside the
/// map fall back to the hash, so the map stays small and any page is
/// still routable.
///
/// Overrides are recorded against a *nominal* shard count and re-wrapped
/// with `% n_shards` at lookup, so one map stays consistent at every
/// shard count: all threads agree on the partition as long as they hold
/// the same map, which is all value-based validation needs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardMap {
    /// Raw page index (`PageId.0`) → preferred shard.
    overrides: BTreeMap<u64, usize>,
}

impl ShardMap {
    /// An empty map: every page falls back to [`shard_of`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins `page` to `shard` (re-wrapped `% n_shards` at lookup).
    pub fn assign(&mut self, page: PageId, shard: usize) {
        self.overrides.insert(page.0, shard);
    }

    /// The override for `page`, if one was recorded.
    pub fn get(&self, page: PageId) -> Option<usize> {
        self.overrides.get(&page.0).copied()
    }

    /// Number of pages with an explicit placement.
    pub fn len(&self) -> usize {
        self.overrides.len()
    }

    /// True when no page has an explicit placement.
    pub fn is_empty(&self) -> bool {
        self.overrides.is_empty()
    }

    /// Pages with explicit placements, ascending.
    pub fn pages(&self) -> impl Iterator<Item = PageId> + '_ {
        self.overrides.keys().map(|&p| PageId(p))
    }

    /// The shard for `page` under this map: the recorded override
    /// (wrapped into range) when present, the hash partition otherwise.
    #[inline]
    pub fn shard_of(&self, page: PageId, n_shards: usize) -> usize {
        if n_shards <= 1 {
            return 0;
        }
        match self.overrides.get(&page.0) {
            Some(&s) => s % n_shards,
            None => shard_of(page, n_shards),
        }
    }

    /// Builds a balanced placement from a recorded (filtered) access
    /// stream: per-page store counts, heaviest page first, each placed
    /// on the currently least-loaded of `n_shards` bins (lowest index on
    /// ties). Deterministic — count ties break toward the lower page id.
    pub fn balance(records: &[AccessRecord], n_shards: usize) -> Self {
        let n = n_shards.max(1);
        let mut per_page: BTreeMap<u64, u64> = BTreeMap::new();
        for r in records {
            if r.kind == crate::spec::AccessKind::Store {
                *per_page.entry(r.addr.page().0).or_insert(0) += 1;
            }
        }
        let mut weighted: Vec<(u64, u64)> = per_page.into_iter().collect();
        weighted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut loads = vec![0u64; n];
        let mut map = Self::new();
        for (page, count) in weighted {
            let (shard, _) = loads
                .iter()
                .enumerate()
                .min_by_key(|&(s, &l)| (l, s))
                .expect("n >= 1 bins");
            loads[shard] += count;
            map.assign(PageId(page), shard);
        }
        map
    }

    /// Per-shard store counts under this map — the map-aware analogue
    /// of [`store_shard_load`], for lint-time what-if histograms.
    pub fn store_shard_load(&self, records: &[AccessRecord], n_shards: usize) -> Vec<u64> {
        let mut counts = vec![0u64; n_shards.max(1)];
        for r in records {
            if r.kind == crate::spec::AccessKind::Store {
                counts[self.shard_of(r.addr.page(), n_shards)] += 1;
            }
        }
        counts
    }
}

/// Routes `page` through `map` when one is present, else [`shard_of`] —
/// the single lookup both workers and analysis passes call so the
/// partition stays agreed-upon everywhere.
#[inline]
pub fn route(map: Option<&ShardMap>, page: PageId, n_shards: usize) -> usize {
    match map {
        Some(m) => m.shard_of(page, n_shards),
        None => shard_of(page, n_shards),
    }
}

/// Splits a program-ordered access stream into `n_shards` per-shard
/// streams routed by [`shard_of`].
///
/// Relative order of records within each returned stream matches the
/// input stream, which is all value-based validation needs: a load of
/// page P is validated against exactly the stores to page P, and those
/// are on the same shard in the same order.
pub fn partition_stream(records: &[AccessRecord], n_shards: usize) -> Vec<Vec<AccessRecord>> {
    let mut out: Vec<Vec<AccessRecord>> = vec![Vec::new(); n_shards.max(1)];
    for r in records {
        out[shard_of(r.addr.page(), n_shards)].push(*r);
    }
    out
}

/// Per-shard speculative-store counts for a program-ordered access
/// stream at a hypothetical shard count — the introspection the
/// partition linter's `ShardHotspot` check runs without spinning up any
/// try-commit units. Index `s` holds the number of stores [`shard_of`]
/// would route to shard `s`.
pub fn store_shard_load(records: &[AccessRecord], n_shards: usize) -> Vec<u64> {
    let mut counts = vec![0u64; n_shards.max(1)];
    for r in records {
        if r.kind == crate::spec::AccessKind::Store {
            counts[shard_of(r.addr.page(), n_shards)] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AccessKind;
    use dsmtx_uva::{OwnerId, VAddr, PAGE_BYTES};

    fn rec(page: u64, value: u64, kind: AccessKind) -> AccessRecord {
        AccessRecord {
            addr: VAddr::new(OwnerId(0), page * PAGE_BYTES),
            value,
            kind,
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        for p in 0..64 {
            assert_eq!(shard_of(PageId(p), 0), 0);
            assert_eq!(shard_of(PageId(p), 1), 0);
        }
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for n in [2usize, 3, 4, 7, 8] {
            for p in 0..256u64 {
                let s = shard_of(PageId(p), n);
                assert!(s < n);
                assert_eq!(s, shard_of(PageId(p), n), "must be deterministic");
            }
        }
    }

    #[test]
    fn sequential_pages_spread_across_shards() {
        // Dense sequential page ids (the common array layout) must not
        // all collapse onto one shard.
        for n in [2usize, 4, 8] {
            let mut counts = vec![0usize; n];
            for p in 0..1024u64 {
                counts[shard_of(PageId(p), n)] += 1;
            }
            for (s, &c) in counts.iter().enumerate() {
                assert!(c > 0, "shard {s} of {n} received no pages");
                // Within 25% of a perfectly even split.
                let even = 1024 / n;
                assert!(
                    c <= even + even / 4,
                    "shard {s} of {n} got {c}/1024 pages (even split {even})"
                );
            }
        }
    }

    #[test]
    fn store_shard_load_counts_only_stores() {
        let stream: Vec<AccessRecord> = (0..40)
            .map(|i| {
                rec(
                    i % 5,
                    i,
                    if i % 2 == 0 {
                        AccessKind::Store
                    } else {
                        AccessKind::Load
                    },
                )
            })
            .collect();
        for n in [1usize, 2, 4] {
            let counts = store_shard_load(&stream, n);
            assert_eq!(counts.len(), n);
            assert_eq!(counts.iter().sum::<u64>(), 20, "20 stores in the stream");
            // Every store must be counted on exactly the shard of its page.
            let parts = partition_stream(&stream, n);
            for (s, part) in parts.iter().enumerate() {
                let stores = part.iter().filter(|r| r.kind == AccessKind::Store).count() as u64;
                assert_eq!(counts[s], stores);
            }
        }
    }

    #[test]
    fn shard_map_overrides_and_falls_back() {
        let mut map = ShardMap::new();
        assert!(map.is_empty());
        map.assign(PageId(3), 1);
        map.assign(PageId(9), 5);
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(PageId(3)), Some(1));
        assert_eq!(map.get(PageId(4)), None);
        // Override wraps into range at lookup.
        assert_eq!(map.shard_of(PageId(9), 2), 1);
        assert_eq!(map.shard_of(PageId(9), 4), 1);
        // Unmapped pages fall back to the hash partition.
        for p in 0..32u64 {
            if map.get(PageId(p)).is_none() {
                for n in [2usize, 4] {
                    assert_eq!(map.shard_of(PageId(p), n), shard_of(PageId(p), n));
                }
            }
        }
        // n <= 1 always routes to 0, overrides included.
        assert_eq!(map.shard_of(PageId(3), 1), 0);
        assert_eq!(route(Some(&map), PageId(3), 2), 1);
        assert_eq!(route(None, PageId(3), 2), shard_of(PageId(3), 2));
    }

    #[test]
    fn balance_evens_a_skewed_stream() {
        // Eight equal-weight pages that the hash partition routes onto
        // one shard at n=2; the balanced map must split them evenly at
        // both 2 and 4 shards.
        let pages: Vec<u64> = (0..64)
            .filter(|&p| shard_of(PageId(p), 2) == 0)
            .take(8)
            .collect();
        let mut stream = Vec::new();
        for &p in &pages {
            for i in 0..16 {
                stream.push(rec(p, i, AccessKind::Store));
            }
        }
        let hashed = store_shard_load(&stream, 2);
        assert_eq!(hashed[0], stream.len() as u64, "planted skew missing");

        let map = ShardMap::balance(&stream, 4);
        assert_eq!(map.len(), pages.len());
        for n in [2usize, 4] {
            let counts = map.store_shard_load(&stream, n);
            assert_eq!(counts.iter().sum::<u64>(), stream.len() as u64);
            let max = *counts.iter().max().unwrap();
            let min = *counts.iter().min().unwrap();
            assert!(
                max - min <= 16,
                "balanced map still skewed at n={n}: {counts:?}"
            );
        }
    }

    #[test]
    fn balance_is_deterministic() {
        let stream: Vec<AccessRecord> = (0..200)
            .map(|i| rec(i % 13, i, AccessKind::Store))
            .collect();
        assert_eq!(ShardMap::balance(&stream, 4), ShardMap::balance(&stream, 4));
    }

    #[test]
    fn partition_preserves_order_and_covers_input() {
        let stream: Vec<AccessRecord> = (0..100)
            .map(|i| {
                rec(
                    i % 7,
                    i,
                    if i % 3 == 0 {
                        AccessKind::Store
                    } else {
                        AccessKind::Load
                    },
                )
            })
            .collect();
        for n in [1usize, 2, 4] {
            let parts = partition_stream(&stream, n);
            assert_eq!(parts.len(), n);
            // Every record lands on exactly the shard of its page.
            let total: usize = parts.iter().map(Vec::len).sum();
            assert_eq!(total, stream.len());
            for (s, part) in parts.iter().enumerate() {
                for r in part {
                    assert_eq!(shard_of(r.addr.page(), n), s);
                }
                // Order within the shard follows program order (values
                // were assigned monotonically).
                for w in part.windows(2) {
                    assert!(w[0].value < w[1].value);
                }
            }
        }
    }
}
