//! Worker page tables with access protection.
//!
//! At the start of parallel execution each worker's heap is fully
//! access-protected (§4.2): every page is [`PageState::Unmapped`]. The
//! first touch of a word on an unmapped page raises a [`PageFault`]; the
//! runtime services it by asking the commit unit for the committed page
//! (Copy-On-Access) and installing it. Rollback calls
//! [`PageTable::protect_all`], dropping all resident pages so that COA
//! refetches committed state.

use dsmtx_uva::{PageId, VAddr};
use fxhash::FxHashMap;

use crate::page::Page;

/// Raised when an access touches a page that is not locally resident.
///
/// Carries the page that must be fetched from its home before the access
/// can retry — the software analogue of an `mprotect` fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageFault(pub PageId);

impl std::fmt::Display for PageFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page fault on {}", self.0)
    }
}

impl std::error::Error for PageFault {}

/// Residency state of one page in a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageState {
    /// Access-protected: the next touch faults and triggers COA.
    Unmapped,
    /// Locally resident; `dirty` records whether a speculative store hit it.
    Resident {
        /// The local copy of the page.
        page: Page,
        /// True once any word was speculatively written.
        dirty: bool,
    },
}

/// A worker's page table.
///
/// Pages not present in the map are implicitly [`PageState::Unmapped`];
/// `protect_all` therefore just clears the map.
#[derive(Debug, Default)]
pub struct PageTable {
    /// Fx-hashed: `PageId` keys are interior and trusted, and the table
    /// sits on the per-access fast path of every speculative load/store.
    pages: FxHashMap<PageId, (Page, bool)>,
    /// Pages fetched via COA since the last reset (for statistics).
    faults_served: u64,
}

impl PageTable {
    /// An empty, fully protected table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`PageFault`] when the containing page is unmapped.
    #[inline]
    pub fn read(&self, addr: VAddr) -> Result<u64, PageFault> {
        let page_id = addr.page();
        match self.pages.get(&page_id) {
            Some((page, _)) => Ok(page.word(addr.word_in_page())),
            None => Err(PageFault(page_id)),
        }
    }

    /// Writes the word at `addr`, marking the page dirty.
    ///
    /// # Errors
    ///
    /// Returns [`PageFault`] when the containing page is unmapped: DSMTX
    /// fetches the committed page even on a write so that the page's other
    /// words stay coherent.
    #[inline]
    pub fn write(&mut self, addr: VAddr, value: u64) -> Result<(), PageFault> {
        let page_id = addr.page();
        match self.pages.get_mut(&page_id) {
            Some((page, dirty)) => {
                page.set_word(addr.word_in_page(), value);
                *dirty = true;
                Ok(())
            }
            None => Err(PageFault(page_id)),
        }
    }

    /// Installs a page fetched via Copy-On-Access. The page starts clean.
    pub fn install(&mut self, id: PageId, page: Page) {
        self.faults_served += 1;
        self.pages.insert(id, (page, false));
    }

    /// Writes a word into a page that the runtime knows is being created
    /// locally (e.g. the target of forwarded uncommitted values), mapping a
    /// zero page if absent instead of faulting.
    pub fn write_or_map_zero(&mut self, addr: VAddr, value: u64) {
        let page_id = addr.page();
        let (page, dirty) = self
            .pages
            .entry(page_id)
            .or_insert_with(|| (Page::zeroed(), false));
        page.set_word(addr.word_in_page(), value);
        *dirty = true;
    }

    /// Re-protects the entire heap: every page becomes unmapped, exactly
    /// what recovery step 4 of §4.3 does. Returns the number of pages
    /// dropped.
    pub fn protect_all(&mut self) -> usize {
        let n = self.pages.len();
        self.pages.clear();
        n
    }

    /// State of the page containing nothing beyond residency and dirtiness.
    pub fn state(&self, id: PageId) -> PageState {
        match self.pages.get(&id) {
            Some((page, dirty)) => PageState::Resident {
                page: page.clone(),
                dirty: *dirty,
            },
            None => PageState::Unmapped,
        }
    }

    /// True when the page is resident.
    pub fn is_resident(&self, id: PageId) -> bool {
        self.pages.contains_key(&id)
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of COA installs since construction.
    pub fn faults_served(&self) -> u64 {
        self.faults_served
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmtx_uva::OwnerId;

    fn addr(owner: u16, off: u64) -> VAddr {
        VAddr::new(OwnerId(owner), off)
    }

    #[test]
    fn fresh_table_faults_on_read_and_write() {
        let mut t = PageTable::new();
        let a = addr(1, 64);
        assert_eq!(t.read(a), Err(PageFault(a.page())));
        assert_eq!(t.write(a, 9), Err(PageFault(a.page())));
    }

    #[test]
    fn install_then_access() {
        let mut t = PageTable::new();
        let a = addr(1, 64);
        let mut p = Page::zeroed();
        p.set_word(a.word_in_page(), 123);
        t.install(a.page(), p);
        assert_eq!(t.read(a).unwrap(), 123);
        t.write(a, 124).unwrap();
        assert_eq!(t.read(a).unwrap(), 124);
        assert!(matches!(
            t.state(a.page()),
            PageState::Resident { dirty: true, .. }
        ));
    }

    #[test]
    fn install_starts_clean() {
        let mut t = PageTable::new();
        let a = addr(0, 0);
        t.install(a.page(), Page::zeroed());
        assert!(matches!(
            t.state(a.page()),
            PageState::Resident { dirty: false, .. }
        ));
    }

    #[test]
    fn protect_all_reprotects_everything() {
        let mut t = PageTable::new();
        let a = addr(2, 0);
        let b = addr(2, 8192);
        t.install(a.page(), Page::zeroed());
        t.install(b.page(), Page::zeroed());
        assert_eq!(t.resident_pages(), 2);
        assert_eq!(t.protect_all(), 2);
        assert_eq!(t.resident_pages(), 0);
        assert_eq!(t.read(a), Err(PageFault(a.page())));
    }

    #[test]
    fn write_or_map_zero_avoids_fault() {
        let mut t = PageTable::new();
        let a = addr(3, 16);
        t.write_or_map_zero(a, 77);
        assert_eq!(t.read(a).unwrap(), 77);
        // Other words of the mapped page read as zero.
        assert_eq!(t.read(a.add_words(1)).unwrap(), 0);
    }

    #[test]
    fn faults_served_counts_installs() {
        let mut t = PageTable::new();
        assert_eq!(t.faults_served(), 0);
        t.install(addr(0, 0).page(), Page::zeroed());
        t.install(addr(0, 4096).page(), Page::zeroed());
        assert_eq!(t.faults_served(), 2);
    }

    #[test]
    fn distinct_owners_map_distinct_pages() {
        let mut t = PageTable::new();
        let a = addr(1, 0);
        let b = addr(2, 0);
        t.write_or_map_zero(a, 1);
        assert!(t.is_resident(a.page()));
        assert!(!t.is_resident(b.page()));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use dsmtx_uva::OwnerId;
    use proptest::prelude::*;

    proptest! {
        /// The page table is exactly a lazy copy of a backing image: after
        /// installing on fault, reads always match the backing store
        /// overlaid with local writes.
        #[test]
        fn table_matches_overlay_model(
            ops in proptest::collection::vec((0u64..1024, any::<u64>(), any::<bool>()), 1..150),
            backing in any::<u64>(),
        ) {
            let mut t = PageTable::new();
            let mut model: std::collections::HashMap<u64, u64> = Default::default();
            for (word, value, is_write) in ops {
                let addr = VAddr::new(OwnerId(1), word * 8);
                if is_write {
                    if !t.is_resident(addr.page()) {
                        let mut p = Page::zeroed();
                        for w in 0..512 {
                            p.set_word(w, backing);
                        }
                        t.install(addr.page(), p);
                    }
                    t.write(addr, value).unwrap();
                    model.insert(word, value);
                } else {
                    let got = match t.read(addr) {
                        Ok(v) => v,
                        Err(PageFault(page)) => {
                            let mut p = Page::zeroed();
                            for w in 0..512 {
                                p.set_word(w, backing);
                            }
                            t.install(page, p);
                            t.read(addr).unwrap()
                        }
                    };
                    let want = model.get(&word).copied().unwrap_or(backing);
                    prop_assert_eq!(got, want);
                }
            }
            // protect_all resets everything to faulting.
            t.protect_all();
            prop_assert_eq!(t.resident_pages(), 0);
        }
    }
}
