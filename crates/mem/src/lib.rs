//! Versioned speculative memory for DSMTX.
//!
//! Every DSMTX thread executes against a *private* software memory — the
//! stand-in for the private physical address space of a cluster node. The
//! pieces:
//!
//! * [`page::Page`] — a 4 KiB page of 512 words, the Copy-On-Access
//!   transfer unit.
//! * [`table::PageTable`] — a worker's page table. Pages start
//!   [`table::PageState::Unmapped`] (the paper's access-protected state);
//!   the first touch raises a [`PageFault`] which the runtime services by
//!   fetching the committed page from the commit unit. Rollback re-protects
//!   everything by dropping resident pages.
//! * [`spec::SpecMem`] — a page table plus read/write logs: speculative
//!   stores are recorded for uncommitted-value forwarding and commit,
//!   speculative loads are recorded for value-based validation by the
//!   try-commit unit.
//! * [`master::MasterMem`] — the commit unit's committed image. Fresh pages
//!   are zero-filled, mirroring demand-zero allocation.
//!
//! Memory versioning falls out of this structure: each worker's private
//! pages are an independent version of the data, so false (anti/output)
//! memory dependences between MTXs never manifest — exactly the "multiple
//! versions of the block array" behaviour the paper describes for
//! `164.gzip` and `256.bzip2`.

//! # Example
//!
//! ```
//! use dsmtx_mem::{MasterMem, SpecMem};
//! use dsmtx_uva::{OwnerId, VAddr};
//! # use dsmtx_mem::Page;
//!
//! // The commit unit owns committed memory ...
//! let mut master = MasterMem::new();
//! let addr = VAddr::new(OwnerId(0), 8);
//! master.write(addr, 7);
//!
//! // ... and a worker speculates against its private view, faulting
//! // committed pages in on first touch (Copy-On-Access).
//! let mut spec = SpecMem::new();
//! let v = spec.read(addr, |page| Ok::<Page, std::convert::Infallible>(master.page(page)))?;
//! assert_eq!(v, 7);
//! // The access was logged for validation by the try-commit unit.
//! assert_eq!(spec.log().len(), 1);
//! # Ok::<(), std::convert::Infallible>(())
//! ```

pub mod cache;
pub mod log;
pub mod master;
pub mod page;
pub mod shard;
pub mod spec;
pub mod table;

pub use cache::PageCache;
pub use log::{ReadLog, WriteLog};
pub use master::MasterMem;
pub use page::{Page, PageDiff};
pub use shard::{partition_stream, route, shard_of, store_shard_load, ShardMap};
pub use spec::{AccessKind, AccessRecord, SpecMem};
pub use table::{PageFault, PageState, PageTable};
