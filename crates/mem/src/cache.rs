//! Worker-side Copy-On-Access page cache.
//!
//! COA fetches pull committed pages at page granularity — the paper's
//! "page granularity doubles as prefetching". This cache turns that into
//! cross-iteration (and cross-recovery) reuse: every fetched page is
//! retained in its *pristine* committed form, tagged with the commit
//! epoch the reply carried. When speculative state is rolled back and the
//! page is faulted again, the worker revalidates the cached copy against
//! the commit unit's per-page modification epochs — a 16-byte round trip
//! instead of a 4 KiB page transfer whenever the page has not been
//! committed to since.
//!
//! The cache never affects correctness: a copy is served locally only when
//! its tag equals the newest epoch the worker has seen, and over the wire
//! the commit unit confirms freshness before the copy is reused. A copy
//! reused while the worker's epoch view lags behind the commit unit can at
//! worst reproduce a value-speculation miss that value validation already
//! catches — the same window every COA fetch has always had.

use dsmtx_uva::PageId;
use fxhash::FxHashMap;

use crate::page::Page;

/// One retained committed page and the commit epoch it was current at.
#[derive(Debug, Clone)]
struct CachedPage {
    epoch: u64,
    page: Page,
}

/// Pristine committed pages retained across speculative rollbacks, keyed
/// by page id and tagged with the commit epoch of the COA reply that
/// delivered (or last revalidated) them.
#[derive(Debug, Default)]
pub struct PageCache {
    entries: FxHashMap<PageId, CachedPage>,
    hits: u64,
    misses: u64,
    stale: u64,
}

impl PageCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The epoch tag of the cached copy of `id`, if one is retained.
    pub fn epoch_of(&self, id: PageId) -> Option<u64> {
        self.entries.get(&id).map(|c| c.epoch)
    }

    /// Serves the cached copy of `id` (the caller has established it is
    /// current). Counts a hit.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not cached; guard with [`PageCache::epoch_of`].
    pub fn serve(&mut self, id: PageId) -> Page {
        self.hits += 1;
        self.entries[&id].page.clone()
    }

    /// Re-tags the cached copy of `id` after the commit unit confirmed it
    /// is still the current committed image, and serves it. Counts a hit
    /// (the page payload never crossed the wire).
    ///
    /// # Panics
    ///
    /// Panics when `id` is not cached.
    pub fn revalidate(&mut self, id: PageId, epoch: u64) -> Page {
        let entry = self
            .entries
            .get_mut(&id)
            .expect("revalidate of uncached page");
        entry.epoch = epoch;
        self.hits += 1;
        entry.page.clone()
    }

    /// Installs a freshly fetched committed page. Counts a miss when the
    /// page was not cached, a stale refetch when it replaced an outdated
    /// copy.
    pub fn install(&mut self, id: PageId, epoch: u64, page: Page) {
        if self
            .entries
            .insert(id, CachedPage { epoch, page })
            .is_some()
        {
            self.stale += 1;
        } else {
            self.misses += 1;
        }
    }

    /// Number of retained pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fetches served from the cache without a page payload on the wire
    /// (local serves + wire revalidations).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Full-page fetches of pages the cache did not hold.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Full-page refetches that replaced an outdated cached copy.
    pub fn stale(&self) -> u64 {
        self.stale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with(word: u64) -> Page {
        let mut p = Page::zeroed();
        p.set_word(0, word);
        p
    }

    #[test]
    fn install_then_serve_returns_the_pristine_copy() {
        let mut cache = PageCache::new();
        cache.install(PageId(7), 3, page_with(42));
        assert_eq!(cache.epoch_of(PageId(7)), Some(3));
        assert_eq!(cache.epoch_of(PageId(8)), None);
        let p = cache.serve(PageId(7));
        assert_eq!(p.word(0), 42);
        assert_eq!((cache.hits(), cache.misses(), cache.stale()), (1, 1, 0));
    }

    #[test]
    fn revalidate_retags_and_counts_a_hit() {
        let mut cache = PageCache::new();
        cache.install(PageId(7), 3, page_with(42));
        let p = cache.revalidate(PageId(7), 9);
        assert_eq!(p.word(0), 42);
        assert_eq!(cache.epoch_of(PageId(7)), Some(9));
        assert_eq!((cache.hits(), cache.misses(), cache.stale()), (1, 1, 0));
    }

    #[test]
    fn reinstall_counts_a_stale_refetch() {
        let mut cache = PageCache::new();
        cache.install(PageId(7), 3, page_with(42));
        cache.install(PageId(7), 8, page_with(43));
        assert_eq!(cache.serve(PageId(7)).word(0), 43);
        assert_eq!((cache.misses(), cache.stale()), (1, 1));
        assert_eq!(cache.len(), 1);
    }
}
