//! Read and write logs.
//!
//! Speculative stores are logged so they can be forwarded — to later
//! subTXs (uncommitted value forwarding), to the try-commit unit (for
//! validation against later loads), and to the commit unit (for group
//! transaction commit). Speculative loads are logged as `(addr, observed)`
//! pairs; the try-commit unit treats the observed value as a prediction and
//! flags misspeculation when the committed value differs (§3.1).

use dsmtx_uva::VAddr;

/// One logged memory access: the address and the value stored or observed.
pub type Access = (VAddr, u64);

/// Log of speculative stores in program order.
///
/// Program order matters: group transaction commit replays stores in order
/// so the *last* store to an address wins.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteLog {
    entries: Vec<Access>,
}

impl WriteLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a store.
    #[inline]
    pub fn record(&mut self, addr: VAddr, value: u64) {
        self.entries.push((addr, value));
    }

    /// Removes and returns all entries in program order.
    pub fn drain(&mut self) -> Vec<Access> {
        std::mem::take(&mut self.entries)
    }

    /// Views the entries without draining.
    pub fn entries(&self) -> &[Access] {
        &self.entries
    }

    /// Number of logged stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Discards all entries (rollback).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Log of speculative loads: each entry predicts the committed value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadLog {
    entries: Vec<Access>,
}

impl ReadLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a load observation.
    #[inline]
    pub fn record(&mut self, addr: VAddr, observed: u64) {
        self.entries.push((addr, observed));
    }

    /// Removes and returns all entries in program order.
    pub fn drain(&mut self) -> Vec<Access> {
        std::mem::take(&mut self.entries)
    }

    /// Views the entries without draining.
    pub fn entries(&self) -> &[Access] {
        &self.entries
    }

    /// Number of logged loads.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Discards all entries (rollback).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmtx_uva::OwnerId;

    fn a(off: u64) -> VAddr {
        VAddr::new(OwnerId(0), off)
    }

    #[test]
    fn write_log_preserves_program_order() {
        let mut log = WriteLog::new();
        log.record(a(8), 1);
        log.record(a(16), 2);
        log.record(a(8), 3); // later store to same address
        let drained = log.drain();
        assert_eq!(drained, vec![(a(8), 1), (a(16), 2), (a(8), 3)]);
        assert!(log.is_empty());
    }

    #[test]
    fn read_log_records_observations() {
        let mut log = ReadLog::new();
        log.record(a(8), 42);
        assert_eq!(log.len(), 1);
        assert_eq!(log.entries(), &[(a(8), 42)]);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn drain_empties_without_reallocating_future_use() {
        let mut log = WriteLog::new();
        log.record(a(8), 1);
        let _ = log.drain();
        log.record(a(24), 9);
        assert_eq!(log.len(), 1);
    }
}
