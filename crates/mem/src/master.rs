//! The commit unit's committed memory image.
//!
//! Only the commit unit executes the sequential, non-transactional portions
//! of the program, so its memory is always the single source of committed
//! truth (§3.1). Pages are created zero-filled on first write (demand
//! zero); [`MasterMem::page`] serves Copy-On-Access requests.
//!
//! The page map is internally partitioned by [`shard_of`] into a fixed
//! number of sub-maps so that group commit can apply a large write-set in
//! parallel ([`MasterMem::commit_writes_parallel`]): each helper thread
//! owns a disjoint partition of `PageId` space, mirroring how the paper's
//! §3.2 parallel commit units each own part of the address space. The
//! partition count is an interior detail — reads and sequential commits
//! behave exactly as a single flat map would.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use dsmtx_uva::{PageId, VAddr};
use fxhash::{FxHashMap, FxHashSet};

use crate::page::Page;
use crate::shard::shard_of;
use crate::spec::{AccessKind, AccessRecord};

/// Fixed interior partition count of the committed page map.
const INTERNAL_SHARDS: usize = 8;

/// Write-set size below which parallel apply is pure overhead: spawning a
/// scoped thread costs far more than hashing a few thousand words.
const PARALLEL_APPLY_MIN_WRITES: usize = 4096;

/// Committed memory: the image COA fetches from and group commit updates.
#[derive(Debug)]
pub struct MasterMem {
    /// `PageId` space hash-partitioned by `shard_of(page, INTERNAL_SHARDS)`.
    shards: Vec<FxHashMap<PageId, Page>>,
    commits_applied: u64,
    /// Pages written since the last [`MasterMem::take_dirty`] drain. The
    /// commit unit turns these into per-page COA epoch stamps so worker
    /// page caches can be revalidated without shipping page payloads.
    dirty: FxHashSet<PageId>,
    /// When set, every `read`/`write` appends an [`AccessRecord`] to
    /// `recorded`. Off by default and off on every hot path: the flag is a
    /// single relaxed atomic load per access. The dependence analyzer's
    /// sequential recorder flips it on while replaying a workload's
    /// recovery body against this image.
    recording: AtomicBool,
    /// Program-order access log accumulated while `recording` is set. A
    /// `std::sync::Mutex` (not a spinlock shim) so `MasterMem` stays
    /// `Sync` and `Debug` without extra bounds; the recorder is the only
    /// contender, so the lock is always uncontended.
    recorded: Mutex<Vec<AccessRecord>>,
}

impl Default for MasterMem {
    fn default() -> Self {
        MasterMem {
            shards: vec![FxHashMap::default(); INTERNAL_SHARDS],
            commits_applied: 0,
            dirty: FxHashSet::default(),
            recording: AtomicBool::new(false),
            recorded: Mutex::new(Vec::new()),
        }
    }
}

impl MasterMem {
    /// An empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn map_of(&self, id: PageId) -> &FxHashMap<PageId, Page> {
        &self.shards[shard_of(id, INTERNAL_SHARDS)]
    }

    /// Reads the committed word at `addr` (zero if never written).
    #[inline]
    pub fn read(&self, addr: VAddr) -> u64 {
        let value = self
            .map_of(addr.page())
            .get(&addr.page())
            .map_or(0, |p| p.word(addr.word_in_page()));
        if self.recording.load(Ordering::Relaxed) {
            self.log(AccessKind::Load, addr, value);
        }
        value
    }

    /// Writes the committed word at `addr`, creating the page on demand.
    #[inline]
    pub fn write(&mut self, addr: VAddr, value: u64) {
        if self.recording.load(Ordering::Relaxed) {
            self.log(AccessKind::Store, addr, value);
        }
        let id = addr.page();
        self.dirty.insert(id);
        self.shards[shard_of(id, INTERNAL_SHARDS)]
            .entry(id)
            .or_default()
            .set_word(addr.word_in_page(), value);
    }

    #[cold]
    fn log(&self, kind: AccessKind, addr: VAddr, value: u64) {
        self.recorded
            .lock()
            .expect("access log poisoned")
            .push(AccessRecord { kind, addr, value });
    }

    /// Turns the program-order access log on or off. While on, every
    /// [`MasterMem::read`] and [`MasterMem::write`] appends to the log the
    /// dependence analyzer later drains with
    /// [`MasterMem::drain_recorded`].
    pub fn set_recording(&self, on: bool) {
        self.recording.store(on, Ordering::Relaxed);
    }

    /// Whether the access log is currently capturing.
    pub fn is_recording(&self) -> bool {
        self.recording.load(Ordering::Relaxed)
    }

    /// Drains and returns the access log accumulated since the last drain
    /// (program order). The analyzer's recorder calls this once per
    /// iteration to slice the stream at iteration boundaries.
    pub fn drain_recorded(&self) -> Vec<AccessRecord> {
        std::mem::take(&mut *self.recorded.lock().expect("access log poisoned"))
    }

    /// Returns a copy of the committed page for COA transfer.
    ///
    /// Unwritten pages read as zero pages, like fresh anonymous memory.
    pub fn page(&self, id: PageId) -> Page {
        self.map_of(id).get(&id).cloned().unwrap_or_default()
    }

    /// Applies one MTX's write-set in program order (group transaction
    /// commit): when a location is stored by several subTXs, the last
    /// update takes effect.
    pub fn commit_writes<I>(&mut self, writes: I)
    where
        I: IntoIterator<Item = (VAddr, u64)>,
    {
        for (addr, value) in writes {
            self.write(addr, value);
        }
        self.commits_applied += 1;
    }

    /// Like [`MasterMem::commit_writes`], but applies the interior page
    /// partitions on scoped helper threads when the write-set is large
    /// enough to amortize the spawns.
    ///
    /// Equivalent to the sequential path bit for bit: partitioning by page
    /// keeps every address's updates on one thread in program order, so
    /// last-writer-wins is preserved, and distinct partitions touch
    /// disjoint pages.
    pub fn commit_writes_parallel(&mut self, writes: Vec<(VAddr, u64)>) {
        if writes.len() < PARALLEL_APPLY_MIN_WRITES {
            self.commit_writes(writes);
            return;
        }
        let mut buckets: Vec<Vec<(VAddr, u64)>> = vec![Vec::new(); INTERNAL_SHARDS];
        for (addr, value) in writes {
            self.dirty.insert(addr.page());
            buckets[shard_of(addr.page(), INTERNAL_SHARDS)].push((addr, value));
        }
        std::thread::scope(|scope| {
            for (map, bucket) in self.shards.iter_mut().zip(buckets) {
                if bucket.is_empty() {
                    continue;
                }
                scope.spawn(move || {
                    for (addr, value) in bucket {
                        map.entry(addr.page())
                            .or_default()
                            .set_word(addr.word_in_page(), value);
                    }
                });
            }
        });
        self.commits_applied += 1;
    }

    /// Number of `commit_writes` calls so far (committed MTX count).
    pub fn commits_applied(&self) -> u64 {
        self.commits_applied
    }

    /// Drains the set of pages written since the previous drain. The
    /// commit unit calls this after every mutation batch (group commit,
    /// recovery re-execution) to stamp the pages with the current commit
    /// epoch for COA cache revalidation.
    pub fn take_dirty(&mut self) -> FxHashSet<PageId> {
        std::mem::take(&mut self.dirty)
    }

    /// Number of materialized (non-zero-backed) pages.
    pub fn resident_pages(&self) -> usize {
        self.shards.iter().map(FxHashMap::len).sum()
    }

    /// All materialized pages as `(id, words)` pairs, sorted by page id —
    /// a canonical snapshot for differential comparison across runs.
    pub fn snapshot(&self) -> Vec<(PageId, Page)> {
        let mut pages: Vec<(PageId, Page)> = self
            .shards
            .iter()
            .flat_map(|m| m.iter().map(|(id, p)| (*id, p.clone())))
            .collect();
        pages.sort_by_key(|(id, _)| *id);
        pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmtx_uva::OwnerId;

    fn a(off: u64) -> VAddr {
        VAddr::new(OwnerId(0), off)
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = MasterMem::new();
        assert_eq!(m.read(a(8)), 0);
        assert_eq!(m.page(a(8).page()), Page::zeroed());
    }

    #[test]
    fn write_then_read() {
        let mut m = MasterMem::new();
        m.write(a(8), 5);
        assert_eq!(m.read(a(8)), 5);
        assert_eq!(m.read(a(16)), 0);
    }

    #[test]
    fn group_commit_last_writer_wins() {
        let mut m = MasterMem::new();
        // Two subTXs of one MTX write the same address; subTX order is
        // program order, so the later value must stick.
        m.commit_writes(vec![(a(8), 1), (a(16), 7), (a(8), 2)]);
        assert_eq!(m.read(a(8)), 2);
        assert_eq!(m.read(a(16)), 7);
        assert_eq!(m.commits_applied(), 1);
    }

    #[test]
    fn page_snapshot_is_a_copy() {
        let mut m = MasterMem::new();
        m.write(a(8), 1);
        let snap = m.page(a(8).page());
        m.write(a(8), 2);
        assert_eq!(snap.word(a(8).word_in_page()), 1, "snapshot must not alias");
        assert_eq!(m.read(a(8)), 2);
    }

    #[test]
    fn pages_materialize_on_write_only() {
        let mut m = MasterMem::new();
        let _ = m.read(a(4096 * 10));
        assert_eq!(m.resident_pages(), 0);
        m.write(a(0), 1);
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn parallel_commit_matches_sequential() {
        // Large enough to take the scoped-thread path, with repeated
        // addresses so last-writer-wins is exercised.
        let writes: Vec<(VAddr, u64)> = (0..10_000u64).map(|i| (a((i % 3000) * 8), i)).collect();
        let mut seq = MasterMem::new();
        seq.commit_writes(writes.clone());
        let mut par = MasterMem::new();
        par.commit_writes_parallel(writes);
        assert_eq!(seq.snapshot(), par.snapshot());
        assert_eq!(par.commits_applied(), 1);
    }

    #[test]
    fn small_write_sets_stay_sequential_and_correct() {
        let mut m = MasterMem::new();
        m.commit_writes_parallel(vec![(a(8), 1), (a(8), 2)]);
        assert_eq!(m.read(a(8)), 2);
        assert_eq!(m.commits_applied(), 1);
    }

    #[test]
    fn recording_captures_program_order_and_drains() {
        let mut m = MasterMem::new();
        m.write(a(8), 7); // not recorded: recording is off
        m.set_recording(true);
        assert!(m.is_recording());
        assert_eq!(m.read(a(8)), 7);
        m.write(a(16), 9);
        assert_eq!(m.read(a(16)), 9);
        m.set_recording(false);
        m.write(a(24), 1); // not recorded again
        let log = m.drain_recorded();
        assert_eq!(log.len(), 3);
        assert_eq!(
            (log[0].kind, log[0].addr, log[0].value),
            (AccessKind::Load, a(8), 7)
        );
        assert_eq!(
            (log[1].kind, log[1].addr, log[1].value),
            (AccessKind::Store, a(16), 9)
        );
        assert_eq!(
            (log[2].kind, log[2].addr, log[2].value),
            (AccessKind::Load, a(16), 9)
        );
        assert!(m.drain_recorded().is_empty(), "drain must reset the log");
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let mut m = MasterMem::new();
        for p in [9u64, 3, 7, 1] {
            m.write(a(p * 4096), p);
        }
        let snap = m.snapshot();
        assert_eq!(snap.len(), 4);
        let ids: Vec<u64> = snap.iter().map(|(id, _)| id.0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }
}
