//! The commit unit's committed memory image.
//!
//! Only the commit unit executes the sequential, non-transactional portions
//! of the program, so its memory is always the single source of committed
//! truth (§3.1). Pages are created zero-filled on first write (demand
//! zero); [`MasterMem::page`] serves Copy-On-Access requests.

use std::collections::HashMap;

use dsmtx_uva::{PageId, VAddr};

use crate::page::Page;

/// Committed memory: the image COA fetches from and group commit updates.
#[derive(Debug, Default)]
pub struct MasterMem {
    pages: HashMap<PageId, Page>,
    commits_applied: u64,
}

impl MasterMem {
    /// An empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the committed word at `addr` (zero if never written).
    #[inline]
    pub fn read(&self, addr: VAddr) -> u64 {
        self.pages
            .get(&addr.page())
            .map_or(0, |p| p.word(addr.word_in_page()))
    }

    /// Writes the committed word at `addr`, creating the page on demand.
    #[inline]
    pub fn write(&mut self, addr: VAddr, value: u64) {
        self.pages
            .entry(addr.page())
            .or_default()
            .set_word(addr.word_in_page(), value);
    }

    /// Returns a copy of the committed page for COA transfer.
    ///
    /// Unwritten pages read as zero pages, like fresh anonymous memory.
    pub fn page(&self, id: PageId) -> Page {
        self.pages.get(&id).cloned().unwrap_or_default()
    }

    /// Applies one MTX's write-set in program order (group transaction
    /// commit): when a location is stored by several subTXs, the last
    /// update takes effect.
    pub fn commit_writes<I>(&mut self, writes: I)
    where
        I: IntoIterator<Item = (VAddr, u64)>,
    {
        for (addr, value) in writes {
            self.write(addr, value);
        }
        self.commits_applied += 1;
    }

    /// Number of `commit_writes` calls so far (committed MTX count).
    pub fn commits_applied(&self) -> u64 {
        self.commits_applied
    }

    /// Number of materialized (non-zero-backed) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmtx_uva::OwnerId;

    fn a(off: u64) -> VAddr {
        VAddr::new(OwnerId(0), off)
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = MasterMem::new();
        assert_eq!(m.read(a(8)), 0);
        assert_eq!(m.page(a(8).page()), Page::zeroed());
    }

    #[test]
    fn write_then_read() {
        let mut m = MasterMem::new();
        m.write(a(8), 5);
        assert_eq!(m.read(a(8)), 5);
        assert_eq!(m.read(a(16)), 0);
    }

    #[test]
    fn group_commit_last_writer_wins() {
        let mut m = MasterMem::new();
        // Two subTXs of one MTX write the same address; subTX order is
        // program order, so the later value must stick.
        m.commit_writes(vec![(a(8), 1), (a(16), 7), (a(8), 2)]);
        assert_eq!(m.read(a(8)), 2);
        assert_eq!(m.read(a(16)), 7);
        assert_eq!(m.commits_applied(), 1);
    }

    #[test]
    fn page_snapshot_is_a_copy() {
        let mut m = MasterMem::new();
        m.write(a(8), 1);
        let snap = m.page(a(8).page());
        m.write(a(8), 2);
        assert_eq!(snap.word(a(8).word_in_page()), 1, "snapshot must not alias");
        assert_eq!(m.read(a(8)), 2);
    }

    #[test]
    fn pages_materialize_on_write_only() {
        let mut m = MasterMem::new();
        let _ = m.read(a(4096 * 10));
        assert_eq!(m.resident_pages(), 0);
        m.write(a(0), 1);
        assert_eq!(m.resident_pages(), 1);
    }
}
