//! Cluster hardware model.

/// Parametric model of a commodity cluster.
///
/// Defaults mirror the paper's evaluation platform (§5.1): 32 Dell
/// PowerEdge 1950 nodes, 4 cores per node (two dual-core Xeon 5160 @
/// 3 GHz), InfiniBand interconnect, OpenMPI messaging whose send/receive
/// primitives cost 500–2,295 instructions per call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: u32,
    /// Cores per node.
    pub cores_per_node: u32,
    /// Core execution rate in instructions per second.
    pub instr_per_sec: f64,
    /// One-way inter-node message latency in seconds.
    pub latency: f64,
    /// Per-node NIC bandwidth in bytes per second.
    pub bandwidth: f64,
    /// CPU instructions charged per message send.
    pub send_instr: f64,
    /// CPU instructions charged per message receive.
    pub recv_instr: f64,
    /// Items (8-byte words) coalesced per message by the DSMTX queue.
    /// 1 models direct `MPI_Send` per produce (the non-optimized bar of
    /// Figure 5(b)).
    pub batch_items: f64,
    /// Maximum iterations a worker may run ahead of the commit unit
    /// (bounded by queue capacity / outstanding MTX versions).
    pub max_runahead: u64,
    /// Parallelism of the try-commit and commit units. The paper (§3.2)
    /// notes their serialization can bottleneck at high worker counts and
    /// that both algorithms are parallelizable; values > 1 model that
    /// extension (address-sharded validation/commit).
    pub unit_shards: u32,
    /// Fraction of validation-plane traffic that survives compaction
    /// (access-stream filtering plus packed frames). 1.0 models the
    /// unpacked per-record protocol; the runtime's measured
    /// `bytes_post / bytes_pre` ratio plugs in directly. Scales both the
    /// words shipped on the validation/commit planes and the per-word
    /// check/apply work (filtered records are neither sent nor checked).
    pub val_compaction: f64,
}

impl ClusterConfig {
    /// The paper's platform with the batched-queue optimization on.
    pub fn paper() -> Self {
        ClusterConfig {
            nodes: 32,
            cores_per_node: 4,
            instr_per_sec: 3.0e9,
            latency: 2.0e-6,
            bandwidth: 1.0e9,
            send_instr: 500.0,
            recv_instr: 2295.0,
            batch_items: 512.0,
            max_runahead: 512,
            unit_shards: 1,
            val_compaction: 1.0,
        }
    }

    /// The paper's platform with batching disabled (every 8-byte produce
    /// pays the full MPI send/receive cost).
    pub fn paper_unbatched() -> Self {
        ClusterConfig {
            batch_items: 1.0,
            ..Self::paper()
        }
    }

    /// Total cores in the machine.
    pub fn total_cores(&self) -> u32 {
        self.nodes * self.cores_per_node
    }

    /// Seconds of CPU time for `n` instructions.
    pub fn instr_time(&self, n: f64) -> f64 {
        n / self.instr_per_sec
    }

    /// Sender-side CPU time to ship `words` 8-byte items through the
    /// batched queue (the §4.2 amortization).
    pub fn send_cpu_time(&self, words: f64) -> f64 {
        let messages = (words / self.batch_items).ceil().max(0.0);
        self.instr_time(messages * self.send_instr)
    }

    /// Receiver-side CPU time to accept `words` items.
    pub fn recv_cpu_time(&self, words: f64) -> f64 {
        let messages = (words / self.batch_items).ceil().max(0.0);
        self.instr_time(messages * self.recv_instr)
    }

    /// Wire occupancy time for `bytes` on one NIC.
    pub fn wire_time(&self, bytes: f64) -> f64 {
        bytes / self.bandwidth
    }

    /// Approximate completion time of a tree barrier over `threads`
    /// participants.
    pub fn barrier_time(&self, threads: u32) -> f64 {
        let rounds = (threads.max(2) as f64).log2().ceil();
        2.0 * rounds * self.latency
    }

    /// Sustained throughput (bytes/second) of one producer/consumer pair
    /// pushing 8-byte items — the §5.3 microbenchmark. The bottleneck is
    /// the slower of wire bandwidth and per-message CPU cost.
    pub fn queue_throughput(&self) -> f64 {
        let bytes_per_msg = 8.0 * self.batch_items;
        let cpu = self
            .instr_time(self.send_instr)
            .max(self.instr_time(self.recv_instr));
        let per_msg = cpu.max(self.wire_time(bytes_per_msg));
        bytes_per_msg / per_msg
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_is_128_cores() {
        assert_eq!(ClusterConfig::paper().total_cores(), 128);
    }

    #[test]
    fn batching_amortizes_cpu_cost() {
        let c = ClusterConfig::paper();
        let u = ClusterConfig::paper_unbatched();
        // Shipping 512 words costs one message batched, 512 unbatched.
        assert!(u.send_cpu_time(512.0) > 100.0 * c.send_cpu_time(512.0));
    }

    #[test]
    fn queue_throughput_reproduces_the_section_5_3_contrast() {
        // Paper: DSMTX queues sustain 480.7 MB/s; MPI_Send 13.1 MB/s.
        let batched = ClusterConfig::paper().queue_throughput();
        let direct = ClusterConfig::paper_unbatched().queue_throughput();
        assert!(
            batched / direct > 20.0,
            "batched {batched:.0} vs direct {direct:.0}"
        );
        // Same order of magnitude as the measured numbers.
        assert!(direct > 1.0e6 && direct < 1.0e8, "direct {direct}");
        assert!(batched > 1.0e8 && batched < 5.0e9, "batched {batched}");
    }

    #[test]
    fn barrier_grows_with_threads() {
        let c = ClusterConfig::paper();
        assert!(c.barrier_time(128) > c.barrier_time(4));
    }

    #[test]
    fn wire_time_is_linear() {
        let c = ClusterConfig::paper();
        assert!((c.wire_time(2.0e9) - 2.0).abs() < 1e-9);
    }
}
