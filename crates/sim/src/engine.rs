//! The iteration-level discrete-event engine.
//!
//! Executors, the try-commit unit, and the commit unit are servers; data,
//! validation, and commit traffic occupy NICs; Spec-DSWP keeps dependence
//! recurrences thread-local (acyclic communication) while TLS's
//! synchronized dependences put a message round trip on the critical path
//! every iteration. Misspeculation triggers the §4.3 sequence with
//! explicit ERM / FLQ / SEQ accounting; RFP (refill + squashed run-ahead)
//! is the remainder of the measured overhead, exactly how the paper's
//! Figure 6 attributes it.

use crate::cluster::ClusterConfig;
use crate::profile::{StageShape, WorkloadProfile};

/// Instructions charged per validated word (value compare + bookkeeping).
const CHECK_INSTR_PER_WORD: f64 = 10.0;
/// Instructions charged per committed word (hash update of master image).
const COMMIT_INSTR_PER_WORD: f64 = 12.0;

/// Recovery overhead attribution (Figure 6 components), in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryBreakdown {
    /// Number of misspeculation episodes.
    pub episodes: u64,
    /// Enter Recovery Mode: synchronizing all threads into the rollback.
    pub erm: f64,
    /// FLush Queues: draining speculative channel state, re-protecting.
    pub flq: f64,
    /// SEQuential re-execution of the squashed iteration.
    pub seq: f64,
    /// ReFill Pipeline: refill latency plus squashed run-ahead work
    /// (computed as measured overhead minus the explicit components).
    pub rfp: f64,
}

impl RecoveryBreakdown {
    /// Total attributed overhead.
    pub fn total(&self) -> f64 {
        self.erm + self.flq + self.seq + self.rfp
    }
}

/// Result of simulating one parallelization at one core count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOutcome {
    /// Worker threads used (excludes the try-commit and commit units).
    pub workers: u32,
    /// Simulated wall time of the parallelized loop (all invocations).
    pub loop_time: f64,
    /// Sequential time of the same loop.
    pub seq_loop_time: f64,
    /// Loop-only speedup.
    pub loop_speedup: f64,
    /// Full-application speedup (Amdahl coverage applied) — the Figure 4
    /// y-axis.
    pub app_speedup: f64,
    /// Bytes moved through DSMTX queues.
    pub bytes: f64,
    /// Application bandwidth = bytes / loop time (Figure 5(a) metric).
    pub bandwidth: f64,
    /// Recovery attribution (zeroed when no misspeculation was injected).
    pub recovery: RecoveryBreakdown,
}

/// The simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimEngine {
    /// The modelled hardware.
    pub cluster: ClusterConfig,
}

impl SimEngine {
    /// An engine over the given cluster.
    pub fn new(cluster: ClusterConfig) -> Self {
        SimEngine { cluster }
    }

    /// Effective one-way latency when `cores` cores (spread over nodes)
    /// participate: more nodes means more switch hops.
    fn latency_at(&self, cores: u32) -> f64 {
        let nodes = (cores as f64 / self.cluster.cores_per_node as f64)
            .ceil()
            .max(1.0);
        self.cluster.latency * (1.0 + 0.5 * nodes.log2().max(0.0))
    }

    /// Simulates the Spec-DSWP/Spec-DOALL plan of `profile` on `cores`
    /// total cores with the given misspeculation rate (fraction of
    /// iterations that conflict).
    pub fn simulate_spec_dswp(
        &self,
        profile: &WorkloadProfile,
        cores: u32,
        misspec_rate: f64,
    ) -> SimOutcome {
        profile.check();
        let workers = cores.saturating_sub(2).max(profile.stages.len() as u32);
        let seq_stages = profile.sequential_stages();
        let par_budget = workers.saturating_sub(seq_stages).max(1);
        let replicas: Vec<u32> = profile
            .stages
            .iter()
            .map(|s| match s.shape {
                StageShape::Sequential => 1,
                StageShape::Parallel => par_budget,
            })
            .collect();

        let stage_work: Vec<f64> = profile
            .stages
            .iter()
            .map(|s| s.work_fraction * profile.iter_work)
            .collect();
        let stage_bytes_out: Vec<f64> = profile.stages.iter().map(|s| s.bytes_out).collect();
        let val_words_per_stage: Vec<f64> = profile
            .stages
            .iter()
            .map(|s| s.work_fraction * profile.validation_words)
            .collect();

        self.run_pipeline(
            profile,
            cores,
            &replicas,
            &stage_work,
            &stage_bytes_out,
            &val_words_per_stage,
            profile.validation_words,
            0.0,
            misspec_rate,
        )
    }

    /// Simulates the TLS-only baseline of `profile` on `cores` cores.
    pub fn simulate_tls(
        &self,
        profile: &WorkloadProfile,
        cores: u32,
        misspec_rate: f64,
    ) -> SimOutcome {
        profile.check();
        let workers = cores.saturating_sub(2).max(1);
        let replicas = vec![workers];
        let stage_work = vec![profile.iter_work];
        let stage_bytes_out = vec![profile.tls.bytes_per_iter];
        let val_words = vec![profile.tls.validation_words];
        self.run_pipeline(
            profile,
            cores,
            &replicas,
            &stage_work,
            &stage_bytes_out,
            &val_words,
            profile.tls.validation_words,
            profile.tls.sync_fraction,
            misspec_rate,
        )
    }

    /// The shared recurrence. `sync_fraction > 0` adds the TLS cyclic
    /// edge: the first `sync_fraction` of each iteration's work cannot
    /// start until the previous iteration's synchronized value arrives.
    #[allow(clippy::too_many_arguments)]
    fn run_pipeline(
        &self,
        profile: &WorkloadProfile,
        cores: u32,
        replicas: &[u32],
        stage_work: &[f64],
        stage_bytes_out: &[f64],
        val_words_per_stage: &[f64],
        val_words_total: f64,
        sync_fraction: f64,
        misspec_rate: f64,
    ) -> SimOutcome {
        let c = &self.cluster;
        let lat = self.latency_at(cores);
        let n = profile.iterations;
        let n_stages = replicas.len();
        let threads: u32 = replicas.iter().sum::<u32>() + 2;

        let bad_every = if misspec_rate > 0.0 {
            Some(((1.0 / misspec_rate).round() as u64).max(1))
        } else {
            None
        };

        // Validation-plane compaction: filtering + packed frames shrink
        // what crosses the validation and commit planes (and what the
        // units must check/apply) by this factor.
        let vc = c.val_compaction.clamp(0.0, 1.0);

        // Bytes leaving each stage per iteration: data plane plus two
        // copies of its (compacted) validation words (try-commit and
        // commit planes).
        let stage_wire_bytes: Vec<f64> = (0..n_stages)
            .map(|s| stage_bytes_out[s] + 2.0 * val_words_per_stage[s] * 8.0 * vc)
            .collect();
        let bytes_per_iter: f64 = stage_wire_bytes.iter().sum();

        let mut worker_free: Vec<Vec<f64>> =
            replicas.iter().map(|&r| vec![0.0; r as usize]).collect();
        let mut nic_free: Vec<Vec<f64>> = replicas.iter().map(|&r| vec![0.0; r as usize]).collect();
        let mut val_free = 0.0f64;
        let mut commit_free = 0.0f64;
        let mut commit_times: Vec<f64> = Vec::with_capacity(n as usize);
        let mut dep_ready = 0.0f64; // TLS synchronized value availability
        let mut breakdown = RecoveryBreakdown::default();
        // First iteration after the last recovery: the steady-period
        // estimator must not look back across a rollback's time jump.
        let mut steady_anchor = 0u64;

        // The units are single endpoints: their NIC ingress serializes the
        // whole system's validation/commit traffic — the §3.2 caveat that
        // serialization in the try-commit and commit units can bottleneck
        // at high worker counts.
        let last_stage_bytes = stage_bytes_out[n_stages - 1];
        // Chunked applications move arrays: their message counts do not
        // grow when queue batching is disabled (§5.3).
        let eff_words = |words: f64| {
            if profile.chunked {
                words / 512.0 * c.batch_items.min(512.0)
            } else {
                words
            }
        };
        let shards = f64::from(c.unit_shards.max(1));
        let val_words_eff = val_words_total * vc;
        let val_service = (c.recv_cpu_time(eff_words(val_words_eff))
            + c.instr_time(val_words_eff * CHECK_INSTR_PER_WORD)
            + c.wire_time(val_words_eff * 8.0))
            / shards;
        let commit_service = (c.recv_cpu_time(eff_words(val_words_eff))
            + c.instr_time(val_words_eff * COMMIT_INSTR_PER_WORD)
            + c.wire_time(val_words_eff * 8.0 + last_stage_bytes))
            / shards;
        let sync_msg_cost = c.instr_time(c.send_instr + c.recv_instr) + lat;

        for i in 0..n {
            // Run-ahead gate: workers stall until older MTX versions
            // retire (queue capacity / outstanding versions bound).
            let gate = if i >= c.max_runahead {
                commit_times[(i - c.max_runahead) as usize]
            } else {
                0.0
            };
            let mut arrival = gate;
            let mut last_val_arrival = 0.0f64;
            for s in 0..n_stages {
                let k = (i % u64::from(replicas[s])) as usize;
                let mut start = worker_free[s][k].max(arrival);
                if s == 0 && sync_fraction > 0.0 && i > 0 {
                    start = start.max(dep_ready);
                }
                let words_in = if s == 0 {
                    0.0
                } else {
                    stage_bytes_out[s - 1] / 8.0
                };
                // Applications whose data is already chunked (array
                // produces) amortize the per-message cost regardless of
                // queue batching (§5.3).
                let eff = |words: f64| {
                    if profile.chunked {
                        words / 512.0 * c.batch_items.min(512.0)
                    } else {
                        words
                    }
                };
                let recv = c.recv_cpu_time(eff(words_in)) + c.wire_time(words_in * 8.0);
                let send = c.send_cpu_time(eff(
                    stage_bytes_out[s] / 8.0 + 2.0 * val_words_per_stage[s] * vc
                ));
                let done = start + recv + stage_work[s] + send;
                if s == 0 && sync_fraction > 0.0 {
                    // The synchronized value is produced after the serial
                    // prefix and ships immediately (unbatched: latency
                    // matters, not throughput).
                    dep_ready = start + recv + sync_fraction * stage_work[s] + sync_msg_cost;
                }
                worker_free[s][k] = done;
                let nic = nic_free[s][k].max(done);
                nic_free[s][k] = nic + c.wire_time(stage_wire_bytes[s]);
                arrival = nic_free[s][k] + lat;
                last_val_arrival = last_val_arrival.max(arrival);
            }

            // Serial validation in MTX order.
            let val_start = val_free.max(last_val_arrival);
            val_free = val_start + val_service;

            // At least one episode fires whenever a rate is requested,
            // even for loops shorter than 1/rate (the paper modifies the
            // inputs to *cause* misspeculation).
            let is_bad = bad_every.is_some_and(|k| (i + 1) % k == 0 || (k > n && i == n / 2));
            if is_bad {
                // §4.3: detect, rendezvous (ERM), flush (FLQ), re-execute
                // (SEQ), refill the pipeline and redo the squashed
                // run-ahead (RFP).
                let t_detect = val_free;
                let workers_drained = worker_free
                    .iter()
                    .flatten()
                    .fold(t_detect, |a, &b| a.max(b));
                let erm_end = workers_drained + c.barrier_time(threads);
                // Flushing discards speculative queue state locally (no
                // retransmission): memory-drain speed, not wire speed.
                const LOCAL_DRAIN_BPS: f64 = 2.0e10;
                let inflight_bytes = bytes_per_iter * c.max_runahead.min(i + 1) as f64;
                let flq = inflight_bytes / LOCAL_DRAIN_BPS + c.barrier_time(threads);
                let seq = profile.iter_work;
                // RFP: everything past the boundary that was already in
                // flight is squashed and re-executed, and the pipeline
                // refills from empty. The batched queues make the
                // run-ahead deep — the very optimization of §5.3 is why
                // RFP dominates (the paper's observation).
                let workers_total: u32 = replicas.iter().sum();
                let floor = profile.iter_work / workers_total as f64;
                // Steady-state commit period, sampled only since the last
                // resume (a rollback's time jump must not leak into the
                // estimate) and bounded by the serial iteration time.
                let lookback = ((i - steady_anchor) as usize).min(32);
                let period_est = if lookback >= 2 {
                    let a = commit_times[i as usize - 1];
                    let b = commit_times[i as usize - lookback];
                    ((a - b) / (lookback as f64 - 1.0)).max(0.0)
                } else {
                    floor
                };
                let per_iter_wall = period_est.clamp(floor, profile.iter_work);
                let squashed = c.max_runahead.min(n - (i + 1)) as f64;
                let rfp = squashed * per_iter_wall + profile.iter_work;
                let resume = erm_end + flq + seq + rfp + c.barrier_time(threads);
                breakdown.episodes += 1;
                breakdown.erm += erm_end - t_detect;
                breakdown.flq += flq;
                breakdown.seq += seq;
                breakdown.rfp += rfp;
                commit_times.push(resume);
                for free in worker_free.iter_mut().flatten() {
                    *free = resume;
                }
                for free in nic_free.iter_mut().flatten() {
                    *free = resume;
                }
                val_free = resume;
                commit_free = resume;
                dep_ready = resume;
                steady_anchor = i + 1;
                continue;
            }

            // Serial group commit in MTX order.
            let commit_start = commit_free.max(val_free + lat);
            commit_free = commit_start + commit_service;
            commit_times.push(commit_free);
        }

        let mut one_invocation = commit_free;
        let mut invocations = 1u64;
        let mut inv_bytes = 0.0f64;
        if let Some(inv) = profile.invocation {
            let total_workers: u32 = replicas.iter().sum();
            // Live-in distribution is serialized on the commit unit's NIC;
            // the reduction serializes arrivals back.
            let init = lat + total_workers as f64 * c.wire_time(inv.init_bytes_per_worker);
            let reduce = lat
                + total_workers as f64
                    * (c.wire_time(inv.reduce_bytes_per_worker)
                        + c.recv_cpu_time(eff_words(inv.reduce_bytes_per_worker / 8.0)));
            one_invocation += init + reduce;
            invocations = inv.count;
            inv_bytes =
                total_workers as f64 * (inv.init_bytes_per_worker + inv.reduce_bytes_per_worker);
        }

        let loop_time = one_invocation * invocations as f64;
        let seq_loop_time = profile.loop_seq_time() * invocations as f64;
        let bytes = (bytes_per_iter * n as f64 + inv_bytes) * invocations as f64;

        // Figure 6's RFP is what remains of the measured overhead after
        // the explicit components: compute it against the misspec-free
        // timeline.
        let mut recovery = RecoveryBreakdown::default();
        if misspec_rate > 0.0 {
            let clean = self.run_pipeline(
                profile,
                cores,
                replicas,
                stage_work,
                stage_bytes_out,
                val_words_per_stage,
                val_words_total,
                sync_fraction,
                0.0,
            );
            let overhead = (loop_time - clean.loop_time).max(0.0);
            let episodes = breakdown.episodes as f64 * invocations as f64;
            let inv = invocations as f64;
            let explicit = (breakdown.erm + breakdown.flq + breakdown.seq + breakdown.rfp) * inv;
            recovery = RecoveryBreakdown {
                episodes: episodes as u64,
                erm: breakdown.erm * inv,
                flq: breakdown.flq * inv,
                seq: breakdown.seq * inv,
                // Explicitly charged refill/redo plus whatever timeline
                // slack the restart itself produced.
                rfp: breakdown.rfp * inv + (overhead - explicit).max(0.0),
            };
        }

        let loop_speedup = seq_loop_time / loop_time;
        let seq_app = seq_loop_time / profile.coverage;
        let par_app = (seq_app - seq_loop_time) + loop_time;
        SimOutcome {
            workers: replicas.iter().sum(),
            loop_time,
            seq_loop_time,
            loop_speedup,
            app_speedup: seq_app / par_app,
            bytes,
            bandwidth: bytes / loop_time,
            recovery,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{StageProfile, TlsPlan};

    fn doall_profile(iter_work: f64, iters: u64, bytes: f64) -> WorkloadProfile {
        WorkloadProfile {
            name: "test-doall".into(),
            iter_work,
            iterations: iters,
            coverage: 1.0,
            stages: vec![StageProfile {
                shape: StageShape::Parallel,
                work_fraction: 1.0,
                bytes_out: bytes,
            }],
            validation_words: 8.0,
            tls: TlsPlan {
                sync_fraction: 0.0,
                bytes_per_iter: bytes,
                validation_words: 8.0,
            },
            chunked: false,
            invocation: None,
        }
    }

    fn pipeline_profile() -> WorkloadProfile {
        WorkloadProfile {
            name: "test-pipe".into(),
            iter_work: 1.0e-3,
            iterations: 2000,
            coverage: 0.99,
            stages: vec![
                StageProfile {
                    shape: StageShape::Sequential,
                    work_fraction: 0.02,
                    bytes_out: 1024.0,
                },
                StageProfile {
                    shape: StageShape::Parallel,
                    work_fraction: 0.96,
                    bytes_out: 512.0,
                },
                StageProfile {
                    shape: StageShape::Sequential,
                    work_fraction: 0.02,
                    bytes_out: 0.0,
                },
            ],
            validation_words: 32.0,
            tls: TlsPlan {
                sync_fraction: 0.04,
                bytes_per_iter: 256.0,
                validation_words: 32.0,
            },
            chunked: false,
            invocation: None,
        }
    }

    #[test]
    fn doall_speedup_scales_with_cores() {
        let e = SimEngine::default();
        let p = doall_profile(1.0e-3, 4000, 64.0);
        let s8 = e.simulate_spec_dswp(&p, 8, 0.0);
        let s32 = e.simulate_spec_dswp(&p, 32, 0.0);
        let s128 = e.simulate_spec_dswp(&p, 128, 0.0);
        assert!(s8.app_speedup > 4.0, "{}", s8.app_speedup);
        assert!(s32.app_speedup > s8.app_speedup * 2.0);
        assert!(s128.app_speedup > s32.app_speedup * 2.0);
        assert!(s128.app_speedup <= 126.0);
    }

    #[test]
    fn speedup_never_exceeds_worker_count() {
        let e = SimEngine::default();
        let p = pipeline_profile();
        for cores in [4, 16, 64, 128] {
            let s = e.simulate_spec_dswp(&p, cores, 0.0);
            assert!(
                s.loop_speedup <= s.workers as f64 + 1e-6,
                "{} cores: {} > {}",
                cores,
                s.loop_speedup,
                s.workers
            );
        }
    }

    #[test]
    fn tls_cyclic_edge_limits_scaling() {
        let e = SimEngine::default();
        let p = pipeline_profile();
        let dswp = e.simulate_spec_dswp(&p, 128, 0.0);
        let tls = e.simulate_tls(&p, 128, 0.0);
        assert!(
            dswp.app_speedup > 1.5 * tls.app_speedup,
            "dswp {} vs tls {}",
            dswp.app_speedup,
            tls.app_speedup
        );
        // TLS period is bounded below by the sync segment plus a message
        // round trip, so speedup saturates near 1/sync_fraction.
        assert!(tls.app_speedup < 1.0 / 0.04 + 1.0);
    }

    #[test]
    fn bandwidth_bound_profiles_plateau() {
        let e = SimEngine::default();
        // Tiny work, huge per-iteration data: the wire is the bottleneck.
        let p = doall_profile(2.0e-5, 4000, 200_000.0);
        let s32 = e.simulate_spec_dswp(&p, 32, 0.0);
        let s128 = e.simulate_spec_dswp(&p, 128, 0.0);
        assert!(
            s128.app_speedup < s32.app_speedup * 1.5,
            "bandwidth wall: {} vs {}",
            s32.app_speedup,
            s128.app_speedup
        );
    }

    #[test]
    fn iteration_count_caps_parallelism() {
        let e = SimEngine::default();
        let p = doall_profile(1.0e-3, 40, 64.0); // only 40 iterations
        let s128 = e.simulate_spec_dswp(&p, 128, 0.0);
        assert!(s128.loop_speedup <= 41.0);
    }

    #[test]
    fn misspeculation_adds_attributed_overhead() {
        let e = SimEngine::default();
        let p = pipeline_profile();
        let clean = e.simulate_spec_dswp(&p, 64, 0.0);
        let dirty = e.simulate_spec_dswp(&p, 64, 0.001);
        assert_eq!(clean.recovery.episodes, 0);
        assert!(dirty.recovery.episodes >= 1);
        assert!(dirty.loop_time > clean.loop_time);
        assert!(dirty.recovery.erm >= 0.0);
        assert!(dirty.recovery.flq > 0.0);
        assert!(dirty.recovery.seq > 0.0);
        let measured = dirty.loop_time - clean.loop_time;
        assert!(
            (dirty.recovery.total() - measured).abs() <= measured * 0.5 + 1e-9,
            "attribution {} vs measured {}",
            dirty.recovery.total(),
            measured
        );
    }

    #[test]
    fn invocation_sync_limits_speedup() {
        let e = SimEngine::default();
        let mut p = doall_profile(5.0e-5, 500, 64.0);
        let unsynced = e.simulate_spec_dswp(&p, 128, 0.0);
        p.invocation = Some(crate::profile::InvocationProfile {
            count: 100,
            init_bytes_per_worker: 40_000.0,
            reduce_bytes_per_worker: 40_000.0,
        });
        let synced = e.simulate_spec_dswp(&p, 128, 0.0);
        assert!(
            synced.app_speedup < unsynced.app_speedup,
            "{} !< {}",
            synced.app_speedup,
            unsynced.app_speedup
        );
    }

    #[test]
    fn batching_off_slows_communication_heavy_profiles() {
        let p = doall_profile(1.0e-4, 2000, 8192.0);
        let on = SimEngine::new(ClusterConfig::paper()).simulate_spec_dswp(&p, 128, 0.0);
        let off = SimEngine::new(ClusterConfig::paper_unbatched()).simulate_spec_dswp(&p, 128, 0.0);
        assert!(
            on.app_speedup > 1.5 * off.app_speedup,
            "batched {} vs direct {}",
            on.app_speedup,
            off.app_speedup
        );
    }

    #[test]
    fn validation_compaction_speeds_validation_bound_profiles() {
        // Heavy validation traffic, cheap compute: the try-commit and
        // commit units serialize on the validation plane.
        let mut p = doall_profile(5.0e-5, 4000, 64.0);
        p.validation_words = 2048.0;
        let plain = SimEngine::new(ClusterConfig::paper()).simulate_spec_dswp(&p, 128, 0.0);
        let compact = SimEngine::new(ClusterConfig {
            val_compaction: 0.2,
            ..ClusterConfig::paper()
        })
        .simulate_spec_dswp(&p, 128, 0.0);
        assert!(
            compact.app_speedup > 1.5 * plain.app_speedup,
            "compacted {} vs plain {}",
            compact.app_speedup,
            plain.app_speedup
        );
        assert!(compact.bytes < plain.bytes, "less crosses the wire");
    }

    #[test]
    fn compaction_is_neutral_when_validation_is_light() {
        let p = doall_profile(1.0e-3, 2000, 64.0); // 8 validation words
        let plain = SimEngine::new(ClusterConfig::paper()).simulate_spec_dswp(&p, 64, 0.0);
        let compact = SimEngine::new(ClusterConfig {
            val_compaction: 0.2,
            ..ClusterConfig::paper()
        })
        .simulate_spec_dswp(&p, 64, 0.0);
        let ratio = compact.app_speedup / plain.app_speedup;
        assert!((0.99..1.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn coverage_caps_app_speedup() {
        let e = SimEngine::default();
        let mut p = doall_profile(1.0e-3, 4000, 64.0);
        p.coverage = 0.9; // Amdahl: at most 10x
        let s = e.simulate_spec_dswp(&p, 128, 0.0);
        assert!(s.app_speedup < 10.0);
        assert!(s.app_speedup > 5.0);
    }
}
