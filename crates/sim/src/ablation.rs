//! Ablations of DSMTX's design choices.
//!
//! The paper motivates several mechanisms qualitatively; these sweeps
//! quantify them on the performance model:
//!
//! * [`batch_sweep`] — §4.2/§5.3: how queue batching buys back the
//!   per-message MPI cost.
//! * [`runahead_sweep`] — §5.4's closing remark: deep run-ahead (big
//!   queues / many outstanding MTX versions) speeds clean execution but
//!   inflates the RFP cost of every rollback.
//! * [`latency_sweep`] — Figure 1 generalized to the full system: DSWP's
//!   speedup barely moves with inter-node latency while TLS's collapses.
//! * [`coa_granularity`] — §4.2: why Copy-On-Access transfers whole pages
//!   rather than single words.

use crate::cluster::ClusterConfig;
use crate::engine::SimEngine;
use crate::profile::WorkloadProfile;

/// One point of the batching sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPoint {
    /// Items coalesced per message.
    pub batch_items: f64,
    /// Full-application speedup at the chosen core count.
    pub speedup: f64,
}

/// Sweeps the queue batch size for one profile.
pub fn batch_sweep(profile: &WorkloadProfile, cores: u32, batches: &[f64]) -> Vec<BatchPoint> {
    batches
        .iter()
        .map(|&batch_items| {
            let cluster = ClusterConfig {
                batch_items,
                ..ClusterConfig::paper()
            };
            BatchPoint {
                batch_items,
                speedup: SimEngine::new(cluster)
                    .simulate_spec_dswp(profile, cores, 0.0)
                    .app_speedup,
            }
        })
        .collect()
}

/// One point of the run-ahead sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunaheadPoint {
    /// Maximum iterations in flight past the commit point.
    pub runahead: u64,
    /// Speedup with no misspeculation.
    pub clean_speedup: f64,
    /// Speedup with the injected misspeculation rate.
    pub misspec_speedup: f64,
    /// RFP's share of the attributed recovery overhead (0..1).
    pub rfp_share: f64,
}

/// Sweeps the run-ahead bound: the §5.4 trade-off between clean
/// throughput and wasted work per rollback.
pub fn runahead_sweep(
    profile: &WorkloadProfile,
    cores: u32,
    misspec_rate: f64,
    runaheads: &[u64],
) -> Vec<RunaheadPoint> {
    runaheads
        .iter()
        .map(|&runahead| {
            let cluster = ClusterConfig {
                max_runahead: runahead,
                ..ClusterConfig::paper()
            };
            let engine = SimEngine::new(cluster);
            let clean = engine.simulate_spec_dswp(profile, cores, 0.0);
            let dirty = engine.simulate_spec_dswp(profile, cores, misspec_rate);
            let total = dirty.recovery.total();
            RunaheadPoint {
                runahead,
                clean_speedup: clean.app_speedup,
                misspec_speedup: dirty.app_speedup,
                rfp_share: if total > 0.0 {
                    dirty.recovery.rfp / total
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// One point of the latency sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyPoint {
    /// Base one-way inter-node latency in seconds.
    pub latency: f64,
    /// Spec-DSWP full-application speedup.
    pub dswp: f64,
    /// TLS full-application speedup.
    pub tls: f64,
}

/// Sweeps the inter-node latency: the system-level Figure 1.
pub fn latency_sweep(
    profile: &WorkloadProfile,
    cores: u32,
    latencies: &[f64],
) -> Vec<LatencyPoint> {
    latencies
        .iter()
        .map(|&latency| {
            let cluster = ClusterConfig {
                latency,
                ..ClusterConfig::paper()
            };
            let engine = SimEngine::new(cluster);
            LatencyPoint {
                latency,
                dswp: engine.simulate_spec_dswp(profile, cores, 0.0).app_speedup,
                tls: engine.simulate_tls(profile, cores, 0.0).app_speedup,
            }
        })
        .collect()
}

/// Cost of initializing one worker's working set by Copy-On-Access at
/// page vs word granularity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoaCost {
    /// Pages in the working set.
    pub pages: u64,
    /// Fraction of each page's words the worker actually touches.
    pub density: f64,
    /// Seconds to fault the working set in page-granular COA.
    pub page_granular: f64,
    /// Seconds with a (hypothetical) word-granular COA.
    pub word_granular: f64,
}

/// §4.2: page-granularity COA amortizes the round trip over nearby words
/// (constructive prefetching); word granularity pays a round trip per
/// touched word and is prohibitive on a cluster.
pub fn coa_granularity(cluster: &ClusterConfig, pages: u64, density: f64) -> CoaCost {
    assert!((0.0..=1.0).contains(&density), "density is a fraction");
    let round_trip = |bytes: f64| {
        2.0 * cluster.latency
            + cluster.wire_time(bytes)
            + cluster.instr_time(cluster.send_instr + cluster.recv_instr)
    };
    let words_touched = (pages as f64 * 512.0 * density).ceil();
    CoaCost {
        pages,
        density,
        page_granular: pages as f64 * round_trip(4096.0),
        word_granular: words_touched * round_trip(8.0),
    }
}

/// One point of the unit-sharding sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardPoint {
    /// Try-commit/commit parallelism.
    pub shards: u32,
    /// Full-application speedup.
    pub speedup: f64,
}

/// §3.2's closing remark, quantified: parallelizing the try-commit and
/// commit units relieves their serialization at high worker counts.
pub fn unit_shard_sweep(profile: &WorkloadProfile, cores: u32, shards: &[u32]) -> Vec<ShardPoint> {
    unit_shard_sweep_with(profile, cores, shards, 1.0)
}

/// [`unit_shard_sweep`] with an explicit validation-plane compaction
/// factor (the runtime's measured `bytes_post / bytes_pre` ratio), so the
/// model predictions reflect the protocol actually running.
pub fn unit_shard_sweep_with(
    profile: &WorkloadProfile,
    cores: u32,
    shards: &[u32],
    val_compaction: f64,
) -> Vec<ShardPoint> {
    shards
        .iter()
        .map(|&s| {
            let cluster = ClusterConfig {
                unit_shards: s,
                val_compaction,
                ..ClusterConfig::paper()
            };
            ShardPoint {
                shards: s,
                speedup: SimEngine::new(cluster)
                    .simulate_spec_dswp(profile, cores, 0.0)
                    .app_speedup,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{StageProfile, StageShape, TlsPlan};

    fn comm_heavy() -> WorkloadProfile {
        WorkloadProfile {
            name: "ablation".into(),
            iter_work: 1.0e-3,
            iterations: 3000,
            coverage: 0.99,
            stages: vec![
                StageProfile {
                    shape: StageShape::Sequential,
                    work_fraction: 0.02,
                    bytes_out: 16_384.0,
                },
                StageProfile {
                    shape: StageShape::Parallel,
                    work_fraction: 0.96,
                    bytes_out: 256.0,
                },
                StageProfile {
                    shape: StageShape::Sequential,
                    work_fraction: 0.02,
                    bytes_out: 0.0,
                },
            ],
            validation_words: 64.0,
            tls: TlsPlan {
                sync_fraction: 0.03,
                bytes_per_iter: 256.0,
                validation_words: 64.0,
            },
            chunked: false,
            invocation: None,
        }
    }

    #[test]
    fn batching_sweep_is_monotone_then_saturates() {
        let pts = batch_sweep(&comm_heavy(), 128, &[1.0, 8.0, 64.0, 512.0, 4096.0]);
        for w in pts.windows(2) {
            assert!(
                w[1].speedup >= w[0].speedup * 0.999,
                "{:?} -> {:?}",
                w[0],
                w[1]
            );
        }
        assert!(pts[3].speedup > 1.5 * pts[0].speedup, "batching pays off");
        // Diminishing returns: the last doubling adds little.
        assert!(pts[4].speedup < pts[3].speedup * 1.2);
    }

    #[test]
    fn runahead_trades_clean_speed_for_rollback_cost() {
        let pts = runahead_sweep(&comm_heavy(), 64, 0.002, &[4, 32, 256, 2048]);
        // Clean speedup never drops as run-ahead deepens.
        for w in pts.windows(2) {
            assert!(w[1].clean_speedup >= w[0].clean_speedup * 0.999);
        }
        // But the recovery bill grows: deep run-ahead loses more of its
        // clean speedup than shallow run-ahead does.
        let loss = |p: &RunaheadPoint| p.clean_speedup / p.misspec_speedup;
        assert!(
            loss(&pts[3]) > loss(&pts[0]),
            "deep {:?} vs shallow {:?}",
            pts[3],
            pts[0]
        );
        assert!(pts[3].rfp_share > 0.5, "deep run-ahead is RFP-dominated");
    }

    #[test]
    fn latency_sweep_shows_dswp_tolerance() {
        let lats = [1.0e-6, 4.0e-6, 16.0e-6, 64.0e-6];
        let pts = latency_sweep(&comm_heavy(), 128, &lats);
        let dswp_drop = pts[0].dswp / pts[3].dswp;
        let tls_drop = pts[0].tls / pts[3].tls;
        assert!(
            tls_drop > 1.5 * dswp_drop,
            "TLS collapses under latency: dswp {dswp_drop:.2}x vs tls {tls_drop:.2}x"
        );
        assert!(dswp_drop < 1.6, "DSWP stays latency-tolerant: {dswp_drop}");
    }

    #[test]
    fn page_granular_coa_wins_at_realistic_density() {
        let c = ClusterConfig::paper();
        // Even touching 10% of each page, one round trip per page beats
        // one per word.
        let sparse = coa_granularity(&c, 64, 0.1);
        assert!(sparse.page_granular < sparse.word_granular);
        let dense = coa_granularity(&c, 64, 1.0);
        assert!(
            dense.word_granular > 50.0 * dense.page_granular,
            "word COA is prohibitive: {:?}",
            dense
        );
    }

    #[test]
    fn unit_sharding_relieves_validation_serialization() {
        // A validation-heavy profile with negligible sequential stages:
        // the try-commit/commit units are the only serialization left.
        let mut p = comm_heavy();
        p.validation_words = 2048.0;
        p.stages[0].bytes_out = 256.0;
        p.stages[0].work_fraction = 0.002;
        p.stages[1].work_fraction = 0.996;
        p.stages[2].work_fraction = 0.002;
        let pts = unit_shard_sweep(&p, 128, &[1, 2, 4, 8]);
        assert!(
            pts[3].speedup > 1.5 * pts[0].speedup,
            "sharding helps: {:?}",
            pts
        );
        for w in pts.windows(2) {
            assert!(w[1].speedup >= w[0].speedup * 0.999);
        }
    }

    #[test]
    fn word_coa_can_win_only_when_pathologically_sparse() {
        let c = ClusterConfig::paper();
        let p = coa_granularity(&c, 64, 1.0 / 512.0); // one word per page
        assert!(p.word_granular <= p.page_granular * 1.01);
    }
}
