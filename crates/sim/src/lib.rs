//! Discrete-event cluster simulator for the DSMTX evaluation.
//!
//! The paper measures an InfiniBand cluster of 32 Dell PowerEdge 1950
//! nodes (4 cores each, Xeon 5160 @ 3 GHz). That hardware is not
//! available here, so the evaluation figures are regenerated on a
//! parametric performance model instead: the *behaviour* (speculation,
//! validation, commit, rollback) runs for real in the `dsmtx` runtime,
//! while the *timing at 8–128 cores* is simulated by this crate.
//!
//! The model is an iteration-level discrete-event simulation built on the
//! pipeline recurrences of decoupled software pipelining:
//!
//! * each stage executor is a server, busy for the stage's share of the
//!   iteration work plus per-message send/receive CPU overhead;
//! * every byte between stages, to the try-commit unit, and to the commit
//!   unit crosses a NIC with finite bandwidth and latency;
//! * validation and commit are serial servers in MTX order (the paper's
//!   §3.2 serialization);
//! * TLS plans add the cyclic synchronized-dependence edge that puts
//!   communication latency on the critical path (Figure 1);
//! * misspeculation triggers the §4.3 recovery sequence, with ERM / FLQ /
//!   SEQ accounted explicitly and RFP (pipeline refill plus squashed
//!   run-ahead) emerging from the timeline.
//!
//! See `DESIGN.md` §2 for why this substitution preserves the shape of
//! Figures 4–6, and [`schedule`] for the cycle-accurate Figure 1 model.

//! # Example
//!
//! ```
//! use dsmtx_sim::SimEngine;
//! use dsmtx_sim::profile::{StageProfile, StageShape};
//! use dsmtx_sim::{TlsPlan, WorkloadProfile};
//!
//! let profile = WorkloadProfile {
//!     name: "demo".into(),
//!     iter_work: 1.0e-3,
//!     iterations: 1000,
//!     coverage: 0.99,
//!     stages: vec![StageProfile {
//!         shape: StageShape::Parallel,
//!         work_fraction: 1.0,
//!         bytes_out: 64.0,
//!     }],
//!     validation_words: 8.0,
//!     tls: TlsPlan { sync_fraction: 0.02, bytes_per_iter: 64.0, validation_words: 8.0 },
//!     chunked: false,
//!     invocation: None,
//! };
//! let engine = SimEngine::default();
//! let dswp = engine.simulate_spec_dswp(&profile, 128, 0.0);
//! let tls = engine.simulate_tls(&profile, 128, 0.0);
//! assert!(dswp.app_speedup > tls.app_speedup);
//! ```

pub mod ablation;
pub mod cluster;
pub mod engine;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod schedule;

pub use ablation::{
    batch_sweep, coa_granularity, latency_sweep, runahead_sweep, unit_shard_sweep,
    unit_shard_sweep_with,
};
pub use cluster::ClusterConfig;
pub use engine::{RecoveryBreakdown, SimEngine, SimOutcome};
pub use profile::{FaultProfile, InvocationProfile, StageProfile, TlsPlan, WorkloadProfile};
pub use report::{bandwidth_series, speedup_curve, SpeedupPoint};
pub use schedule::{doacross_schedule, dswp_schedule, Schedule};
