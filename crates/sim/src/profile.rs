//! Workload profiles: the per-benchmark parameters that drive the
//! simulator.
//!
//! A profile captures what the paper's §5.2 prose and Table 2 say about
//! each benchmark's parallelization: how the iteration work splits across
//! pipeline stages, how many bytes move per iteration, what bounds the
//! available parallelism, how much of the application lies outside the
//! parallelized loop, and how the TLS-only plan differs (synchronized
//! dependences, different communication volume).

/// How one pipeline stage of a profile executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageShape {
    /// One worker runs every iteration's subTX.
    Sequential,
    /// The stage is replicated over all workers not consumed by
    /// sequential stages.
    Parallel,
}

/// One pipeline stage of a Spec-DSWP plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageProfile {
    /// Sequential or replicated.
    pub shape: StageShape,
    /// This stage's fraction of the iteration work (fractions sum to 1).
    pub work_fraction: f64,
    /// Bytes this stage sends to the next stage per iteration (produces +
    /// forwarded uncommitted stores).
    pub bytes_out: f64,
}

/// The TLS-only baseline plan for the same loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TlsPlan {
    /// Fraction of the iteration that must wait for a synchronized value
    /// from the previous iteration (0 for Spec-DOALL-style TLS). This is
    /// the cyclic edge that puts latency on the critical path.
    pub sync_fraction: f64,
    /// Bytes communicated per iteration (synchronized values plus any
    /// input distribution, e.g. `256.bzip2`'s TLS sends only the file
    /// descriptor while Spec-DSWP ships whole blocks).
    pub bytes_per_iter: f64,
    /// Speculatively accessed words per iteration forwarded for
    /// validation and commit.
    pub validation_words: f64,
}

/// An outer-invocation structure (e.g. `052.alvinn` parallelizes the
/// second-level loop of a nest and synchronizes at every invocation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvocationProfile {
    /// Number of invocations of the parallelized loop.
    pub count: u64,
    /// Bytes each worker must receive from the commit unit at invocation
    /// start (Copy-On-Access of live-ins).
    pub init_bytes_per_worker: f64,
    /// Bytes each worker contributes to the end-of-invocation reduction.
    pub reduce_bytes_per_worker: f64,
}

/// Everything the simulator needs to model one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Benchmark name, as in Table 2.
    pub name: String,
    /// Sequential work per loop iteration, in seconds.
    pub iter_work: f64,
    /// Iterations per invocation of the parallelized loop. Small counts
    /// model parallelism limiters (GoPs for `464.h264ref`, input files
    /// for `crc32`, swaption count for `swaptions`).
    pub iterations: u64,
    /// Fraction of total application time spent in the parallelized
    /// loop(s) (Amdahl coverage).
    pub coverage: f64,
    /// Spec-DSWP pipeline stages.
    pub stages: Vec<StageProfile>,
    /// Words per iteration forwarded to the try-commit and commit units
    /// (speculative loads + stores).
    pub validation_words: f64,
    /// The TLS-only plan for the Figure 4 comparison.
    pub tls: TlsPlan,
    /// True when the application already produces its data in large
    /// chunks (arrays), so the per-message overhead is amortized even
    /// without the batched queues — `052.alvinn`, `164.gzip`, and
    /// `256.bzip2` in the paper (§5.3) see no benefit from the
    /// optimization.
    pub chunked: bool,
    /// Outer-loop synchronization, when present.
    pub invocation: Option<InvocationProfile>,
}

/// A cluster fault model for the simulator: the analytic counterpart of
/// the runtime's seed-driven fault injector.
///
/// The runtime's fabric retries a failed ship with bounded exponential
/// backoff and converts an exhausted budget into a timeout-driven
/// recovery. This profile predicts what that machinery costs: how many
/// extra ship attempts a fault rate implies, how often a message burns
/// its whole retry budget, and how many fault recoveries a run of a
/// given message volume should therefore expect. The recovery-stress
/// tests measure the same quantities from real faulted runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Probability that one ship attempt is disrupted (any fault class
    /// that forces a resend: drop, stall; delay/duplicate/reorder don't
    /// consume retry budget).
    pub resend_rate: f64,
    /// Ship attempts before the sender gives up and requests recovery.
    pub max_attempts: u32,
    /// First retry backoff, in seconds.
    pub base_backoff: f64,
    /// Backoff ceiling, in seconds.
    pub max_backoff: f64,
}

impl FaultProfile {
    /// A perfect network: no resends, no recoveries.
    pub const NONE: FaultProfile = FaultProfile {
        resend_rate: 0.0,
        max_attempts: 1,
        base_backoff: 0.0,
        max_backoff: 0.0,
    };

    /// Expected ship attempts per message: the truncated-geometric mean
    /// `(1 - p^k) / (1 - p)` for fault probability `p` and budget `k`.
    pub fn expected_attempts(&self) -> f64 {
        let p = self.resend_rate;
        if p <= 0.0 {
            return 1.0;
        }
        if p >= 1.0 {
            return self.max_attempts as f64;
        }
        (1.0 - p.powi(self.max_attempts as i32)) / (1.0 - p)
    }

    /// Probability one message exhausts its whole retry budget and
    /// converts into a fabric timeout: `p^k`.
    pub fn exhaust_probability(&self) -> f64 {
        self.resend_rate
            .clamp(0.0, 1.0)
            .powi(self.max_attempts as i32)
    }

    /// Expected timeout-driven recovery episodes for a run shipping
    /// `messages` messages.
    pub fn expected_recoveries(&self, messages: f64) -> f64 {
        messages * self.exhaust_probability()
    }

    /// Expected backoff time spent per message, in seconds: each retry
    /// `i` (0-based) waits `min(base · 2^i, max)`, weighted by the
    /// probability `p^(i+1)` that the retry happens at all.
    pub fn expected_backoff(&self) -> f64 {
        let p = self.resend_rate.clamp(0.0, 1.0);
        if p == 0.0 || self.max_attempts < 2 {
            return 0.0;
        }
        (0..self.max_attempts - 1)
            .map(|i| {
                let wait = (self.base_backoff * 2f64.powi(i as i32)).min(self.max_backoff);
                wait * p.powi(i as i32 + 1)
            })
            .sum()
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent profiles (static data, programming-error
    /// check, like [`WorkloadProfile::check`]).
    pub fn check(&self) {
        assert!(
            (0.0..=1.0).contains(&self.resend_rate),
            "resend rate {} outside [0, 1]",
            self.resend_rate
        );
        assert!(self.max_attempts >= 1, "zero ship attempts");
        assert!(
            self.base_backoff >= 0.0 && self.max_backoff >= self.base_backoff,
            "backoff window inverted"
        );
    }
}

impl WorkloadProfile {
    /// Number of sequential stages in the Spec-DSWP plan.
    pub fn sequential_stages(&self) -> u32 {
        self.stages
            .iter()
            .filter(|s| s.shape == StageShape::Sequential)
            .count() as u32
    }

    /// Number of parallel stages in the Spec-DSWP plan.
    pub fn parallel_stages(&self) -> u32 {
        self.stages.len() as u32 - self.sequential_stages()
    }

    /// Sequential execution time of one invocation of the loop.
    pub fn loop_seq_time(&self) -> f64 {
        self.iter_work * self.iterations as f64
    }

    /// Validates internal consistency (fractions sum to 1, nonzero work).
    ///
    /// # Panics
    ///
    /// Panics on inconsistent profiles; profiles are static data, so this
    /// is a programming-error check.
    pub fn check(&self) {
        assert!(self.iter_work > 0.0, "{}: zero iteration work", self.name);
        assert!(self.iterations > 0, "{}: zero iterations", self.name);
        assert!(
            (0.0..=1.0).contains(&self.coverage) && self.coverage > 0.0,
            "{}: bad coverage",
            self.name
        );
        assert!(!self.stages.is_empty(), "{}: no stages", self.name);
        let total: f64 = self.stages.iter().map(|s| s.work_fraction).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "{}: stage fractions sum to {total}",
            self.name
        );
        assert!(
            self.parallel_stages() <= 1,
            "{}: at most one parallel stage supported",
            self.name
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WorkloadProfile {
        WorkloadProfile {
            name: "sample".into(),
            iter_work: 1.0e-3,
            iterations: 100,
            coverage: 0.98,
            stages: vec![
                StageProfile {
                    shape: StageShape::Sequential,
                    work_fraction: 0.05,
                    bytes_out: 4096.0,
                },
                StageProfile {
                    shape: StageShape::Parallel,
                    work_fraction: 0.9,
                    bytes_out: 2048.0,
                },
                StageProfile {
                    shape: StageShape::Sequential,
                    work_fraction: 0.05,
                    bytes_out: 0.0,
                },
            ],
            validation_words: 64.0,
            tls: TlsPlan {
                sync_fraction: 0.05,
                bytes_per_iter: 128.0,
                validation_words: 64.0,
            },
            chunked: false,
            invocation: None,
        }
    }

    #[test]
    fn fault_profile_limits() {
        FaultProfile::NONE.check();
        assert_eq!(FaultProfile::NONE.expected_attempts(), 1.0);
        assert_eq!(FaultProfile::NONE.exhaust_probability(), 0.0);
        assert_eq!(FaultProfile::NONE.expected_backoff(), 0.0);

        let total = FaultProfile {
            resend_rate: 1.0,
            max_attempts: 5,
            base_backoff: 1e-5,
            max_backoff: 2e-4,
        };
        total.check();
        // A dead link burns the whole budget on every message...
        assert_eq!(total.expected_attempts(), 5.0);
        // ...and every message converts into a recovery.
        assert_eq!(total.expected_recoveries(100.0), 100.0);
    }

    #[test]
    fn fault_profile_geometric_middle() {
        let f = FaultProfile {
            resend_rate: 0.5,
            max_attempts: 4,
            base_backoff: 1e-5,
            max_backoff: 2e-5,
        };
        f.check();
        // (1 - 0.5^4) / (1 - 0.5) = 1.875 expected attempts.
        assert!((f.expected_attempts() - 1.875).abs() < 1e-12);
        // 0.5^4 of messages exhaust the budget.
        assert!((f.exhaust_probability() - 0.0625).abs() < 1e-12);
        // Backoff: 1e-5·0.5 + 2e-5·0.25 + 2e-5·0.125 (capped at max).
        let expect = 1e-5 * 0.5 + 2e-5 * 0.25 + 2e-5 * 0.125;
        assert!((f.expected_backoff() - expect).abs() < 1e-18);
        // More budget -> more expected attempts, fewer recoveries.
        let deeper = FaultProfile {
            max_attempts: 8,
            ..f
        };
        assert!(deeper.expected_attempts() > f.expected_attempts());
        assert!(deeper.exhaust_probability() < f.exhaust_probability());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn fault_profile_bad_rate_detected() {
        FaultProfile {
            resend_rate: 1.5,
            ..FaultProfile::NONE
        }
        .check();
    }

    #[test]
    fn stage_counting() {
        let p = sample();
        assert_eq!(p.sequential_stages(), 2);
        assert_eq!(p.parallel_stages(), 1);
        assert!((p.loop_seq_time() - 0.1).abs() < 1e-12);
        p.check();
    }

    #[test]
    #[should_panic(expected = "stage fractions")]
    fn bad_fractions_detected() {
        let mut p = sample();
        p.stages[0].work_fraction = 0.5;
        p.check();
    }

    #[test]
    #[should_panic(expected = "zero iterations")]
    fn zero_iterations_detected() {
        let mut p = sample();
        p.iterations = 0;
        p.check();
    }
}
