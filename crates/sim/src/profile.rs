//! Workload profiles: the per-benchmark parameters that drive the
//! simulator.
//!
//! A profile captures what the paper's §5.2 prose and Table 2 say about
//! each benchmark's parallelization: how the iteration work splits across
//! pipeline stages, how many bytes move per iteration, what bounds the
//! available parallelism, how much of the application lies outside the
//! parallelized loop, and how the TLS-only plan differs (synchronized
//! dependences, different communication volume).

/// How one pipeline stage of a profile executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageShape {
    /// One worker runs every iteration's subTX.
    Sequential,
    /// The stage is replicated over all workers not consumed by
    /// sequential stages.
    Parallel,
}

/// One pipeline stage of a Spec-DSWP plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageProfile {
    /// Sequential or replicated.
    pub shape: StageShape,
    /// This stage's fraction of the iteration work (fractions sum to 1).
    pub work_fraction: f64,
    /// Bytes this stage sends to the next stage per iteration (produces +
    /// forwarded uncommitted stores).
    pub bytes_out: f64,
}

/// The TLS-only baseline plan for the same loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TlsPlan {
    /// Fraction of the iteration that must wait for a synchronized value
    /// from the previous iteration (0 for Spec-DOALL-style TLS). This is
    /// the cyclic edge that puts latency on the critical path.
    pub sync_fraction: f64,
    /// Bytes communicated per iteration (synchronized values plus any
    /// input distribution, e.g. `256.bzip2`'s TLS sends only the file
    /// descriptor while Spec-DSWP ships whole blocks).
    pub bytes_per_iter: f64,
    /// Speculatively accessed words per iteration forwarded for
    /// validation and commit.
    pub validation_words: f64,
}

/// An outer-invocation structure (e.g. `052.alvinn` parallelizes the
/// second-level loop of a nest and synchronizes at every invocation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvocationProfile {
    /// Number of invocations of the parallelized loop.
    pub count: u64,
    /// Bytes each worker must receive from the commit unit at invocation
    /// start (Copy-On-Access of live-ins).
    pub init_bytes_per_worker: f64,
    /// Bytes each worker contributes to the end-of-invocation reduction.
    pub reduce_bytes_per_worker: f64,
}

/// Everything the simulator needs to model one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Benchmark name, as in Table 2.
    pub name: String,
    /// Sequential work per loop iteration, in seconds.
    pub iter_work: f64,
    /// Iterations per invocation of the parallelized loop. Small counts
    /// model parallelism limiters (GoPs for `464.h264ref`, input files
    /// for `crc32`, swaption count for `swaptions`).
    pub iterations: u64,
    /// Fraction of total application time spent in the parallelized
    /// loop(s) (Amdahl coverage).
    pub coverage: f64,
    /// Spec-DSWP pipeline stages.
    pub stages: Vec<StageProfile>,
    /// Words per iteration forwarded to the try-commit and commit units
    /// (speculative loads + stores).
    pub validation_words: f64,
    /// The TLS-only plan for the Figure 4 comparison.
    pub tls: TlsPlan,
    /// True when the application already produces its data in large
    /// chunks (arrays), so the per-message overhead is amortized even
    /// without the batched queues — `052.alvinn`, `164.gzip`, and
    /// `256.bzip2` in the paper (§5.3) see no benefit from the
    /// optimization.
    pub chunked: bool,
    /// Outer-loop synchronization, when present.
    pub invocation: Option<InvocationProfile>,
}

impl WorkloadProfile {
    /// Number of sequential stages in the Spec-DSWP plan.
    pub fn sequential_stages(&self) -> u32 {
        self.stages
            .iter()
            .filter(|s| s.shape == StageShape::Sequential)
            .count() as u32
    }

    /// Number of parallel stages in the Spec-DSWP plan.
    pub fn parallel_stages(&self) -> u32 {
        self.stages.len() as u32 - self.sequential_stages()
    }

    /// Sequential execution time of one invocation of the loop.
    pub fn loop_seq_time(&self) -> f64 {
        self.iter_work * self.iterations as f64
    }

    /// Validates internal consistency (fractions sum to 1, nonzero work).
    ///
    /// # Panics
    ///
    /// Panics on inconsistent profiles; profiles are static data, so this
    /// is a programming-error check.
    pub fn check(&self) {
        assert!(self.iter_work > 0.0, "{}: zero iteration work", self.name);
        assert!(self.iterations > 0, "{}: zero iterations", self.name);
        assert!(
            (0.0..=1.0).contains(&self.coverage) && self.coverage > 0.0,
            "{}: bad coverage",
            self.name
        );
        assert!(!self.stages.is_empty(), "{}: no stages", self.name);
        let total: f64 = self.stages.iter().map(|s| s.work_fraction).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "{}: stage fractions sum to {total}",
            self.name
        );
        assert!(
            self.parallel_stages() <= 1,
            "{}: at most one parallel stage supported",
            self.name
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WorkloadProfile {
        WorkloadProfile {
            name: "sample".into(),
            iter_work: 1.0e-3,
            iterations: 100,
            coverage: 0.98,
            stages: vec![
                StageProfile {
                    shape: StageShape::Sequential,
                    work_fraction: 0.05,
                    bytes_out: 4096.0,
                },
                StageProfile {
                    shape: StageShape::Parallel,
                    work_fraction: 0.9,
                    bytes_out: 2048.0,
                },
                StageProfile {
                    shape: StageShape::Sequential,
                    work_fraction: 0.05,
                    bytes_out: 0.0,
                },
            ],
            validation_words: 64.0,
            tls: TlsPlan {
                sync_fraction: 0.05,
                bytes_per_iter: 128.0,
                validation_words: 64.0,
            },
            chunked: false,
            invocation: None,
        }
    }

    #[test]
    fn stage_counting() {
        let p = sample();
        assert_eq!(p.sequential_stages(), 2);
        assert_eq!(p.parallel_stages(), 1);
        assert!((p.loop_seq_time() - 0.1).abs() < 1e-12);
        p.check();
    }

    #[test]
    #[should_panic(expected = "stage fractions")]
    fn bad_fractions_detected() {
        let mut p = sample();
        p.stages[0].work_fraction = 0.5;
        p.check();
    }

    #[test]
    #[should_panic(expected = "zero iterations")]
    fn zero_iterations_detected() {
        let mut p = sample();
        p.iterations = 0;
        p.check();
    }
}
