//! Cycle-accurate schedules for the Figure 1 example.
//!
//! The four-statement linked-list loop (`A: while(node)`, `B: node =
//! node->next`, `C: res = work(node)`, `D: write(res)`) is scheduled two
//! ways on two cores:
//!
//! * **DOACROSS** alternates whole iterations between the cores, so the
//!   loop-carried dependence `B(i) → A(i+1)` crosses cores every
//!   iteration: the period is `2 + (latency - 1)` cycles.
//! * **DSWP** pins stage `{A, B}` to core 1 and `{C, D}` to core 2, so the
//!   recurrence stays core-local and only the acyclic `B(i) → C(i)` edge
//!   crosses cores: the period stays 2 cycles at any latency.
//!
//! A forwarding latency of 1 means a value produced in cycle *t* is usable
//! in cycle *t + 1* (pipeline-bypass convention), which reproduces the
//! paper's timelines exactly.

/// One scheduled statement instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Core index (0-based).
    pub core: usize,
    /// Start cycle.
    pub start: u64,
    /// Statement label, e.g. "B.3".
    pub label: String,
    /// Iteration number (1-based, matching the figure).
    pub iter: u64,
}

/// A two-core schedule of the example loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Scheduled cells in execution order.
    pub cells: Vec<Cell>,
    /// Number of cores.
    pub cores: usize,
    name: &'static str,
}

impl Schedule {
    /// Steady-state cycles per iteration, measured between the last two
    /// iterations' `A` statements.
    pub fn cycles_per_iter(&self) -> u64 {
        let mut a_starts: Vec<u64> = self
            .cells
            .iter()
            .filter(|c| c.label.starts_with("A."))
            .map(|c| c.start)
            .collect();
        a_starts.sort_unstable();
        match a_starts.len() {
            0 | 1 => 0,
            k => a_starts[k - 1] - a_starts[k - 2],
        }
    }

    /// Renders the schedule as a cycle × core grid (the Figure 1 layout).
    pub fn render(&self) -> String {
        let max_cycle = self.cells.iter().map(|c| c.start).max().unwrap_or(0);
        let mut out = String::new();
        out.push_str(&format!(
            "{} (cycles/iter: {})\n",
            self.name,
            self.cycles_per_iter()
        ));
        out.push_str("cycle");
        for core in 0..self.cores {
            out.push_str(&format!(" | core{}", core + 1));
        }
        out.push('\n');
        for cycle in 0..=max_cycle {
            out.push_str(&format!("{cycle:5}"));
            for core in 0..self.cores {
                let label = self
                    .cells
                    .iter()
                    .find(|c| c.core == core && c.start == cycle)
                    .map_or("", |c| c.label.as_str());
                out.push_str(&format!(" | {label:5}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Schedules `iters` iterations under DOACROSS with the given forwarding
/// latency (cycles).
pub fn doacross_schedule(iters: u64, latency: u64) -> Schedule {
    assert!(latency >= 1, "latency is at least one cycle");
    let mut cells = Vec::new();
    let mut core_free = [0u64; 2];
    let mut prev_b_end = 0u64; // end cycle (exclusive) of B in the previous iteration
    for i in 0..iters {
        let core = (i % 2) as usize;
        let dep_ready = if i == 0 {
            0
        } else {
            // Cross-core forward: usable latency-1 cycles after the
            // producing cycle ends.
            prev_b_end + (latency - 1)
        };
        let start = core_free[core].max(dep_ready);
        for (k, stmt) in ["A", "B", "C", "D"].iter().enumerate() {
            cells.push(Cell {
                core,
                start: start + k as u64,
                label: format!("{stmt}.{}", i + 1),
                iter: i + 1,
            });
        }
        prev_b_end = start + 2;
        core_free[core] = start + 4;
    }
    Schedule {
        cells,
        cores: 2,
        name: "DOACROSS",
    }
}

/// Schedules `iters` iterations under DSWP with the given forwarding
/// latency (cycles): stage `{A, B}` on core 1, stage `{C, D}` on core 2.
pub fn dswp_schedule(iters: u64, latency: u64) -> Schedule {
    assert!(latency >= 1, "latency is at least one cycle");
    let mut cells = Vec::new();
    let mut core1_free = 0u64;
    let mut core2_free = 0u64;
    for i in 0..iters {
        // Stage 1: the recurrence A(i) after B(i-1) is core-local.
        let s1 = core1_free;
        cells.push(Cell {
            core: 0,
            start: s1,
            label: format!("A.{}", i + 1),
            iter: i + 1,
        });
        cells.push(Cell {
            core: 0,
            start: s1 + 1,
            label: format!("B.{}", i + 1),
            iter: i + 1,
        });
        core1_free = s1 + 2;
        let b_end = s1 + 2;
        // Stage 2: waits for the forwarded value and its own predecessor.
        let s2 = core2_free.max(b_end + (latency - 1));
        cells.push(Cell {
            core: 1,
            start: s2,
            label: format!("C.{}", i + 1),
            iter: i + 1,
        });
        cells.push(Cell {
            core: 1,
            start: s2 + 1,
            label: format!("D.{}", i + 1),
            iter: i + 1,
        });
        core2_free = s2 + 2;
    }
    Schedule {
        cells,
        cores: 2,
        name: "DSWP",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 1(c): at latency 1, both run at 2 cycles/iteration.
    #[test]
    fn latency_one_both_two_cycles() {
        assert_eq!(doacross_schedule(6, 1).cycles_per_iter(), 2);
        assert_eq!(dswp_schedule(6, 1).cycles_per_iter(), 2);
    }

    /// Figure 1(d): at latency 2, DOACROSS degrades to 3 cycles/iteration
    /// while DSWP stays at 2.
    #[test]
    fn latency_two_only_doacross_degrades() {
        assert_eq!(doacross_schedule(6, 2).cycles_per_iter(), 3);
        assert_eq!(dswp_schedule(6, 2).cycles_per_iter(), 2);
    }

    /// DSWP is latency-tolerant at any latency; DOACROSS degrades
    /// linearly.
    #[test]
    fn dswp_tolerates_any_latency() {
        for lat in 1..10 {
            assert_eq!(dswp_schedule(8, lat).cycles_per_iter(), 2, "lat {lat}");
            assert_eq!(
                doacross_schedule(8, lat).cycles_per_iter(),
                1 + lat.max(1),
                "lat {lat}"
            );
        }
    }

    /// The exact cell placements of Figure 1(d) DSWP: C.1 starts at cycle 3.
    #[test]
    fn figure_1d_dswp_placement() {
        let s = dswp_schedule(3, 2);
        let c1 = s.cells.iter().find(|c| c.label == "C.1").unwrap();
        assert_eq!((c1.core, c1.start), (1, 3));
        let a2 = s.cells.iter().find(|c| c.label == "A.2").unwrap();
        assert_eq!((a2.core, a2.start), (0, 2));
    }

    /// The exact cell placements of Figure 1(d) DOACROSS: A.2 starts at
    /// cycle 3 on core 2.
    #[test]
    fn figure_1d_doacross_placement() {
        let s = doacross_schedule(3, 2);
        let a2 = s.cells.iter().find(|c| c.label == "A.2").unwrap();
        assert_eq!((a2.core, a2.start), (1, 3));
    }

    #[test]
    fn render_contains_grid() {
        let text = dswp_schedule(3, 1).render();
        assert!(text.contains("DSWP"));
        assert!(text.contains("core1 | core2"));
        assert!(text.contains("A.1"));
    }
}
