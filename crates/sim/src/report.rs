//! Series builders for the evaluation figures.

use crate::cluster::ClusterConfig;
use crate::engine::{SimEngine, SimOutcome};
use crate::profile::WorkloadProfile;

/// One point of a Figure 4 speedup curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupPoint {
    /// Total cores.
    pub cores: u32,
    /// Full-application speedup with the benchmark's best DSMTX plan
    /// (Spec-DSWP / Spec-DOALL).
    pub dsmtx: f64,
    /// Full-application speedup with the TLS-only baseline.
    pub tls: f64,
}

/// The paper's Figure 4 x-axis: 8, 16, …, 128 cores.
pub fn figure4_core_counts() -> Vec<u32> {
    (1..=16).map(|k| 8 * k).collect()
}

/// Builds the Figure 4 curve for one benchmark.
pub fn speedup_curve(
    engine: &SimEngine,
    profile: &WorkloadProfile,
    core_counts: &[u32],
) -> Vec<SpeedupPoint> {
    core_counts
        .iter()
        .map(|&cores| SpeedupPoint {
            cores,
            dsmtx: engine.simulate_spec_dswp(profile, cores, 0.0).app_speedup,
            tls: engine.simulate_tls(profile, cores, 0.0).app_speedup,
        })
        .collect()
}

/// Geometric mean of a slice of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Figure 5(a): bandwidth (bytes/second) of the Spec-DSWP plan at
/// consecutive core counts starting from the pipeline's minimum (stages +
/// try-commit + commit), matching "three consecutive core counts starting
/// from the number of pipeline stages".
pub fn bandwidth_series(
    engine: &SimEngine,
    profile: &WorkloadProfile,
    points: u32,
) -> Vec<(u32, f64)> {
    let min_cores = profile.stages.len() as u32 + 2;
    (0..points)
        .map(|k| {
            let cores = min_cores + k;
            let out = engine.simulate_spec_dswp(profile, cores, 0.0);
            (cores, out.bandwidth)
        })
        .collect()
}

/// Figure 5(b): speedup at 128 cores with the batched DSMTX queues vs
/// direct per-produce MPI sends.
pub fn batching_comparison(profile: &WorkloadProfile) -> (f64, f64) {
    let optimized = SimEngine::new(ClusterConfig::paper())
        .simulate_spec_dswp(profile, 128, 0.0)
        .app_speedup;
    let direct = SimEngine::new(ClusterConfig::paper_unbatched())
        .simulate_spec_dswp(profile, 128, 0.0)
        .app_speedup;
    (optimized, direct)
}

/// Figure 6: speedups and recovery attribution at a given misspeculation
/// rate across core counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPoint {
    /// Total cores.
    pub cores: u32,
    /// Speedup with no misspeculation (the full bar).
    pub clean_speedup: f64,
    /// Speedup with the injected misspeculation rate (MIS).
    pub misspec_speedup: f64,
    /// The outcome carrying the ERM/FLQ/SEQ/RFP attribution.
    pub outcome: SimOutcome,
}

/// Builds the Figure 6 series for one benchmark.
pub fn recovery_series(
    engine: &SimEngine,
    profile: &WorkloadProfile,
    rate: f64,
    core_counts: &[u32],
) -> Vec<RecoveryPoint> {
    core_counts
        .iter()
        .map(|&cores| {
            let clean = engine.simulate_spec_dswp(profile, cores, 0.0);
            let dirty = engine.simulate_spec_dswp(profile, cores, rate);
            RecoveryPoint {
                cores,
                clean_speedup: clean.app_speedup,
                misspec_speedup: dirty.app_speedup,
                outcome: dirty,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{StageProfile, StageShape, TlsPlan};

    fn profile() -> WorkloadProfile {
        WorkloadProfile {
            name: "report-test".into(),
            iter_work: 1.0e-3,
            iterations: 1000,
            coverage: 0.98,
            stages: vec![
                StageProfile {
                    shape: StageShape::Sequential,
                    work_fraction: 0.03,
                    bytes_out: 512.0,
                },
                StageProfile {
                    shape: StageShape::Parallel,
                    work_fraction: 0.97,
                    bytes_out: 0.0,
                },
            ],
            validation_words: 16.0,
            tls: TlsPlan {
                sync_fraction: 0.03,
                bytes_per_iter: 128.0,
                validation_words: 16.0,
            },
            chunked: false,
            invocation: None,
        }
    }

    #[test]
    fn figure4_axis_matches_paper() {
        let counts = figure4_core_counts();
        assert_eq!(counts.first(), Some(&8));
        assert_eq!(counts.last(), Some(&128));
        assert_eq!(counts.len(), 16);
    }

    #[test]
    fn curve_has_one_point_per_core_count() {
        let e = SimEngine::default();
        let p = profile();
        let curve = speedup_curve(&e, &p, &[8, 64, 128]);
        assert_eq!(curve.len(), 3);
        assert!(curve[2].dsmtx > curve[0].dsmtx);
        for pt in &curve {
            assert!(pt.dsmtx >= pt.tls * 0.5, "sane relative magnitudes");
        }
    }

    #[test]
    fn geomean_of_identical_values_is_the_value() {
        assert!((geomean(&[4.0, 4.0, 4.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        // Geomean of 1 and 100 is 10.
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_series_starts_at_pipeline_minimum() {
        let e = SimEngine::default();
        let p = profile();
        let series = bandwidth_series(&e, &p, 3);
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].0, 4); // 2 stages + 2 units
        for (_, bw) in &series {
            assert!(*bw > 0.0);
        }
    }

    #[test]
    fn batching_comparison_favors_batching() {
        let mut p = profile();
        // Make the profile communication-heavy so the contrast shows.
        p.stages[0].bytes_out = 16_384.0;
        let (on, off) = batching_comparison(&p);
        assert!(on > off, "batched {on} vs direct {off}");
    }

    #[test]
    fn recovery_series_shows_misspec_cost() {
        let e = SimEngine::default();
        let p = profile();
        let series = recovery_series(&e, &p, 0.001, &[32, 128]);
        for pt in &series {
            assert!(pt.misspec_speedup < pt.clean_speedup);
            assert!(pt.outcome.recovery.episodes > 0);
        }
    }
}
