//! Metrics export for simulated runs.
//!
//! A [`SimOutcome`] publishes itself into a [`Registry`] under the same
//! [`dsmtx_obs::schema`] names the real runtime uses
//! (`RunReport::to_registry` in the core crate), so a simulated sweep and
//! a real traced run produce JSONL dumps with one shared vocabulary —
//! diffable and plottable by the same tooling.

use dsmtx_obs::{schema, Registry};

use crate::engine::SimOutcome;

impl SimOutcome {
    /// Exports this outcome into `reg` under the shared schema names.
    ///
    /// Simulated times are in seconds; they are converted to the schema's
    /// microsecond units. Speedup is exported in milli-x
    /// ([`schema::RUN_SPEEDUP_MILLI`]) so it survives the integer gauge.
    pub fn to_registry(&self, reg: &Registry) {
        reg.gauge(schema::RUN_ELAPSED_US, &[])
            .set((self.loop_time * 1e6) as i64);
        reg.counter(schema::RUN_RECOVERIES, &[])
            .add(self.recovery.episodes);
        reg.counter(schema::RUN_BYTES, &[]).add(self.bytes as u64);
        reg.gauge(schema::RUN_BANDWIDTH_BPS, &[])
            .set(self.bandwidth as i64);
        reg.gauge(schema::RUN_SPEEDUP_MILLI, &[])
            .set((self.app_speedup * 1000.0) as i64);
    }

    /// One-call JSONL dump of this outcome.
    pub fn to_jsonl(&self) -> String {
        let reg = Registry::new();
        self.to_registry(&reg);
        reg.to_jsonl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{StageProfile, StageShape, TlsPlan, WorkloadProfile};
    use crate::SimEngine;

    fn any_outcome() -> SimOutcome {
        let engine = SimEngine::default();
        let profile = WorkloadProfile {
            name: "t".into(),
            iter_work: 1e-5,
            iterations: 1000,
            coverage: 0.95,
            stages: vec![StageProfile {
                shape: StageShape::Parallel,
                work_fraction: 1.0,
                bytes_out: 64.0,
            }],
            validation_words: 8.0,
            tls: TlsPlan {
                sync_fraction: 0.0,
                bytes_per_iter: 64.0,
                validation_words: 8.0,
            },
            chunked: false,
            invocation: None,
        };
        engine.simulate_spec_dswp(&profile, 32, 0.0)
    }

    #[test]
    fn sim_outcome_exports_shared_schema() {
        let out = any_outcome();
        let dump = out.to_jsonl();
        for name in [
            schema::RUN_ELAPSED_US,
            schema::RUN_RECOVERIES,
            schema::RUN_BYTES,
            schema::RUN_BANDWIDTH_BPS,
            schema::RUN_SPEEDUP_MILLI,
        ] {
            assert!(dump.contains(name), "missing {name} in:\n{dump}");
        }
        for line in dump.lines() {
            dsmtx_obs::json::validate(line).unwrap();
        }
    }

    #[test]
    fn speedup_survives_the_integer_gauge() {
        let out = any_outcome();
        let reg = Registry::new();
        out.to_registry(&reg);
        let milli = reg.gauge(schema::RUN_SPEEDUP_MILLI, &[]).value();
        assert!((milli as f64 / 1000.0 - out.app_speedup).abs() < 0.001);
    }
}
