//! Partition linter: checks a recorded dependence graph against a plan's
//! declared stage partition and emits typed findings.
//!
//! The rules mirror what the runtime actually does, not a generic static
//! analysis:
//!
//! * a loop-carried flow dependence is **safe** iff some [`StageRole::Sequential`]
//!   stage covers both its endpoints (the single replica retains its own
//!   stores across iterations) or the address is declared forwarded
//!   (produce/consume or ring sync). Anything else the runtime
//!   *speculates on* — [`FindingKind::UnforwardedLoopCarriedFlow`];
//! * value-based validation means a dependence whose every instance is a
//!   silent store can never manifest as a conflict, so such findings are
//!   downgraded to [`Severity::Warning`];
//! * an access outside every declared footprint is
//!   [`FindingKind::CapturedStateEscape`] — the plan's description of
//!   itself is wrong, and every certification downstream of it is void;
//! * stores to one address attributed to different stages are a
//!   [`FindingKind::CrossStageOutputDep`] — commit order, not stage
//!   order, decides the final value;
//! * a skewed filtered-store stream at a candidate shard count is a
//!   [`FindingKind::ShardHotspot`] — sharded try-commit would serialize
//!   on one unit.

use std::collections::{BTreeMap, BTreeSet};

use dsmtx::{StageRole, StageSpec};
use dsmtx_mem::{store_shard_load, AccessKind, ShardMap};
use dsmtx_uva::VAddr;

use crate::pdg::{DepGraph, DepKind};
use crate::record::LoopTrace;

/// One shard's filtered-store share (percent) above which it is a
/// hotspot.
pub const HOTSPOT_SHARE_PCT: u64 = 60;
/// Minimum filtered stores before shard balance is worth flagging.
pub const HOTSPOT_MIN_STORES: u64 = 128;
/// Candidate shard counts the hotspot check evaluates.
pub const HOTSPOT_SHARDS: [usize; 2] = [2, 4];

/// Finding severity. `Error` findings fail the CI gate for shipped plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Acknowledged and mitigated as far as the mechanism allows — kept
    /// in the report for visibility (e.g. a store skew that a shipped
    /// shard map balanced down to the single-page floor).
    Info,
    /// Real but benign under value-based validation, or a throughput
    /// concern rather than a correctness one.
    Warning,
    /// The runtime will misspeculate (or the plan's self-description is
    /// wrong, which is worse).
    Error,
}

impl Severity {
    /// Lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// What kind of partition defect a finding reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// A loop-carried flow dependence neither contained in a sequential
    /// stage nor forwarded: the runtime speculates on it.
    UnforwardedLoopCarriedFlow,
    /// Stores to one address attributed to different stages.
    CrossStageOutputDep,
    /// An access the declared footprints do not cover.
    CapturedStateEscape,
    /// One try-commit shard would own a supermajority of speculative
    /// stores at a candidate shard count.
    ShardHotspot,
}

impl FindingKind {
    /// Snake-case name used in the JSONL schema.
    pub fn name(self) -> &'static str {
        match self {
            FindingKind::UnforwardedLoopCarriedFlow => "unforwarded_loop_carried_flow",
            FindingKind::CrossStageOutputDep => "cross_stage_output_dep",
            FindingKind::CapturedStateEscape => "captured_state_escape",
            FindingKind::ShardHotspot => "shard_hotspot",
        }
    }
}

/// One typed lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// What rule fired.
    pub kind: FindingKind,
    /// Whether the CI gate fails on it.
    pub severity: Severity,
    /// Short machine-usable subject ("addr 0+0x40", "shards=4 shard=1").
    pub subject: String,
    /// Pages implicated (raw `PageId` values, sorted, deduped).
    pub pages: Vec<u64>,
    /// Dependence/access instances behind the finding.
    pub instances: u64,
    /// Instances whose store actually changed the cell's value — the
    /// ones value-based validation can observe.
    pub value_changing: u64,
    /// Predicted misspeculations per 1000 iterations, from the recorded
    /// value-changing rate.
    pub predicted_misspec_per_1k: u64,
    /// Human-readable explanation.
    pub message: String,
}

/// The linter's verdict on one plan.
#[derive(Debug)]
pub struct LintReport {
    /// Workload name.
    pub name: &'static str,
    /// Iterations the verdict is based on.
    pub iterations: u64,
    /// All findings, errors first.
    pub findings: Vec<Finding>,
    /// Conservative superset of pages where the runtime may observe a
    /// try-commit conflict: every unforwarded carried-flow page plus
    /// every escaped page. Certification asserts observed ⊆ this set.
    pub predicted_conflict_pages: BTreeSet<u64>,
}

impl LintReport {
    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
    }

    /// Whether the CI gate fails.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }
}

/// The first declared region (footprint or forwarded, any stage) that
/// contains `addr` at iteration `iter` — for naming findings.
fn region_name(stages: &[StageSpec], iter: u64, addr: VAddr) -> Option<&'static str> {
    for s in stages {
        if let Some(r) = (s.footprint)(iter).iter().find(|r| r.contains(addr)) {
            return Some(r.name);
        }
        if let Some(r) = s.forwarded.iter().find(|r| r.contains(addr)) {
            return Some(r.name);
        }
    }
    None
}

/// Runs every lint rule over a recorded trace, its dependence graph, and
/// the plan's declared stages. `shard_map` is the plan's shipped
/// page→shard placement, if any: the hotspot rule weighs *its* histogram
/// instead of the hash partition's, so a profile-balanced plan is graded
/// on the routing it will actually run with.
pub fn lint(
    trace: &LoopTrace,
    graph: &DepGraph,
    stages: &[StageSpec],
    shard_map: Option<&ShardMap>,
) -> LintReport {
    let iterations = graph.iterations.max(1);
    let mut findings = Vec::new();
    let mut predicted: BTreeSet<u64> = BTreeSet::new();

    // Rule 1: unforwarded loop-carried flow dependences.
    let mut carried_by_addr: BTreeMap<VAddr, Vec<(u64, u64, bool)>> = BTreeMap::new();
    for e in graph.carried_flows() {
        carried_by_addr
            .entry(e.addr)
            .or_default()
            .push((e.src_iter, e.dst_iter, e.value_changed));
    }
    for (addr, edges) in &carried_by_addr {
        if stages.iter().any(|s| s.forwards(*addr)) {
            continue;
        }
        let speculated: Vec<_> = edges
            .iter()
            .filter(|(src, dst, _)| {
                !stages.iter().any(|s| {
                    s.role == StageRole::Sequential
                        && s.covers_store(*src, *addr)
                        && s.covers_load(*dst, *addr)
                })
            })
            .collect();
        if speculated.is_empty() {
            continue;
        }
        let value_changing = speculated.iter().filter(|(_, _, c)| *c).count() as u64;
        let severity = if value_changing > 0 {
            Severity::Error
        } else {
            Severity::Warning
        };
        let region = region_name(stages, speculated[0].1, *addr).unwrap_or("<undeclared>");
        predicted.insert(addr.page().0);
        findings.push(Finding {
            kind: FindingKind::UnforwardedLoopCarriedFlow,
            severity,
            subject: format!("addr {addr} region {region}"),
            pages: vec![addr.page().0],
            instances: speculated.len() as u64,
            value_changing,
            predicted_misspec_per_1k: value_changing * 1000 / iterations,
            message: format!(
                "loop-carried flow dependence on {region} ({addr}) is speculated: \
                 {} of {} instances change the value; no sequential stage contains \
                 both endpoints and the address is not forwarded",
                value_changing,
                speculated.len()
            ),
        });
    }

    // Rule 2: accesses outside every declared footprint.
    let mut escapes: BTreeMap<u64, (u64, u64, BTreeSet<VAddr>)> = BTreeMap::new();
    for t in &trace.iters {
        for r in &t.raw {
            let covered = stages.iter().any(|s| {
                s.forwards(r.addr)
                    || match r.kind {
                        AccessKind::Load => s.covers_load(t.iter, r.addr),
                        AccessKind::Store => s.covers_store(t.iter, r.addr),
                    }
            });
            if !covered {
                let e = escapes.entry(r.addr.page().0).or_default();
                match r.kind {
                    AccessKind::Load => e.0 += 1,
                    AccessKind::Store => e.1 += 1,
                }
                e.2.insert(r.addr);
            }
        }
    }
    for (page, (loads, stores, addrs)) in &escapes {
        predicted.insert(*page);
        let first = addrs.iter().next().expect("non-empty escape group");
        findings.push(Finding {
            kind: FindingKind::CapturedStateEscape,
            severity: Severity::Error,
            subject: format!("page {page} (first {first})"),
            pages: vec![*page],
            instances: loads + stores,
            value_changing: *stores,
            predicted_misspec_per_1k: (loads + stores) * 1000 / iterations,
            message: format!(
                "{} loads and {} stores across {} addresses on page {page} are \
                 outside every declared stage footprint; the plan's \
                 self-description is incomplete",
                loads,
                stores,
                addrs.len()
            ),
        });
    }

    // Rule 3: stores to one address attributed to different stages.
    let stage_of_store =
        |iter: u64, addr: VAddr| stages.iter().position(|s| s.covers_store(iter, addr));
    let mut cross: BTreeMap<VAddr, u64> = BTreeMap::new();
    for e in graph.of_kind(DepKind::Output) {
        if let (Some(a), Some(b)) = (
            stage_of_store(e.src_iter, e.addr),
            stage_of_store(e.dst_iter, e.addr),
        ) {
            if a != b {
                *cross.entry(e.addr).or_default() += 1;
            }
        }
    }
    for (addr, count) in &cross {
        let region = region_name(stages, 0, *addr).unwrap_or("<undeclared>");
        findings.push(Finding {
            kind: FindingKind::CrossStageOutputDep,
            severity: Severity::Warning,
            subject: format!("addr {addr} region {region}"),
            pages: vec![addr.page().0],
            instances: *count,
            value_changing: 0,
            predicted_misspec_per_1k: 0,
            message: format!(
                "{count} output dependences on {region} ({addr}) cross stage \
                 boundaries; the final value depends on commit order, not stage \
                 order"
            ),
        });
    }

    // Rule 4: shard balance of the validation-visible store stream,
    // weighed under the routing the plan ships (its page→shard map when
    // present, the hash partition otherwise).
    let stream = trace.filtered_stream();
    let mut per_page: BTreeMap<u64, u64> = BTreeMap::new();
    for r in &stream {
        if r.kind == AccessKind::Store {
            *per_page.entry(r.addr.page().0).or_insert(0) += 1;
        }
    }
    let top_page = per_page.iter().max_by_key(|(_, &c)| c);
    for n in HOTSPOT_SHARDS {
        let counts = match shard_map {
            Some(map) => map.store_shard_load(&stream, n),
            None => store_shard_load(&stream, n),
        };
        let total: u64 = counts.iter().sum();
        if total < HOTSPOT_MIN_STORES {
            continue;
        }
        let (hot, &hot_count) = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .expect("n >= 2 shards");
        if hot_count * 100 > total * HOTSPOT_SHARE_PCT {
            // Page granularity is the floor: when a single page alone
            // exceeds the hotspot share, no page→shard placement can
            // split it. A plan that shipped a balanced map has done all
            // the mechanism allows — demote to Info instead of Warning.
            let irreducible = matches!(
                top_page,
                Some((_, &c)) if c * 100 > total * HOTSPOT_SHARE_PCT
            );
            let (severity, note) = if shard_map.is_some() && irreducible {
                (
                    Severity::Info,
                    "; the shipped shard map balanced the rest, and the residual \
                     skew is a single page — irreducible at page granularity",
                )
            } else {
                (Severity::Warning, "")
            };
            findings.push(Finding {
                kind: FindingKind::ShardHotspot,
                severity,
                subject: format!("shards={n} shard={hot}"),
                pages: Vec::new(),
                instances: total,
                value_changing: hot_count,
                predicted_misspec_per_1k: 0,
                message: format!(
                    "at {n} try-commit shards, shard {hot} owns {hot_count} of \
                     {total} filtered stores ({}%); sharded validation would \
                     serialize on it{note}",
                    hot_count * 100 / total
                ),
            });
        }
    }

    // Fully deterministic report order: severity (errors first), then
    // rule name, then subject — so golden files and CI artifacts diff
    // cleanly across runs.
    findings.sort_by(|a, b| {
        std::cmp::Reverse(a.severity)
            .cmp(&std::cmp::Reverse(b.severity))
            .then_with(|| a.kind.name().cmp(b.kind.name()))
            .then_with(|| a.subject.cmp(&b.subject))
    });
    LintReport {
        name: graph.name,
        iterations: graph.iterations,
        findings,
        predicted_conflict_pages: predicted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdg::build;
    use crate::record::record;
    use dsmtx::{IterOutcome, MtxId, Region};
    use dsmtx_mem::MasterMem;
    use dsmtx_uva::{OwnerId, PageId, PAGE_BYTES};
    use dsmtx_workloads::AnalysisPlan;

    fn at(off: u64) -> VAddr {
        VAddr::new(OwnerId(0), off)
    }

    fn lint_plan(mut plan: AnalysisPlan) -> LintReport {
        let trace = record(&mut plan);
        let graph = build(&trace);
        lint(&trace, &graph, &plan.stages, plan.shard_map.as_ref())
    }

    fn accumulator_body() -> dsmtx::RecoveryFn {
        Box::new(|mtx: MtxId, master: &mut MasterMem| {
            let acc = master.read(at(0));
            master.write(at(0), acc + mtx.0 + 1);
            IterOutcome::Continue
        })
    }

    #[test]
    fn doall_plan_is_clean() {
        let report = lint_plan(AnalysisPlan {
            name: "doall",
            iterations: 8,
            master: MasterMem::new(),
            recovery: Box::new(|mtx, master| {
                master.write(at(1024 + mtx.0 * 8), mtx.0 * 3);
                IterOutcome::Continue
            }),
            stages: vec![StageSpec::new(
                "compute",
                StageRole::Parallel,
                Box::new(|mtx| vec![Region::write("out", at(1024 + mtx * 8), 1)]),
            )],
            shard_map: None,
        });
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.predicted_conflict_pages.is_empty());
    }

    #[test]
    fn speculated_accumulator_is_an_error() {
        let report = lint_plan(AnalysisPlan {
            name: "acc",
            iterations: 8,
            master: MasterMem::new(),
            recovery: accumulator_body(),
            stages: vec![StageSpec::new(
                "compute",
                StageRole::Parallel,
                Box::new(|_| vec![Region::read_write("acc", at(0), 1)]),
            )],
            shard_map: None,
        });
        assert!(report.has_errors());
        let f = &report.findings[0];
        assert_eq!(f.kind, FindingKind::UnforwardedLoopCarriedFlow);
        assert_eq!(f.instances, 7);
        assert_eq!(f.value_changing, 7);
        assert_eq!(f.predicted_misspec_per_1k, 7 * 1000 / 8);
        assert!(report.predicted_conflict_pages.contains(&at(0).page().0));
    }

    #[test]
    fn sequential_stage_contains_the_carried_flow() {
        let report = lint_plan(AnalysisPlan {
            name: "acc-seq",
            iterations: 8,
            master: MasterMem::new(),
            recovery: accumulator_body(),
            stages: vec![StageSpec::new(
                "reduce",
                StageRole::Sequential,
                Box::new(|_| vec![Region::read_write("acc", at(0), 1)]),
            )],
            shard_map: None,
        });
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn forwarded_address_is_safe() {
        let report = lint_plan(AnalysisPlan {
            name: "acc-fwd",
            iterations: 8,
            master: MasterMem::new(),
            recovery: accumulator_body(),
            stages: vec![StageSpec::new(
                "scan",
                StageRole::Ring,
                Box::new(|_| vec![Region::read_write("acc", at(0), 1)]),
            )
            .forward(Region::read_write("acc", at(0), 1))],
            shard_map: None,
        });
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn silent_carried_flow_is_only_a_warning() {
        let report = lint_plan(AnalysisPlan {
            name: "silent",
            iterations: 8,
            master: MasterMem::new(),
            recovery: Box::new(|_mtx, master| {
                let v = master.read(at(0));
                master.write(at(0), v); // silent rewrite
                IterOutcome::Continue
            }),
            stages: vec![StageSpec::new(
                "compute",
                StageRole::Parallel,
                Box::new(|_| vec![Region::read_write("acc", at(0), 1)]),
            )],
            shard_map: None,
        });
        assert!(!report.has_errors());
        let f = &report.findings[0];
        assert_eq!(f.kind, FindingKind::UnforwardedLoopCarriedFlow);
        assert_eq!(f.severity, Severity::Warning);
        assert_eq!(f.value_changing, 0);
        assert_eq!(f.predicted_misspec_per_1k, 0);
        // Still a predicted conflict page: the superset is conservative.
        assert!(report.predicted_conflict_pages.contains(&at(0).page().0));
    }

    #[test]
    fn undeclared_access_is_an_escape() {
        let report = lint_plan(AnalysisPlan {
            name: "escape",
            iterations: 4,
            master: MasterMem::new(),
            recovery: Box::new(|mtx, master| {
                master.write(at(1024 + mtx.0 * 8), 1); // declared
                master.write(at(65536), mtx.0); // not declared anywhere
                IterOutcome::Continue
            }),
            stages: vec![StageSpec::new(
                "compute",
                StageRole::Parallel,
                Box::new(|mtx| vec![Region::write("out", at(1024 + mtx * 8), 1)]),
            )],
            shard_map: None,
        });
        assert!(report.has_errors());
        let f = report
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::CapturedStateEscape)
            .expect("escape finding");
        assert_eq!(f.instances, 4);
        assert_eq!(f.value_changing, 4, "all escapes are stores");
        assert!(report
            .predicted_conflict_pages
            .contains(&at(65536).page().0));
    }

    #[test]
    fn cross_stage_stores_are_flagged() {
        // Even iterations write the cell from stage 0, odd ones from
        // stage 1 — the declared partition splits one output cell.
        let report = lint_plan(AnalysisPlan {
            name: "cross",
            iterations: 6,
            master: MasterMem::new(),
            recovery: Box::new(|mtx, master| {
                master.write(at(0), mtx.0 + 1);
                IterOutcome::Continue
            }),
            stages: vec![
                StageSpec::new(
                    "even",
                    StageRole::Parallel,
                    Box::new(|mtx| {
                        if mtx % 2 == 0 {
                            vec![Region::write("cell", at(0), 1)]
                        } else {
                            Vec::new()
                        }
                    }),
                ),
                StageSpec::new(
                    "odd",
                    StageRole::Parallel,
                    Box::new(|mtx| {
                        if mtx % 2 == 1 {
                            vec![Region::write("cell", at(0), 1)]
                        } else {
                            Vec::new()
                        }
                    }),
                ),
            ],
            shard_map: None,
        });
        let f = report
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::CrossStageOutputDep)
            .expect("cross-stage finding");
        assert_eq!(f.severity, Severity::Warning);
        assert_eq!(f.instances, 5, "every adjacent store pair crosses");
    }

    #[test]
    fn skewed_store_stream_is_a_hotspot() {
        // Route every store to pages that land on shard 0 at n=2.
        let pages: Vec<u64> = (0..4096u64)
            .filter(|p| dsmtx_mem::shard_of(PageId(*p), 2) == 0)
            .take(200)
            .collect();
        let n = pages.len() as u64;
        assert!(n >= HOTSPOT_MIN_STORES);
        let report = lint_plan(AnalysisPlan {
            name: "hotspot",
            iterations: n,
            master: MasterMem::new(),
            recovery: Box::new(move |mtx, master| {
                master.write(at(pages[mtx.0 as usize] * PAGE_BYTES), mtx.0);
                IterOutcome::Continue
            }),
            stages: vec![StageSpec::new(
                "compute",
                StageRole::Parallel,
                Box::new(|_| vec![Region::write("all", at(0), 4096 * 512)]),
            )],
            shard_map: None,
        });
        let f = report
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::ShardHotspot && f.subject.starts_with("shards=2"))
            .expect("hotspot finding at 2 shards");
        assert_eq!(f.severity, Severity::Warning);
        assert_eq!(f.value_changing, f.instances, "one shard owns everything");
    }

    #[test]
    fn balanced_map_clears_a_multi_page_hotspot() {
        // Eight equal-weight pages all hashing to shard 0 at n=2: a
        // hotspot under the hash partition, fully balanceable by an
        // explicit map because no single page dominates.
        let pages: Vec<u64> = (0..4096u64)
            .filter(|p| dsmtx_mem::shard_of(PageId(*p), 2) == 0)
            .take(8)
            .collect();
        let iters = 8 * HOTSPOT_MIN_STORES / 4;
        let make_plan = || AnalysisPlan {
            name: "skew",
            iterations: iters,
            master: MasterMem::new(),
            recovery: {
                let pages = pages.clone();
                Box::new(move |mtx: MtxId, master: &mut MasterMem| {
                    let page = pages[(mtx.0 % 8) as usize];
                    master.write(at(page * PAGE_BYTES + (mtx.0 / 8) * 8), mtx.0);
                    IterOutcome::Continue
                })
            },
            stages: vec![StageSpec::new(
                "compute",
                StageRole::Parallel,
                Box::new(|_| vec![Region::write("all", at(0), 4096 * 512)]),
            )],
            shard_map: None,
        };

        let unmapped = lint_plan(make_plan());
        assert!(
            unmapped
                .findings
                .iter()
                .any(|f| f.kind == FindingKind::ShardHotspot && f.severity == Severity::Warning),
            "hash partition must show the planted hotspot"
        );

        let mut plan = make_plan();
        let trace = record(&mut plan);
        let map = dsmtx_mem::ShardMap::balance(&trace.filtered_stream(), 4);
        let graph = build(&trace);
        let report = lint(&trace, &graph, &plan.stages, Some(&map));
        assert!(
            !report
                .findings
                .iter()
                .any(|f| f.kind == FindingKind::ShardHotspot),
            "balanced map clears the finding entirely: {:?}",
            report.findings
        );
    }

    #[test]
    fn irreducible_single_page_skew_demotes_to_info() {
        // Every store on one page: no page→shard map can split it, so a
        // plan that ships a balanced map gets Info, not Warning.
        let iters = HOTSPOT_MIN_STORES + 8;
        let make_plan = |map: Option<dsmtx_mem::ShardMap>| AnalysisPlan {
            name: "one-page",
            iterations: iters,
            master: MasterMem::new(),
            recovery: Box::new(|mtx: MtxId, master: &mut MasterMem| {
                master.write(at((mtx.0 % 512) * 8), mtx.0 + 1);
                IterOutcome::Continue
            }),
            stages: vec![StageSpec::new(
                "compute",
                StageRole::Parallel,
                Box::new(|_| vec![Region::read_write("all", at(0), 512)]),
            )],
            shard_map: map,
        };

        let unmapped = lint_plan(make_plan(None));
        let f = unmapped
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::ShardHotspot)
            .expect("hotspot without a map");
        assert_eq!(f.severity, Severity::Warning);

        let mut probe = make_plan(None);
        let trace = record(&mut probe);
        let map = dsmtx_mem::ShardMap::balance(&trace.filtered_stream(), 4);
        let mapped = lint_plan(make_plan(Some(map)));
        let f = mapped
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::ShardHotspot)
            .expect("skew is irreducible, finding stays");
        assert_eq!(f.severity, Severity::Info, "demoted: map did all it could");
        assert!(f.message.contains("irreducible at page granularity"));
        assert!(!mapped.has_errors());
    }

    #[test]
    fn findings_sort_by_severity_then_rule_then_subject() {
        // A plan with an escape (error), a carried flow (error), and a
        // hotspot (warning): order must be fully deterministic.
        let iters = HOTSPOT_MIN_STORES + 8;
        let report = lint_plan(AnalysisPlan {
            name: "mixed",
            iterations: iters,
            master: MasterMem::new(),
            recovery: Box::new(|mtx: MtxId, master: &mut MasterMem| {
                let v = master.read(at(0));
                master.write(at(0), v + 1);
                master.write(at(8 + (mtx.0 % 512) * 8), mtx.0 + 1);
                master.write(at(1 << 20), mtx.0 + 1); // escape
                IterOutcome::Continue
            }),
            stages: vec![StageSpec::new(
                "compute",
                StageRole::Parallel,
                Box::new(|_| vec![Region::read_write("all", at(0), 513)]),
            )],
            shard_map: None,
        });
        let keys: Vec<(Severity, &str, &str)> = report
            .findings
            .iter()
            .map(|f| (f.severity, f.kind.name(), f.subject.as_str()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_by(|a, b| {
            std::cmp::Reverse(a.0)
                .cmp(&std::cmp::Reverse(b.0))
                .then_with(|| a.1.cmp(b.1))
                .then_with(|| a.2.cmp(b.2))
        });
        assert_eq!(keys, sorted, "report order must match the sort key");
        assert!(keys.len() >= 3, "expected several findings: {keys:?}");
        assert_eq!(keys[0].0, Severity::Error);
    }
}
