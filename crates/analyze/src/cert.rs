//! Predicted-vs-observed conflict certification.
//!
//! The linter computes, from the sequential recording alone, a
//! conservative superset of pages where the runtime may observe a
//! try-commit conflict ([`crate::lint::LintReport::predicted_conflict_pages`]).
//! Certification closes the loop against reality: run the plan under the
//! real speculative runtime, collect the pages where try-commit actually
//! flagged a value mismatch, and assert **observed ⊆ predicted**.
//!
//! A violation means the analyzer missed a dependence — its model of the
//! plan is unsound and every clean bill of health it issued is suspect.
//! The converse (predicted pages with no observed conflict) is expected:
//! the prediction is deliberately conservative (it counts silent-store
//! dependences and escapes that a particular schedule may never trip).

use std::collections::BTreeSet;

use crate::lint::LintReport;

/// The outcome of checking one run against the analyzer's prediction.
#[derive(Debug)]
pub struct Certificate {
    /// Workload name.
    pub name: &'static str,
    /// Try-commit shard count of the certified run.
    pub shards: usize,
    /// The analyzer's conservative conflict-page superset.
    pub predicted: BTreeSet<u64>,
    /// Pages where the run actually observed conflicts (sorted, deduped).
    pub observed: Vec<u64>,
    /// Observed pages the analyzer did not predict — any entry here is
    /// an analyzer soundness bug.
    pub unpredicted: Vec<u64>,
}

impl Certificate {
    /// Whether observed ⊆ predicted.
    pub fn holds(&self) -> bool {
        self.unpredicted.is_empty()
    }

    /// Whether the run exercised the prediction at all (at least one
    /// observed conflict). Used by non-vacuity tests: a certification
    /// suite where nothing ever conflicts proves nothing.
    pub fn is_vacuous(&self) -> bool {
        self.observed.is_empty()
    }
}

/// Checks a run's observed conflict pages against a lint report's
/// prediction.
pub fn certify(report: &LintReport, observed: &[u64], shards: usize) -> Certificate {
    let mut obs: Vec<u64> = observed.to_vec();
    obs.sort_unstable();
    obs.dedup();
    let unpredicted: Vec<u64> = obs
        .iter()
        .copied()
        .filter(|p| !report.predicted_conflict_pages.contains(p))
        .collect();
    Certificate {
        name: report.name,
        shards,
        predicted: report.predicted_conflict_pages.clone(),
        observed: obs,
        unpredicted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_predicting(pages: &[u64]) -> LintReport {
        LintReport {
            name: "synthetic",
            iterations: 8,
            findings: Vec::new(),
            predicted_conflict_pages: pages.iter().copied().collect(),
        }
    }

    #[test]
    fn subset_certifies() {
        let report = report_predicting(&[3, 7, 11]);
        let cert = certify(&report, &[7, 3, 7], 2);
        assert!(cert.holds());
        assert!(!cert.is_vacuous());
        assert_eq!(cert.observed, vec![3, 7], "sorted and deduped");
    }

    #[test]
    fn unpredicted_conflict_fails() {
        let report = report_predicting(&[3]);
        let cert = certify(&report, &[3, 9], 4);
        assert!(!cert.holds());
        assert_eq!(cert.unpredicted, vec![9]);
    }

    #[test]
    fn conflict_free_run_is_vacuous_but_holds() {
        let report = report_predicting(&[]);
        let cert = certify(&report, &[], 1);
        assert!(cert.holds());
        assert!(cert.is_vacuous());
    }
}
