//! Report rendering: human-readable text and machine-readable JSONL.
//!
//! The JSONL rows share the repo's observability conventions (one JSON
//! object per line, hand-escaped via [`dsmtx_obs::json`], validated in
//! tests by the same strict parser the metric exporters use). Two row
//! shapes: a `"record":"analysis"` summary per workload, then one
//! `"record":"finding"` row per lint finding.

use std::fmt::Write as _;

use dsmtx_obs::{json, schema, Registry};

use crate::cert::Certificate;
use crate::lint::{LintReport, Severity};
use crate::pdg::{DepGraph, DepKind};

fn count_severity(report: &LintReport, sev: Severity) -> usize {
    report.findings.iter().filter(|f| f.severity == sev).count()
}

fn carried_count(graph: &DepGraph, kind: DepKind, carried: bool) -> u64 {
    graph
        .of_kind(kind)
        .filter(|e| e.carried() == carried)
        .count() as u64
}

/// Renders the analysis as indented text for `repro analyze`.
pub fn render_text(graph: &DepGraph, report: &LintReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {}: dependence analysis ==", graph.name);
    let _ = writeln!(
        out,
        "iterations {}  loads {}  stores {}  edges {}",
        graph.iterations,
        graph.loads,
        graph.stores,
        graph.edges.len()
    );
    for kind in [DepKind::Flow, DepKind::Anti, DepKind::Output] {
        let _ = writeln!(
            out,
            "  {:<6} intra {:<6} carried {}",
            kind.name(),
            carried_count(graph, kind, false),
            carried_count(graph, kind, true)
        );
    }
    let errors = report.errors().count();
    let warnings = count_severity(report, Severity::Warning);
    let infos = count_severity(report, Severity::Info);
    if infos > 0 {
        let _ = writeln!(
            out,
            "findings: {errors} error(s), {warnings} warning(s), {infos} info"
        );
    } else {
        let _ = writeln!(out, "findings: {errors} error(s), {warnings} warning(s)");
    }
    for f in &report.findings {
        let _ = writeln!(
            out,
            "  [{}] {} {}: {}",
            f.severity.name(),
            f.kind.name(),
            f.subject,
            f.message
        );
    }
    let pages: Vec<String> = report
        .predicted_conflict_pages
        .iter()
        .map(u64::to_string)
        .collect();
    let _ = writeln!(
        out,
        "predicted conflict pages: {} [{}]",
        pages.len(),
        pages.join(", ")
    );
    out
}

fn pages_json(pages: &[u64]) -> String {
    let items: Vec<String> = pages.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(","))
}

/// Renders the analysis as JSONL: one summary row, then one row per
/// finding.
pub fn render_jsonl(graph: &DepGraph, report: &LintReport) -> String {
    let mut out = String::new();
    let predicted: Vec<u64> = report.predicted_conflict_pages.iter().copied().collect();
    let _ = writeln!(
        out,
        "{{\"record\":\"analysis\",\"workload\":{},\"iterations\":{},\
         \"loads\":{},\"stores\":{},\"edges\":{},\
         \"flow_carried\":{},\"anti_carried\":{},\"output_carried\":{},\
         \"findings\":{},\"errors\":{},\"predicted_conflict_pages\":{}}}",
        json::string(graph.name),
        graph.iterations,
        graph.loads,
        graph.stores,
        graph.edges.len(),
        carried_count(graph, DepKind::Flow, true),
        carried_count(graph, DepKind::Anti, true),
        carried_count(graph, DepKind::Output, true),
        report.findings.len(),
        report.errors().count(),
        pages_json(&predicted)
    );
    for f in &report.findings {
        let _ = writeln!(
            out,
            "{{\"record\":\"finding\",\"workload\":{},\"kind\":{},\
             \"severity\":{},\"subject\":{},\"pages\":{},\"instances\":{},\
             \"value_changing\":{},\"predicted_misspec_per_1k\":{},\
             \"message\":{}}}",
            json::string(report.name),
            json::string(f.kind.name()),
            json::string(f.severity.name()),
            json::string(&f.subject),
            pages_json(&f.pages),
            f.instances,
            f.value_changing,
            f.predicted_misspec_per_1k,
            json::string(&f.message)
        );
    }
    out
}

/// Exports the analysis into an observability registry under the shared
/// `analyze.*` schema names, labeled by workload.
pub fn export_metrics(reg: &Registry, graph: &DepGraph, report: &LintReport) {
    let labels = [("workload", graph.name)];
    reg.counter(schema::ANALYZE_EDGES, &labels)
        .add(graph.edges.len() as u64);
    reg.counter(schema::ANALYZE_CARRIED_FLOWS, &labels)
        .add(graph.carried_flows().count() as u64);
    reg.counter(schema::ANALYZE_FINDINGS_ERROR, &labels)
        .add(report.errors().count() as u64);
    reg.counter(schema::ANALYZE_FINDINGS_WARNING, &labels)
        .add(count_severity(report, Severity::Warning) as u64);
    reg.counter(schema::ANALYZE_PREDICTED_PAGES, &labels)
        .add(report.predicted_conflict_pages.len() as u64);
}

/// Exports one certification check into an observability registry under
/// the shared `cert.*` schema names, labeled by workload and shard
/// count.
pub fn export_cert_metrics(reg: &Registry, cert: &Certificate) {
    let shards = cert.shards.to_string();
    let labels = [("workload", cert.name), ("shards", shards.as_str())];
    reg.counter(schema::CERT_RUNS, &labels).inc();
    reg.counter(schema::CERT_OBSERVED_PAGES, &labels)
        .add(cert.observed.len() as u64);
    reg.counter(schema::CERT_UNPREDICTED_PAGES, &labels)
        .add(cert.unpredicted.len() as u64);
}

/// One-line summary used by the CLI's roll-up footer.
pub fn summary_line(report: &LintReport) -> String {
    let errors = report.errors().count();
    let warnings = count_severity(report, Severity::Warning);
    let verdict = if errors > 0 {
        "FAIL"
    } else if report
        .findings
        .iter()
        .any(|f| f.severity == Severity::Warning)
    {
        "warn"
    } else {
        "ok"
    };
    format!(
        "{:<16} {verdict:<4} errors {errors} warnings {warnings} predicted_pages {}",
        report.name,
        report.predicted_conflict_pages.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::lint;
    use crate::pdg::build;
    use crate::record::record;
    use dsmtx::{IterOutcome, Region, StageRole, StageSpec};
    use dsmtx_mem::MasterMem;
    use dsmtx_uva::{OwnerId, VAddr};
    use dsmtx_workloads::AnalysisPlan;

    fn at(off: u64) -> VAddr {
        VAddr::new(OwnerId(0), off)
    }

    fn analyzed() -> (DepGraph, LintReport) {
        // Speculated accumulator: yields one error finding.
        let mut plan = AnalysisPlan {
            name: "render \"me\"",
            iterations: 4,
            master: MasterMem::new(),
            recovery: Box::new(|mtx, master| {
                let v = master.read(at(0));
                master.write(at(0), v + mtx.0 + 1);
                IterOutcome::Continue
            }),
            stages: vec![StageSpec::new(
                "compute",
                StageRole::Parallel,
                Box::new(|_| vec![Region::read_write("acc", at(0), 1)]),
            )],
            shard_map: None,
        };
        let trace = record(&mut plan);
        let graph = build(&trace);
        let report = lint(&trace, &graph, &plan.stages, plan.shard_map.as_ref());
        (graph, report)
    }

    #[test]
    fn text_report_names_the_finding() {
        let (graph, report) = analyzed();
        let text = render_text(&graph, &report);
        assert!(text.contains("unforwarded_loop_carried_flow"));
        assert!(text.contains("1 error(s)"));
        assert!(text.contains("predicted conflict pages: 1"));
    }

    #[test]
    fn jsonl_rows_each_parse() {
        let (graph, report) = analyzed();
        let dump = render_jsonl(&graph, &report);
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 1 + report.findings.len());
        for line in &lines {
            dsmtx_obs::json::validate(line).expect("row parses as JSON");
        }
        assert!(lines[0].contains("\"record\":\"analysis\""));
        assert!(lines[0].contains("\"workload\":\"render \\\"me\\\"\""));
        assert!(lines[1].contains("\"record\":\"finding\""));
    }

    #[test]
    fn summary_line_reports_fail_on_errors() {
        let (_, report) = analyzed();
        assert!(summary_line(&report).contains("FAIL"));
    }

    #[test]
    fn metrics_export_uses_the_shared_schema() {
        let (graph, report) = analyzed();
        let reg = Registry::new();
        export_metrics(&reg, &graph, &report);
        let labels = [("workload", graph.name)];
        assert_eq!(
            reg.counter(schema::ANALYZE_FINDINGS_ERROR, &labels).value(),
            1
        );
        assert_eq!(
            reg.counter(schema::ANALYZE_CARRIED_FLOWS, &labels).value(),
            3
        );
        let cert = crate::cert::certify(&report, &[0], 2);
        export_cert_metrics(&reg, &cert);
        let cert_labels = [("workload", graph.name), ("shards", "2")];
        assert_eq!(reg.counter(schema::CERT_RUNS, &cert_labels).value(), 1);
        assert_eq!(
            reg.counter(schema::CERT_UNPREDICTED_PAGES, &cert_labels)
                .value(),
            0,
            "page 0 was predicted"
        );
        for line in reg.to_jsonl().lines() {
            dsmtx_obs::json::validate(line).expect("metric rows parse");
        }
    }
}
