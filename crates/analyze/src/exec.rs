//! Replay executor: runs an auto-partitioned candidate plan through the
//! *real* runtime.
//!
//! A [`crate::plan::Candidate`] assigns every recorded address to one
//! stage. This executor turns that assignment into live stage bodies:
//! each stage replays, for every iteration, exactly the subset of the
//! recorded raw access stream that touches its own addresses — loads
//! through [`dsmtx::WorkerCtx::read`] (so value validation sees them)
//! and stores through [`dsmtx::WorkerCtx::write_no_forward`] with the
//! recorded value. Because the address partition is total and each
//! address's program order is preserved inside its owning stage, the
//! committed memory of the replay equals the sequential run's; carried
//! flows the planner put in a sequential stage are served from the
//! single replica's retained speculative memory, and anything it chose
//! to speculate is validated by value at the try-commit shards exactly
//! as a hand plan would be.
//!
//! Recovery is the *fresh* plan's own recovery body (the §4.3 sequential
//! re-execution path), so misspeculation is survivable, and the fresh
//! plan's shipped shard map (if any) routes validation traffic. The
//! caller must pass a freshly rebuilt [`AnalysisPlan`] — planning runs
//! the recovery body against the plan's master and mutates it.

use std::collections::BTreeSet;
use std::sync::Arc;

use dsmtx::{IterOutcome, MtxId, RunResult, StageRole, WorkerCtx};
use dsmtx_mem::{AccessKind, AccessRecord};
use dsmtx_paradigms::{ExecError, Pipeline, Tuning};
use dsmtx_uva::VAddr;
use dsmtx_workloads::AnalysisPlan;

use crate::plan::Candidate;

/// Runs `candidate` over the recorded `raw_iters` through the real
/// runtime, with `replicas` workers per parallel stage and
/// `unit_shards` try-commit shards. `fresh` must be a newly built plan
/// for the same workload and scale (its master is the pre-loop memory,
/// its recovery the sequential body, its shard map the shipped routing).
///
/// # Errors
///
/// Configuration or runtime errors from the core system.
pub fn run_candidate(
    candidate: &Candidate,
    raw_iters: &[Vec<AccessRecord>],
    fresh: AnalysisPlan,
    replicas: u16,
    unit_shards: usize,
) -> Result<RunResult, ExecError> {
    let iters: Arc<Vec<Vec<AccessRecord>>> = Arc::new(raw_iters.to_vec());
    let mut owned_sets: Vec<BTreeSet<VAddr>> = vec![BTreeSet::new(); candidate.stages.len()];
    for (&addr, &stage) in &candidate.assignment {
        owned_sets[stage].insert(addr);
    }

    let mut pipeline = Pipeline::new();
    for (spec, owned) in candidate.stages.iter().zip(owned_sets) {
        let owned = Arc::new(owned);
        let iters = Arc::clone(&iters);
        let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
            let Some(records) = iters.get(mtx.0 as usize) else {
                return Ok(IterOutcome::Continue);
            };
            for r in records {
                if !owned.contains(&r.addr) {
                    continue;
                }
                match r.kind {
                    AccessKind::Load => {
                        let _ = ctx.read(r.addr)?;
                    }
                    AccessKind::Store => ctx.write_no_forward(r.addr, r.value)?,
                }
            }
            Ok(IterOutcome::Continue)
        });
        pipeline = match spec.role {
            StageRole::Parallel => pipeline.par(replicas, body),
            StageRole::Sequential | StageRole::Ring => pipeline.seq(body),
        };
    }

    pipeline
        .tuning(Tuning::with_unit_shards(unit_shards))
        .shard_map(fresh.shard_map.clone())
        .run(fresh.master, fresh.recovery, Some(raw_iters.len() as u64))
}
