//! Misspeculation attribution: joins a run's lifecycle spans against the
//! dependence analysis to explain *why* each abort happened.
//!
//! Every aborted span gets a typed [`AbortCause`]:
//!
//! * [`AbortCause::PredictedCarriedDep`] — the conflicting page is in the
//!   linter's predicted conflict superset (an unforwarded loop-carried
//!   flow or a captured-state escape). The analyzer saw this coming.
//! * [`AbortCause::FaultInducedRetry`] — the squash came from a fabric
//!   fault (§4.3 recovery), not a data conflict.
//! * [`AbortCause::CrossShardFalseConflict`] — the page appears only in
//!   [`FindingKind::CrossStageOutputDep`] findings: commit-order noise
//!   between stages, not a true carried dependence.
//! * [`AbortCause::Unpredicted`] — nothing in the analysis explains it.
//!   This is the red flag: either the plan's self-description or the
//!   analyzer missed a real dependence.
//!
//! Collateral squashes — spans unwound by a recovery round they did not
//! cause — inherit the attribution of the round's boundary conflict, so
//! retries of innocent MTXs do not masquerade as unpredicted aborts.

use std::collections::BTreeMap;

use dsmtx_obs::{schema, AbortCause, MtxSpan, Registry, SpanOutcome};

use crate::lint::{FindingKind, LintReport};

/// Attributes a cause to every aborted span in place. Spans must come
/// from one traced run (`RunReport::spans`); `lint` is the analysis of
/// the same plan. Committed and incomplete spans are left untouched.
pub fn attribute(spans: &mut [MtxSpan], lint: &LintReport) {
    let cross_shard_pages: Vec<u64> = lint
        .findings
        .iter()
        .filter(|f| f.kind == FindingKind::CrossStageOutputDep)
        .flat_map(|f| f.pages.iter().copied())
        .collect();

    let cause_of_page = |page: u64| {
        if lint.predicted_conflict_pages.contains(&page) {
            AbortCause::PredictedCarriedDep
        } else if cross_shard_pages.contains(&page) {
            AbortCause::CrossShardFalseConflict
        } else {
            AbortCause::Unpredicted
        }
    };

    // Recovery rounds: every span squashed by one RecoveryStart shares
    // its timestamp. The boundary conflict (earliest detected in the
    // round) explains the round's collateral squashes.
    let mut boundary: BTreeMap<u64, AbortCause> = BTreeMap::new();
    for span in spans.iter() {
        if span.outcome() != SpanOutcome::Aborted {
            continue;
        }
        let (Some(sq), Some(c)) = (span.squashed_us, span.conflict) else {
            continue;
        };
        boundary
            .entry(sq)
            .and_modify(|cur| {
                // Keep the earliest conflict's cause; ties favor the
                // more specific (non-unpredicted) verdict.
                if *cur == AbortCause::Unpredicted {
                    *cur = cause_of_page(c.page);
                }
            })
            .or_insert_with(|| cause_of_page(c.page));
    }

    for span in spans.iter_mut() {
        if span.outcome() != SpanOutcome::Aborted {
            continue;
        }
        span.cause = Some(match span.conflict {
            // A span with its own detected conflict is explained by the
            // page, even inside a fault round.
            Some(c) => cause_of_page(c.page),
            None if span.fault_squashed => AbortCause::FaultInducedRetry,
            // Collateral: inherit the round's boundary attribution.
            None => span
                .squashed_us
                .and_then(|sq| boundary.get(&sq).copied())
                .unwrap_or(AbortCause::Unpredicted),
        });
    }
}

/// Aborts per cause, in [`AbortCause::ALL`] order (zero entries
/// included, so histograms are stable across runs).
pub fn cause_counts(spans: &[MtxSpan]) -> Vec<(AbortCause, u64)> {
    AbortCause::ALL
        .iter()
        .map(|&cause| {
            let n = spans
                .iter()
                .filter(|s| s.outcome() == SpanOutcome::Aborted && s.cause == Some(cause))
                .count() as u64;
            (cause, n)
        })
        .collect()
}

/// Exports attempt totals and the per-cause abort histogram under the
/// shared `why.*` schema names, labeled by workload.
pub fn export_why_metrics(reg: &Registry, spans: &[MtxSpan], workload: &str) {
    reg.counter(schema::WHY_ATTEMPTS, &[("workload", workload)])
        .add(spans.len() as u64);
    for (cause, n) in cause_counts(spans) {
        reg.counter(
            schema::WHY_ABORTS,
            &[("workload", workload), ("cause", cause.name())],
        )
        .add(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::{Finding, Severity};
    use dsmtx_obs::ConflictInfo;
    use std::collections::BTreeSet;

    fn lint_with(predicted: &[u64], cross: &[u64]) -> LintReport {
        let mut findings = Vec::new();
        if !cross.is_empty() {
            findings.push(Finding {
                kind: FindingKind::CrossStageOutputDep,
                severity: Severity::Warning,
                subject: "test".into(),
                pages: cross.to_vec(),
                instances: 1,
                value_changing: 0,
                predicted_misspec_per_1k: 0,
                message: String::new(),
            });
        }
        LintReport {
            name: "test",
            iterations: 1,
            findings,
            predicted_conflict_pages: predicted.iter().copied().collect::<BTreeSet<u64>>(),
        }
    }

    fn aborted(mtx: u64, conflict_page: Option<u64>, squashed_us: u64, fault: bool) -> MtxSpan {
        let mut s = MtxSpan::new(mtx, 0);
        s.conflict = conflict_page.map(|page| ConflictInfo {
            page,
            shard: 0,
            first_writer_mtx: None,
            first_writer_attempt: 0,
            at_us: squashed_us.saturating_sub(1),
        });
        s.squashed_us = Some(squashed_us);
        s.fault_squashed = fault;
        s
    }

    #[test]
    fn predicted_page_is_attributed() {
        let mut spans = vec![aborted(1, Some(0x40), 10, false)];
        attribute(&mut spans, &lint_with(&[0x40], &[]));
        assert_eq!(spans[0].cause, Some(AbortCause::PredictedCarriedDep));
    }

    #[test]
    fn fault_round_without_conflict_is_fault_induced() {
        let mut spans = vec![aborted(1, None, 10, true)];
        attribute(&mut spans, &lint_with(&[], &[]));
        assert_eq!(spans[0].cause, Some(AbortCause::FaultInducedRetry));
    }

    #[test]
    fn cross_stage_only_page_is_false_conflict() {
        let mut spans = vec![aborted(1, Some(0x99), 10, false)];
        attribute(&mut spans, &lint_with(&[], &[0x99]));
        assert_eq!(spans[0].cause, Some(AbortCause::CrossShardFalseConflict));
    }

    #[test]
    fn unexplained_conflict_is_unpredicted() {
        let mut spans = vec![aborted(1, Some(0x7), 10, false)];
        attribute(&mut spans, &lint_with(&[0x40], &[0x99]));
        assert_eq!(spans[0].cause, Some(AbortCause::Unpredicted));
    }

    #[test]
    fn collateral_inherits_boundary_cause() {
        let mut spans = vec![
            aborted(1, Some(0x40), 10, false),
            // Squashed by the same round, no conflict of its own.
            aborted(2, None, 10, false),
            // Different round with no boundary at all.
            aborted(3, None, 25, false),
        ];
        attribute(&mut spans, &lint_with(&[0x40], &[]));
        assert_eq!(spans[1].cause, Some(AbortCause::PredictedCarriedDep));
        assert_eq!(spans[2].cause, Some(AbortCause::Unpredicted));
    }

    #[test]
    fn committed_spans_are_untouched_and_counted() {
        let mut committed = MtxSpan::new(0, 0);
        committed.committed_us = Some(5);
        let mut spans = vec![committed, aborted(1, Some(0x40), 10, false)];
        attribute(&mut spans, &lint_with(&[0x40], &[]));
        assert_eq!(spans[0].cause, None);

        let counts = cause_counts(&spans);
        assert_eq!(counts.len(), AbortCause::ALL.len());
        assert_eq!(
            counts
                .iter()
                .find(|(c, _)| *c == AbortCause::PredictedCarriedDep)
                .unwrap()
                .1,
            1
        );

        let reg = Registry::new();
        export_why_metrics(&reg, &spans, "test");
        assert_eq!(
            reg.counter(schema::WHY_ATTEMPTS, &[("workload", "test")])
                .value(),
            2
        );
        assert_eq!(
            reg.counter(
                schema::WHY_ABORTS,
                &[("workload", "test"), ("cause", "predicted_carried_dep")]
            )
            .value(),
            1
        );
        for line in reg.to_jsonl().lines() {
            dsmtx_obs::json::validate(line).expect("metric rows parse");
        }
    }
}
