//! Auto-partitioner: PDG → SCC condensation → ranked candidate stage
//! plans, certified against the hand-written Table 2 partitions.
//!
//! The pipeline so far *grades* a hand-written [`StageSpec`] partition;
//! this module *derives* one. From a recorded loop trace it builds an
//! address-level dependence graph (intra-iteration load-before-store
//! edges between addresses, plus the per-address loop-carried edges the
//! PDG classified), condenses it into strongly connected components with
//! Tarjan's algorithm, classifies every SCC by the weakest schedule that
//! preserves it, and emits ranked candidate plans made of real
//! [`StageSpec`] values that run unmodified through the same linter,
//! certifier, and (via [`crate::exec`]) the real runtime:
//!
//! * **sequential** SCC — some member has a *value-changing* loop-carried
//!   flow dependence: speculating it misspeculates, so it must live in a
//!   [`StageRole::Sequential`] stage (or be forwarded, which the
//!   auto-planner does not emit);
//! * **accumulator** SCC — carried dependences exist but every carried
//!   flow is a silent store (and anti/output deps are ordered by in-order
//!   group commit): value-based validation can never observe a conflict,
//!   so the SCC is safely *speculated* in a parallel stage;
//! * **doall** SCC — no carried dependences at all: freely replicable.
//!
//! Candidates are scored with the same model the linter exposes —
//! predicted misspeculations per 1000 iterations — plus a pipeline
//! balance term (the bottleneck stage's cost in recorded accesses, with
//! parallel stages divided by [`NOMINAL_REPLICAS`]). A candidate whose
//! lint report contains an Error finding (e.g. a DOALL shape over a
//! value-changing accumulator) is **refused**, not ranked.
//!
//! The differ compares the top-ranked auto plan against the kernel's
//! hand-written stages address by address and reports where they agree
//! and why they diverge.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use dsmtx::{Region, StageRole, StageSpec};
use dsmtx_mem::{AccessKind, AccessRecord};
use dsmtx_obs::{json, schema, Registry};
use dsmtx_uva::VAddr;
use dsmtx_workloads::AnalysisPlan;

use crate::lint::{lint, LintReport};
use crate::pdg::{build, DepGraph};
use crate::record::{record, LoopTrace};

/// Replica count the balance model assumes for a parallel stage.
pub const NOMINAL_REPLICAS: u64 = 4;

/// Non-doall SCCs listed individually in the text report (the rest are
/// rolled up into an explicit "+N more" line, never silently dropped).
const SCC_LIST_CAP: usize = 12;

/// The weakest schedule that preserves an SCC's dependences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SccClass {
    /// A member has a value-changing loop-carried flow dependence:
    /// speculation *will* misspeculate, so the SCC needs a sequential
    /// stage.
    Sequential,
    /// Carried dependences exist but are invisible to value-based
    /// validation (silent flows; anti/output ordered by in-order
    /// commit): speculable with zero predicted misspeculation.
    Accumulator,
    /// No carried dependences: freely replicable.
    Doall,
}

impl SccClass {
    /// Stable lowercase name for reports and golden files.
    pub fn name(self) -> &'static str {
        match self {
            SccClass::Sequential => "sequential",
            SccClass::Accumulator => "accumulator",
            SccClass::Doall => "doall",
        }
    }
}

/// One condensed component of the address dependence graph.
#[derive(Debug, Clone)]
pub struct SccSummary {
    /// Classification.
    pub class: SccClass,
    /// Member addresses (sorted).
    pub members: Vec<VAddr>,
    /// Total recorded accesses touching the members — the cost weight
    /// the balance model assigns the SCC.
    pub cost: u64,
    /// Value-changing carried-flow instances across the members.
    pub value_changing: u64,
}

/// The planner's cost model verdict on one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Score {
    /// Summed predicted misspeculations per 1000 iterations from the
    /// candidate's own lint report (the linter's model, reused).
    pub misspec_per_1k: u64,
    /// Cost of the slowest stage: sequential stages at full cost,
    /// parallel stages divided by [`NOMINAL_REPLICAS`].
    pub bottleneck_cost: u64,
    /// Total recorded accesses (identical across candidates; kept for
    /// the report's utilization line).
    pub total_cost: u64,
}

/// One accepted candidate plan, ready to lint, render, and execute.
pub struct Candidate {
    /// Shape name: `"doall"`, `"seq-par"`, `"par-seq"`, `"sequential"`.
    pub name: &'static str,
    /// Real stage specs (address-union footprints, region name `auto`).
    pub stages: Vec<StageSpec>,
    /// Which stage owns each address (total over recorded addresses).
    pub assignment: BTreeMap<VAddr, usize>,
    /// Cost-model verdict.
    pub score: Score,
    /// The linter's full verdict on this candidate's stages.
    pub report: LintReport,
}

impl std::fmt::Debug for Candidate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Candidate")
            .field("name", &self.name)
            .field("stages", &self.stages)
            .field("score", &self.score)
            .finish_non_exhaustive()
    }
}

impl Candidate {
    /// Stage roles in pipeline order, for rendering ("sequential/parallel").
    pub fn shape(&self) -> String {
        let names: Vec<&str> = self.stages.iter().map(|s| s.role.name()).collect();
        names.join("/")
    }
}

/// A candidate the planner refused to rank: its lint report contains an
/// Error finding, i.e. the runtime would misspeculate on it (or its
/// self-description would be wrong).
#[derive(Debug, Clone)]
pub struct Rejected {
    /// Shape name.
    pub name: &'static str,
    /// The first Error finding, as `rule: message`.
    pub reason: String,
}

/// One aggregated divergence between the auto and hand partitions.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The hand plan's treatment of the addresses ("parallel",
    /// "sequential", "ring", "forwarded", "mixed", "undeclared").
    pub hand: &'static str,
    /// The auto plan's stage role for the addresses.
    pub auto_role: &'static str,
    /// Why the planner chose differently (from the SCC classification).
    pub why: String,
    /// How many addresses diverge this way.
    pub addrs: u64,
    /// A representative address (lowest).
    pub example: VAddr,
}

/// Address-by-address comparison of the top-ranked auto plan against the
/// hand-written stages.
#[derive(Debug, Clone, Default)]
pub struct PlanDiff {
    /// Addresses compared.
    pub total: u64,
    /// Addresses where both plans schedule the address compatibly
    /// (parallel↔parallel; sequential↔{sequential, ring, forwarded}).
    pub agreements: u64,
    /// Aggregated disagreements, sorted by (hand, auto, why).
    pub divergences: Vec<Divergence>,
}

/// Everything the auto-partitioner derived from one recorded loop.
pub struct PlanOutcome {
    /// Workload name.
    pub name: &'static str,
    /// Iterations recorded.
    pub iterations: u64,
    /// Distinct addresses in the trace.
    pub addresses: u64,
    /// Doall-class SCC count.
    pub doall_sccs: u64,
    /// Accumulator-class SCC count.
    pub accumulator_sccs: u64,
    /// Sequential-class SCC count.
    pub sequential_sccs: u64,
    /// Non-doall SCCs, highest cost first.
    pub sccs: Vec<SccSummary>,
    /// Accepted candidates, best first.
    pub candidates: Vec<Candidate>,
    /// Refused candidates, in generation order.
    pub rejected: Vec<Rejected>,
    /// Top candidate vs the hand plan.
    pub diff: PlanDiff,
    /// Per-iteration raw access streams, kept for the replay executor
    /// ([`crate::exec::run_candidate`]).
    pub raw_iters: Vec<Vec<AccessRecord>>,
}

impl std::fmt::Debug for PlanOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanOutcome")
            .field("name", &self.name)
            .field("addresses", &self.addresses)
            .field("candidates", &self.candidates)
            .field("rejected", &self.rejected)
            .finish_non_exhaustive()
    }
}

impl PlanOutcome {
    /// The top-ranked accepted candidate.
    pub fn best(&self) -> Option<&Candidate> {
        self.candidates.first()
    }
}

/// Per-address facts distilled from the trace and PDG.
#[derive(Debug, Default, Clone, Copy)]
struct AddrInfo {
    loads: u64,
    stores: u64,
    /// Carried flow edges whose source store changed the value.
    carried_changing: u64,
    /// Carried flow edges that were silent.
    carried_silent: u64,
    /// Carried anti + output edges.
    carried_other: u64,
}

impl AddrInfo {
    fn cost(&self) -> u64 {
        self.loads + self.stores
    }
}

fn collect_addr_info(trace: &LoopTrace, graph: &DepGraph) -> BTreeMap<VAddr, AddrInfo> {
    let mut info: BTreeMap<VAddr, AddrInfo> = BTreeMap::new();
    for t in &trace.iters {
        for r in &t.raw {
            let e = info.entry(r.addr).or_default();
            match r.kind {
                AccessKind::Load => e.loads += 1,
                AccessKind::Store => e.stores += 1,
            }
        }
    }
    for e in &graph.edges {
        if !e.carried() {
            continue;
        }
        let a = info.entry(e.addr).or_default();
        match e.kind {
            crate::pdg::DepKind::Flow => {
                if e.value_changed {
                    a.carried_changing += 1;
                } else {
                    a.carried_silent += 1;
                }
            }
            crate::pdg::DepKind::Anti | crate::pdg::DepKind::Output => a.carried_other += 1,
        }
    }
    info
}

/// Intra-iteration cross-address edges: within one iteration, a load of
/// `A` before a store to `B` means `B`'s value may depend on `A`, so the
/// two must not be split across stages in the wrong order — and a cycle
/// of such edges welds the addresses into one SCC.
fn intra_edges(trace: &LoopTrace, index_of: &BTreeMap<VAddr, usize>) -> Vec<Vec<usize>> {
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut loaded: BTreeSet<usize> = BTreeSet::new();
    for t in &trace.iters {
        loaded.clear();
        for r in &t.raw {
            let i = index_of[&r.addr];
            match r.kind {
                AccessKind::Load => {
                    loaded.insert(i);
                }
                AccessKind::Store => {
                    for &src in &loaded {
                        if src != i {
                            edges.insert((src, i));
                        }
                    }
                }
            }
        }
    }
    let mut adj = vec![Vec::new(); index_of.len()];
    for (a, b) in edges {
        adj[a].push(b);
    }
    adj
}

/// Iterative Tarjan SCC: returns a component id per node. Deterministic
/// for a deterministic adjacency list.
fn tarjan(n: usize, adj: &[Vec<usize>]) -> Vec<usize> {
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![usize::MAX; n];
    let mut frames: Vec<(usize, usize)> = Vec::new();
    let mut next = 0u32;
    let mut comps = 0usize;

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        index[root] = next;
        low[root] = next;
        next += 1;
        stack.push(root);
        on_stack[root] = true;
        frames.push((root, 0));
        while let Some(&mut (v, ref mut edge)) = frames.last_mut() {
            if *edge < adj[v].len() {
                let w = adj[v][*edge];
                *edge += 1;
                if index[w] == UNVISITED {
                    index[w] = next;
                    low[w] = next;
                    next += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&mut (p, _)) = frames.last_mut() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp[w] = comps;
                        if w == v {
                            break;
                        }
                    }
                    comps += 1;
                }
            }
        }
    }
    comp
}

/// Merges a sorted address set into contiguous word runs with per-run
/// access modes — the union footprint a generated stage declares.
fn union_regions(addrs: &BTreeSet<VAddr>, info: &BTreeMap<VAddr, AddrInfo>) -> Vec<Region> {
    #[derive(PartialEq, Eq, Clone, Copy)]
    enum M {
        R,
        W,
        Rw,
    }
    let mode_of = |a: &AddrInfo| match (a.loads > 0, a.stores > 0) {
        (true, true) => M::Rw,
        (true, false) => M::R,
        _ => M::W,
    };
    let mut out: Vec<Region> = Vec::new();
    let mut run: Option<(VAddr, u64, M, VAddr)> = None; // base, words, mode, last
    for &addr in addrs {
        let m = mode_of(&info[&addr]);
        match run {
            Some((base, words, mode, last))
                if mode == m
                    && last.owner() == addr.owner()
                    && last.offset() + 8 == addr.offset() =>
            {
                run = Some((base, words + 1, mode, addr));
            }
            Some((base, words, mode, _)) => {
                out.push(match mode {
                    M::R => Region::read("auto", base, words),
                    M::W => Region::write("auto", base, words),
                    M::Rw => Region::read_write("auto", base, words),
                });
                run = Some((addr, 1, m, addr));
            }
            None => run = Some((addr, 1, m, addr)),
        }
    }
    if let Some((base, words, mode, _)) = run {
        out.push(match mode {
            M::R => Region::read("auto", base, words),
            M::W => Region::write("auto", base, words),
            M::Rw => Region::read_write("auto", base, words),
        });
    }
    out
}

fn make_stage(name: &'static str, role: StageRole, regions: Vec<Region>) -> StageSpec {
    StageSpec::new(name, role, Box::new(move |_| regions.clone()))
}

fn stage_cost(addrs: &BTreeSet<VAddr>, info: &BTreeMap<VAddr, AddrInfo>) -> u64 {
    addrs.iter().map(|a| info[a].cost()).sum()
}

struct Shape {
    name: &'static str,
    /// (stage name, role, owned addresses) in pipeline order.
    stages: Vec<(&'static str, StageRole, BTreeSet<VAddr>)>,
}

fn score_shape(shape: &Shape, info: &BTreeMap<VAddr, AddrInfo>, misspec: u64) -> Score {
    let total: u64 = info.values().map(AddrInfo::cost).sum();
    let bottleneck = shape
        .stages
        .iter()
        .map(|(_, role, addrs)| {
            let c = stage_cost(addrs, info);
            match role {
                StageRole::Parallel => c.div_ceil(NOMINAL_REPLICAS),
                _ => c,
            }
        })
        .max()
        .unwrap_or(0);
    Score {
        misspec_per_1k: misspec,
        bottleneck_cost: bottleneck,
        total_cost: total,
    }
}

/// Derives the auto-partition for `plan`: records the loop, condenses
/// the address dependence graph, emits and lints candidate plans, ranks
/// the survivors, and diffs the winner against the hand-written stages.
///
/// Runs the plan's recovery body for every iteration (mutating
/// `plan.master`); callers that want to *execute* a candidate afterwards
/// must rebuild a fresh plan (see [`crate::exec::run_candidate`]).
pub fn auto_plan(plan: &mut AnalysisPlan) -> PlanOutcome {
    let trace = record(plan);
    let graph = build(&trace);
    let info = collect_addr_info(&trace, &graph);
    let addrs: Vec<VAddr> = info.keys().copied().collect();
    let index_of: BTreeMap<VAddr, usize> = addrs.iter().enumerate().map(|(i, &a)| (a, i)).collect();

    // Condense: intra-iteration load→store edges between addresses.
    // Carried edges are per-address (self-loops) — they cannot merge
    // components, so they enter classification, not condensation.
    let adj = intra_edges(&trace, &index_of);
    let comp = tarjan(addrs.len(), &adj);
    let n_comps = comp.iter().copied().max().map_or(0, |m| m + 1);
    let mut members: Vec<Vec<VAddr>> = vec![Vec::new(); n_comps];
    for (i, &c) in comp.iter().enumerate() {
        members[c].push(addrs[i]);
    }

    let mut sccs: Vec<SccSummary> = Vec::new();
    let (mut doall, mut accum, mut seq) = (0u64, 0u64, 0u64);
    for m in &mut members {
        m.sort_unstable();
        let cost: u64 = m.iter().map(|a| info[a].cost()).sum();
        let changing: u64 = m.iter().map(|a| info[a].carried_changing).sum();
        let carried_any = m
            .iter()
            .any(|a| info[a].carried_silent + info[a].carried_other > 0);
        let class = if changing > 0 {
            seq += 1;
            SccClass::Sequential
        } else if carried_any {
            accum += 1;
            SccClass::Accumulator
        } else {
            doall += 1;
            SccClass::Doall
        };
        if class != SccClass::Doall {
            sccs.push(SccSummary {
                class,
                members: m.clone(),
                cost,
                value_changing: changing,
            });
        }
    }
    sccs.sort_by(|a, b| b.cost.cmp(&a.cost).then_with(|| a.members.cmp(&b.members)));

    // Partition addresses by required schedule.
    let mut seq_addrs: BTreeSet<VAddr> = BTreeSet::new();
    let mut par_addrs: BTreeSet<VAddr> = BTreeSet::new();
    for (m, scc_class) in members.iter().zip(comp_classes(&members, &info)) {
        let target = if scc_class == SccClass::Sequential {
            &mut seq_addrs
        } else {
            &mut par_addrs
        };
        target.extend(m.iter().copied());
    }
    let all_addrs: BTreeSet<VAddr> = addrs.iter().copied().collect();

    // Candidate shapes, in generation order.
    let mut shapes: Vec<Shape> = Vec::new();
    shapes.push(Shape {
        name: "doall",
        stages: vec![("auto-par", StageRole::Parallel, all_addrs.clone())],
    });
    if !seq_addrs.is_empty() && !par_addrs.is_empty() {
        shapes.push(Shape {
            name: "seq-par",
            stages: vec![
                ("auto-seq", StageRole::Sequential, seq_addrs.clone()),
                ("auto-par", StageRole::Parallel, par_addrs.clone()),
            ],
        });
        shapes.push(Shape {
            name: "par-seq",
            stages: vec![
                ("auto-par", StageRole::Parallel, par_addrs.clone()),
                ("auto-seq", StageRole::Sequential, seq_addrs.clone()),
            ],
        });
    }
    shapes.push(Shape {
        name: "sequential",
        stages: vec![("auto-all", StageRole::Sequential, all_addrs.clone())],
    });

    let mut candidates: Vec<Candidate> = Vec::new();
    let mut rejected: Vec<Rejected> = Vec::new();
    for shape in shapes {
        let stages: Vec<StageSpec> = shape
            .stages
            .iter()
            .map(|(name, role, owned)| make_stage(name, *role, union_regions(owned, &info)))
            .collect();
        let report = lint(&trace, &graph, &stages, plan.shard_map.as_ref());
        if report.has_errors() {
            let f = report.errors().next().expect("has_errors");
            rejected.push(Rejected {
                name: shape.name,
                reason: format!("{}: {}", f.kind.name(), f.message),
            });
            continue;
        }
        let misspec: u64 = report
            .findings
            .iter()
            .map(|f| f.predicted_misspec_per_1k)
            .sum();
        let score = score_shape(&shape, &info, misspec);
        let mut assignment: BTreeMap<VAddr, usize> = BTreeMap::new();
        for (i, (_, _, owned)) in shape.stages.iter().enumerate() {
            for &a in owned {
                assignment.insert(a, i);
            }
        }
        candidates.push(Candidate {
            name: shape.name,
            stages,
            assignment,
            score,
            report,
        });
    }
    // Stable sort: ties keep generation order, which prefers the
    // conventional sequential-first pipeline shape over its mirror.
    candidates.sort_by(|a, b| {
        a.score
            .misspec_per_1k
            .cmp(&b.score.misspec_per_1k)
            .then_with(|| a.score.bottleneck_cost.cmp(&b.score.bottleneck_cost))
            .then_with(|| a.stages.len().cmp(&b.stages.len()))
    });

    let diff = match candidates.first() {
        Some(best) => diff_against_hand(
            &trace,
            &plan.stages,
            best,
            &members,
            &comp,
            &index_of,
            &info,
        ),
        None => PlanDiff::default(),
    };

    PlanOutcome {
        name: trace.name,
        iterations: graph.iterations,
        addresses: addrs.len() as u64,
        doall_sccs: doall,
        accumulator_sccs: accum,
        sequential_sccs: seq,
        sccs,
        candidates,
        rejected,
        diff,
        raw_iters: trace.iters.into_iter().map(|t| t.raw).collect(),
    }
}

fn comp_classes(members: &[Vec<VAddr>], info: &BTreeMap<VAddr, AddrInfo>) -> Vec<SccClass> {
    members
        .iter()
        .map(|m| {
            let changing: u64 = m.iter().map(|a| info[a].carried_changing).sum();
            let carried_any = m
                .iter()
                .any(|a| info[a].carried_silent + info[a].carried_other > 0);
            if changing > 0 {
                SccClass::Sequential
            } else if carried_any {
                SccClass::Accumulator
            } else {
                SccClass::Doall
            }
        })
        .collect()
}

/// The hand plan's treatment of one address, from its declared stages.
fn hand_label(stages: &[StageSpec], trace: &LoopTrace, addr: VAddr) -> &'static str {
    if stages.iter().any(|s| s.forwards(addr)) {
        return "forwarded";
    }
    let mut roles: BTreeSet<&'static str> = BTreeSet::new();
    for t in &trace.iters {
        for r in &t.raw {
            if r.addr != addr {
                continue;
            }
            for s in stages {
                let covered = match r.kind {
                    AccessKind::Load => s.covers_load(t.iter, r.addr),
                    AccessKind::Store => s.covers_store(t.iter, r.addr),
                };
                if covered {
                    roles.insert(s.role.name());
                }
            }
        }
    }
    match roles.len() {
        0 => "undeclared",
        1 => roles.iter().next().expect("one role"),
        _ => "mixed",
    }
}

fn class_why(class: SccClass, a: &AddrInfo) -> String {
    match class {
        SccClass::Sequential => format!(
            "value-changing loop-carried flow ({} of {} carried instances) forces \
             a sequential stage",
            a.carried_changing,
            a.carried_changing + a.carried_silent
        ),
        SccClass::Accumulator => "carried dependences are silent or ordered by in-order \
             commit; value validation cannot observe them, so speculation is free"
            .to_string(),
        SccClass::Doall => "no loop-carried dependences recorded".to_string(),
    }
}

#[allow(clippy::too_many_arguments)] // internal seam of auto_plan
fn diff_against_hand(
    trace: &LoopTrace,
    hand: &[StageSpec],
    best: &Candidate,
    members: &[Vec<VAddr>],
    comp: &[usize],
    index_of: &BTreeMap<VAddr, usize>,
    info: &BTreeMap<VAddr, AddrInfo>,
) -> PlanDiff {
    let classes = comp_classes(members, info);
    // Pre-compute hand labels once per address (hand_label walks the trace).
    let mut agg: BTreeMap<(&'static str, &'static str, String), (u64, VAddr)> = BTreeMap::new();
    let mut agreements = 0u64;
    let mut total = 0u64;
    for (&addr, &stage) in &best.assignment {
        total += 1;
        let auto_role = best.stages[stage].role.name();
        let hand = hand_label(hand, trace, addr);
        let agree = match auto_role {
            "parallel" => hand == "parallel",
            _ => matches!(hand, "sequential" | "ring" | "forwarded"),
        };
        if agree {
            agreements += 1;
            continue;
        }
        let class = classes[comp[index_of[&addr]]];
        let why = class_why(class, &info[&addr]);
        let e = agg.entry((hand, auto_role, why)).or_insert((0, addr));
        e.0 += 1;
        if addr < e.1 {
            e.1 = addr;
        }
    }
    let divergences = agg
        .into_iter()
        .map(|((hand, auto_role, why), (addrs, example))| Divergence {
            hand,
            auto_role,
            why,
            addrs,
            example,
        })
        .collect();
    PlanDiff {
        total,
        agreements,
        divergences,
    }
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

/// Renders the planner's outcome as indented text for `repro plan`.
pub fn render_plan_text(outcome: &PlanOutcome) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {}: auto-partition ==", outcome.name);
    let _ = writeln!(
        out,
        "iterations {}  addresses {}  sccs {} (doall {}, accumulator {}, sequential {})",
        outcome.iterations,
        outcome.addresses,
        outcome.doall_sccs + outcome.accumulator_sccs + outcome.sequential_sccs,
        outcome.doall_sccs,
        outcome.accumulator_sccs,
        outcome.sequential_sccs
    );
    if !outcome.sccs.is_empty() {
        let _ = writeln!(out, "non-doall sccs (by cost):");
        for s in outcome.sccs.iter().take(SCC_LIST_CAP) {
            let _ = writeln!(
                out,
                "  [{}] {} addr(s) from {}  cost {}  value-changing {}",
                s.class.name(),
                s.members.len(),
                s.members[0],
                s.cost,
                s.value_changing
            );
        }
        if outcome.sccs.len() > SCC_LIST_CAP {
            let _ = writeln!(out, "  ... and {} more", outcome.sccs.len() - SCC_LIST_CAP);
        }
    }
    let _ = writeln!(out, "candidates (ranked):");
    for (i, c) in outcome.candidates.iter().enumerate() {
        let warnings = c
            .report
            .findings
            .iter()
            .filter(|f| f.severity == crate::lint::Severity::Warning)
            .count();
        let _ = writeln!(
            out,
            "  #{} {:<10} [{}]  misspec/1k {}  bottleneck {}/{}  warnings {}",
            i + 1,
            c.name,
            c.shape(),
            c.score.misspec_per_1k,
            c.score.bottleneck_cost,
            c.score.total_cost,
            warnings
        );
    }
    for r in &outcome.rejected {
        let _ = writeln!(out, "  refused {:<9} {}", r.name, r.reason);
    }
    let _ = writeln!(
        out,
        "diff vs hand plan: agree {}/{} addresses",
        outcome.diff.agreements, outcome.diff.total
    );
    for d in &outcome.diff.divergences {
        let _ = writeln!(
            out,
            "  hand {} vs auto {}: {} addr(s) (e.g. {}) — {}",
            d.hand, d.auto_role, d.addrs, d.example, d.why
        );
    }
    out
}

/// Renders the planner's outcome as JSONL: one `plan` summary row, one
/// `plan_candidate` row per ranked candidate, one `plan_rejected` row
/// per refusal, one `plan_diff` row per aggregated divergence.
pub fn render_plan_jsonl(outcome: &PlanOutcome) -> String {
    let mut out = String::new();
    let picked = outcome.best().map_or("none", |c| c.name);
    let _ = writeln!(
        out,
        "{{\"record\":\"plan\",\"workload\":{},\"iterations\":{},\
         \"addresses\":{},\"sccs_doall\":{},\"sccs_accumulator\":{},\
         \"sccs_sequential\":{},\"candidates\":{},\"rejected\":{},\
         \"picked\":{},\"diff_agreements\":{},\"diff_total\":{}}}",
        json::string(outcome.name),
        outcome.iterations,
        outcome.addresses,
        outcome.doall_sccs,
        outcome.accumulator_sccs,
        outcome.sequential_sccs,
        outcome.candidates.len(),
        outcome.rejected.len(),
        json::string(picked),
        outcome.diff.agreements,
        outcome.diff.total
    );
    for (i, c) in outcome.candidates.iter().enumerate() {
        let _ = writeln!(
            out,
            "{{\"record\":\"plan_candidate\",\"workload\":{},\"rank\":{},\
             \"name\":{},\"shape\":{},\"misspec_per_1k\":{},\
             \"bottleneck_cost\":{},\"total_cost\":{},\"findings\":{}}}",
            json::string(outcome.name),
            i + 1,
            json::string(c.name),
            json::string(&c.shape()),
            c.score.misspec_per_1k,
            c.score.bottleneck_cost,
            c.score.total_cost,
            c.report.findings.len()
        );
    }
    for r in &outcome.rejected {
        let _ = writeln!(
            out,
            "{{\"record\":\"plan_rejected\",\"workload\":{},\"name\":{},\"reason\":{}}}",
            json::string(outcome.name),
            json::string(r.name),
            json::string(&r.reason)
        );
    }
    for d in &outcome.diff.divergences {
        let _ = writeln!(
            out,
            "{{\"record\":\"plan_diff\",\"workload\":{},\"hand\":{},\
             \"auto\":{},\"addrs\":{},\"example\":{},\"why\":{}}}",
            json::string(outcome.name),
            json::string(d.hand),
            json::string(d.auto_role),
            d.addrs,
            json::string(&d.example.to_string()),
            json::string(&d.why)
        );
    }
    out
}

/// Exports the planner's outcome into an observability registry under
/// the shared `plan.*` schema names, labeled by workload.
pub fn export_plan_metrics(reg: &Registry, outcome: &PlanOutcome) {
    let labels = [("workload", outcome.name)];
    reg.counter(schema::PLAN_SCCS, &labels)
        .add(outcome.doall_sccs + outcome.accumulator_sccs + outcome.sequential_sccs);
    reg.counter(schema::PLAN_CANDIDATES, &labels)
        .add(outcome.candidates.len() as u64);
    reg.counter(schema::PLAN_REJECTED, &labels)
        .add(outcome.rejected.len() as u64);
    reg.counter(schema::PLAN_AGREEMENTS, &labels)
        .add(outcome.diff.agreements);
    reg.counter(schema::PLAN_DIVERGENCES, &labels)
        .add(outcome.diff.total - outcome.diff.agreements);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmtx::{IterOutcome, MtxId};
    use dsmtx_mem::MasterMem;
    use dsmtx_uva::{OwnerId, VAddr};

    fn at(off: u64) -> VAddr {
        VAddr::new(OwnerId(0), off)
    }

    /// acc += table[i] with a doall output table: one value-changing
    /// accumulator cell, the rest freely parallel.
    fn acc_plus_table(stages: Vec<StageSpec>) -> AnalysisPlan {
        let mut master = MasterMem::new();
        for i in 0..8u64 {
            master.write(at(64 + i * 8), 10 + i);
        }
        AnalysisPlan {
            name: "acc+table",
            iterations: 8,
            master,
            recovery: Box::new(|mtx: MtxId, master: &mut MasterMem| {
                let acc = master.read(at(0));
                let v = master.read(at(64 + mtx.0 * 8));
                master.write(at(0), acc + v);
                master.write(at(1024 + mtx.0 * 8), v * 2);
                IterOutcome::Continue
            }),
            stages,
            shard_map: None,
        }
    }

    #[test]
    fn accumulator_forces_seq_par_and_refuses_doall() {
        let mut plan = acc_plus_table(Vec::new());
        let outcome = auto_plan(&mut plan);
        assert_eq!(outcome.sequential_sccs, 1, "{outcome:?}");
        let best = outcome.best().expect("candidates");
        assert_eq!(best.name, "seq-par");
        assert_eq!(best.score.misspec_per_1k, 0);
        assert!(!best.report.has_errors());
        // The accumulator cell sits in the sequential stage.
        assert_eq!(
            best.stages[*best.assignment.get(&at(0)).unwrap()]
                .role
                .name(),
            "sequential"
        );
        // DOALL over a value-changing accumulator is refused, with the
        // forcing dependence named.
        let refused = outcome
            .rejected
            .iter()
            .find(|r| r.name == "doall")
            .expect("doall refused");
        assert!(
            refused.reason.contains("unforwarded_loop_carried_flow"),
            "{}",
            refused.reason
        );
    }

    #[test]
    fn pure_doall_picks_the_parallel_shape() {
        let mut plan = AnalysisPlan {
            name: "pure-doall",
            iterations: 8,
            master: MasterMem::new(),
            recovery: Box::new(|mtx: MtxId, master: &mut MasterMem| {
                master.write(at(mtx.0 * 8), mtx.0 * 3 + 1);
                IterOutcome::Continue
            }),
            stages: Vec::new(),
            shard_map: None,
        };
        let outcome = auto_plan(&mut plan);
        assert_eq!(outcome.sequential_sccs, 0);
        assert_eq!(outcome.doall_sccs, 8);
        let best = outcome.best().expect("candidates");
        assert_eq!(best.name, "doall");
        assert!(outcome.rejected.is_empty(), "{:?}", outcome.rejected);
        // Only doall + sequential shapes exist without a sequential SCC.
        let names: Vec<&str> = outcome.candidates.iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["doall", "sequential"]);
    }

    #[test]
    fn silent_accumulator_is_speculated_not_serialized() {
        let mut plan = AnalysisPlan {
            name: "silent-acc",
            iterations: 6,
            master: MasterMem::new(),
            recovery: Box::new(|mtx: MtxId, master: &mut MasterMem| {
                let v = master.read(at(0));
                master.write(at(0), v); // silent rewrite every iteration
                master.write(at(1024 + mtx.0 * 8), mtx.0);
                IterOutcome::Continue
            }),
            stages: Vec::new(),
            shard_map: None,
        };
        let outcome = auto_plan(&mut plan);
        assert_eq!(outcome.accumulator_sccs, 1);
        assert_eq!(outcome.sequential_sccs, 0);
        let best = outcome.best().expect("candidates");
        assert_eq!(
            best.name, "doall",
            "silent carried flow is free to speculate"
        );
    }

    #[test]
    fn diff_reports_divergence_from_a_parallel_hand_plan() {
        // Hand plan wrongly declares everything parallel; auto planner
        // puts the accumulator in a sequential stage → divergence with
        // the forcing dependence in the why.
        let hand = vec![StageSpec::new(
            "compute",
            StageRole::Parallel,
            Box::new(|mtx| {
                vec![
                    Region::read_write("acc", at(0), 1),
                    Region::read("table", at(64 + mtx * 8), 1),
                    Region::write("out", at(1024 + mtx * 8), 1),
                ]
            }),
        )];
        let mut plan = acc_plus_table(hand);
        let outcome = auto_plan(&mut plan);
        assert!(outcome.diff.total > 0);
        let d = outcome
            .diff
            .divergences
            .iter()
            .find(|d| d.hand == "parallel" && d.auto_role == "sequential")
            .expect("accumulator divergence");
        assert_eq!(d.addrs, 1);
        assert_eq!(d.example, at(0));
        assert!(d.why.contains("value-changing"), "{}", d.why);
        // Table + output words agree (parallel on both sides).
        assert_eq!(outcome.diff.agreements, outcome.diff.total - 1);
    }

    #[test]
    fn intra_iteration_chain_condenses_into_one_scc() {
        // Each iteration: tmp = in[i]; out = f(tmp) — but through a
        // shared scratch cell read AND written both ways, welding a
        // two-address cycle: load scratch→store acc, load acc→store
        // scratch.
        let mut plan = AnalysisPlan {
            name: "cycle",
            iterations: 4,
            master: MasterMem::new(),
            recovery: Box::new(|_mtx: MtxId, master: &mut MasterMem| {
                let a = master.read(at(0));
                master.write(at(8), a + 1);
                let b = master.read(at(8));
                master.write(at(0), b + 1);
                IterOutcome::Continue
            }),
            stages: Vec::new(),
            shard_map: None,
        };
        let outcome = auto_plan(&mut plan);
        assert_eq!(outcome.sequential_sccs, 1, "{outcome:?}");
        let scc = &outcome.sccs[0];
        assert_eq!(scc.members, vec![at(0), at(8)], "cycle welds both cells");
    }

    #[test]
    fn outcome_is_deterministic_and_jsonl_parses() {
        let render = || {
            let mut plan = acc_plus_table(Vec::new());
            let outcome = auto_plan(&mut plan);
            (render_plan_text(&outcome), render_plan_jsonl(&outcome))
        };
        let (t1, j1) = render();
        let (t2, j2) = render();
        assert_eq!(t1, t2, "text output must be deterministic");
        assert_eq!(j1, j2, "jsonl output must be deterministic");
        for line in j1.lines() {
            dsmtx_obs::json::validate(line).expect("row parses");
        }
        assert!(j1.contains("\"record\":\"plan\""));
        assert!(j1.contains("\"record\":\"plan_candidate\""));
        assert!(j1.contains("\"record\":\"plan_rejected\""));
    }

    #[test]
    fn plan_metrics_export_under_the_shared_schema() {
        let mut plan = acc_plus_table(Vec::new());
        let outcome = auto_plan(&mut plan);
        let reg = Registry::new();
        export_plan_metrics(&reg, &outcome);
        let labels = [("workload", outcome.name)];
        assert_eq!(
            reg.counter(schema::PLAN_CANDIDATES, &labels).value(),
            outcome.candidates.len() as u64
        );
        assert_eq!(reg.counter(schema::PLAN_REJECTED, &labels).value(), 1);
        for line in reg.to_jsonl().lines() {
            dsmtx_obs::json::validate(line).expect("metric rows parse");
        }
    }
}
