//! Dependence-graph extraction from a recorded sequential access stream.
//!
//! Walks the raw program-order stream and classifies every memory
//! dependence the runtime could possibly violate:
//!
//! * **flow** (store → later load, read-after-write),
//! * **anti** (load → later store, write-after-read),
//! * **output** (store → later store, write-after-write),
//!
//! each tagged **intra-iteration** (distance 0) or **loop-carried**
//! (distance ≥ 1, the iteration gap between source and sink).
//!
//! Because the runtime validates by *value* (a replayed load conflicts
//! only when the observed value no longer matches committed memory), a
//! flow dependence whose source store is *silent* — it wrote the value
//! the cell already held — can never manifest as a conflict. Each store
//! is therefore tagged `value_changed`, and the linter downgrades
//! findings whose every instance is silent.

use std::collections::HashMap;

use dsmtx_mem::AccessKind;
use dsmtx_uva::VAddr;

use crate::record::LoopTrace;

/// Dependence classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DepKind {
    /// Store → later load (read-after-write).
    Flow,
    /// Load → later store (write-after-read).
    Anti,
    /// Store → later store (write-after-write).
    Output,
}

impl DepKind {
    /// Lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            DepKind::Flow => "flow",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
        }
    }
}

/// One dependence edge between two accesses of the same address.
#[derive(Debug, Clone, Copy)]
pub struct DepEdge {
    /// Classification.
    pub kind: DepKind,
    /// The shared address.
    pub addr: VAddr,
    /// Iteration of the source access.
    pub src_iter: u64,
    /// Iteration of the sink access.
    pub dst_iter: u64,
    /// For flow/output edges: whether the source store changed the
    /// cell's value (non-silent). Anti edges are always `true` — the
    /// sink store's effect is what matters and is accounted on its own
    /// outgoing edges.
    pub value_changed: bool,
}

impl DepEdge {
    /// Iteration distance; `0` means intra-iteration.
    pub fn distance(&self) -> u64 {
        self.dst_iter - self.src_iter
    }

    /// Whether the edge crosses an iteration boundary.
    pub fn carried(&self) -> bool {
        self.dst_iter != self.src_iter
    }
}

/// Per-address walker state.
struct AddrState {
    /// Last store: `(iteration, value_changed)`.
    last_store: Option<(u64, bool)>,
    /// Last load's iteration.
    last_load: Option<u64>,
    /// Last value known to be in the cell (from the most recent access).
    known: u64,
    /// Whether `known` has been established yet.
    known_valid: bool,
}

/// The extracted dependence graph.
#[derive(Debug)]
pub struct DepGraph {
    /// Workload name.
    pub name: &'static str,
    /// Iterations actually recorded.
    pub iterations: u64,
    /// Every dependence edge, in discovery (program) order.
    pub edges: Vec<DepEdge>,
    /// Total raw loads walked.
    pub loads: u64,
    /// Total raw stores walked.
    pub stores: u64,
}

impl DepGraph {
    /// Edges of one kind.
    pub fn of_kind(&self, kind: DepKind) -> impl Iterator<Item = &DepEdge> {
        self.edges.iter().filter(move |e| e.kind == kind)
    }

    /// Loop-carried flow edges — the dependences speculation can break.
    pub fn carried_flows(&self) -> impl Iterator<Item = &DepEdge> {
        self.of_kind(DepKind::Flow).filter(|e| e.carried())
    }

    /// Counts edges by `(kind, carried)`.
    pub fn counts(&self) -> Vec<(DepKind, bool, u64)> {
        let mut out = Vec::new();
        for kind in [DepKind::Flow, DepKind::Anti, DepKind::Output] {
            for carried in [false, true] {
                let n = self
                    .edges
                    .iter()
                    .filter(|e| e.kind == kind && e.carried() == carried)
                    .count() as u64;
                out.push((kind, carried, n));
            }
        }
        out
    }
}

/// Builds the dependence graph from a recorded loop trace.
pub fn build(trace: &LoopTrace) -> DepGraph {
    let mut state: HashMap<VAddr, AddrState> = HashMap::new();
    let mut edges = Vec::new();
    let (mut loads, mut stores) = (0u64, 0u64);

    for t in &trace.iters {
        for r in &t.raw {
            let s = state.entry(r.addr).or_insert(AddrState {
                last_store: None,
                last_load: None,
                known: 0,
                known_valid: false,
            });
            match r.kind {
                AccessKind::Load => {
                    loads += 1;
                    if let Some((src, changed)) = s.last_store {
                        edges.push(DepEdge {
                            kind: DepKind::Flow,
                            addr: r.addr,
                            src_iter: src,
                            dst_iter: t.iter,
                            value_changed: changed,
                        });
                    }
                    s.last_load = Some(t.iter);
                    s.known = r.value;
                    s.known_valid = true;
                }
                AccessKind::Store => {
                    stores += 1;
                    // Unknown prior value ⇒ conservatively value-changing.
                    let changed = !s.known_valid || s.known != r.value;
                    if let Some(src) = s.last_load {
                        edges.push(DepEdge {
                            kind: DepKind::Anti,
                            addr: r.addr,
                            src_iter: src,
                            dst_iter: t.iter,
                            value_changed: true,
                        });
                    }
                    if let Some((src, _)) = s.last_store {
                        edges.push(DepEdge {
                            kind: DepKind::Output,
                            addr: r.addr,
                            src_iter: src,
                            dst_iter: t.iter,
                            value_changed: changed,
                        });
                    }
                    s.last_store = Some((t.iter, changed));
                    s.known = r.value;
                    s.known_valid = true;
                }
            }
        }
    }

    DepGraph {
        name: trace.name,
        iterations: trace.iters.len() as u64,
        edges,
        loads,
        stores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::record;
    use dsmtx::IterOutcome;
    use dsmtx_mem::MasterMem;
    use dsmtx_uva::{OwnerId, VAddr};
    use dsmtx_workloads::AnalysisPlan;

    fn at(off: u64) -> VAddr {
        VAddr::new(OwnerId(0), off)
    }

    fn graph_of(
        iterations: u64,
        body: impl FnMut(dsmtx::MtxId, &mut MasterMem) -> IterOutcome + Send + 'static,
    ) -> DepGraph {
        let mut plan = AnalysisPlan {
            name: "synthetic",
            iterations,
            master: MasterMem::new(),
            recovery: Box::new(body),
            stages: Vec::new(),
            shard_map: None,
        };
        build(&record(&mut plan))
    }

    #[test]
    fn accumulator_yields_carried_flow_at_distance_one() {
        // acc += mtx + 1 every iteration.
        let g = graph_of(4, |mtx, master| {
            let acc = master.read(at(0));
            master.write(at(0), acc + mtx.0 + 1);
            IterOutcome::Continue
        });
        let carried: Vec<_> = g.carried_flows().collect();
        assert_eq!(carried.len(), 3, "iterations 1..=3 read the prior store");
        assert!(carried.iter().all(|e| e.distance() == 1));
        assert!(carried.iter().all(|e| e.value_changed));
        // Each iteration also has the load→store anti dependence.
        assert_eq!(g.of_kind(DepKind::Anti).count(), 4);
    }

    #[test]
    fn disjoint_writes_have_no_dependences() {
        // Pure DOALL: out[mtx] = mtx.
        let g = graph_of(4, |mtx, master| {
            master.write(at(mtx.0 * 8), mtx.0);
            IterOutcome::Continue
        });
        assert!(g.edges.is_empty());
        assert_eq!(g.stores, 4);
    }

    #[test]
    fn silent_store_flow_edges_are_not_value_changing() {
        // Every iteration rewrites the same value it read.
        let g = graph_of(3, |_mtx, master| {
            let v = master.read(at(0));
            master.write(at(0), v);
            IterOutcome::Continue
        });
        let carried: Vec<_> = g.carried_flows().collect();
        assert_eq!(carried.len(), 2);
        assert!(carried.iter().all(|e| !e.value_changed), "silent stores");
    }

    #[test]
    fn intra_iteration_flow_has_distance_zero() {
        let g = graph_of(2, |mtx, master| {
            master.write(at(0), mtx.0 + 10);
            let v = master.read(at(0)); // same-iteration read-back
            master.write(at(8), v);
            IterOutcome::Continue
        });
        let intra: Vec<_> = g.of_kind(DepKind::Flow).filter(|e| !e.carried()).collect();
        assert_eq!(intra.len(), 2);
        // The store in iteration 1 also carries an output dep from 0.
        assert_eq!(
            g.of_kind(DepKind::Output).filter(|e| e.carried()).count(),
            2,
            "both cells are rewritten each iteration"
        );
    }
}
