//! Instrumented sequential recorder.
//!
//! Runs a plan's recovery body — the §4.3 sequential re-execution path,
//! which touches exactly the committed-state loads and stores of one
//! iteration — for every iteration against `MasterMem` with recording
//! turned on, and captures the per-iteration access stream in program
//! order. Each iteration keeps two views:
//!
//! * **raw** — every load and store the body issued, in order; this is
//!   what the dependence classifier walks, and what the escape linter
//!   checks against declared footprints;
//! * **filtered** — the stream after the runtime's own
//!   [`AccessFilter`] (duplicate loads dropped, stores coalesced into
//!   their first slot with the final value): the validation-visible view
//!   a worker would actually ship, which is what the shard-balance
//!   analysis weighs.

use dsmtx::{AccessFilter, IterOutcome, MtxId};
use dsmtx_mem::AccessRecord;
use dsmtx_workloads::AnalysisPlan;

/// One iteration's recorded access stream.
#[derive(Debug)]
pub struct IterTrace {
    /// Iteration index (MTX id).
    pub iter: u64,
    /// Program-order loads and stores, unfiltered.
    pub raw: Vec<AccessRecord>,
    /// The validation-visible view (post worker-side filtering).
    pub filtered: Vec<AccessRecord>,
    /// Records the filter suppressed.
    pub suppressed: u64,
}

impl IterTrace {
    /// The iteration's cost in recorded accesses — the work proxy the
    /// planner's pipeline-balance model weighs (each load/store is one
    /// unit of memory traffic the runtime must execute and validate).
    pub fn cost(&self) -> u64 {
        self.raw.len() as u64
    }
}

/// The whole loop's recorded access streams.
#[derive(Debug)]
pub struct LoopTrace {
    /// Workload name (from the plan).
    pub name: &'static str,
    /// Per-iteration traces, in iteration order. Shorter than the plan's
    /// trip count when an iteration exits the loop.
    pub iters: Vec<IterTrace>,
}

impl LoopTrace {
    /// Total raw loads across all iterations.
    pub fn loads(&self) -> u64 {
        self.iters
            .iter()
            .flat_map(|t| &t.raw)
            .filter(|r| matches!(r.kind, dsmtx_mem::AccessKind::Load))
            .count() as u64
    }

    /// Total raw stores across all iterations.
    pub fn stores(&self) -> u64 {
        self.iters
            .iter()
            .flat_map(|t| &t.raw)
            .filter(|r| matches!(r.kind, dsmtx_mem::AccessKind::Store))
            .count() as u64
    }

    /// The concatenated validation-visible stream (what the runtime would
    /// ship to the try-commit shards).
    pub fn filtered_stream(&self) -> Vec<AccessRecord> {
        self.iters.iter().flat_map(|t| t.filtered.clone()).collect()
    }

    /// Per-iteration costs ([`IterTrace::cost`]) in iteration order —
    /// the recorder-side input to the planner's balance model.
    pub fn iter_costs(&self) -> Vec<u64> {
        self.iters.iter().map(IterTrace::cost).collect()
    }
}

/// Records the plan's loop: executes the recovery body once per
/// iteration against the plan's committed memory with recording on.
/// Stops early when an iteration returns [`IterOutcome::Exit`], exactly
/// as the sequential program would.
pub fn record(plan: &mut AnalysisPlan) -> LoopTrace {
    let mut filter = AccessFilter::new();
    let mut iters = Vec::with_capacity(plan.iterations as usize);
    for i in 0..plan.iterations {
        plan.master.set_recording(true);
        let outcome = (plan.recovery)(MtxId(i), &mut plan.master);
        plan.master.set_recording(false);
        let raw = plan.master.drain_recorded();
        let mut filtered = Vec::new();
        let suppressed = filter.filter_into(&raw, &mut filtered);
        iters.push(IterTrace {
            iter: i,
            raw,
            filtered,
            suppressed,
        });
        if matches!(outcome, IterOutcome::Exit) {
            break;
        }
    }
    LoopTrace {
        name: plan.name,
        iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmtx_mem::{AccessKind, MasterMem};
    use dsmtx_uva::{OwnerId, VAddr};

    fn at(off: u64) -> VAddr {
        VAddr::new(OwnerId(0), off)
    }

    fn counter_plan(iterations: u64) -> AnalysisPlan {
        // Each iteration increments a counter cell: read, then store.
        AnalysisPlan {
            name: "counter",
            iterations,
            master: MasterMem::new(),
            recovery: Box::new(|_mtx, master| {
                let v = master.read(at(0));
                master.write(at(0), v + 1);
                IterOutcome::Continue
            }),
            stages: Vec::new(),
            shard_map: None,
        }
    }

    #[test]
    fn records_per_iteration_in_program_order() {
        let mut plan = counter_plan(3);
        let trace = record(&mut plan);
        assert_eq!(trace.iters.len(), 3);
        for (i, t) in trace.iters.iter().enumerate() {
            assert_eq!(t.iter, i as u64);
            assert_eq!(t.raw.len(), 2);
            assert!(matches!(t.raw[0].kind, AccessKind::Load));
            assert!(matches!(t.raw[1].kind, AccessKind::Store));
            assert_eq!(t.raw[0].value, i as u64, "observed pre-increment");
            assert_eq!(t.raw[1].value, i as u64 + 1);
        }
        assert_eq!(trace.loads(), 3);
        assert_eq!(trace.stores(), 3);
    }

    #[test]
    fn exit_outcome_truncates_the_trace() {
        let mut plan = counter_plan(10);
        plan.recovery = Box::new(|mtx, master| {
            master.write(at(8), mtx.0);
            if mtx.0 == 4 {
                IterOutcome::Exit
            } else {
                IterOutcome::Continue
            }
        });
        let trace = record(&mut plan);
        assert_eq!(trace.iters.len(), 5, "iterations 0..=4 ran");
    }

    #[test]
    fn filtered_view_coalesces_repeat_accesses() {
        let mut plan = counter_plan(1);
        plan.recovery = Box::new(|_mtx, master| {
            let _ = master.read(at(0));
            let _ = master.read(at(0)); // duplicate load
            master.write(at(0), 7);
            master.write(at(0), 9); // coalesced into the first store slot
            IterOutcome::Continue
        });
        let trace = record(&mut plan);
        let t = &trace.iters[0];
        assert_eq!(t.raw.len(), 4);
        assert_eq!(t.filtered.len(), 2);
        assert_eq!(t.suppressed, 2);
        let store = t
            .filtered
            .iter()
            .find(|r| matches!(r.kind, AccessKind::Store))
            .unwrap();
        assert_eq!(store.value, 9, "final value in the coalesced slot");
    }
}
