//! Dependence analyzer & speculation linter — the "compiler side" of the
//! DSMTX reproduction.
//!
//! The runtime half of the paper executes a hand-partitioned plan and
//! recovers when speculation fails; this crate is the missing analysis
//! half that *predicts* when it will fail:
//!
//! 1. [`record`] — instrumented sequential execution: run a plan's
//!    recovery body (the §4.3 re-execution path) for every iteration
//!    against [`dsmtx_mem::MasterMem`] with recording on, capturing the
//!    program-order load/store stream per iteration;
//! 2. [`pdg`] — dependence-graph extraction: classify every memory
//!    dependence as flow/anti/output, intra-iteration or loop-carried
//!    (with distance), and tag silent stores that value-based validation
//!    can never observe;
//! 3. [`lint`] — partition validation: check the graph and raw stream
//!    against the plan's declared [`dsmtx::StageSpec`]s, emitting typed
//!    findings with a predicted misspeculation rate per 1000 iterations;
//! 4. [`cert`] — certification: assert that conflicts the real runtime
//!    observes are a subset of what the analyzer predicted, closing the
//!    loop between static claim and dynamic behavior;
//! 5. [`plan`] — the auto-partitioner: condense the recorded dependence
//!    graph into SCCs, classify each by the weakest schedule that
//!    preserves it, and emit ranked candidate [`dsmtx::StageSpec`] plans
//!    (refusing any the linter grades as misspeculating), diffed against
//!    the hand-written Table 2 partition;
//! 6. [`exec`] — the replay executor that runs an auto candidate through
//!    the real runtime so its conflict behavior can be certified too.
//!
//! `repro analyze --workload W --format {text,jsonl}` drives 1–4 and
//! `repro plan --workload W [--apply]` drives 5–6 from the CLI; the
//! differential test-suite drives them across every registry workload at
//! 1, 2 and 4 try-commit shards.

// ISSUE 5 satellite: this crate builds with perf and correctness lint
// groups promoted to hard errors.
#![deny(clippy::perf, clippy::correctness)]
#![deny(missing_docs)]

pub mod cert;
pub mod exec;
pub mod lint;
pub mod pdg;
pub mod plan;
pub mod record;
pub mod report;
pub mod why;

pub use cert::{certify, Certificate};
pub use exec::run_candidate;
pub use lint::{lint, Finding, FindingKind, LintReport, Severity};
pub use pdg::{build, DepEdge, DepGraph, DepKind};
pub use plan::{
    auto_plan, export_plan_metrics, render_plan_jsonl, render_plan_text, Candidate, Divergence,
    PlanDiff, PlanOutcome, Rejected, SccClass, SccSummary, Score,
};
pub use record::{record, IterTrace, LoopTrace};
pub use report::{export_cert_metrics, export_metrics, render_jsonl, render_text, summary_line};
pub use why::{attribute, cause_counts, export_why_metrics};

use dsmtx_workloads::AnalysisPlan;

/// The full output of one analysis run: the recorded trace, the
/// dependence graph built from it, and the linter's verdict against the
/// plan's declared stages.
#[derive(Debug)]
pub struct Analysis {
    /// Per-iteration access streams.
    pub trace: LoopTrace,
    /// Classified dependences.
    pub graph: DepGraph,
    /// Findings and the predicted conflict-page superset.
    pub report: LintReport,
}

/// Records, classifies, and lints one plan end to end.
pub fn analyze(plan: &mut AnalysisPlan) -> Analysis {
    let trace = record::record(plan);
    let graph = pdg::build(&trace);
    let report = lint::lint(&trace, &graph, &plan.stages, plan.shard_map.as_ref());
    Analysis {
        trace,
        graph,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmtx::{IterOutcome, Region, StageRole, StageSpec};
    use dsmtx_mem::MasterMem;
    use dsmtx_uva::{OwnerId, VAddr};

    #[test]
    fn analyze_runs_the_whole_pipeline() {
        let at = |off: u64| VAddr::new(OwnerId(0), off);
        let mut plan = AnalysisPlan {
            name: "e2e",
            iterations: 4,
            master: MasterMem::new(),
            recovery: Box::new(move |mtx, master| {
                master.write(at(mtx.0 * 8), mtx.0);
                IterOutcome::Continue
            }),
            stages: vec![StageSpec::new(
                "compute",
                StageRole::Parallel,
                Box::new(move |mtx| vec![Region::write("out", at(mtx * 8), 1)]),
            )],
            shard_map: None,
        };
        let analysis = analyze(&mut plan);
        assert_eq!(analysis.trace.iters.len(), 4);
        assert!(analysis.graph.edges.is_empty());
        assert!(!analysis.report.has_errors());
    }
}
