//! Virtual address arithmetic.
//!
//! A [`VAddr`] is a 64-bit value: the upper 16 bits name the owning thread
//! ([`OwnerId`]), the lower 48 bits are the word-aligned byte offset within
//! that owner's region. Pages are 4,096 bytes (the paper's experimental
//! platform) of 512 eight-byte words; the DSMTX memory system speculates at
//! word granularity but transfers at page granularity (Copy-On-Access).

use std::fmt;

/// Bytes per memory word. DSMTX forwards and validates at this granularity.
pub const WORD_BYTES: u64 = 8;
/// Bytes per page — the Copy-On-Access transfer unit (§4.2).
pub const PAGE_BYTES: u64 = 4096;
/// Words per page.
pub const PAGE_WORDS: u64 = PAGE_BYTES / WORD_BYTES;

/// Number of address bits reserved for the owner id.
pub const OWNER_BITS: u32 = 16;
/// Number of address bits for the intra-region offset.
pub const OFFSET_BITS: u32 = 64 - OWNER_BITS;
/// Mask selecting the offset portion of an address.
pub const OFFSET_MASK: u64 = (1 << OFFSET_BITS) - 1;

/// The thread that owns an address region.
///
/// Owner 0 is conventionally the commit unit, which also owns all state
/// created by the sequential (non-transactional) portions of the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct OwnerId(pub u16);

impl fmt::Display for OwnerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "owner{}", self.0)
    }
}

/// A unified virtual address, valid in every thread of a DSMTX system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VAddr(u64);

impl VAddr {
    /// Builds an address from an owner and a byte offset within its region.
    ///
    /// # Panics
    ///
    /// Panics if `offset` does not fit in the offset bits or is not
    /// word-aligned.
    pub fn new(owner: OwnerId, offset: u64) -> Self {
        assert!(offset <= OFFSET_MASK, "offset {offset:#x} exceeds region");
        assert!(
            offset.is_multiple_of(WORD_BYTES),
            "offset {offset:#x} is not word-aligned"
        );
        VAddr((u64::from(owner.0) << OFFSET_BITS) | offset)
    }

    /// Reinterprets a raw 64-bit value as an address.
    ///
    /// Unlike [`VAddr::new`], no alignment check is performed; use this for
    /// addresses that round-tripped through [`VAddr::raw`].
    pub fn from_raw(raw: u64) -> Self {
        VAddr(raw)
    }

    /// The raw 64-bit representation.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The owning thread encoded in the upper bits.
    pub fn owner(self) -> OwnerId {
        OwnerId((self.0 >> OFFSET_BITS) as u16)
    }

    /// Byte offset within the owner's region.
    pub fn offset(self) -> u64 {
        self.0 & OFFSET_MASK
    }

    /// The page containing this address.
    pub fn page(self) -> PageId {
        PageId(self.0 / PAGE_BYTES)
    }

    /// Word index within the containing page (0..[`PAGE_WORDS`]).
    pub fn word_in_page(self) -> usize {
        ((self.offset() % PAGE_BYTES) / WORD_BYTES) as usize
    }

    /// The address `words` whole words after `self`.
    ///
    /// # Panics
    ///
    /// Panics if the result would overflow the owner's region.
    pub fn add_words(self, words: u64) -> VAddr {
        let off = self.offset() + words * WORD_BYTES;
        VAddr::new(self.owner(), off)
    }

    /// Whole words between `self` and `later` (which must not precede
    /// `self` and must share an owner).
    ///
    /// # Panics
    ///
    /// Panics if the owners differ or `later` precedes `self`.
    pub fn words_until(self, later: VAddr) -> u64 {
        assert_eq!(self.owner(), later.owner(), "cross-region distance");
        assert!(later.offset() >= self.offset(), "negative distance");
        (later.offset() - self.offset()) / WORD_BYTES
    }
}

impl fmt::Display for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{:#x}", self.owner(), self.offset())
    }
}

/// Global page number: every page in the system has a unique id because the
/// owner bits participate in the division.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// The address of the first word of the page.
    pub fn base(self) -> VAddr {
        VAddr(self.0 * PAGE_BYTES)
    }

    /// The owner of every address on this page.
    pub fn owner(self) -> OwnerId {
        self.base().owner()
    }

    /// The address of word `index` on this page.
    ///
    /// # Panics
    ///
    /// Panics if `index >= PAGE_WORDS`.
    pub fn word(self, index: usize) -> VAddr {
        assert!((index as u64) < PAGE_WORDS, "word index out of page");
        VAddr(self.0 * PAGE_BYTES + index as u64 * WORD_BYTES)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_and_offset_round_trip() {
        let a = VAddr::new(OwnerId(5), 0x1000);
        assert_eq!(a.owner(), OwnerId(5));
        assert_eq!(a.offset(), 0x1000);
        assert_eq!(VAddr::from_raw(a.raw()), a);
    }

    #[test]
    fn owner_zero_is_plain_offset() {
        let a = VAddr::new(OwnerId(0), 4096);
        assert_eq!(a.raw(), 4096);
    }

    #[test]
    fn max_owner_and_offset() {
        let a = VAddr::new(OwnerId(u16::MAX), OFFSET_MASK & !(WORD_BYTES - 1));
        assert_eq!(a.owner(), OwnerId(u16::MAX));
        assert_eq!(a.offset(), OFFSET_MASK & !(WORD_BYTES - 1));
    }

    #[test]
    #[should_panic(expected = "exceeds region")]
    fn oversized_offset_panics() {
        let _ = VAddr::new(OwnerId(0), OFFSET_MASK + 1);
    }

    #[test]
    #[should_panic(expected = "not word-aligned")]
    fn unaligned_offset_panics() {
        let _ = VAddr::new(OwnerId(0), 3);
    }

    #[test]
    fn page_math() {
        let a = VAddr::new(OwnerId(2), 2 * PAGE_BYTES + 24);
        let p = a.page();
        assert_eq!(p.owner(), OwnerId(2));
        assert_eq!(a.word_in_page(), 3);
        assert_eq!(p.word(3), a);
        assert_eq!(p.base().word_in_page(), 0);
    }

    #[test]
    fn pages_of_different_owners_never_collide() {
        let a = VAddr::new(OwnerId(1), 0);
        let b = VAddr::new(OwnerId(2), 0);
        assert_ne!(a.page(), b.page());
    }

    #[test]
    fn add_words_and_distance() {
        let a = VAddr::new(OwnerId(7), 64);
        let b = a.add_words(10);
        assert_eq!(b.offset(), 64 + 80);
        assert_eq!(a.words_until(b), 10);
        assert_eq!(a.words_until(a), 0);
    }

    #[test]
    #[should_panic(expected = "cross-region distance")]
    fn distance_across_owners_panics() {
        let a = VAddr::new(OwnerId(1), 0);
        let b = VAddr::new(OwnerId(2), 0);
        let _ = a.words_until(b);
    }

    #[test]
    fn display_formats() {
        let a = VAddr::new(OwnerId(3), 0x40);
        assert_eq!(a.to_string(), "owner3+0x40");
        assert!(a.page().to_string().starts_with("page"));
    }
}
