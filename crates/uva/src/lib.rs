//! Unified Virtual Address space (UVA).
//!
//! DSMTX gives every thread in the system the same view of virtual memory:
//! a pointer allocated by thread 1 is valid in thread 2 without translation
//! (§3.3 of the paper). The trick is static ownership — the space is
//! partitioned into non-overlapping regions, one per thread, and the owner
//! is encoded in the upper bits of the address. A thread satisfies its own
//! allocations from the region it owns, so allocation needs no cross-thread
//! synchronization; the owner bits tell the runtime where to fetch a page
//! that is not resident locally.
//!
//! This crate provides the address arithmetic ([`addr`]) and the per-thread
//! region allocator ([`alloc`]). The paper hooks `malloc`/`free`; programs
//! written against this reproduction call [`alloc::RegionAllocator`]
//! directly, which plays the same role.
//!
//! # Example
//!
//! ```
//! use dsmtx_uva::{OwnerId, RegionAllocator, VAddr};
//!
//! let mut heap = RegionAllocator::new(OwnerId(3));
//! let p: VAddr = heap.alloc_words(16)?;
//! assert_eq!(p.owner(), OwnerId(3));
//! heap.free(p)?;
//! # Ok::<(), dsmtx_uva::UvaError>(())
//! ```

pub mod addr;
pub mod alloc;

pub use addr::{OwnerId, PageId, VAddr, PAGE_BYTES, PAGE_WORDS, WORD_BYTES};
pub use alloc::{RegionAllocator, UvaError};
