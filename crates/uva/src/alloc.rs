//! Per-thread region allocator.
//!
//! Each thread satisfies allocation requests from the virtual-address
//! region it owns, so no cross-thread synchronization is needed on the
//! allocation path (§3.3). The allocator is a first-fit free-list over the
//! owner's region with a bump frontier; frees coalesce with both
//! neighbours. Allocations are word-granular; [`RegionAllocator::alloc_pages`]
//! additionally page-aligns, which workloads use for block arrays that the
//! runtime versions page-by-page.

use std::collections::BTreeMap;
use std::fmt;

use crate::addr::{OwnerId, VAddr, OFFSET_MASK, PAGE_BYTES, WORD_BYTES};

/// Errors from UVA allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UvaError {
    /// The owner's region cannot satisfy the request.
    ///
    /// In the paper this is the rare case requiring synchronization with
    /// other threads to borrow address space; this reproduction surfaces it
    /// as an error instead.
    RegionExhausted,
    /// `free` was called on an address that is not the start of a live
    /// allocation.
    InvalidFree(VAddr),
    /// A zero-sized allocation was requested.
    ZeroSize,
}

impl fmt::Display for UvaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UvaError::RegionExhausted => write!(f, "owner region exhausted"),
            UvaError::InvalidFree(a) => write!(f, "invalid free of {a}"),
            UvaError::ZeroSize => write!(f, "zero-sized allocation"),
        }
    }
}

impl std::error::Error for UvaError {}

/// First-fit allocator over one owner's address region.
#[derive(Debug)]
pub struct RegionAllocator {
    owner: OwnerId,
    /// Next never-allocated byte offset.
    frontier: u64,
    /// End of the region (exclusive byte offset).
    limit: u64,
    /// Free blocks: offset → length in bytes. Blocks never overlap and
    /// never touch (touching blocks are coalesced).
    free: BTreeMap<u64, u64>,
    /// Live allocations: offset → length in bytes.
    live: BTreeMap<u64, u64>,
}

impl RegionAllocator {
    /// Creates an allocator spanning the owner's full region.
    pub fn new(owner: OwnerId) -> Self {
        Self::with_limit(owner, OFFSET_MASK + 1)
    }

    /// Creates an allocator restricted to the first `limit_bytes` of the
    /// owner's region (useful for exhaustion tests).
    ///
    /// # Panics
    ///
    /// Panics if `limit_bytes` is not word-aligned or exceeds the region.
    pub fn with_limit(owner: OwnerId, limit_bytes: u64) -> Self {
        assert!(
            limit_bytes.is_multiple_of(WORD_BYTES),
            "limit must be word-aligned"
        );
        assert!(limit_bytes <= OFFSET_MASK + 1, "limit exceeds region");
        RegionAllocator {
            owner,
            // Offset 0 is reserved so that no valid allocation has a "null"
            // address within owner 0.
            frontier: WORD_BYTES,
            limit: limit_bytes,
            free: BTreeMap::new(),
            live: BTreeMap::new(),
        }
    }

    /// The owner whose region this allocator manages.
    pub fn owner(&self) -> OwnerId {
        self.owner
    }

    /// Allocates `words` contiguous words.
    ///
    /// # Errors
    ///
    /// [`UvaError::ZeroSize`] for zero words; [`UvaError::RegionExhausted`]
    /// when neither the free list nor the frontier can satisfy the request.
    pub fn alloc_words(&mut self, words: u64) -> Result<VAddr, UvaError> {
        self.alloc_bytes_aligned(words * WORD_BYTES, WORD_BYTES)
    }

    /// Allocates `pages` whole pages, page-aligned.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RegionAllocator::alloc_words`].
    pub fn alloc_pages(&mut self, pages: u64) -> Result<VAddr, UvaError> {
        self.alloc_bytes_aligned(pages * PAGE_BYTES, PAGE_BYTES)
    }

    fn alloc_bytes_aligned(&mut self, bytes: u64, align: u64) -> Result<VAddr, UvaError> {
        if bytes == 0 {
            return Err(UvaError::ZeroSize);
        }
        // First fit in the free list, honouring alignment by splitting.
        let candidate = self.free.iter().find_map(|(&off, &len)| {
            let aligned = off.next_multiple_of(align);
            let pad = aligned - off;
            if len >= pad + bytes {
                Some((off, len, aligned, pad))
            } else {
                None
            }
        });
        if let Some((off, len, aligned, pad)) = candidate {
            self.free.remove(&off);
            if pad > 0 {
                self.free.insert(off, pad);
            }
            let tail = len - pad - bytes;
            if tail > 0 {
                self.free.insert(aligned + bytes, tail);
            }
            self.live.insert(aligned, bytes);
            return Ok(VAddr::new(self.owner, aligned));
        }
        // Bump the frontier.
        let aligned = self.frontier.next_multiple_of(align);
        let end = aligned
            .checked_add(bytes)
            .ok_or(UvaError::RegionExhausted)?;
        if end > self.limit {
            return Err(UvaError::RegionExhausted);
        }
        if aligned > self.frontier {
            // The alignment gap becomes a free block.
            self.insert_free(self.frontier, aligned - self.frontier);
        }
        self.frontier = end;
        self.live.insert(aligned, bytes);
        Ok(VAddr::new(self.owner, aligned))
    }

    /// Releases a previous allocation.
    ///
    /// # Errors
    ///
    /// [`UvaError::InvalidFree`] if `addr` is not the base of a live
    /// allocation from this allocator (including double frees and
    /// cross-owner frees).
    pub fn free(&mut self, addr: VAddr) -> Result<(), UvaError> {
        if addr.owner() != self.owner {
            return Err(UvaError::InvalidFree(addr));
        }
        let off = addr.offset();
        let Some(len) = self.live.remove(&off) else {
            return Err(UvaError::InvalidFree(addr));
        };
        self.insert_free(off, len);
        Ok(())
    }

    fn insert_free(&mut self, mut off: u64, mut len: u64) {
        // Coalesce with the predecessor.
        if let Some((&poff, &plen)) = self.free.range(..off).next_back() {
            if poff + plen == off {
                self.free.remove(&poff);
                off = poff;
                len += plen;
            }
        }
        // Coalesce with the successor.
        if let Some(&slen) = self.free.get(&(off + len)) {
            self.free.remove(&(off + len));
            len += slen;
        }
        // Merge back into the frontier when possible.
        if off + len == self.frontier {
            self.frontier = off;
        } else {
            self.free.insert(off, len);
        }
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.live.len()
    }

    /// Total bytes currently allocated.
    pub fn live_bytes(&self) -> u64 {
        self.live.values().sum()
    }

    /// The size in bytes of the live allocation starting at `addr`, if any.
    pub fn allocation_size(&self, addr: VAddr) -> Option<u64> {
        if addr.owner() != self.owner {
            return None;
        }
        self.live.get(&addr.offset()).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_WORDS;

    #[test]
    fn allocations_are_disjoint_and_owned() {
        let mut a = RegionAllocator::new(OwnerId(4));
        let x = a.alloc_words(10).unwrap();
        let y = a.alloc_words(1).unwrap();
        assert_eq!(x.owner(), OwnerId(4));
        assert_eq!(y.owner(), OwnerId(4));
        assert!(y.offset() >= x.offset() + 80 || x.offset() >= y.offset() + 8);
        assert_eq!(a.live_allocations(), 2);
        assert_eq!(a.live_bytes(), 88);
    }

    #[test]
    fn zero_alloc_rejected() {
        let mut a = RegionAllocator::new(OwnerId(0));
        assert_eq!(a.alloc_words(0), Err(UvaError::ZeroSize));
    }

    #[test]
    fn free_then_realloc_reuses_space() {
        let mut a = RegionAllocator::new(OwnerId(1));
        let x = a.alloc_words(8).unwrap();
        let _y = a.alloc_words(8).unwrap();
        a.free(x).unwrap();
        let z = a.alloc_words(8).unwrap();
        assert_eq!(z, x, "first-fit should reuse the freed block");
    }

    #[test]
    fn double_free_rejected() {
        let mut a = RegionAllocator::new(OwnerId(1));
        let x = a.alloc_words(4).unwrap();
        a.free(x).unwrap();
        assert_eq!(a.free(x), Err(UvaError::InvalidFree(x)));
    }

    #[test]
    fn cross_owner_free_rejected() {
        let mut a = RegionAllocator::new(OwnerId(1));
        let foreign = VAddr::new(OwnerId(2), 8);
        assert_eq!(a.free(foreign), Err(UvaError::InvalidFree(foreign)));
    }

    #[test]
    fn page_alloc_is_page_aligned() {
        let mut a = RegionAllocator::new(OwnerId(9));
        let _pad = a.alloc_words(3).unwrap();
        let p = a.alloc_pages(2).unwrap();
        assert_eq!(p.offset() % PAGE_BYTES, 0);
        assert_eq!(a.allocation_size(p), Some(2 * PAGE_BYTES));
        // The page is fully addressable word by word.
        let last = p.add_words(2 * PAGE_WORDS - 1);
        assert_eq!(last.page().owner(), OwnerId(9));
    }

    #[test]
    fn exhaustion_reported() {
        let mut a = RegionAllocator::with_limit(OwnerId(0), 4 * WORD_BYTES);
        // One word is reserved for "null".
        assert!(a.alloc_words(3).is_ok());
        assert_eq!(a.alloc_words(1), Err(UvaError::RegionExhausted));
    }

    #[test]
    fn coalescing_allows_big_realloc() {
        let mut a = RegionAllocator::with_limit(OwnerId(0), 1024);
        let x = a.alloc_words(40).unwrap();
        let y = a.alloc_words(40).unwrap();
        let z = a.alloc_words(40).unwrap();
        a.free(y).unwrap();
        a.free(x).unwrap();
        a.free(z).unwrap();
        // All three blocks merged back; a 120-word allocation must fit.
        assert!(a.alloc_words(120).is_ok());
    }

    #[test]
    fn offset_zero_is_never_returned() {
        let mut a = RegionAllocator::new(OwnerId(0));
        let x = a.alloc_words(1).unwrap();
        assert_ne!(x.raw(), 0, "null must stay unallocated");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any interleaving of allocs and frees keeps live blocks disjoint.
        #[test]
        fn live_blocks_never_overlap(ops in proptest::collection::vec((1u64..64, any::<bool>()), 1..120)) {
            let mut a = RegionAllocator::with_limit(OwnerId(3), 1 << 20);
            let mut live: Vec<(VAddr, u64)> = Vec::new();
            for (words, do_free) in ops {
                if do_free && !live.is_empty() {
                    let (addr, _) = live.swap_remove(0);
                    a.free(addr).unwrap();
                } else if let Ok(addr) = a.alloc_words(words) {
                    live.push((addr, words * 8));
                }
                // Check pairwise disjointness.
                for i in 0..live.len() {
                    for j in (i + 1)..live.len() {
                        let (ai, li) = live[i];
                        let (aj, lj) = live[j];
                        let (si, ei) = (ai.offset(), ai.offset() + li);
                        let (sj, ej) = (aj.offset(), aj.offset() + lj);
                        prop_assert!(ei <= sj || ej <= si, "overlap {ai} {aj}");
                    }
                }
            }
        }

        /// Freeing everything returns the allocator to a state where the
        /// original maximal allocation fits again.
        #[test]
        fn full_free_restores_capacity(sizes in proptest::collection::vec(1u64..32, 1..40)) {
            let mut a = RegionAllocator::with_limit(OwnerId(1), 1 << 16);
            let mut addrs = Vec::new();
            for s in &sizes {
                if let Ok(addr) = a.alloc_words(*s) {
                    addrs.push(addr);
                }
            }
            for addr in addrs {
                a.free(addr).unwrap();
            }
            prop_assert_eq!(a.live_allocations(), 0);
            prop_assert_eq!(a.live_bytes(), 0);
            // Region limit is 64 KiB with one reserved word.
            prop_assert!(a.alloc_words((1 << 13) - 1).is_ok());
        }

        /// Owner bits survive encode/decode for every address ever handed out.
        #[test]
        fn owner_always_preserved(owner in 0u16..u16::MAX, words in 1u64..128) {
            let mut a = RegionAllocator::new(OwnerId(owner));
            let addr = a.alloc_words(words).unwrap();
            prop_assert_eq!(addr.owner(), OwnerId(owner));
            prop_assert_eq!(VAddr::from_raw(addr.raw()).owner(), OwnerId(owner));
        }
    }
}
