//! Figures 5(a) and 5(b): bandwidth requirements and the batching effect.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsmtx_sim::report::batching_comparison;
use dsmtx_sim::{bandwidth_series, SimEngine};
use dsmtx_workloads::all_kernels;

fn bench_fig5a(c: &mut Criterion) {
    let engine = SimEngine::default();
    let mut group = c.benchmark_group("fig5a_bandwidth");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for kernel in all_kernels() {
        let profile = kernel.profile();
        group.bench_with_input(
            BenchmarkId::from_parameter(&profile.name),
            &profile,
            |b, p| b.iter(|| bandwidth_series(&engine, p, 3)),
        );
    }
    group.finish();
}

fn bench_fig5b(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5b_batching");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for kernel in all_kernels() {
        let profile = kernel.profile();
        group.bench_with_input(
            BenchmarkId::from_parameter(&profile.name),
            &profile,
            |b, p| b.iter(|| batching_comparison(p)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig5a, bench_fig5b);
criterion_main!(benches);
