//! Real-runtime microbenchmarks: the cost of the MTX machinery itself.
//!
//! * `mtx_iteration` — begin/end cycle of an empty iteration through the
//!   full system (workers + try-commit + commit) per pipeline shape;
//! * `coa_page_fetch` — first-touch Copy-On-Access page transfers;
//! * `spec_mem_ops` — speculative load/store against a resident page;
//! * `uva_alloc` — region allocator throughput;
//! * `recovery` — a full run whose every 8th iteration misspeculates;
//! * `hot_path_hasher` — std SipHash vs the vendored Fx hasher on the
//!   page-table access pattern the validation/commit paths run;
//! * `access_stream` — one subTX's validation traffic encoded as per-record
//!   `Msg`s vs one packed `AccessBlock`, then replayed record by record;
//! * `coa_page_cache` — worker-side page cache epoch hits vs full
//!   page-install misses.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsmtx::{IterOutcome, MtxId, MtxSystem, Program, StageKind, SystemConfig, WorkerCtx};
use dsmtx_mem::{MasterMem, Page, SpecMem};
use dsmtx_uva::{OwnerId, PageId, RegionAllocator};

fn run_noop(system: &MtxSystem, n: u64) -> u64 {
    let body = Arc::new(|_: &mut WorkerCtx, _: MtxId| Ok(IterOutcome::Continue));
    let stages = (0..system.shape().n_stages())
        .map(|_| body.clone() as dsmtx::StageFn)
        .collect();
    let result = system
        .run(Program {
            master: MasterMem::new(),
            stages,
            recovery: Box::new(|_, _| IterOutcome::Continue),
            on_commit: None,
            iteration_limit: Some(n),
        })
        .expect("run");
    result.report.committed
}

fn bench_mtx_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("mtx_iteration");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    const N: u64 = 256;
    group.throughput(Throughput::Elements(N));
    for (label, shapes) in [
        ("seq1", vec![StageKind::Sequential]),
        ("par2", vec![StageKind::Parallel { replicas: 2 }]),
        (
            "s_par2_s",
            vec![
                StageKind::Sequential,
                StageKind::Parallel { replicas: 2 },
                StageKind::Sequential,
            ],
        ),
    ] {
        let mut cfg = SystemConfig::new();
        for s in &shapes {
            cfg.stage(*s);
        }
        let system = MtxSystem::new(&cfg).expect("config");
        group.bench_with_input(BenchmarkId::from_parameter(label), &system, |b, sys| {
            b.iter(|| assert_eq!(run_noop(sys, N), N));
        });
    }
    group.finish();
}

fn bench_coa_page_fetch(c: &mut Criterion) {
    let mut group = c.benchmark_group("coa_page_fetch");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    const PAGES: u64 = 64;
    group.throughput(Throughput::Bytes(PAGES * 4096));
    let mut heap = RegionAllocator::new(OwnerId(0));
    let base = heap.alloc_pages(PAGES).expect("alloc");
    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Sequential);
    let system = MtxSystem::new(&cfg).expect("config");
    group.bench_function("first_touch_64_pages", |b| {
        b.iter(|| {
            let mut master = MasterMem::new();
            for p in 0..PAGES {
                master.write(base.add_words(p * 512), p + 1);
            }
            let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                // One word per page: each read is a fresh COA round trip.
                let v = ctx.read(base.add_words(mtx.0 * 512))?;
                assert_eq!(v, mtx.0 + 1);
                Ok(IterOutcome::Continue)
            });
            let result = system
                .run(Program {
                    master,
                    stages: vec![body],
                    recovery: Box::new(|_, _| IterOutcome::Continue),
                    on_commit: None,
                    iteration_limit: Some(PAGES),
                })
                .expect("run");
            assert!(result.report.coa_pages_served >= PAGES);
        });
    });
    group.finish();
}

fn bench_spec_mem_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("spec_mem_ops");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    const OPS: u64 = 4096;
    group.throughput(Throughput::Elements(OPS));
    let mut heap = RegionAllocator::new(OwnerId(1));
    let base = heap.alloc_pages(8).expect("alloc");
    group.bench_function("write_read_resident", |b| {
        b.iter(|| {
            let mut mem = SpecMem::new();
            let fetch =
                |_: PageId| -> Result<Page, std::convert::Infallible> { Ok(Page::zeroed()) };
            for i in 0..OPS {
                let addr = base.add_words(i % (8 * 512));
                mem.write(addr, i, fetch).unwrap();
                assert_eq!(mem.read(addr, fetch).unwrap(), i);
            }
            mem.drain_log().len()
        });
    });
    group.finish();
}

fn bench_uva_alloc(c: &mut Criterion) {
    let mut group = c.benchmark_group("uva_alloc");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    const ALLOCS: u64 = 2048;
    group.throughput(Throughput::Elements(ALLOCS));
    group.bench_function("alloc_free_cycle", |b| {
        b.iter(|| {
            let mut heap = RegionAllocator::new(OwnerId(2));
            let mut addrs = Vec::with_capacity(ALLOCS as usize);
            for i in 0..ALLOCS {
                addrs.push(heap.alloc_words(1 + i % 31).unwrap());
            }
            for a in addrs {
                heap.free(a).unwrap();
            }
            heap.live_allocations()
        });
    });
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    const N: u64 = 32;
    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Parallel { replicas: 2 });
    let system = MtxSystem::new(&cfg).expect("config");
    group.bench_function("misspec_every_8th", |b| {
        b.iter(|| {
            let body = Arc::new(|ctx: &mut WorkerCtx, mtx: MtxId| {
                if mtx.0 % 8 == 7 {
                    return ctx.misspec();
                }
                Ok(IterOutcome::Continue)
            });
            let result = system
                .run(Program {
                    master: MasterMem::new(),
                    stages: vec![body],
                    recovery: Box::new(|_, _| IterOutcome::Continue),
                    on_commit: None,
                    iteration_limit: Some(N),
                })
                .expect("run");
            assert_eq!(result.report.recoveries, N / 8);
            result.report.recoveries
        });
    });
    group.finish();
}

fn bench_hot_path_hasher(c: &mut Criterion) {
    // The speculation hot paths (SpecMem page tables, the try-commit
    // unit's per-MTX state) key hash maps by PageId / small tuples. This
    // group pins the delta from swapping std's SipHash-1-3 for the
    // vendored Fx hasher on exactly that shape: insert a working set of
    // page-sized keys, then do a read-mostly probe mix.
    use std::collections::HashMap;
    use std::hash::BuildHasher;

    let mut group = c.benchmark_group("hot_path_hasher");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    const PAGES: u64 = 512;
    const PROBES: u64 = 8192;
    group.throughput(Throughput::Elements(PAGES + PROBES));

    fn page_table_churn<S: BuildHasher + Default>(pages: u64, probes: u64) -> u64 {
        let mut table: HashMap<PageId, u64, S> = HashMap::default();
        for p in 0..pages {
            // Same page-number spreading the runtime sees: region-sized
            // strides, not dense small integers.
            table.insert(PageId(p.wrapping_mul(0x9E37_79B9) | 1), p);
        }
        let mut sum = 0u64;
        for i in 0..probes {
            let p = i % pages;
            sum = sum.wrapping_add(table[&PageId(p.wrapping_mul(0x9E37_79B9) | 1)]);
        }
        sum
    }

    group.bench_function("siphash_std", |b| {
        b.iter(|| page_table_churn::<std::collections::hash_map::RandomState>(PAGES, PROBES));
    });
    group.bench_function("fxhash_vendored", |b| {
        b.iter(|| page_table_churn::<fxhash::FxBuildHasher>(PAGES, PROBES));
    });
    group.finish();
}

fn bench_access_stream(c: &mut Criterion) {
    // One validation-bound subTX's worth of traffic: 1 load + 256 stores
    // scattered column-major (page-sized strides, the shard sweep's
    // pattern). The unpacked protocol ships framing + one Msg per record;
    // the packed protocol ships one AccessBlock. Both sides then replay
    // the stream record by record, as the try-commit unit does.
    use dsmtx::wire::{AccessBlock, Msg};
    use dsmtx::{MtxId, StageId};
    use dsmtx_mem::AccessKind;

    let mut group = c.benchmark_group("access_stream");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    const RECORDS: u64 = 257;
    group.throughput(Throughput::Elements(RECORDS));

    let stream: Vec<(AccessKind, u64, u64)> = (0..RECORDS)
        .map(|i| {
            let kind = if i == 0 {
                AccessKind::Load
            } else {
                AccessKind::Store
            };
            (kind, 0x4_0000 + i * 4096 * 8, i.wrapping_mul(0x9E37_79B9))
        })
        .collect();

    group.bench_function("per_record_msgs", |b| {
        b.iter(|| {
            let mut msgs: Vec<Msg> = Vec::with_capacity(stream.len() + 2);
            msgs.push(Msg::SubTxBegin {
                mtx: MtxId(0),
                attempt: 0,
                stage: StageId(0),
            });
            for &(kind, addr, value) in &stream {
                msgs.push(match kind {
                    AccessKind::Load => Msg::Load { addr, value },
                    AccessKind::Store => Msg::Store { addr, value },
                });
            }
            msgs.push(Msg::SubTxEnd {
                mtx: MtxId(0),
                stage: StageId(0),
            });
            // Replay: walk the stream as the try-commit unit would.
            let mut sum = 0u64;
            for m in &msgs {
                if let Msg::Load { addr, value } | Msg::Store { addr, value } = m {
                    sum = sum.wrapping_add(addr ^ value);
                }
            }
            sum
        });
    });

    group.bench_function("packed_access_block", |b| {
        b.iter(|| {
            let mut block = AccessBlock::new();
            for &(kind, addr, value) in &stream {
                block.push(kind, addr, value);
            }
            // Replay by cursor, no per-record allocation.
            let mut sum = 0u64;
            for r in block.iter() {
                sum = sum.wrapping_add(r.addr.raw() ^ r.value);
            }
            assert_eq!(block.len() as u64, RECORDS);
            sum
        });
    });
    group.finish();
}

fn bench_coa_page_cache(c: &mut Criterion) {
    // The worker-side COA cache's two regimes: an epoch hit serves the
    // pristine page from the cache (one clone, no wire); a miss installs
    // a freshly transferred page. The gap is what every avoided re-fetch
    // buys after a commit epoch advances.
    use dsmtx_mem::PageCache;

    let mut group = c.benchmark_group("coa_page_cache");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    const PAGES: u64 = 64;
    group.throughput(Throughput::Bytes(PAGES * 4096));

    group.bench_function("epoch_hits", |b| {
        let mut cache = PageCache::new();
        for p in 0..PAGES {
            cache.install(PageId(p), 1, Page::zeroed());
        }
        b.iter(|| {
            let mut sum = 0u64;
            for p in 0..PAGES {
                let page = cache.serve(PageId(p));
                sum = sum.wrapping_add(page.word(0));
            }
            sum
        });
    });

    group.bench_function("install_misses", |b| {
        b.iter(|| {
            let mut cache = PageCache::new();
            for p in 0..PAGES {
                // A miss is a full page transfer landing in the cache.
                cache.install(PageId(p), 1, Page::zeroed());
            }
            cache.misses()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mtx_iteration,
    bench_coa_page_fetch,
    bench_spec_mem_ops,
    bench_uva_alloc,
    bench_recovery,
    bench_hot_path_hasher,
    bench_access_stream,
    bench_coa_page_cache
);
criterion_main!(benches);
