//! Figure 1: schedule generation for DSWP vs DOACROSS across latencies.
//!
//! Benchmarks the schedule generators and, via the asserted cycle counts,
//! pins the figure's result: DSWP stays at 2 cycles/iteration while
//! DOACROSS degrades linearly with latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsmtx_sim::{doacross_schedule, dswp_schedule};

fn bench_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_latency_tolerance");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &latency in &[1u64, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("doacross", latency),
            &latency,
            |b, &lat| {
                b.iter(|| {
                    let s = doacross_schedule(64, lat);
                    assert_eq!(s.cycles_per_iter(), 1 + lat.max(1));
                    s
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("dswp", latency), &latency, |b, &lat| {
            b.iter(|| {
                let s = dswp_schedule(64, lat);
                assert_eq!(s.cycles_per_iter(), 2);
                s
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedules);
criterion_main!(benches);
