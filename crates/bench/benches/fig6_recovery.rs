//! Figure 6: recovery-overhead simulation at a 0.1% misspeculation rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsmtx_bench::figures::FIG6_BENCHMARKS;
use dsmtx_sim::report::recovery_series;
use dsmtx_sim::SimEngine;

fn bench_fig6(c: &mut Criterion) {
    let engine = SimEngine::default();
    let mut group = c.benchmark_group("fig6_recovery");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for name in FIG6_BENCHMARKS {
        let kernel = dsmtx_workloads::kernel_by_name(name).expect("known");
        let profile = kernel.profile();
        group.bench_with_input(BenchmarkId::from_parameter(name), &profile, |b, p| {
            b.iter(|| recovery_series(&engine, p, 0.001, &[32, 64, 96, 128]))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
