//! Ablation sweeps under Criterion: batching, run-ahead, latency, COA
//! granularity, diff-vs-log encoding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsmtx_bench::ablations::diff_vs_log;
use dsmtx_sim::{batch_sweep, latency_sweep, runahead_sweep};
use dsmtx_workloads::kernel_by_name;

fn bench_ablations(c: &mut Criterion) {
    let parser = kernel_by_name("197.parser").expect("known").profile();
    let hmmer = kernel_by_name("456.hmmer").expect("known").profile();
    let mut group = c.benchmark_group("ablations");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("batch_sweep_parser", |b| {
        b.iter(|| batch_sweep(&parser, 128, &[1.0, 16.0, 256.0]))
    });
    group.bench_function("runahead_sweep_parser", |b| {
        b.iter(|| runahead_sweep(&parser, 64, 0.002, &[4, 64, 1024]))
    });
    group.bench_function("latency_sweep_hmmer", |b| {
        b.iter(|| latency_sweep(&hmmer, 128, &[1.0e-6, 8.0e-6, 64.0e-6]))
    });
    for writes in [1u64, 64] {
        group.bench_with_input(BenchmarkId::new("diff_vs_log", writes), &writes, |b, &w| {
            b.iter(|| diff_vs_log(64, w))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
