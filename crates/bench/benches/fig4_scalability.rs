//! Figure 4: the speedup-vs-cores simulation for every benchmark.
//!
//! Each entry simulates one benchmark's Spec-DSWP and TLS plans at 128
//! cores (the figure's right edge); the `repro` binary prints the full
//! 8..128 series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsmtx_sim::SimEngine;
use dsmtx_workloads::all_kernels;

fn bench_fig4(c: &mut Criterion) {
    let engine = SimEngine::default();
    let mut group = c.benchmark_group("fig4_scalability_128c");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for kernel in all_kernels() {
        let profile = kernel.profile();
        group.bench_with_input(
            BenchmarkId::new("spec_dswp", &profile.name),
            &profile,
            |b, p| b.iter(|| engine.simulate_spec_dswp(p, 128, 0.0)),
        );
        group.bench_with_input(BenchmarkId::new("tls", &profile.name), &profile, |b, p| {
            b.iter(|| engine.simulate_tls(p, 128, 0.0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
