//! §5.3 queue-throughput microbenchmark (real threads).
//!
//! The paper: DSMTX's batched queues sustain 480.7 MB/s where direct
//! `MPI_Send`/`MPI_Bsend`/`MPI_Isend` achieve 13.1/12.7/8.1 MB/s. Here a
//! producer streams 8-byte values to a consumer through the fabric queue
//! with the OpenMPI per-message cost model, at several batch sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsmtx_bench::measure_queue_throughput;

fn bench_queue_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_throughput");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &batch in &[1usize, 8, 64, 512] {
        let words: u64 = if batch == 1 { 20_000 } else { 200_000 };
        group.throughput(Throughput::Bytes(words * 8));
        group.bench_with_input(BenchmarkId::new("batch", batch), &batch, |b, &batch| {
            b.iter(|| measure_queue_throughput(words, batch));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queue_throughput);
criterion_main!(benches);
