//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation.
//!
//! Each `figN_*` function produces both the data series and a printable
//! text rendering; the `repro` binary prints them, the Criterion benches
//! time the underlying machinery, and the unit tests in this crate pin
//! the *shape* claims of the paper (who wins, by roughly what factor,
//! where the knees fall). `EXPERIMENTS.md` records paper-vs-measured for
//! every row.

pub mod ablations;
pub mod analyzecli;
pub mod benchcheck;
pub mod figures;
pub mod format;
pub mod plancli;
pub mod queuebench;
pub mod shardsweep;
pub mod tracedemo;
pub mod valplane;
pub mod why;

pub use ablations::ablations_text;
pub use analyzecli::{run_analyze, AnalyzeFormat, AnalyzeOutcome};
pub use benchcheck::{run_bench_check, BenchCheckOutcome};
pub use figures::{
    fig1_text, fig3_text, fig4_data, fig4_text, fig5a_text, fig5b_data, fig5b_text, fig6_text,
    table1_text, table2_text, taxonomy_text, Fig4Row,
};
pub use plancli::{run_plan, PlanCliOutcome};
pub use queuebench::{measure_queue_throughput, QueueThroughput};
pub use shardsweep::{
    run_shard_sweep, run_validation_bound, shard_sweep_json, shard_sweep_text, ShardSweep,
};
pub use tracedemo::{
    chrome_trace_json, metrics_jsonl, occupancy_text, run_traced_pipeline,
    run_traced_pipeline_faulted,
};
pub use valplane::{
    measured_compaction_factor, run_valplane_sweep, valplane_json, valplane_text, ValPlanePoint,
    ValPlaneSweep,
};
pub use why::{
    mtx_lifecycle_json, mtx_lifecycle_text, run_mtx_lifecycle, run_why, LifecycleRow, WhyOptions,
    WhyOutcome,
};
