//! Real-thread queue throughput measurement (§5.3).
//!
//! The paper measures 480.7 MB/s through the DSMTX batched queues against
//! 13.1 MB/s using `MPI_Send` directly. This module reproduces the
//! *contrast* on real threads: one producer pushes 8-byte values through a
//! [`dsmtx_fabric`] queue whose cost model charges the OpenMPI
//! per-message instruction count, once with batching and once shipping
//! every value individually.

use std::time::Instant;

use dsmtx_fabric::queue::channel_with;
use dsmtx_fabric::{CostModel, FabricStats};

/// Result of one throughput measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueThroughput {
    /// Items per packet used.
    pub batch: usize,
    /// Measured payload bandwidth in bytes/second.
    pub bytes_per_sec: f64,
}

/// Streams `words` 8-byte values through a queue with the given batch
/// size, charging the OpenMPI per-message cost, and returns the sustained
/// bandwidth.
pub fn measure_queue_throughput(words: u64, batch: usize) -> QueueThroughput {
    let (mut tx, mut rx) = channel_with::<u64>(batch, 1024, CostModel::OPENMPI, FabricStats::new());
    let start = Instant::now();
    let producer = std::thread::spawn(move || {
        for v in 0..words {
            tx.produce(v).expect("consumer alive");
        }
        tx.close().expect("consumer alive");
    });
    let mut expected = 0u64;
    while let Ok(v) = rx.consume() {
        debug_assert_eq!(v, expected);
        expected += 1;
        std::hint::black_box(v);
    }
    producer.join().expect("producer");
    assert_eq!(expected, words);
    let secs = start.elapsed().as_secs_f64();
    QueueThroughput {
        batch,
        bytes_per_sec: (words * 8) as f64 / secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_wins_by_a_large_factor() {
        // Modest word count keeps this test quick on one CPU.
        let batched = measure_queue_throughput(200_000, 512);
        let direct = measure_queue_throughput(20_000, 1);
        assert!(
            batched.bytes_per_sec > 5.0 * direct.bytes_per_sec,
            "batched {:.0} vs direct {:.0}",
            batched.bytes_per_sec,
            direct.bytes_per_sec
        );
    }
}
