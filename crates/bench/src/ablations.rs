//! Ablation renderings: quantifying DSMTX's design choices.

use dsmtx_mem::Page;
use dsmtx_sim::{
    batch_sweep, coa_granularity, latency_sweep, runahead_sweep, unit_shard_sweep, ClusterConfig,
};
use dsmtx_workloads::kernel_by_name;

use crate::format::{speedup, Table};

/// Queue batch-size sweep on the communication-bound benchmarks.
pub fn batching_ablation_text() -> String {
    let batches = [1.0, 4.0, 16.0, 64.0, 256.0, 1024.0];
    let mut t = Table::new(vec!["benchmark", "batch=1", "4", "16", "64", "256", "1024"]);
    for name in ["197.parser", "179.art", "130.li"] {
        let profile = kernel_by_name(name).expect("known").profile();
        let pts = batch_sweep(&profile, 128, &batches);
        let mut row = vec![name.to_string()];
        row.extend(pts.iter().map(|p| speedup(p.speedup)));
        t.row(row);
    }
    format!(
        "Ablation: queue batch size (items per message) at 128 cores\n\
         (the §4.2 optimization; speedup saturates once the per-message\n\
         cost is amortized)\n\n{}",
        t.render()
    )
}

/// Run-ahead depth: clean throughput vs rollback cost (§5.4's trade-off).
pub fn runahead_ablation_text() -> String {
    let runaheads = [4u64, 16, 64, 256, 1024];
    let profile = kernel_by_name("197.parser").expect("known").profile();
    let mut t = Table::new(vec!["run-ahead", "clean", "MIS (0.2%)", "RFP share"]);
    for p in runahead_sweep(&profile, 64, 0.002, &runaheads) {
        t.row(vec![
            p.runahead.to_string(),
            speedup(p.clean_speedup),
            speedup(p.misspec_speedup),
            format!("{:.0}%", 100.0 * p.rfp_share),
        ]);
    }
    format!(
        "Ablation: run-ahead bound (outstanding MTX versions), 197.parser @64 cores\n\
         (deeper run-ahead = faster clean runs but more squashed work per\n\
         rollback — the paper's §5.4 closing observation)\n\n{}",
        t.render()
    )
}

/// Inter-node latency sweep: the system-level Figure 1.
pub fn latency_ablation_text() -> String {
    let latencies = [1.0e-6, 2.0e-6, 8.0e-6, 32.0e-6, 128.0e-6];
    let profile = kernel_by_name("456.hmmer").expect("known").profile();
    let mut t = Table::new(vec!["latency (us)", "Spec-DSWP", "TLS"]);
    for p in latency_sweep(&profile, 128, &latencies) {
        t.row(vec![
            format!("{:.0}", p.latency * 1e6),
            speedup(p.dswp),
            speedup(p.tls),
        ]);
    }
    format!(
        "Ablation: inter-node latency, 456.hmmer @128 cores\n\
         (Figure 1 at system scale: acyclic Spec-DSWP communication\n\
         tolerates latency; TLS's cyclic edge does not)\n\n{}",
        t.render()
    )
}

/// Page vs word Copy-On-Access granularity.
pub fn coa_ablation_text() -> String {
    let c = ClusterConfig::paper();
    let mut t = Table::new(vec![
        "density",
        "page COA (ms)",
        "word COA (ms)",
        "page wins by",
    ]);
    for density in [1.0 / 512.0, 0.05, 0.25, 1.0] {
        let cost = coa_granularity(&c, 256, density);
        t.row(vec![
            format!("{:.3}", density),
            format!("{:.2}", cost.page_granular * 1e3),
            format!("{:.2}", cost.word_granular * 1e3),
            format!("{:.1}x", cost.word_granular / cost.page_granular),
        ]);
    }
    format!(
        "Ablation: Copy-On-Access granularity (256-page working set)\n\
         (§4.2: page transfers amortize the round trip and prefetch\n\
         constructively; word-granular COA is prohibitive)\n\n{}",
        t.render()
    )
}

/// Measured bytes to communicate a sparse write-set: DSMTX's word-granular
/// logs vs DMV-style page diffing (the §6 related-work comparison),
/// computed on real [`Page`]s.
pub fn diff_vs_log(pages: u64, writes_per_page: u64) -> (u64, u64) {
    const DIFF_ENTRY_BYTES: u64 = 10; // word index + value
    const PAGE_HEADER_BYTES: u64 = 32; // page id + twin bookkeeping
    const LOG_ENTRY_BYTES: u64 = 16; // address + value

    let mut diff_bytes = 0;
    let mut log_bytes = 0;
    for p in 0..pages {
        let before = Page::zeroed();
        let mut after = before.clone();
        for w in 0..writes_per_page {
            // Scatter writes across the page deterministically.
            let idx = ((w * 97 + p * 13) % 512) as usize;
            after.set_word(idx, w + 1);
        }
        let diff = before.diff(&after);
        diff_bytes += PAGE_HEADER_BYTES + diff.len() as u64 * DIFF_ENTRY_BYTES;
        log_bytes += writes_per_page * LOG_ENTRY_BYTES;
    }
    (diff_bytes, log_bytes)
}

/// Renders the word-log vs page-diff comparison.
pub fn diff_ablation_text() -> String {
    let mut t = Table::new(vec![
        "writes/page",
        "pages",
        "page-diff bytes",
        "word-log bytes",
    ]);
    for writes in [1u64, 4, 16, 64, 256] {
        let (diff, log) = diff_vs_log(128, writes);
        t.row(vec![
            writes.to_string(),
            "128".to_string(),
            diff.to_string(),
            log.to_string(),
        ]);
    }
    format!(
        "Ablation: commit-traffic encoding — DMV page diffing vs DSMTX\n\
         word-granularity logs (§6): diffing pays a per-page cost that\n\
         word logs avoid on sparse access patterns\n\n{}",
        t.render()
    )
}

/// Try-commit/commit sharding: quantifying §3.2's "the algorithms of
/// the try-commit unit and the commit unit are parallelizable" remark on
/// a validation-heavy configuration.
pub fn sharding_ablation_text() -> String {
    let mut profile = kernel_by_name("197.parser").expect("known").profile();
    // Push the units to the bottleneck: heavy validation traffic, thin
    // sequential stages.
    profile.validation_words = 4096.0;
    profile.stages[0].bytes_out = 512.0;
    profile.stages[0].work_fraction = 0.005;
    profile.stages[1].work_fraction = 0.99;
    profile.stages[2].work_fraction = 0.005;
    let mut t = Table::new(vec!["unit shards", "speedup @128"]);
    for p in unit_shard_sweep(&profile, 128, &[1, 2, 4, 8, 16]) {
        t.row(vec![p.shards.to_string(), speedup(p.speedup)]);
    }
    format!(
        "Ablation: parallelizing the speculation-management units
         (§3.2 notes the try-commit/commit serialization can bottleneck
         and that both algorithms are parallelizable; a validation-heavy
         parser variant shows the headroom)

{}",
        t.render()
    )
}

/// All ablations in one report.
pub fn ablations_text() -> String {
    [
        batching_ablation_text(),
        runahead_ablation_text(),
        latency_ablation_text(),
        coa_ablation_text(),
        diff_ablation_text(),
        sharding_ablation_text(),
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_writes_favor_word_logs() {
        let (diff, log) = diff_vs_log(128, 1);
        assert!(log < diff, "sparse: log {log} vs diff {diff}");
    }

    #[test]
    fn dense_writes_favor_page_diffs() {
        let (diff, log) = diff_vs_log(128, 256);
        assert!(diff < log, "dense: diff {diff} vs log {log}");
    }

    #[test]
    fn ablation_reports_render() {
        let text = ablations_text();
        assert!(text.contains("queue batch size"));
        assert!(text.contains("run-ahead bound"));
        assert!(text.contains("inter-node latency"));
        assert!(text.contains("Copy-On-Access granularity"));
        assert!(text.contains("page diffing"));
        assert!(text.contains("speculation-management units"));
    }
}
