//! The `repro why` section: causal misspeculation reports.
//!
//! Runs a registry workload's shipped plan with lifecycle tracing on,
//! joins the resulting spans against the dependence analysis
//! ([`dsmtx_analyze::attribute`]), and prints each MTX's causal chain:
//! per-attempt wall-clock decomposition (queue wait / execute / flush /
//! validation lag / commit-order hold), the conflict that squashed it
//! (page, owning shard, first speculative writer), the typed abort
//! cause, and how the retry chained onto the original attempt.
//!
//! Any `unpredicted` abort — one the analysis cannot explain — is
//! surfaced loudly: it means the plan's self-description or the analyzer
//! missed a real dependence.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use dsmtx_analyze::{analyze, attribute, cause_counts, export_why_metrics};
use dsmtx_obs::{json, AbortCause, MtxSpan, Registry, SpanOutcome};
use dsmtx_paradigms::set_trace_default;
use dsmtx_workloads::{all_kernels, kernel_by_name, Scale};

use crate::analyzecli::AnalyzeFormat;

/// Workers used for the traced run — same as the certification harness.
const WORKERS: u16 = 2;
/// Schedule-dependent conflicts may need several runs to manifest; the
/// planted variants retry up to this many times (the certification
/// tests' convention).
const MAX_RUNS: usize = 8;

/// Options for [`run_why`].
#[derive(Debug, Clone)]
pub struct WhyOptions {
    /// Table 2 workload name; `"all"` (the CLI default) means the
    /// planted-conflict parser variant, the canonical abort generator.
    pub workload: String,
    /// Use the planted-conflict variant (parser only).
    pub planted: bool,
    /// Report one MTX's chain (all its attempts) instead of the top-K.
    pub mtx: Option<u64>,
    /// How many chains to report when `mtx` is unset.
    pub top: usize,
    /// Try-commit shard count for the traced run.
    pub shards: usize,
    /// Output rendering.
    pub format: AnalyzeFormat,
}

impl Default for WhyOptions {
    fn default() -> Self {
        WhyOptions {
            workload: "all".into(),
            planted: false,
            mtx: None,
            top: 5,
            shards: 2,
            format: AnalyzeFormat::Text,
        }
    }
}

/// The rendered report plus the span-level artifacts.
#[derive(Debug)]
pub struct WhyOutcome {
    /// Rendered output in the requested format.
    pub output: String,
    /// Chrome `trace_event` JSON of the run's spans (for `--trace-out`).
    pub chrome_trace: String,
    /// Aborts the analysis could not explain — the red flag.
    pub unpredicted: u64,
}

/// One MTX's attempts, oldest first.
type Chain<'a> = (u64, Vec<&'a MtxSpan>);

/// Runs the workload traced, attributes every abort, and renders the
/// causal chains.
///
/// # Errors
///
/// Unknown workload, `--planted` on a workload without a planted
/// variant, or kernel failures.
pub fn run_why(opts: &WhyOptions) -> Result<WhyOutcome, String> {
    let scale = Scale::test();
    // Bare `repro why` reports the planted parser: the one registry run
    // guaranteed to have aborts worth explaining.
    let (name, planted) = if opts.workload == "all" {
        ("197.parser", true)
    } else {
        (opts.workload.as_str(), opts.planted)
    };

    let parser = dsmtx_workloads::parser::Parser;
    let (mut plan, run): (_, Box<dyn Fn(usize) -> Result<_, String>>) = if planted {
        if name != "197.parser" {
            return Err(format!(
                "`--planted` is only available for 197.parser, not `{name}`"
            ));
        }
        (
            parser
                .plan_with_planted_unknown(scale)
                .map_err(|e| e.to_string())?,
            Box::new(move |shards| {
                parser
                    .run_reported_planted_unknown(WORKERS, shards, scale)
                    .map_err(|e| e.to_string())
            }),
        )
    } else {
        let k = kernel_by_name(name).ok_or_else(|| {
            let names: Vec<&str> = all_kernels().iter().map(|k| k.info().name).collect();
            format!("unknown workload `{name}`; known: {}", names.join(", "))
        })?;
        let plan = k.plan(scale).map_err(|e| e.to_string())?;
        (
            plan,
            Box::new(move |shards| {
                kernel_by_name(name)
                    .expect("resolved above")
                    .run_reported(WORKERS, shards, scale)
                    .map_err(|e| e.to_string())
            }),
        )
    };
    let analysis = analyze(&mut plan);

    // Planted conflicts are schedule-dependent: rerun until one
    // manifests (or give up and report the clean run).
    let prev = set_trace_default(true);
    let mut spans = Vec::new();
    let runs = if planted { MAX_RUNS } else { 1 };
    let mut run_result = Err("no run attempted".to_string());
    for _ in 0..runs {
        run_result = run(opts.shards);
        let Ok(result) = &run_result else { break };
        spans = result.report.spans();
        if spans.iter().any(|s| s.outcome() == SpanOutcome::Aborted) {
            break;
        }
    }
    set_trace_default(prev);
    run_result?;

    attribute(&mut spans, &analysis.report);
    let workload_label = if planted {
        format!("{name}+planted")
    } else {
        name.to_string()
    };
    Ok(render(&workload_label, opts, &spans))
}

/// Groups spans into per-MTX chains and picks the ones to report:
/// `--mtx` selects exactly one; otherwise chains with aborted attempts
/// come first (most attempts, then longest), followed by the slowest
/// committed chains, truncated to `top`.
fn select_chains<'a>(spans: &'a [MtxSpan], opts: &WhyOptions) -> Vec<Chain<'a>> {
    let mut by_mtx: BTreeMap<u64, Vec<&MtxSpan>> = BTreeMap::new();
    for s in spans {
        by_mtx.entry(s.mtx).or_default().push(s);
    }
    if let Some(m) = opts.mtx {
        return by_mtx.into_iter().filter(|(mtx, _)| *mtx == m).collect();
    }
    let mut chains: Vec<Chain<'a>> = by_mtx.into_iter().collect();
    chains.sort_by_key(|(mtx, attempts)| {
        let aborted = attempts
            .iter()
            .filter(|s| s.outcome() == SpanOutcome::Aborted)
            .count();
        let total: u64 = attempts.iter().map(|s| s.total_us()).sum();
        (std::cmp::Reverse(aborted), std::cmp::Reverse(total), *mtx)
    });
    chains.truncate(opts.top);
    chains
}

fn outcome_name(s: &MtxSpan) -> &'static str {
    match s.outcome() {
        SpanOutcome::Committed => "committed",
        SpanOutcome::Aborted => "aborted",
        SpanOutcome::Incomplete => "incomplete",
    }
}

fn render(workload: &str, opts: &WhyOptions, spans: &[MtxSpan]) -> WhyOutcome {
    let chains = select_chains(spans, opts);
    let counts = cause_counts(spans);
    let committed = spans
        .iter()
        .filter(|s| s.outcome() == SpanOutcome::Committed)
        .count();
    let aborted = spans
        .iter()
        .filter(|s| s.outcome() == SpanOutcome::Aborted)
        .count();
    let unpredicted = counts
        .iter()
        .find(|(c, _)| *c == AbortCause::Unpredicted)
        .map_or(0, |(_, n)| *n);

    let output = match opts.format {
        AnalyzeFormat::Text => {
            let mut out = String::new();
            let _ = writeln!(
                out,
                "== repro why: {workload} (shards={}, workers={WORKERS}) ==",
                opts.shards
            );
            let _ = writeln!(
                out,
                "attempts {}  committed {committed}  aborted {aborted}",
                spans.len()
            );
            let hist: Vec<String> = counts
                .iter()
                .map(|(c, n)| format!("{} {n}", c.name()))
                .collect();
            let _ = writeln!(out, "aborts by cause: {}", hist.join(" | "));
            if unpredicted > 0 {
                let _ = writeln!(
                    out,
                    "*** RED FLAG: {unpredicted} abort(s) the analysis cannot explain \
                     — the plan's self-description or the analyzer missed a real \
                     dependence ***"
                );
            }
            for (mtx, attempts) in &chains {
                let _ = writeln!(out);
                for s in attempts {
                    let _ = writeln!(
                        out,
                        "mtx {mtx} attempt {}: {}  total {}us",
                        s.attempt,
                        outcome_name(s).to_uppercase(),
                        s.total_us()
                    );
                    let _ = writeln!(
                        out,
                        "  queue_wait {}us  exec {}us  flush {}us",
                        s.queue_wait_us(),
                        s.exec_us(),
                        s.flush_us()
                    );
                    if let Some(v) = s.validation_lag_us() {
                        let _ = write!(out, "  validation_lag {v}us");
                        if let Some(h) = s.commit_hold_us() {
                            let _ = write!(out, "  commit_hold {h}us");
                        }
                        let _ = writeln!(out);
                    }
                    if let Some(c) = s.conflict {
                        let writer = match c.first_writer_mtx {
                            Some(w) => format!("mtx {w}#a{}", c.first_writer_attempt),
                            None => "<none>".into(),
                        };
                        let _ = writeln!(
                            out,
                            "  conflict: page {:#x} shard {} first_writer {writer} at {}us",
                            c.page, c.shard, c.at_us
                        );
                    }
                    if let Some(q) = s.squashed_us {
                        let cause = s.cause.map_or("<unattributed>", AbortCause::name);
                        let kind = if s.fault_squashed { "fault" } else { "data" };
                        let _ =
                            writeln!(out, "  squashed at {q}us ({kind} recovery) cause={cause}");
                    }
                }
            }
            out
        }
        AnalyzeFormat::Jsonl => {
            let mut out = String::new();
            for (mtx, attempts) in &chains {
                for s in attempts {
                    let _ = write!(
                        out,
                        "{{\"record\":\"why\",\"workload\":{},\"mtx\":{mtx},\
                         \"attempt\":{},\"outcome\":{},\"queue_wait_us\":{},\
                         \"exec_us\":{},\"flush_us\":{},\"validation_lag_us\":{},\
                         \"commit_hold_us\":{},\"total_us\":{},\"fault\":{}",
                        json::string(workload),
                        s.attempt,
                        json::string(outcome_name(s)),
                        s.queue_wait_us(),
                        s.exec_us(),
                        s.flush_us(),
                        s.validation_lag_us().unwrap_or(0),
                        s.commit_hold_us().unwrap_or(0),
                        s.total_us(),
                        s.fault_squashed,
                    );
                    if let Some(cause) = s.cause {
                        let _ = write!(out, ",\"cause\":{}", json::string(cause.name()));
                    }
                    if let Some(c) = s.conflict {
                        let _ = write!(
                            out,
                            ",\"conflict_page\":{},\"conflict_shard\":{}",
                            c.page, c.shard
                        );
                        if let Some(w) = c.first_writer_mtx {
                            let _ = write!(out, ",\"first_writer_mtx\":{w}");
                        }
                    }
                    let _ = writeln!(out, "}}");
                }
            }
            let reg = Registry::new();
            export_why_metrics(&reg, spans, workload);
            let _ = write!(out, "{}", reg.to_jsonl());
            out
        }
    };

    WhyOutcome {
        output,
        chrome_trace: dsmtx::chrome_spans(spans).render(),
        unpredicted,
    }
}

// ---------------------------------------------------------------------
// BENCH_mtx_lifecycle: per-stage time decomposition + abort-cause
// histogram for the planted parser at shards {1, 2, 4}.
// ---------------------------------------------------------------------

/// One shard count's lifecycle totals.
#[derive(Debug)]
pub struct LifecycleRow {
    /// Try-commit shard count.
    pub shards: usize,
    /// Spans (attempts) observed.
    pub attempts: u64,
    /// Committed / aborted attempt counts.
    pub committed: u64,
    /// Aborted attempts.
    pub aborted: u64,
    /// Mean per-attempt phase times in microseconds.
    pub queue_wait_us: u64,
    /// Mean execute time.
    pub exec_us: u64,
    /// Mean flush time.
    pub flush_us: u64,
    /// Mean validation lag over validated attempts.
    pub validation_lag_us: u64,
    /// Mean commit-order hold over committed attempts.
    pub commit_hold_us: u64,
    /// Aborts per cause, in [`AbortCause::ALL`] order.
    pub causes: Vec<(AbortCause, u64)>,
}

/// Runs the planted parser traced at each shard count and decomposes
/// attempt wall-clock into lifecycle phases.
///
/// # Errors
///
/// Kernel failures.
pub fn run_mtx_lifecycle(shard_counts: &[usize]) -> Result<Vec<LifecycleRow>, String> {
    let scale = Scale::test();
    let parser = dsmtx_workloads::parser::Parser;
    let mut plan = parser
        .plan_with_planted_unknown(scale)
        .map_err(|e| e.to_string())?;
    let analysis = analyze(&mut plan);

    let prev = set_trace_default(true);
    let mut rows = Vec::new();
    for &shards in shard_counts {
        let mut spans = Vec::new();
        for _ in 0..MAX_RUNS {
            let result = parser
                .run_reported_planted_unknown(WORKERS, shards, scale)
                .map_err(|e| e.to_string());
            let result = match result {
                Ok(r) => r,
                Err(e) => {
                    set_trace_default(prev);
                    return Err(e);
                }
            };
            spans = result.report.spans();
            if spans.iter().any(|s| s.outcome() == SpanOutcome::Aborted) {
                break;
            }
        }
        attribute(&mut spans, &analysis.report);

        let attempts = spans.len() as u64;
        let committed = spans
            .iter()
            .filter(|s| s.outcome() == SpanOutcome::Committed)
            .count() as u64;
        let aborted = spans
            .iter()
            .filter(|s| s.outcome() == SpanOutcome::Aborted)
            .count() as u64;
        let mean = |total: u64, n: u64| total.checked_div(n).unwrap_or(0);
        let validated = spans.iter().filter(|s| s.validated_us.is_some()).count() as u64;
        rows.push(LifecycleRow {
            shards,
            attempts,
            committed,
            aborted,
            queue_wait_us: mean(spans.iter().map(MtxSpan::queue_wait_us).sum(), attempts),
            exec_us: mean(spans.iter().map(MtxSpan::exec_us).sum(), attempts),
            flush_us: mean(spans.iter().map(MtxSpan::flush_us).sum(), attempts),
            validation_lag_us: mean(
                spans.iter().filter_map(MtxSpan::validation_lag_us).sum(),
                validated,
            ),
            commit_hold_us: mean(
                spans.iter().filter_map(MtxSpan::commit_hold_us).sum(),
                committed,
            ),
            causes: cause_counts(&spans),
        });
    }
    set_trace_default(prev);
    Ok(rows)
}

/// Renders the lifecycle rows as the single-line `BENCH_mtx_lifecycle`
/// JSON artifact.
pub fn mtx_lifecycle_json(rows: &[LifecycleRow]) -> String {
    let mut out =
        String::from("{\"bench\":\"mtx_lifecycle\",\"workload\":\"197.parser+planted\",\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let causes: Vec<String> = r
            .causes
            .iter()
            .map(|(c, n)| format!("{}:{n}", json::string(c.name())))
            .collect();
        let _ = write!(
            out,
            "{{\"shards\":{},\"attempts\":{},\"committed\":{},\"aborted\":{},\
             \"queue_wait_us\":{},\"exec_us\":{},\"flush_us\":{},\
             \"validation_lag_us\":{},\"commit_hold_us\":{},\"causes\":{{{}}}}}",
            r.shards,
            r.attempts,
            r.committed,
            r.aborted,
            r.queue_wait_us,
            r.exec_us,
            r.flush_us,
            r.validation_lag_us,
            r.commit_hold_us,
            causes.join(",")
        );
    }
    out.push_str("]}");
    out
}

/// Text rendering of the lifecycle rows for the CLI.
pub fn mtx_lifecycle_text(rows: &[LifecycleRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== MTX lifecycle decomposition: 197.parser+planted ({WORKERS} workers) =="
    );
    let _ = writeln!(
        out,
        "{:>6} {:>8} {:>9} {:>7} {:>10} {:>8} {:>8} {:>12} {:>11}",
        "shards",
        "attempts",
        "committed",
        "aborted",
        "queue_us",
        "exec_us",
        "flush_us",
        "val_lag_us",
        "hold_us"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>6} {:>8} {:>9} {:>7} {:>10} {:>8} {:>8} {:>12} {:>11}",
            r.shards,
            r.attempts,
            r.committed,
            r.aborted,
            r.queue_wait_us,
            r.exec_us,
            r.flush_us,
            r.validation_lag_us,
            r.commit_hold_us
        );
    }
    for r in rows {
        let hist: Vec<String> = r
            .causes
            .iter()
            .map(|(c, n)| format!("{} {n}", c.name()))
            .collect();
        let _ = writeln!(
            out,
            "shards={}: aborts by cause: {}",
            r.shards,
            hist.join(" | ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn why_reports_planted_parser_aborts() {
        let outcome = run_why(&WhyOptions::default()).expect("why runs");
        assert!(outcome.output.contains("197.parser+planted"));
        assert!(outcome.output.contains("aborts by cause"));
        assert_eq!(
            outcome.unpredicted, 0,
            "planted parser aborts must be attributed:\n{}",
            outcome.output
        );
        json::validate(&outcome.chrome_trace).expect("span trace parses");
    }

    #[test]
    fn why_jsonl_rows_parse() {
        let outcome = run_why(&WhyOptions {
            format: AnalyzeFormat::Jsonl,
            top: 3,
            ..WhyOptions::default()
        })
        .expect("why runs");
        let mut saw_why = false;
        for line in outcome.output.lines() {
            json::validate(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            saw_why |= line.contains("\"record\":\"why\"");
        }
        assert!(saw_why, "no why rows:\n{}", outcome.output);
        assert!(outcome.output.contains("why.attempts"));
    }

    #[test]
    fn why_mtx_filter_selects_one_chain() {
        let all = run_why(&WhyOptions {
            format: AnalyzeFormat::Jsonl,
            top: 1,
            ..WhyOptions::default()
        })
        .expect("why runs");
        let row = all
            .output
            .lines()
            .find(|l| l.contains("\"record\":\"why\""))
            .expect("at least one row");
        let mtx: u64 = row
            .split("\"mtx\":")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.parse().ok())
            .expect("mtx field");
        let one = run_why(&WhyOptions {
            format: AnalyzeFormat::Jsonl,
            mtx: Some(mtx),
            ..WhyOptions::default()
        })
        .expect("why runs");
        for line in one
            .output
            .lines()
            .filter(|l| l.contains("\"record\":\"why\""))
        {
            assert!(line.contains(&format!("\"mtx\":{mtx}")), "{line}");
        }
    }

    #[test]
    fn unknown_workload_is_a_helpful_error() {
        let err = run_why(&WhyOptions {
            workload: "999.nonesuch".into(),
            ..WhyOptions::default()
        })
        .unwrap_err();
        assert!(err.contains("unknown workload"));
    }

    #[test]
    fn lifecycle_json_parses() {
        let rows = run_mtx_lifecycle(&[1]).expect("lifecycle runs");
        let doc = mtx_lifecycle_json(&rows);
        json::validate(&doc).expect("artifact parses");
        assert!(doc.contains("\"bench\":\"mtx_lifecycle\""));
        assert!(doc.contains("\"causes\""));
        assert!(mtx_lifecycle_text(&rows).contains("shards=1"));
    }
}
