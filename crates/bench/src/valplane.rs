//! Validation-plane compaction benchmark.
//!
//! Runs the same validation-bound Spec-DOALL loop twice — once with the
//! legacy unpacked per-record protocol and once with the compacted
//! protocol (per-subTX access filtering + packed `AccessBlock` frames +
//! the worker-side COA page cache) — and reports what actually crossed
//! the validation and commit planes in each mode: records, bytes, packed
//! frames, filter suppressions, COA cache traffic, and the try-commit
//! unit's verdict latency.
//!
//! Both runs must be semantically identical; the sweep asserts
//! byte-identical committed memory, identical outputs, and an identical
//! commit order before reporting any numbers. The measured
//! `bytes_post / bytes_pre` ratio also feeds the simulator's
//! `val_compaction` knob so the model's shard-sweep predictions reflect
//! the protocol actually running.

use std::sync::Arc;
use std::time::Duration;

use dsmtx::{
    IterOutcome, MtxId, MtxSystem, Program, StageKind, SystemConfig, TraceKind, ValPlaneStats,
    WorkerCtx,
};
use dsmtx_mem::{MasterMem, Page};
use dsmtx_sim::unit_shard_sweep_with;
use dsmtx_uva::{OwnerId, PageId, RegionAllocator};
use dsmtx_workloads::kernel_by_name;

use crate::format::Table;

/// Everything one mode's run produced that the comparison needs.
struct ValRun {
    outputs: Vec<u64>,
    commit_order: Vec<u64>,
    memory: Vec<(PageId, Page)>,
    valplane: ValPlaneStats,
    verdict_p50_us: u64,
    verdict_p99_us: u64,
    elapsed: Duration,
}

/// One mode's numbers, reduced to the artifact's fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValPlanePoint {
    /// Whether the compacted protocol was on.
    pub compaction: bool,
    /// Wall-clock time of the parallel section, microseconds.
    pub elapsed_us: u64,
    /// Messages that actually crossed the validation + commit planes.
    pub records: u64,
    /// Bytes that actually crossed (framing + payload).
    pub bytes: u64,
    /// Accesses suppressed by the write-combining filter.
    pub records_filtered: u64,
    /// Packed frames shipped (0 in unpacked mode).
    pub blocks: u64,
    /// Mean records per packed frame.
    pub block_fill: f64,
    /// Worker COA cache hits (local serves + payload-free revalidations).
    pub cache_hits: u64,
    /// Worker COA cache misses (full page fetches).
    pub cache_misses: u64,
    /// Try-commit verdict latency, p50 microseconds.
    pub verdict_p50_us: u64,
    /// Try-commit verdict latency, p99 microseconds.
    pub verdict_p99_us: u64,
}

/// The before/after comparison plus the simulator's prediction.
#[derive(Debug, Clone)]
pub struct ValPlaneSweep {
    /// Iterations per run.
    pub iters: u64,
    /// Scattered writes per iteration (the validation load).
    pub writes_per_iter: u64,
    /// Cores available to this process when the sweep ran.
    pub cores: usize,
    /// The unpacked (legacy per-record) run.
    pub unpacked: ValPlanePoint,
    /// The compacted (filter + packed frames + COA cache) run.
    pub packed: ValPlanePoint,
    /// Unpacked records divided by packed records.
    pub records_ratio: f64,
    /// Unpacked bytes divided by packed bytes.
    pub bytes_ratio: f64,
    /// The simulator's predicted loop speedup from feeding the measured
    /// byte ratio into its `val_compaction` knob (128 simulated cores,
    /// one speculation-unit shard).
    pub sim_predicted_speedup: f64,
}

/// Runs the validation-bound DOALL once in the given mode, with tracing
/// on, and returns everything the identity check and the artifact need.
fn run_valplane_once(iters: u64, writes_per_iter: u64, compaction: bool) -> ValRun {
    let mut heap = RegionAllocator::new(OwnerId(0));
    let input = heap.alloc_words(iters).expect("alloc");
    let data = heap.alloc_words(iters * writes_per_iter).expect("alloc");
    let mut master = MasterMem::new();
    for i in 0..iters {
        master.write(input.add_words(i), i.wrapping_mul(0x9E37_79B9) | 1);
    }

    let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        let x = ctx.read(input.add_words(mtx.0))?;
        for k in 0..writes_per_iter {
            // Column-major scatter, same shape as the shard sweep: each
            // MTX's stores spread across the page space.
            ctx.write_no_forward(data.add_words(k * iters + mtx.0), x.wrapping_add(k))?;
        }
        Ok(IterOutcome::Continue)
    });
    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Parallel { replicas: 3 })
        .compaction(compaction);
    let result = MtxSystem::new(&cfg)
        .expect("config")
        .trace(true)
        .run(Program {
            master,
            stages: vec![body],
            recovery: Box::new(move |mtx, m| {
                let x = m.read(input.add_words(mtx.0));
                for k in 0..writes_per_iter {
                    m.write(data.add_words(k * iters + mtx.0), x.wrapping_add(k));
                }
                IterOutcome::Continue
            }),
            on_commit: None,
            iteration_limit: Some(iters),
        })
        .expect("run");
    assert_eq!(result.report.total_iterations(), iters, "lost iterations");

    let outputs = (0..iters * writes_per_iter)
        .map(|w| result.master.read(data.add_words(w)))
        .collect();
    let commit_order = result
        .report
        .trace
        .iter()
        .filter(|e| e.kind == TraceKind::Committed)
        .map(|e| e.mtx.unwrap().0)
        .collect();
    let verdicts = dsmtx_obs::Histogram::new();
    for s in &result.report.shard_stats {
        verdicts.merge(&s.verdict_latency);
    }
    ValRun {
        outputs,
        commit_order,
        memory: result.master.snapshot(),
        valplane: result.report.valplane.clone(),
        verdict_p50_us: verdicts.p50(),
        verdict_p99_us: verdicts.p99(),
        elapsed: result.report.elapsed,
    }
}

fn point(compaction: bool, r: &ValRun) -> ValPlanePoint {
    let v = &r.valplane;
    ValPlanePoint {
        compaction,
        elapsed_us: (r.elapsed.as_micros() as u64).max(1),
        records: v.records_post,
        bytes: v.bytes_post,
        records_filtered: v.records_filtered,
        blocks: v.blocks,
        block_fill: v.block_fill(),
        cache_hits: v.cache_hits,
        cache_misses: v.cache_misses,
        verdict_p50_us: r.verdict_p50_us,
        verdict_p99_us: r.verdict_p99_us,
    }
}

/// Runs both modes, asserts they are semantically identical, and returns
/// the before/after comparison.
///
/// # Panics
///
/// Panics if the two modes commit different memory, different outputs, or
/// a different commit order — the compaction layers must be invisible to
/// program semantics before their numbers mean anything.
pub fn run_valplane_sweep(iters: u64, writes_per_iter: u64) -> ValPlaneSweep {
    let unpacked = run_valplane_once(iters, writes_per_iter, false);
    let packed = run_valplane_once(iters, writes_per_iter, true);

    assert_eq!(
        unpacked.outputs, packed.outputs,
        "packed and unpacked runs committed different outputs"
    );
    assert_eq!(
        unpacked.commit_order, packed.commit_order,
        "packed and unpacked runs committed in different orders"
    );
    assert_eq!(
        unpacked.memory.len(),
        packed.memory.len(),
        "packed and unpacked runs touched different page sets"
    );
    for ((id_a, page_a), (id_b, page_b)) in unpacked.memory.iter().zip(packed.memory.iter()) {
        assert_eq!(id_a, id_b, "page ids diverged");
        assert_eq!(page_a, page_b, "page {id_a:?} contents diverged");
    }

    let up = point(false, &unpacked);
    let pp = point(true, &packed);
    let records_ratio = up.records as f64 / pp.records.max(1) as f64;
    let bytes_ratio = up.bytes as f64 / pp.bytes.max(1) as f64;

    // Feed the measured byte ratio into the simulator: predicted loop
    // speedup of the compacted protocol on the paper's 128-core platform,
    // one speculation-unit shard, validation-heavy profile.
    let vc = (pp.bytes as f64 / up.bytes.max(1) as f64).clamp(0.0, 1.0);
    let profile = validation_heavy_profile();
    let before = unit_shard_sweep_with(&profile, 128, &[1], 1.0);
    let after = unit_shard_sweep_with(&profile, 128, &[1], vc);
    let sim_predicted_speedup = match (before.first(), after.first()) {
        (Some(b), Some(a)) if b.speedup > 0.0 => a.speedup / b.speedup,
        _ => 1.0,
    };

    ValPlaneSweep {
        iters,
        writes_per_iter,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        unpacked: up,
        packed: pp,
        records_ratio,
        bytes_ratio,
        sim_predicted_speedup,
    }
}

/// The validation-heavy parser variant used by the shard sweep, shared so
/// both artifacts model the same workload.
pub(crate) fn validation_heavy_profile() -> dsmtx_sim::WorkloadProfile {
    let mut profile = kernel_by_name("197.parser").expect("known").profile();
    profile.validation_words = 4096.0;
    profile.stages[0].bytes_out = 512.0;
    profile.stages[0].work_fraction = 0.005;
    profile.stages[1].work_fraction = 0.99;
    profile.stages[2].work_fraction = 0.005;
    profile
}

/// Measures the compacted protocol's byte ratio (`bytes_post /
/// bytes_pre`) on a small validation-bound run — the plug-in value for
/// the simulator's `val_compaction` knob.
pub fn measured_compaction_factor() -> f64 {
    let r = run_valplane_once(128, 16, true);
    let v = &r.valplane;
    (v.bytes_post as f64 / v.bytes_pre.max(1) as f64).clamp(0.0, 1.0)
}

/// Renders the sweep as a text table for the `repro` binary.
pub fn valplane_text(s: &ValPlaneSweep) -> String {
    let mut t = Table::new(vec![
        "protocol",
        "records",
        "bytes",
        "filtered",
        "blocks",
        "fill",
        "verdict p50/p99 (us)",
        "elapsed (us)",
    ]);
    for p in [&s.unpacked, &s.packed] {
        t.row(vec![
            if p.compaction { "packed" } else { "unpacked" }.to_string(),
            p.records.to_string(),
            p.bytes.to_string(),
            p.records_filtered.to_string(),
            p.blocks.to_string(),
            format!("{:.1}", p.block_fill),
            format!("{}/{}", p.verdict_p50_us, p.verdict_p99_us),
            p.elapsed_us.to_string(),
        ]);
    }
    format!(
        "Validation-plane compaction (filter + packed frames + COA cache)\n\
         validation-bound DOALL: {} iters x {} scattered writes, {} core(s)\n\
         both modes byte-identical: memory, outputs, commit order\n\n{}\n\
         records {:.1}x fewer, bytes {:.1}x fewer; simulator predicts \
         {:.2}x loop speedup at 128 cores from the measured byte ratio\n\
         packed COA cache: {} hits / {} misses",
        s.iters,
        s.writes_per_iter,
        s.cores,
        t.render(),
        s.records_ratio,
        s.bytes_ratio,
        s.sim_predicted_speedup,
        s.packed.cache_hits,
        s.packed.cache_misses,
    )
}

fn point_json(p: &ValPlanePoint) -> String {
    format!(
        concat!(
            r#"{{"compaction":{},"records":{},"bytes":{},"records_filtered":{},"#,
            r#""blocks":{},"block_fill":{:.2},"cache_hits":{},"cache_misses":{},"#,
            r#""verdict_p50_us":{},"verdict_p99_us":{},"elapsed_us":{}}}"#
        ),
        p.compaction,
        p.records,
        p.bytes,
        p.records_filtered,
        p.blocks,
        p.block_fill,
        p.cache_hits,
        p.cache_misses,
        p.verdict_p50_us,
        p.verdict_p99_us,
        p.elapsed_us
    )
}

/// Serializes the sweep as the `BENCH_valplane.json` artifact.
pub fn valplane_json(s: &ValPlaneSweep) -> String {
    format!(
        concat!(
            r#"{{"bench":"valplane","workload":"validation_bound_doall","#,
            r#""iters":{},"writes_per_iter":{},"cores":{},"#,
            r#""unpacked":{},"packed":{},"#,
            r#""records_ratio":{:.4},"bytes_ratio":{:.4},"#,
            r#""sim_predicted_speedup":{:.4},"identical":true}}"#
        ),
        s.iters,
        s.writes_per_iter,
        s.cores,
        point_json(&s.unpacked),
        point_json(&s.packed),
        s.records_ratio,
        s.bytes_ratio,
        s.sim_predicted_speedup,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compaction_hits_the_reduction_bars() {
        // The acceptance shape at a test-sized run: the per-iteration
        // arithmetic (per-record messages vs two frames) is independent
        // of the iteration count, so the ratios transfer to the full
        // 512x32 artifact run.
        let s = run_valplane_sweep(96, 16);
        assert!(
            s.records_ratio >= 5.0,
            "records only {:.2}x fewer",
            s.records_ratio
        );
        assert!(
            s.bytes_ratio >= 2.0,
            "bytes only {:.2}x fewer",
            s.bytes_ratio
        );
        assert!(
            s.sim_predicted_speedup >= 1.0,
            "sim predicts a slowdown: {}",
            s.sim_predicted_speedup
        );
        // Packed mode must actually pack; unpacked must be identity.
        assert!(s.packed.blocks > 0);
        assert!(s.packed.block_fill > 1.0);
        assert_eq!(s.unpacked.blocks, 0);
        assert_eq!(s.unpacked.records_filtered, 0);
    }

    #[test]
    fn artifact_json_is_valid_and_complete() {
        let s = run_valplane_sweep(64, 8);
        let json = valplane_json(&s);
        dsmtx_obs::json::validate(&json).expect("valid JSON artifact");
        assert!(json.contains(r#""bench":"valplane""#));
        assert!(json.contains(r#""unpacked":"#));
        assert!(json.contains(r#""packed":"#));
        assert!(json.contains(r#""identical":true"#));

        let text = valplane_text(&s);
        assert!(text.contains("compaction"));
        assert!(text.contains("packed"));
    }

    #[test]
    fn measured_factor_is_a_real_reduction() {
        let f = measured_compaction_factor();
        assert!(f > 0.0 && f <= 0.5, "factor {f} not a >=2x reduction");
    }
}
