//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p dsmtx-bench --bin repro -- \
//!     [fig1|fig2|fig3|fig4|fig5a|fig5b|fig6|table1|table2|ablations|trace|shards|valplane|analyze|plan|why|lifecycle|bench-check|all] \
//!     [--iters N] [--trace-out FILE] [--metrics-out FILE] \
//!     [--fault-seed S] [--fault-rate R] \
//!     [--shards N] [--sweep-out FILE] \
//!     [--workload NAME] [--format text|jsonl] \
//!     [--mtx N] [--top K] [--planted] [--apply] [--bench-dir DIR]
//! ```
//!
//! The `analyze` section runs the dependence analyzer and partition
//! linter (`dsmtx-analyze`) over the shipped Table-2 plans: per-workload
//! dependence census, typed lint findings with predicted misspeculation
//! rates, and the predicted conflict-page superset that the
//! certification tests check runtime conflicts against. `--workload`
//! restricts it to one kernel (default all eleven); `--format jsonl`
//! emits machine-readable rows instead of text. The exit code is a CI
//! gate: any Error-severity finding on a shipped plan exits nonzero.
//!
//! The `plan` section runs the auto-partitioner (`dsmtx-analyze`'s SCC
//! condensation over the recorded dependence graph): per-workload
//! candidate plans ranked by predicted misspeculation and pipeline
//! balance, refused shapes with the forcing dependence named, and an
//! address-level diff against the hand-written Table 2 partition.
//! `--apply` additionally executes each top-ranked auto plan through the
//! real runtime and certifies that the conflicts it observes stay inside
//! its own predicted superset, printing auto-vs-hand conflict counts.
//! The exit code is a CI gate: a workload with no lint-clean candidate,
//! or an applied plan whose conflicts escape the prediction, exits
//! nonzero.
//!
//! The `shards` section runs the real-runtime speculation-unit shard
//! sweep (`unit_shards` up to `--shards`, default 4) on a
//! validation-bound workload and prints measured scaling next to the
//! simulator's prediction; `--sweep-out` additionally writes the
//! `BENCH_shard_sweep.json` artifact.
//!
//! The `valplane` section runs the validation-plane compaction
//! before/after comparison (unpacked per-record protocol vs filtering +
//! packed frames + COA cache) on the same validation-bound workload;
//! `--sweep-out` there writes the `BENCH_valplane.json` artifact.
//!
//! The `trace` section runs a real traced pipeline and prints a
//! stage-occupancy report; `--trace-out` additionally writes a Chrome
//! `trace_event` JSON (open in `chrome://tracing` or Perfetto) and
//! `--metrics-out` a JSONL metrics dump in the shared schema.
//!
//! `--fault-seed S` runs the traced pipeline under the deterministic
//! fault injector: rate `R` (default 0.1, `--fault-rate`) is split
//! evenly over drop/delay/duplicate/reorder/stall on every link, and the
//! fault/retry/recovery counters flow through the same occupancy report
//! and JSONL schema. The same seed replays the same fault schedule.
//!
//! The `why` section runs a workload's shipped plan with lifecycle
//! tracing on and prints causal misspeculation chains: per-attempt
//! wall-clock decomposition, the squashing conflict, the typed abort
//! cause, and the retry linkage. `--mtx N` reports one MTX; `--top K`
//! (default 5) the K most interesting chains; `--planted` (parser only)
//! plants the unknown-token conflict; `--trace-out` writes the span
//! Chrome trace. The exit code flags `unpredicted` aborts.
//!
//! The `lifecycle` section regenerates the `BENCH_mtx_lifecycle.json`
//! artifact (per-stage time decomposition plus abort-cause histogram at
//! shards {1,2,4}); `--sweep-out` names the output file.
//!
//! The `bench-check` section regenerates every committed `BENCH_*.json`
//! baseline (found in `--bench-dir`, default the current directory) and
//! compares fresh runs against them: strict on structure, tolerance
//! band on timing-derived numbers. Nonzero exit on drift — the CI gate.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut what: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut iters: u64 = 200;
    let mut fault_seed: Option<u64> = None;
    let mut fault_rate: f64 = 0.1;
    let mut shards: usize = 4;
    let mut sweep_out: Option<String> = None;
    let mut workload: String = "all".into();
    let mut format = dsmtx_bench::AnalyzeFormat::Text;
    let mut mtx: Option<u64> = None;
    let mut top: usize = 5;
    let mut planted = false;
    let mut apply = false;
    let mut bench_dir: String = ".".into();

    let mut i = 0;
    while i < args.len() {
        let take_value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("missing value after `{}`", args[*i - 1]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--trace-out" => trace_out = Some(take_value(&mut i)),
            "--metrics-out" => metrics_out = Some(take_value(&mut i)),
            "--iters" => {
                let v = take_value(&mut i);
                iters = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad --iters value `{v}`");
                    std::process::exit(2);
                });
            }
            "--fault-seed" => {
                let v = take_value(&mut i);
                let parsed = match v.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => v.parse(),
                };
                fault_seed = Some(parsed.unwrap_or_else(|_| {
                    eprintln!("bad --fault-seed value `{v}`");
                    std::process::exit(2);
                }));
            }
            "--shards" => {
                let v = take_value(&mut i);
                shards = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad --shards value `{v}`");
                    std::process::exit(2);
                });
                if shards == 0 {
                    eprintln!("--shards must be at least 1");
                    std::process::exit(2);
                }
            }
            "--sweep-out" => sweep_out = Some(take_value(&mut i)),
            "--workload" => workload = take_value(&mut i),
            "--mtx" => {
                let v = take_value(&mut i);
                mtx = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("bad --mtx value `{v}`");
                    std::process::exit(2);
                }));
            }
            "--top" => {
                let v = take_value(&mut i);
                top = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad --top value `{v}`");
                    std::process::exit(2);
                });
                if top == 0 {
                    eprintln!("--top must be at least 1");
                    std::process::exit(2);
                }
            }
            "--planted" => planted = true,
            "--apply" => apply = true,
            "--bench-dir" => bench_dir = take_value(&mut i),
            "--format" => {
                let v = take_value(&mut i);
                format = dsmtx_bench::AnalyzeFormat::parse(&v).unwrap_or_else(|| {
                    eprintln!("bad --format value `{v}`; use text or jsonl");
                    std::process::exit(2);
                });
            }
            "--fault-rate" => {
                let v = take_value(&mut i);
                fault_rate = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad --fault-rate value `{v}`");
                    std::process::exit(2);
                });
                if !(0.0..=1.0).contains(&fault_rate) {
                    eprintln!("--fault-rate {fault_rate} outside [0, 1]");
                    std::process::exit(2);
                }
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag `{flag}`");
                std::process::exit(2);
            }
            name => what = Some(name.to_string()),
        }
        i += 1;
    }
    // Asking for an output file or a faulted run implies the trace
    // section (the only one that runs a real pipeline).
    let what = what.unwrap_or_else(|| {
        if trace_out.is_some() || metrics_out.is_some() || fault_seed.is_some() {
            "trace".into()
        } else {
            "all".into()
        }
    });

    let mut printed = false;
    let mut section = |name: &str, body: &dyn Fn() -> String| {
        if what == name || what == "all" {
            println!("{}", body());
            println!("{}", "=".repeat(72));
            printed = true;
        }
    };
    section("fig1", &dsmtx_bench::fig1_text);
    section("fig2", &dsmtx_bench::taxonomy_text);
    section("fig3", &dsmtx_bench::fig3_text);
    section("fig4", &dsmtx_bench::fig4_text);
    section("fig5a", &dsmtx_bench::fig5a_text);
    section("fig5b", &|| dsmtx_bench::fig5b_text(true));
    section("fig6", &dsmtx_bench::fig6_text);
    section("table1", &dsmtx_bench::table1_text);
    section("table2", &dsmtx_bench::table2_text);
    section("ablations", &dsmtx_bench::ablations_text);

    if what == "shards" || what == "all" {
        // The validation-bound sweep wants enough iterations that each
        // MTX's writes scatter across a full page per column.
        let sweep_iters = iters.max(512);
        let sweep = dsmtx_bench::run_shard_sweep(sweep_iters, 32, shards);
        println!("{}", dsmtx_bench::shard_sweep_text(&sweep));
        if let Some(path) = &sweep_out {
            let json = dsmtx_bench::shard_sweep_json(&sweep);
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote shard sweep ({} bytes) to {path}", json.len());
        }
        println!("{}", "=".repeat(72));
        printed = true;
    }

    if what == "valplane" || what == "all" {
        // Same sizing rule as the shard sweep, so the two artifacts
        // describe the same workload.
        let sweep_iters = iters.max(512);
        let sweep = dsmtx_bench::run_valplane_sweep(sweep_iters, 32);
        println!("{}", dsmtx_bench::valplane_text(&sweep));
        // `--sweep-out` names the valplane artifact only when this is the
        // section being run; `all` keeps the flag bound to the shard
        // sweep for compatibility.
        if what == "valplane" {
            if let Some(path) = &sweep_out {
                let json = dsmtx_bench::valplane_json(&sweep);
                if let Err(e) = std::fs::write(path, &json) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                }
                println!("wrote valplane sweep ({} bytes) to {path}", json.len());
            }
        }
        println!("{}", "=".repeat(72));
        printed = true;
    }

    if what == "analyze" || what == "all" {
        match dsmtx_bench::run_analyze(&workload, format) {
            Ok(outcome) => {
                print!("{}", outcome.output);
                // Keep stdout machine-readable in jsonl mode: the section
                // separator would corrupt a line-oriented JSON stream.
                if matches!(format, dsmtx_bench::AnalyzeFormat::Text) {
                    println!("{}", "=".repeat(72));
                }
                printed = true;
                if outcome.gate_failed {
                    eprintln!("analyze: error-severity findings on a shipped plan");
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("analyze: {e}");
                std::process::exit(2);
            }
        }
    }

    if what == "plan" {
        match dsmtx_bench::run_plan(&workload, format, apply) {
            Ok(outcome) => {
                print!("{}", outcome.output);
                // Keep stdout machine-readable in jsonl mode (see the
                // analyze section).
                if matches!(format, dsmtx_bench::AnalyzeFormat::Text) {
                    println!("{}", "=".repeat(72));
                }
                printed = true;
                if outcome.gate_failed {
                    eprintln!(
                        "plan: no viable auto plan, or an applied plan's observed \
                         conflicts escaped its prediction"
                    );
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("plan: {e}");
                std::process::exit(2);
            }
        }
    }

    if what == "trace" || what == "all" {
        let fault = fault_seed.map(|seed| {
            println!(
                "fault injection: seed={seed:#x} rate={fault_rate} (uniform over \
                 drop/delay/duplicate/reorder/stall, all links)"
            );
            dsmtx::FaultConfig::new(seed, dsmtx_fabric::FaultRates::uniform(fault_rate))
        });
        let result = dsmtx_bench::run_traced_pipeline_faulted(iters, fault);
        println!("{}", dsmtx_bench::occupancy_text(&result));
        if let Some(path) = &trace_out {
            let json = dsmtx_bench::chrome_trace_json(&result);
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote Chrome trace ({} bytes) to {path}", json.len());
        }
        if let Some(path) = &metrics_out {
            let jsonl = dsmtx_bench::metrics_jsonl(&result);
            if let Err(e) = std::fs::write(path, &jsonl) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote metrics ({} lines) to {path}", jsonl.lines().count());
        }
        println!("{}", "=".repeat(72));
        printed = true;
    }

    if what == "why" {
        let opts = dsmtx_bench::WhyOptions {
            workload: workload.clone(),
            planted,
            mtx,
            top,
            shards,
            format,
        };
        match dsmtx_bench::run_why(&opts) {
            Ok(outcome) => {
                print!("{}", outcome.output);
                if let Some(path) = &trace_out {
                    if let Err(e) = std::fs::write(path, &outcome.chrome_trace) {
                        eprintln!("cannot write {path}: {e}");
                        std::process::exit(1);
                    }
                    println!(
                        "wrote span trace ({} bytes) to {path}",
                        outcome.chrome_trace.len()
                    );
                }
                printed = true;
                if outcome.unpredicted > 0 {
                    eprintln!(
                        "why: {} abort(s) the analysis cannot explain",
                        outcome.unpredicted
                    );
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("why: {e}");
                std::process::exit(2);
            }
        }
    }

    if what == "lifecycle" {
        match dsmtx_bench::run_mtx_lifecycle(&[1, 2, 4]) {
            Ok(rows) => {
                println!("{}", dsmtx_bench::mtx_lifecycle_text(&rows));
                if let Some(path) = &sweep_out {
                    let json = dsmtx_bench::mtx_lifecycle_json(&rows);
                    if let Err(e) = std::fs::write(path, &json) {
                        eprintln!("cannot write {path}: {e}");
                        std::process::exit(1);
                    }
                    println!("wrote lifecycle bench ({} bytes) to {path}", json.len());
                }
                printed = true;
            }
            Err(e) => {
                eprintln!("lifecycle: {e}");
                std::process::exit(2);
            }
        }
    }

    if what == "bench-check" {
        let outcome = dsmtx_bench::run_bench_check(std::path::Path::new(&bench_dir));
        print!("{}", outcome.output);
        printed = true;
        if outcome.failed {
            eprintln!("bench-check: fresh runs drifted from committed baselines");
            std::process::exit(1);
        }
    }

    if !printed {
        eprintln!(
            "unknown target `{what}`; use fig1|fig2|fig3|fig4|fig5a|fig5b|fig6|table1|table2|ablations|trace|shards|valplane|analyze|plan|why|lifecycle|bench-check|all"
        );
        std::process::exit(2);
    }
}
