//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p dsmtx-bench --bin repro -- [fig1|fig2|fig3|fig4|fig5a|fig5b|fig6|table1|table2|ablations|all]
//! ```

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let mut printed = false;
    let mut section = |name: &str, body: &dyn Fn() -> String| {
        if what == name || what == "all" {
            println!("{}", body());
            println!("{}", "=".repeat(72));
            printed = true;
        }
    };
    section("fig1", &dsmtx_bench::fig1_text);
    section("fig2", &dsmtx_bench::taxonomy_text);
    section("fig3", &dsmtx_bench::fig3_text);
    section("fig4", &dsmtx_bench::fig4_text);
    section("fig5a", &dsmtx_bench::fig5a_text);
    section("fig5b", &|| dsmtx_bench::fig5b_text(true));
    section("fig6", &dsmtx_bench::fig6_text);
    section("table1", &dsmtx_bench::table1_text);
    section("table2", &dsmtx_bench::table2_text);
    section("ablations", &dsmtx_bench::ablations_text);
    if !printed {
        eprintln!(
            "unknown target `{what}`; use fig1|fig2|fig3|fig4|fig5a|fig5b|fig6|table1|table2|ablations|all"
        );
        std::process::exit(2);
    }
}
