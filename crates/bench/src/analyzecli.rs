//! The `repro analyze` section: runs the dependence analyzer and
//! partition linter over registry workloads and renders the result.
//!
//! `--workload W` picks one Table 2 kernel by name (default: all
//! eleven); `--format text|jsonl` picks the rendering. The process exit
//! code is the CI gate: any Error-severity finding on a shipped plan is
//! a failure.

use std::fmt::Write as _;

use dsmtx_analyze::{analyze, export_metrics, render_jsonl, render_text, summary_line};
use dsmtx_obs::Registry;
use dsmtx_workloads::{all_kernels, kernel_by_name, Scale};

/// Output rendering for [`run_analyze`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalyzeFormat {
    /// Human-readable report per workload plus a roll-up footer.
    Text,
    /// One JSON object per line: `analysis` and `finding` rows, then
    /// the `analyze.*` metric rows from the shared registry schema.
    Jsonl,
}

impl AnalyzeFormat {
    /// Parses a `--format` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "text" => Some(AnalyzeFormat::Text),
            "jsonl" => Some(AnalyzeFormat::Jsonl),
            _ => None,
        }
    }
}

/// The rendered report plus whether any shipped plan had an
/// Error-severity finding (the CI gate).
#[derive(Debug)]
pub struct AnalyzeOutcome {
    /// Rendered output in the requested format.
    pub output: String,
    /// Whether `repro analyze` should exit nonzero.
    pub gate_failed: bool,
}

/// Analyzes `workload` (a Table 2 name, or `"all"`) at the test scale
/// and renders the result.
///
/// # Errors
///
/// Unknown workload name, or a kernel failing to rebuild its plan.
pub fn run_analyze(workload: &str, format: AnalyzeFormat) -> Result<AnalyzeOutcome, String> {
    let kernels = if workload == "all" {
        all_kernels()
    } else {
        vec![kernel_by_name(workload).ok_or_else(|| {
            let names: Vec<&str> = all_kernels().iter().map(|k| k.info().name).collect();
            format!("unknown workload `{workload}`; known: {}", names.join(", "))
        })?]
    };

    let reg = Registry::new();
    let mut out = String::new();
    let mut summaries = Vec::new();
    let mut gate_failed = false;
    for k in &kernels {
        let mut plan = k
            .plan(Scale::test())
            .map_err(|e| format!("{}: {e}", k.info().name))?;
        let analysis = analyze(&mut plan);
        export_metrics(&reg, &analysis.graph, &analysis.report);
        gate_failed |= analysis.report.has_errors();
        match format {
            AnalyzeFormat::Text => {
                let _ = write!(out, "{}", render_text(&analysis.graph, &analysis.report));
                out.push('\n');
            }
            AnalyzeFormat::Jsonl => {
                let _ = write!(out, "{}", render_jsonl(&analysis.graph, &analysis.report));
            }
        }
        summaries.push(summary_line(&analysis.report));
    }
    match format {
        AnalyzeFormat::Text => {
            let _ = writeln!(out, "== lint roll-up ==");
            for s in &summaries {
                let _ = writeln!(out, "{s}");
            }
            let _ = writeln!(
                out,
                "gate: {}",
                if gate_failed {
                    "FAIL (error-severity findings on a shipped plan)"
                } else {
                    "ok"
                }
            );
        }
        AnalyzeFormat::Jsonl => {
            let _ = write!(out, "{}", reg.to_jsonl());
        }
    }
    Ok(AnalyzeOutcome {
        output: out,
        gate_failed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyzes_every_registry_workload() {
        let outcome = run_analyze("all", AnalyzeFormat::Text).expect("analyze all");
        for k in all_kernels() {
            assert!(
                outcome.output.contains(k.info().name),
                "missing {}",
                k.info().name
            );
        }
        assert!(outcome.output.contains("lint roll-up"));
        assert!(
            !outcome.gate_failed,
            "shipped plans must be error-free:\n{}",
            outcome.output
        );
    }

    #[test]
    fn jsonl_rows_parse_and_carry_metrics() {
        let outcome = run_analyze("crc32", AnalyzeFormat::Jsonl).expect("analyze crc32");
        let mut saw_analysis = false;
        let mut saw_metric = false;
        for line in outcome.output.lines() {
            dsmtx_obs::json::validate(line).expect("row parses");
            saw_analysis |= line.contains("\"record\":\"analysis\"");
            saw_metric |= line.contains("analyze.edges");
        }
        assert!(saw_analysis && saw_metric);
    }

    #[test]
    fn unknown_workload_is_a_helpful_error() {
        let err = run_analyze("999.nonesuch", AnalyzeFormat::Text).unwrap_err();
        assert!(err.contains("unknown workload"));
        assert!(err.contains("crc32"), "lists the known names");
    }
}
