//! A real traced pipeline run feeding the telemetry exporters.
//!
//! The `repro` binary's `trace` section runs a three-stage Spec-DSWP
//! pipeline with tracing on, then renders three artifacts from the same
//! [`dsmtx::RunReport`]:
//!
//! * a Chrome `trace_event` JSON (`--trace-out`), loadable in
//!   `chrome://tracing` or Perfetto, with one track per worker plus the
//!   try-commit and commit units;
//! * a JSONL metrics dump (`--metrics-out`) under the shared
//!   [`dsmtx_obs::schema`] names — the same vocabulary the simulator
//!   emits;
//! * a stage-occupancy text report (always printed).

use std::sync::Arc;

use dsmtx::{
    IterOutcome, MtxId, MtxSystem, Program, RunResult, StageKind, SystemConfig, TraceAnalysis,
    WorkerCtx,
};
use dsmtx_mem::MasterMem;
use dsmtx_obs::Registry;
use dsmtx_uva::{OwnerId, RegionAllocator};

use crate::format::Table;

/// Runs the demo pipeline (`iters` iterations, traced) and returns the
/// full result. The loop is the paper's running example shape: a
/// sequential traversal stage, a replicated work stage, and a sequential
/// accumulation stage.
pub fn run_traced_pipeline(iters: u64) -> RunResult {
    let mut heap = RegionAllocator::new(OwnerId(0));
    let input = heap.alloc_words(iters).expect("alloc");
    let out = heap.alloc_words(iters).expect("alloc");
    let checksum = heap.alloc_words(1).expect("alloc");
    let mut master = MasterMem::new();
    for i in 0..iters {
        master.write(input.add_words(i), i * 7 + 3);
    }

    let s0 = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        let x = ctx.read(input.add_words(mtx.0))?;
        ctx.produce(x);
        Ok(IterOutcome::Continue)
    });
    let s1 = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        let x = ctx.consume();
        // A little real work so stage-1 spans have visible width.
        let mut v = x;
        for _ in 0..64 {
            v = v
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        ctx.write_no_forward(out.add_words(mtx.0), v)?;
        ctx.produce(v);
        Ok(IterOutcome::Continue)
    });
    let s2 = Arc::new(move |ctx: &mut WorkerCtx, _mtx: MtxId| {
        let v = ctx.consume();
        let acc = ctx.read(checksum)?;
        ctx.write(checksum, acc.wrapping_add(v))?;
        Ok(IterOutcome::Continue)
    });

    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Sequential)
        .stage(StageKind::Parallel { replicas: 2 })
        .stage(StageKind::Sequential);
    MtxSystem::new(&cfg)
        .expect("config")
        .trace(true)
        .run(Program {
            master,
            stages: vec![s0, s1, s2],
            recovery: Box::new(|_, _| IterOutcome::Continue),
            on_commit: None,
            iteration_limit: Some(iters),
        })
        .expect("run")
}

/// Chrome `trace_event` JSON for a run.
pub fn chrome_trace_json(result: &RunResult) -> String {
    TraceAnalysis::chrome_trace(&result.report.trace).render()
}

/// JSONL metrics dump for a run (shared schema with the simulator).
pub fn metrics_jsonl(result: &RunResult) -> String {
    let reg = Registry::new();
    result.report.to_registry(&reg);
    reg.to_jsonl()
}

/// The stage-occupancy report: per-stage latency quantiles, per-role
/// busy fractions, and the mean critical-path breakdown per MTX.
pub fn occupancy_text(result: &RunResult) -> String {
    let a = result.report.analysis();
    let mut out = String::from("Pipeline telemetry (traced run)\n\n");

    let mut t = Table::new(vec!["stage", "subTXs", "p50 us", "p99 us", "mean us"]);
    for stage in a.stages() {
        let h = a.stage_exec(stage).expect("listed stage");
        t.row(vec![
            stage.to_string(),
            h.count().to_string(),
            h.p50().to_string(),
            h.p99().to_string(),
            format!("{:.1}", h.mean()),
        ]);
    }
    out.push_str("Per-stage subTX execution latency:\n");
    out.push_str(&t.render());

    let mut t = Table::new(vec!["role", "busy %"]);
    for (role, frac) in a.occupancy() {
        t.row(vec![role.to_string(), format!("{:.1}", 100.0 * frac)]);
    }
    out.push_str("\nWorker occupancy (busy / traced span):\n");
    out.push_str(&t.render());

    let cp = a.critical_path();
    out.push_str(&format!(
        "\nMean per-MTX critical path: exec {:.1} us, validation wait {:.1} us, \
         commit wait {:.1} us, total {:.1} us\n",
        cp.exec_us, cp.validation_wait_us, cp.commit_wait_us, cp.total_us
    ));
    out.push_str(&format!(
        "Committed {} MTXs over {} us; fabric moved {} bytes ({} sent / {} \
         received packets); trace dropped {} events\n",
        result.report.committed,
        a.span_us(),
        result.report.stats.bytes(),
        result.report.stats.packets(),
        result.report.stats.recv_packets(),
        result.report.trace_dropped,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_pipeline_produces_valid_artifacts() {
        let result = run_traced_pipeline(24);
        assert_eq!(result.report.committed, 24);

        let trace = chrome_trace_json(&result);
        dsmtx_obs::json::validate(&trace).expect("valid chrome trace JSON");
        assert!(trace.contains("\"traceEvents\""));
        // All three tracks are present and MTX-labeled spans exist.
        assert!(trace.contains("worker0"));
        assert!(trace.contains("try-commit"));
        assert!(trace.contains("commit"));
        assert!(trace.contains("mtx"));

        let metrics = metrics_jsonl(&result);
        for line in metrics.lines() {
            dsmtx_obs::json::validate(line).expect("valid JSONL line");
        }
        assert!(metrics.contains(dsmtx_obs::schema::STAGE_EXEC_US));
        assert!(metrics.contains(dsmtx_obs::schema::FABRIC_SENT_BYTES));

        let text = occupancy_text(&result);
        assert!(text.contains("Per-stage subTX execution latency"));
        assert!(text.contains("worker0"));
        assert!(text.contains("Committed 24 MTXs"));
    }

    #[test]
    fn run_is_invariant_clean_and_correct() {
        let result = run_traced_pipeline(16);
        result
            .report
            .analysis()
            .check_invariants()
            .expect("no invariant violations");
        // Stage latency accessors are live on the same report.
        assert!(
            result.report.stage_p99_us(dsmtx::StageId(1))
                >= result.report.stage_p50_us(dsmtx::StageId(1))
        );
    }
}
