//! A real traced pipeline run feeding the telemetry exporters.
//!
//! The `repro` binary's `trace` section runs a three-stage Spec-DSWP
//! pipeline with tracing on, then renders three artifacts from the same
//! [`dsmtx::RunReport`]:
//!
//! * a Chrome `trace_event` JSON (`--trace-out`), loadable in
//!   `chrome://tracing` or Perfetto, with one track per worker plus the
//!   try-commit and commit units;
//! * a JSONL metrics dump (`--metrics-out`) under the shared
//!   [`dsmtx_obs::schema`] names — the same vocabulary the simulator
//!   emits;
//! * a stage-occupancy text report (always printed).

use std::sync::Arc;

use dsmtx::{
    FaultConfig, IterOutcome, MtxId, MtxSystem, Program, RunResult, StageKind, SystemConfig,
    TraceAnalysis, WorkerCtx,
};
use dsmtx_mem::MasterMem;
use dsmtx_obs::Registry;
use dsmtx_uva::{OwnerId, RegionAllocator};

use crate::format::Table;

/// Stage-1's per-word work: 64 rounds of Knuth's LCG.
fn churn(x: u64) -> u64 {
    let mut v = x;
    for _ in 0..64 {
        v = v
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    v
}

/// Runs the demo pipeline (`iters` iterations, traced) and returns the
/// full result. The loop is the paper's running example shape: a
/// sequential traversal stage, a replicated work stage, and a sequential
/// accumulation stage.
pub fn run_traced_pipeline(iters: u64) -> RunResult {
    run_traced_pipeline_faulted(iters, None)
}

/// [`run_traced_pipeline`], optionally under a deterministic fault plan
/// (the `repro --fault-seed/--fault-rate` path).
pub fn run_traced_pipeline_faulted(iters: u64, fault: Option<FaultConfig>) -> RunResult {
    let mut heap = RegionAllocator::new(OwnerId(0));
    let input = heap.alloc_words(iters).expect("alloc");
    let out = heap.alloc_words(iters).expect("alloc");
    let checksum = heap.alloc_words(1).expect("alloc");
    let mut master = MasterMem::new();
    for i in 0..iters {
        master.write(input.add_words(i), i * 7 + 3);
    }

    let s0 = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        let x = ctx.read(input.add_words(mtx.0))?;
        ctx.produce(x);
        Ok(IterOutcome::Continue)
    });
    let s1 = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        let x = ctx.consume();
        // A little real work so stage-1 spans have visible width.
        let v = churn(x);
        ctx.write_no_forward(out.add_words(mtx.0), v)?;
        ctx.produce(v);
        Ok(IterOutcome::Continue)
    });
    let s2 = Arc::new(move |ctx: &mut WorkerCtx, _mtx: MtxId| {
        let v = ctx.consume();
        let acc = ctx.read(checksum)?;
        ctx.write(checksum, acc.wrapping_add(v))?;
        Ok(IterOutcome::Continue)
    });

    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Sequential)
        .stage(StageKind::Parallel { replicas: 2 })
        .stage(StageKind::Sequential);
    if let Some(f) = fault {
        cfg.faults(f);
    }
    MtxSystem::new(&cfg)
        .expect("config")
        .trace(true)
        .run(Program {
            master,
            stages: vec![s0, s1, s2],
            // Under fault injection, recovered iterations re-execute
            // sequentially through this closure — it must mirror the
            // three stages exactly or faulted runs would lose work.
            recovery: Box::new(move |mtx, m| {
                let v = churn(m.read(input.add_words(mtx.0)));
                m.write(out.add_words(mtx.0), v);
                let acc = m.read(checksum);
                m.write(checksum, acc.wrapping_add(v));
                IterOutcome::Continue
            }),
            on_commit: None,
            iteration_limit: Some(iters),
        })
        .expect("run")
}

/// Chrome `trace_event` JSON for a run.
pub fn chrome_trace_json(result: &RunResult) -> String {
    TraceAnalysis::chrome_trace(&result.report.trace).render()
}

/// JSONL metrics dump for a run (shared schema with the simulator).
pub fn metrics_jsonl(result: &RunResult) -> String {
    let reg = Registry::new();
    result.report.to_registry(&reg);
    reg.to_jsonl()
}

/// The stage-occupancy report: per-stage latency quantiles, per-role
/// busy fractions, and the mean critical-path breakdown per MTX.
pub fn occupancy_text(result: &RunResult) -> String {
    let a = result.report.analysis();
    let mut out = String::from("Pipeline telemetry (traced run)\n\n");

    let mut t = Table::new(vec!["stage", "subTXs", "p50 us", "p99 us", "mean us"]);
    for stage in a.stages() {
        let h = a.stage_exec(stage).expect("listed stage");
        t.row(vec![
            stage.to_string(),
            h.count().to_string(),
            h.p50().to_string(),
            h.p99().to_string(),
            format!("{:.1}", h.mean()),
        ]);
    }
    out.push_str("Per-stage subTX execution latency:\n");
    out.push_str(&t.render());

    let mut t = Table::new(vec!["role", "busy %"]);
    for (role, frac) in a.occupancy() {
        t.row(vec![role.to_string(), format!("{:.1}", 100.0 * frac)]);
    }
    out.push_str("\nWorker occupancy (busy / traced span):\n");
    out.push_str(&t.render());

    let cp = a.critical_path();
    out.push_str(&format!(
        "\nMean per-MTX critical path: exec {:.1} us, validation wait {:.1} us, \
         commit wait {:.1} us, total {:.1} us\n",
        cp.exec_us, cp.validation_wait_us, cp.commit_wait_us, cp.total_us
    ));
    out.push_str(&format!(
        "Committed {} MTXs over {} us; fabric moved {} bytes ({} sent / {} \
         received packets); trace dropped {} events\n",
        result.report.committed,
        a.span_us(),
        result.report.stats.bytes(),
        result.report.stats.packets(),
        result.report.stats.recv_packets(),
        result.report.trace_dropped,
    ));
    if result.report.stats.faults_total() > 0 || result.report.fabric_timeouts > 0 {
        out.push_str(&format!(
            "Fault injection: {} faults injected, {} send retries, {} fabric \
             timeouts, {} fault recoveries, {} channels down\n",
            result.report.stats.faults_total(),
            result.report.stats.retries(),
            result.report.fabric_timeouts,
            result.report.fault_recoveries,
            result.report.channel_downs,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_pipeline_produces_valid_artifacts() {
        let result = run_traced_pipeline(24);
        assert_eq!(result.report.committed, 24);

        let trace = chrome_trace_json(&result);
        dsmtx_obs::json::validate(&trace).expect("valid chrome trace JSON");
        assert!(trace.contains("\"traceEvents\""));
        // All three tracks are present and MTX-labeled spans exist.
        assert!(trace.contains("worker0"));
        assert!(trace.contains("try-commit"));
        assert!(trace.contains("commit"));
        assert!(trace.contains("mtx"));

        let metrics = metrics_jsonl(&result);
        for line in metrics.lines() {
            dsmtx_obs::json::validate(line).expect("valid JSONL line");
        }
        assert!(metrics.contains(dsmtx_obs::schema::STAGE_EXEC_US));
        assert!(metrics.contains(dsmtx_obs::schema::FABRIC_SENT_BYTES));

        let text = occupancy_text(&result);
        assert!(text.contains("Per-stage subTX execution latency"));
        assert!(text.contains("worker0"));
        assert!(text.contains("Committed 24 MTXs"));
    }

    #[test]
    fn faulted_run_commits_identical_results() {
        use dsmtx_fabric::FaultRates;

        let clean = run_traced_pipeline(32);
        let fault = FaultConfig::new(7, FaultRates::uniform(0.10)).recv_timeout_us(15_000);
        let faulted = run_traced_pipeline_faulted(32, Some(fault));
        assert_eq!(clean.report.total_iterations(), 32);
        assert_eq!(faulted.report.total_iterations(), 32);

        // Both runs allocate from a fresh region heap in the same order,
        // so addresses line up: re-derive them and compare committed
        // memory cell-for-cell (out[0..32] then the checksum word).
        let mut heap = RegionAllocator::new(OwnerId(0));
        let _input = heap.alloc_words(32).unwrap();
        let out = heap.alloc_words(32).unwrap();
        let checksum = heap.alloc_words(1).unwrap();
        for i in 0..32 {
            assert_eq!(
                faulted.master.read(out.add_words(i)),
                clean.master.read(out.add_words(i)),
                "out[{i}] diverged under faults"
            );
        }
        assert_eq!(faulted.master.read(checksum), clean.master.read(checksum));

        let metrics = metrics_jsonl(&faulted);
        assert!(metrics.contains(dsmtx_obs::schema::RUN_FABRIC_TIMEOUTS));
        assert!(metrics.contains(dsmtx_obs::schema::RUN_FAULT_RECOVERIES));
        let text = occupancy_text(&faulted);
        if faulted.report.stats.faults_total() > 0 {
            assert!(text.contains("Fault injection:"), "{text}");
        }
    }

    #[test]
    fn run_is_invariant_clean_and_correct() {
        let result = run_traced_pipeline(16);
        result
            .report
            .analysis()
            .check_invariants()
            .expect("no invariant violations");
        // Stage latency accessors are live on the same report.
        assert!(
            result.report.stage_p99_us(dsmtx::StageId(1))
                >= result.report.stage_p50_us(dsmtx::StageId(1))
        );
    }
}
