//! Minimal fixed-width table rendering for the repro outputs.

/// Builds an aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells are stringified already).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "ragged row");
        self.rows.push(cells);
        self
    }

    /// Renders with per-column alignment.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>width$}", width = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a speedup like the paper's axes ("49.0x").
pub fn speedup(v: f64) -> String {
    format!("{v:.1}x")
}

/// Formats bytes/second in the unit the paper uses per context.
pub fn bandwidth(bps: f64) -> String {
    if bps >= 1.0e6 {
        format!("{:.1} MB/s", bps / 1.0e6)
    } else {
        format!("{:.0} kB/s", bps / 1.0e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["x", "1"]).row(vec!["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1"));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    #[should_panic(expected = "ragged row")]
    fn rejects_ragged_rows() {
        Table::new(vec!["a", "b"]).row(vec!["only one"]);
    }

    #[test]
    fn unit_formats() {
        assert_eq!(speedup(49.03), "49.0x");
        assert_eq!(bandwidth(480.7e6), "480.7 MB/s");
        assert_eq!(bandwidth(65_742.0), "66 kB/s");
    }
}
