//! Regeneration of every table and figure in the paper's evaluation.

use std::sync::Arc;

use dsmtx::{IterOutcome, MtxId, MtxSystem, Program, StageKind, SystemConfig, WorkerCtx};
use dsmtx_mem::MasterMem;
use dsmtx_paradigms::taxonomy;
use dsmtx_sim::report::{
    batching_comparison, figure4_core_counts, geomean, recovery_series, speedup_curve,
};
use dsmtx_sim::{bandwidth_series, doacross_schedule, dswp_schedule, SimEngine};
use dsmtx_uva::{OwnerId, RegionAllocator};
use dsmtx_workloads::all_kernels;

use crate::format::{bandwidth, speedup, Table};

// ---------------------------------------------------------------------
// Figure 1 — latency tolerance of DSWP vs DOACROSS
// ---------------------------------------------------------------------

/// Figure 1(c,d): the two schedules at communication latencies 1 and 2.
pub fn fig1_text() -> String {
    let mut out =
        String::from("Figure 1: DSWP is more tolerant than DOACROSS to inter-core latency\n\n");
    for latency in [1u64, 2] {
        out.push_str(&format!(
            "--- communication latency = {latency} cycle(s) ---\n"
        ));
        out.push_str(&doacross_schedule(5, latency).render());
        out.push('\n');
        out.push_str(&dswp_schedule(5, latency).render());
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// Figure 2 — taxonomy
// ---------------------------------------------------------------------

/// Figure 2: memory-system assumptions vs exploitable parallelism.
pub fn taxonomy_text() -> String {
    let mut t = Table::new(vec!["memory system", "hardware assumption", "exploitable"]);
    for row in taxonomy() {
        t.row(vec![
            row.system.to_string(),
            row.assumption.to_string(),
            row.exploitable.join(", "),
        ]);
    }
    format!("Figure 2: capability/assumption taxonomy\n\n{}", t.render())
}

// ---------------------------------------------------------------------
// Figure 3 — MTX execution model (real traced run)
// ---------------------------------------------------------------------

/// Figure 3(c): the execution model of a real traced run of the example
/// loop — subTX begins/ends on the workers, validation and commit
/// decoupled behind them.
pub fn fig3_text() -> String {
    const N: u64 = 6;
    let mut heap = RegionAllocator::new(OwnerId(0));
    let list = heap.alloc_words(N).expect("alloc");
    let results = heap.alloc_words(N).expect("alloc");
    let mut master = MasterMem::new();
    for i in 0..N {
        master.write(list.add_words(i), i * 3 + 1);
    }

    // The paper's example: stage 1 walks the list (B), stage 2 does the
    // work and writes the result (C, D).
    let walk = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        let node = ctx.read(list.add_words(mtx.0))?;
        ctx.produce(node);
        Ok(IterOutcome::Continue)
    });
    let work = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        let node = ctx.consume();
        ctx.write(results.add_words(mtx.0), node * node + 1)?;
        Ok(IterOutcome::Continue)
    });

    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Sequential)
        .stage(StageKind::Sequential);
    let system = MtxSystem::new(&cfg).expect("config").trace(true);
    let result = system
        .run(Program {
            master,
            stages: vec![walk, work],
            recovery: Box::new(|_, _| IterOutcome::Continue),
            on_commit: None,
            iteration_limit: Some(N),
        })
        .expect("run");

    let origin = result.report.trace.first().map_or(0, |e| e.at_us);
    let mut t = Table::new(vec!["t (us)", "who", "event", "mtx", "stage"]);
    for e in &result.report.trace {
        t.row(vec![
            format!("{}", e.at_us.saturating_sub(origin)),
            e.role.to_string(),
            format!("{:?}", e.kind),
            e.mtx.map_or(String::new(), |m| m.to_string()),
            e.stage.map_or(String::new(), |s| s.to_string()),
        ]);
    }
    format!(
        "Figure 3(c): execution model of the example loop on DSMTX\n\
         (workers run ahead; the try-commit and commit units trail off the\n\
         critical path; commits land in iteration order)\n\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// Figure 4 — performance scalability
// ---------------------------------------------------------------------

/// One benchmark's Figure 4 series.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Benchmark name.
    pub name: String,
    /// The paradigm label of the best DSMTX plan.
    pub paradigm: String,
    /// `(cores, dsmtx speedup, tls speedup)` points.
    pub points: Vec<(u32, f64, f64)>,
}

/// Computes the Figure 4 curves for all benchmarks at `core_counts`, plus
/// a final geomean row.
pub fn fig4_data(core_counts: &[u32]) -> Vec<Fig4Row> {
    let engine = SimEngine::default();
    let mut rows: Vec<Fig4Row> = all_kernels()
        .iter()
        .map(|k| {
            let profile = k.profile();
            let curve = speedup_curve(&engine, &profile, core_counts);
            Fig4Row {
                name: profile.name.clone(),
                paradigm: k.info().paradigm.to_string(),
                points: curve.iter().map(|p| (p.cores, p.dsmtx, p.tls)).collect(),
            }
        })
        .collect();
    let geomean_points: Vec<(u32, f64, f64)> = (0..core_counts.len())
        .map(|i| {
            let d: Vec<f64> = rows.iter().map(|r| r.points[i].1).collect();
            let t: Vec<f64> = rows.iter().map(|r| r.points[i].2).collect();
            (core_counts[i], geomean(&d), geomean(&t))
        })
        .collect();
    rows.push(Fig4Row {
        name: "geomean".into(),
        paradigm: "DSMTX best / TLS".into(),
        points: geomean_points,
    });
    rows
}

/// Renders Figure 4 with the paper's 8..128 x-axis.
pub fn fig4_text() -> String {
    let cores = figure4_core_counts();
    let rows = fig4_data(&cores);
    let mut out =
        String::from("Figure 4: full-application speedup vs cores (DSMTX best plan / TLS)\n\n");
    for row in rows {
        out.push_str(&format!("({}) {}\n", row.name, row.paradigm));
        let mut t = Table::new(vec!["cores", "DSMTX", "TLS"]);
        for (c, d, tls) in &row.points {
            t.row(vec![c.to_string(), speedup(*d), speedup(*tls)]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// Figure 5(a) — bandwidth requirements
// ---------------------------------------------------------------------

/// Figure 5(a): per-application bandwidth at consecutive core counts
/// starting from each pipeline's minimum.
pub fn fig5a_text() -> String {
    let engine = SimEngine::default();
    let mut t = Table::new(vec!["benchmark", "cores", "bandwidth"]);
    for k in all_kernels() {
        let profile = k.profile();
        for (cores, bps) in bandwidth_series(&engine, &profile, 3) {
            t.row(vec![
                profile.name.clone(),
                cores.to_string(),
                bandwidth(bps),
            ]);
        }
    }
    format!(
        "Figure 5(a): bandwidth requirement per application\n\
         (bytes moved through DSMTX / execution time; three consecutive\n\
         core counts starting from the pipeline minimum)\n\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// Figure 5(b) — communication optimization
// ---------------------------------------------------------------------

/// Per-benchmark `(optimized, direct)` speedups at 128 cores.
pub fn fig5b_data() -> Vec<(String, f64, f64)> {
    all_kernels()
        .iter()
        .map(|k| {
            let profile = k.profile();
            let (on, off) = batching_comparison(&profile);
            (profile.name.clone(), on, off)
        })
        .collect()
}

/// Renders Figure 5(b) plus the §5.3 queue-throughput microbenchmark.
pub fn fig5b_text(with_real_queues: bool) -> String {
    let data = fig5b_data();
    let mut t = Table::new(vec!["benchmark", "optimized", "non-optimized"]);
    for (name, on, off) in &data {
        t.row(vec![name.clone(), speedup(*on), speedup(*off)]);
    }
    let on_g = geomean(&data.iter().map(|d| d.1).collect::<Vec<_>>());
    let off_g = geomean(&data.iter().map(|d| d.2).collect::<Vec<_>>());
    t.row(vec!["geomean".to_string(), speedup(on_g), speedup(off_g)]);
    let mut out = format!(
        "Figure 5(b): effect of batched communication at 128 cores\n\n{}",
        t.render()
    );
    if with_real_queues {
        let batched = crate::queuebench::measure_queue_throughput(400_000, 512);
        let direct = crate::queuebench::measure_queue_throughput(40_000, 1);
        out.push_str(&format!(
            "\n§5.3 queue microbenchmark (real threads, OpenMPI cost model):\n\
             batched ({} items/packet): {}\n\
             direct  (1 item/packet):   {}\n\
             (paper: 480.7 MB/s vs 13.1 MB/s)\n",
            batched.batch,
            bandwidth(batched.bytes_per_sec),
            bandwidth(direct.bytes_per_sec),
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Figure 6 — recovery overhead
// ---------------------------------------------------------------------

/// The six benchmarks of Figure 6.
pub const FIG6_BENCHMARKS: [&str; 6] = [
    "130.li",
    "197.parser",
    "256.bzip2",
    "crc32",
    "blackscholes",
    "swaptions",
];

/// Renders Figure 6: speedups with 0.1% misspeculation and the
/// ERM/FLQ/SEQ/RFP attribution.
pub fn fig6_text() -> String {
    let engine = SimEngine::default();
    let cores = [32u32, 64, 96, 128];
    let mut t = Table::new(vec![
        "benchmark",
        "cores",
        "clean",
        "MIS",
        "ERM%",
        "FLQ%",
        "SEQ%",
        "RFP%",
    ]);
    for name in FIG6_BENCHMARKS {
        let kernel = dsmtx_workloads::kernel_by_name(name).expect("known benchmark");
        let profile = kernel.profile();
        for pt in recovery_series(&engine, &profile, 0.001, &cores) {
            let r = pt.outcome.recovery;
            let total = r.total().max(1e-12);
            t.row(vec![
                name.to_string(),
                pt.cores.to_string(),
                speedup(pt.clean_speedup),
                speedup(pt.misspec_speedup),
                format!("{:.0}", 100.0 * r.erm / total),
                format!("{:.0}", 100.0 * r.flq / total),
                format!("{:.0}", 100.0 * r.seq / total),
                format!("{:.0}", 100.0 * r.rfp / total),
            ]);
        }
    }
    format!(
        "Figure 6: recovery overhead at a 0.1% misspeculation rate\n\
         (clean = no misspeculation; MIS = with misspeculation; the\n\
         remaining columns attribute the overhead)\n\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// Tables 1 and 2
// ---------------------------------------------------------------------

/// Table 1: the DSMTX library interface and where this reproduction
/// implements each operation.
pub fn table1_text() -> String {
    let rows: &[(&str, &str)] = &[
        (
            "DSMTX_Init / DSMTX_Finalize",
            "MtxSystem::run (setup/teardown)",
        ),
        ("mtx_newDSMTXsystem", "MtxSystem::new(&SystemConfig)"),
        ("mtx_deleteSMTXsystem", "Drop impls (RAII)"),
        ("mtx_spawn", "MtxSystem::run spawns one thread per worker"),
        (
            "mtx_commitUnit",
            "commit::CommitUnit (recovery_fun, commit_fun)",
        ),
        ("mtx_tryCommitUnit", "trycommit::TryCommitUnit"),
        ("mtx_produce", "WorkerCtx::produce / produce_to"),
        ("mtx_consume", "WorkerCtx::consume / consume_from"),
        ("mtx_begin", "WorkerCtx::begin"),
        ("mtx_end", "WorkerCtx::end"),
        ("mtx_writeTo", "WorkerCtx::write_no_forward"),
        ("mtx_writeAll", "WorkerCtx::write"),
        ("mtx_read", "WorkerCtx::read"),
        ("mtx_misspec", "WorkerCtx::misspec"),
        ("mtx_terminate", "IterOutcome::Exit"),
        (
            "mtx_doRecovery",
            "WorkerCtx::do_recovery (runtime-internal)",
        ),
        (
            "malloc/free hooks (UVA)",
            "WorkerCtx::heap (RegionAllocator)",
        ),
    ];
    let mut t = Table::new(vec!["paper operation", "this reproduction"]);
    for (a, b) in rows {
        t.row(vec![a.to_string(), b.to_string()]);
    }
    format!("Table 1: DSMTX library interface\n\n{}", t.render())
}

/// Table 2: benchmark details from the registry.
pub fn table2_text() -> String {
    let mut t = Table::new(vec![
        "benchmark",
        "suite",
        "description",
        "paradigm",
        "speculation",
    ]);
    for k in all_kernels() {
        let info = k.info();
        t.row(vec![
            info.name.to_string(),
            info.suite.to_string(),
            info.description.to_string(),
            info.paradigm.to_string(),
            info.speculation
                .iter()
                .map(|s| s.abbrev())
                .collect::<Vec<_>>()
                .join(","),
        ]);
    }
    format!("Table 2: benchmark details\n\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(points: &[(u32, f64, f64)], cores: u32) -> (f64, f64) {
        let p = points.iter().find(|p| p.0 == cores).expect("core count");
        (p.1, p.2)
    }

    /// The headline claim: geomean speedup ~49x for DSMTX vs ~15x for
    /// TLS-only at 128 cores. The reproduction must keep the winner and
    /// the rough magnitudes.
    #[test]
    fn fig4_headline_geomean_shape() {
        let rows = fig4_data(&[8, 32, 64, 128]);
        let gm = rows.last().unwrap();
        assert_eq!(gm.name, "geomean");
        let (d128, t128) = at(&gm.points, 128);
        assert!((30.0..70.0).contains(&d128), "DSMTX geomean {d128}");
        assert!((10.0..25.0).contains(&t128), "TLS geomean {t128}");
        assert!(d128 > 2.0 * t128, "DSMTX must beat TLS decisively");
        // Scaling: geomean grows from 8 to 128 cores.
        let (d8, _) = at(&gm.points, 8);
        assert!(d128 > 4.0 * d8);
    }

    /// Per-benchmark qualitative claims from §5.2.
    #[test]
    fn fig4_per_benchmark_shapes() {
        let rows = fig4_data(&[8, 32, 52, 64, 128]);
        let row = |name: &str| rows.iter().find(|r| r.name == name).unwrap();

        // 256.bzip2: TLS slightly better (it ships only the descriptor).
        let (d, t) = at(&row("256.bzip2").points, 128);
        assert!(
            t > 0.9 * d && t < 1.5 * d,
            "bzip2 TLS slightly better: {d} vs {t}"
        );

        // 456.hmmer: Spec-DSWP scales to higher core counts than TLS.
        let (d, t) = at(&row("456.hmmer").points, 128);
        assert!(d > 1.4 * t, "hmmer dswp {d} vs tls {t}");

        // blackscholes: TLS peaks around 52 cores and declines.
        let bs = &row("blackscholes").points;
        let (_, t52) = at(bs, 52);
        let (_, t128) = at(bs, 128);
        assert!(t52 > t128, "blackscholes TLS peaks mid-range");

        // 464.h264ref: TLS is effectively serialized.
        let (d, t) = at(&row("464.h264ref").points, 128);
        assert!(t < 3.0, "h264 TLS serialized: {t}");
        assert!(d > 20.0, "h264 DSMTX scales to the GoP count: {d}");

        // 164.gzip: bandwidth-limited, modest plateau.
        let gz = &row("164.gzip").points;
        let (d32, _) = at(gz, 32);
        let (d128, _) = at(gz, 128);
        assert!(d128 < 1.3 * d32, "gzip plateaus: {d32} vs {d128}");

        // 130.li: TLS flatlines from the print synchronization.
        let (d, t) = at(&row("130.li").points, 128);
        assert!(d > 3.0 * t, "li print sync cripples TLS: {d} vs {t}");

        // 052.alvinn and swaptions: both parallelizations identical.
        for name in ["052.alvinn", "swaptions"] {
            for (_, d, t) in &row(name).points {
                assert!((d - t).abs() < 1e-9, "{name} plans coincide");
            }
        }
    }

    /// Figure 5(a): gzip has the highest bandwidth demand of the suite.
    #[test]
    fn fig5a_gzip_tops_bandwidth() {
        let engine = SimEngine::default();
        let mut best = ("".to_string(), 0.0f64);
        for k in all_kernels() {
            let p = k.profile();
            let series = bandwidth_series(&engine, &p, 3);
            let peak = series.iter().map(|s| s.1).fold(0.0, f64::max);
            if peak > best.1 {
                best = (p.name.clone(), peak);
            }
            // Bandwidth grows (or stays flat) with cores for each app.
            assert!(series[2].1 >= series[0].1 * 0.8, "{}", p.name);
        }
        assert_eq!(best.0, "164.gzip", "gzip tops at {:.1e} B/s", best.1);
    }

    /// Figure 5(b): batching never hurts and lifts the geomean; the
    /// chunked-data apps (alvinn/gzip/bzip2) see no benefit because their
    /// data is already produced as chunks (§5.3), while communication-
    /// intensive fine-grained apps (parser, art) gain a lot.
    #[test]
    fn fig5b_batching_helps() {
        let data = fig5b_data();
        let get = |name: &str| {
            data.iter()
                .find(|d| d.0 == name)
                .map(|d| (d.1, d.2))
                .expect("benchmark present")
        };
        for (name, on, off) in &data {
            assert!(*on >= *off * 0.999, "{name}: {on} vs {off}");
        }
        for name in ["052.alvinn", "164.gzip", "256.bzip2"] {
            let (on, off) = get(name);
            assert!(off > 0.95 * on, "{name} already chunked: {on} vs {off}");
        }
        for name in ["197.parser", "179.art"] {
            let (on, off) = get(name);
            assert!(on > 2.0 * off, "{name} gains from batching: {on} vs {off}");
        }
        let on_g = geomean(&data.iter().map(|d| d.1).collect::<Vec<_>>());
        let off_g = geomean(&data.iter().map(|d| d.2).collect::<Vec<_>>());
        assert!(on_g > 1.25 * off_g, "geomean {on_g} vs {off_g}");
    }

    /// Figure 6: misspeculation always costs, and RFP dominates the
    /// attribution (the paper: "The RFP phase has the highest overhead").
    #[test]
    fn fig6_rfp_dominates() {
        let engine = SimEngine::default();
        let cores = [32u32, 128];
        let mut rfp_wins = 0usize;
        let mut total = 0usize;
        for name in FIG6_BENCHMARKS {
            let k = dsmtx_workloads::kernel_by_name(name).unwrap();
            let p = k.profile();
            for pt in recovery_series(&engine, &p, 0.001, &cores) {
                assert!(pt.misspec_speedup < pt.clean_speedup, "{name}");
                let r = pt.outcome.recovery;
                assert!(r.episodes > 0, "{name}");
                total += 1;
                if r.rfp >= r.erm && r.rfp >= r.flq && r.rfp >= r.seq {
                    rfp_wins += 1;
                }
            }
        }
        assert!(
            rfp_wins * 2 >= total,
            "RFP dominates in most configurations ({rfp_wins}/{total})"
        );
    }

    #[test]
    fn fig1_reproduces_cycle_counts() {
        let text = fig1_text();
        assert!(text.contains("DOACROSS (cycles/iter: 2)"));
        assert!(text.contains("DOACROSS (cycles/iter: 3)"));
        assert!(!text.contains("DSWP (cycles/iter: 3)"));
    }

    #[test]
    fn fig3_trace_commits_in_order() {
        let text = fig3_text();
        assert!(text.contains("Committed"));
        assert!(text.contains("try-commit"));
    }

    #[test]
    fn tables_render() {
        assert!(table1_text().contains("mtx_writeAll"));
        let t2 = table2_text();
        assert!(t2.contains("Spec-DSWP+[S,DOALL,S]"));
        assert!(t2.contains("456.hmmer"));
        assert!(taxonomy_text().contains("DSMTX"));
    }
}
