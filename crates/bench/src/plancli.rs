//! The `repro plan` section: runs the auto-partitioner over registry
//! workloads, renders the candidate ranking and the auto-vs-hand diff,
//! and (with `--apply`) executes the top-ranked auto plan through the
//! real runtime and certifies its observed conflicts against its own
//! predicted superset.
//!
//! `--workload W` picks one Table 2 kernel by name (default: all
//! eleven); `--format text|jsonl` picks the rendering. The process exit
//! code is the CI gate: a workload for which the planner cannot emit a
//! single lint-clean candidate, or (under `--apply`) an auto plan whose
//! observed conflicts escape its predicted pages, is a failure.

use std::fmt::Write as _;

use dsmtx_analyze::{auto_plan, certify, export_plan_metrics, render_plan_jsonl, render_plan_text};
use dsmtx_obs::{json, schema, Registry};
use dsmtx_workloads::{all_kernels, kernel_by_name, Scale};

use crate::analyzecli::AnalyzeFormat;

/// Worker replicas per parallel stage of an applied auto plan.
const APPLY_REPLICAS: u16 = 2;
/// Try-commit shards the applied auto plan runs with.
const APPLY_SHARDS: usize = 2;

/// The rendered report plus whether the gate failed.
#[derive(Debug)]
pub struct PlanCliOutcome {
    /// Rendered output in the requested format.
    pub output: String,
    /// Whether `repro plan` should exit nonzero.
    pub gate_failed: bool,
}

/// Plans `workload` (a Table 2 name, or `"all"`) at the test scale and
/// renders the result; with `apply`, also runs each top-ranked auto plan
/// through the real runtime and certifies it.
///
/// # Errors
///
/// Unknown workload name, a kernel failing to rebuild its plan, or a
/// runtime failure while applying a candidate.
pub fn run_plan(
    workload: &str,
    format: AnalyzeFormat,
    apply: bool,
) -> Result<PlanCliOutcome, String> {
    let kernels = if workload == "all" {
        all_kernels()
    } else {
        vec![kernel_by_name(workload).ok_or_else(|| {
            let names: Vec<&str> = all_kernels().iter().map(|k| k.info().name).collect();
            format!("unknown workload `{workload}`; known: {}", names.join(", "))
        })?]
    };

    let reg = Registry::new();
    let mut out = String::new();
    let mut summaries = Vec::new();
    let mut gate_failed = false;
    for k in &kernels {
        let name = k.info().name;
        let mut plan = k.plan(Scale::test()).map_err(|e| format!("{name}: {e}"))?;
        let outcome = auto_plan(&mut plan);
        export_plan_metrics(&reg, &outcome);
        let picked = match outcome.best() {
            Some(best) => best.name,
            None => {
                gate_failed = true;
                "none"
            }
        };
        match format {
            AnalyzeFormat::Text => {
                let _ = write!(out, "{}", render_plan_text(&outcome));
            }
            AnalyzeFormat::Jsonl => {
                let _ = write!(out, "{}", render_plan_jsonl(&outcome));
            }
        }

        let mut apply_note = String::new();
        if apply {
            if let Some(best) = outcome.best() {
                let fresh = k.plan(Scale::test()).map_err(|e| format!("{name}: {e}"))?;
                let result = dsmtx_analyze::run_candidate(
                    best,
                    &outcome.raw_iters,
                    fresh,
                    APPLY_REPLICAS,
                    APPLY_SHARDS,
                )
                .map_err(|e| format!("{name}: applying `{}`: {e}", best.name))?;
                let observed = result.report.conflict_pages();
                let cert = certify(&best.report, &observed, APPLY_SHARDS);
                let hand = k
                    .run_reported(APPLY_REPLICAS, APPLY_SHARDS, Scale::test())
                    .map_err(|e| format!("{name}: hand plan: {e}"))?;
                let shards = APPLY_SHARDS.to_string();
                let labels = [("workload", name), ("shards", shards.as_str())];
                reg.counter(schema::PLAN_APPLY_CONFLICTS, &labels)
                    .add(result.report.validation_conflicts);
                reg.counter(schema::PLAN_APPLY_UNPREDICTED, &labels)
                    .add(cert.unpredicted.len() as u64);
                gate_failed |= !cert.holds();
                match format {
                    AnalyzeFormat::Text => {
                        let _ = writeln!(
                            out,
                            "apply `{}`: committed {}  conflicts {} (auto) vs {} (hand)  \
                             certified observed ⊆ predicted: {}",
                            best.name,
                            result.report.total_iterations(),
                            result.report.validation_conflicts,
                            hand.report.validation_conflicts,
                            if cert.holds() { "ok" } else { "FAIL" }
                        );
                    }
                    AnalyzeFormat::Jsonl => {
                        let _ = writeln!(
                            out,
                            "{{\"record\":\"plan_apply\",\"workload\":{},\"candidate\":{},\
                             \"shards\":{},\"committed\":{},\"auto_conflicts\":{},\
                             \"hand_conflicts\":{},\"unpredicted_pages\":{},\"holds\":{}}}",
                            json::string(name),
                            json::string(best.name),
                            APPLY_SHARDS,
                            result.report.total_iterations(),
                            result.report.validation_conflicts,
                            hand.report.validation_conflicts,
                            cert.unpredicted.len(),
                            cert.holds()
                        );
                    }
                }
                let _ = write!(
                    apply_note,
                    "  auto_conflicts {} hand_conflicts {} cert {}",
                    result.report.validation_conflicts,
                    hand.report.validation_conflicts,
                    if cert.holds() { "ok" } else { "FAIL" }
                );
            }
        }
        if matches!(format, AnalyzeFormat::Text) {
            out.push('\n');
        }
        summaries.push(format!(
            "{name:<16} picked {picked:<10} candidates {} rejected {} agree {}/{}{apply_note}",
            outcome.candidates.len(),
            outcome.rejected.len(),
            outcome.diff.agreements,
            outcome.diff.total,
        ));
    }
    match format {
        AnalyzeFormat::Text => {
            let _ = writeln!(out, "== plan roll-up ==");
            for s in &summaries {
                let _ = writeln!(out, "{s}");
            }
            let _ = writeln!(
                out,
                "gate: {}",
                if gate_failed {
                    "FAIL (no viable auto plan, or observed conflicts escaped the prediction)"
                } else {
                    "ok"
                }
            );
        }
        AnalyzeFormat::Jsonl => {
            let _ = write!(out, "{}", reg.to_jsonl());
        }
    }
    Ok(PlanCliOutcome {
        output: out,
        gate_failed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_every_registry_workload() {
        let outcome = run_plan("all", AnalyzeFormat::Text, false).expect("plan all");
        for k in all_kernels() {
            assert!(
                outcome.output.contains(k.info().name),
                "missing {}",
                k.info().name
            );
        }
        assert!(outcome.output.contains("plan roll-up"));
        assert!(
            !outcome.gate_failed,
            "every workload must yield a viable auto plan:\n{}",
            outcome.output
        );
    }

    #[test]
    fn jsonl_rows_parse_and_carry_metrics() {
        let outcome = run_plan("crc32", AnalyzeFormat::Jsonl, false).expect("plan crc32");
        let mut saw_plan = false;
        let mut saw_metric = false;
        for line in outcome.output.lines() {
            dsmtx_obs::json::validate(line).expect("row parses");
            saw_plan |= line.contains("\"record\":\"plan\"");
            saw_metric |= line.contains("plan.candidates");
        }
        assert!(saw_plan && saw_metric);
    }

    #[test]
    fn apply_runs_and_certifies_one_workload() {
        let outcome = run_plan("crc32", AnalyzeFormat::Text, true).expect("plan --apply crc32");
        assert!(outcome.output.contains("apply `"), "{}", outcome.output);
        assert!(!outcome.gate_failed, "{}", outcome.output);
    }

    #[test]
    fn unknown_workload_is_a_helpful_error() {
        let err = run_plan("999.nonesuch", AnalyzeFormat::Text, false).unwrap_err();
        assert!(err.contains("unknown workload"));
        assert!(err.contains("crc32"), "lists the known names");
    }
}
