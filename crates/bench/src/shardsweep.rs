//! Real-runtime speculation-unit shard sweep (§3.2).
//!
//! The simulator's `unit_shard_sweep` predicts how much headroom
//! parallelizing the try-commit/commit units buys on a validation-heavy
//! workload. This module measures the same knob on the *real* runtime: a
//! validation-bound Spec-DOALL loop (each iteration scatters writes over
//! many pages, so program-order replay at the try-commit unit dominates)
//! is run at `unit_shards` 1, 2, and 4, and the measured scaling is
//! reported next to the simulator's prediction.
//!
//! The measured side is honest about hardware: shard threads only overlap
//! when the machine has spare cores, so the artifact records the core
//! count it ran on. On a single-core host the measured curve is flat and
//! the simulated column carries the scaling claim; CI regenerates the
//! artifact on multi-core runners.

use std::sync::Arc;
use std::time::Duration;

use dsmtx::{IterOutcome, MtxId, MtxSystem, Program, StageKind, SystemConfig, WorkerCtx};
use dsmtx_mem::MasterMem;
use dsmtx_sim::unit_shard_sweep_with;
use dsmtx_uva::{OwnerId, RegionAllocator};

use crate::format::Table;

/// Shard counts the sweep visits.
pub const SWEEP_SHARDS: [usize; 3] = [1, 2, 4];

/// One measured point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardRunPoint {
    /// Configured `unit_shards`.
    pub shards: usize,
    /// Wall-clock time of the parallel section, microseconds.
    pub elapsed_us: u64,
    /// Elapsed at `shards = 1` divided by elapsed at this point.
    pub speedup: f64,
}

/// The full sweep: measured points plus the simulator's prediction for
/// the same knob.
#[derive(Debug, Clone)]
pub struct ShardSweep {
    /// Iterations per run.
    pub iters: u64,
    /// Scattered writes per iteration (the validation load).
    pub writes_per_iter: u64,
    /// Cores available to this process when the sweep ran.
    pub cores: usize,
    /// Real-runtime measurements.
    pub measured: Vec<ShardRunPoint>,
    /// Simulated `(shards, speedup-relative-to-one-shard)` on the
    /// validation-heavy profile, 128 simulated cores.
    pub simulated: Vec<(u32, f64)>,
}

/// Runs the validation-bound DOALL once and returns the parallel-section
/// wall-clock time.
///
/// Three replicas each execute iterations that read one input word and
/// scatter `writes_per_iter` stores column-major across the data region —
/// every iteration touches `writes_per_iter` distinct pages (for
/// `iters >= 512`), so the per-MTX access stream is long and its replay
/// partitions evenly across try-commit shards.
pub fn run_validation_bound(iters: u64, writes_per_iter: u64, shards: usize) -> Duration {
    let mut heap = RegionAllocator::new(OwnerId(0));
    let input = heap.alloc_words(iters).expect("alloc");
    let data = heap.alloc_words(iters * writes_per_iter).expect("alloc");
    let mut master = MasterMem::new();
    for i in 0..iters {
        master.write(input.add_words(i), i.wrapping_mul(0x9E37_79B9) | 1);
    }

    let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        let x = ctx.read(input.add_words(mtx.0))?;
        for k in 0..writes_per_iter {
            // Column-major: write k of iteration i lands on page k (for
            // iters >= one page), spreading each MTX across the page
            // space.
            ctx.write_no_forward(data.add_words(k * iters + mtx.0), x.wrapping_add(k))?;
        }
        Ok(IterOutcome::Continue)
    });
    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Parallel { replicas: 3 })
        .unit_shards(shards);
    let result = MtxSystem::new(&cfg)
        .expect("config")
        .run(Program {
            master,
            stages: vec![body],
            recovery: Box::new(move |mtx, m| {
                let x = m.read(input.add_words(mtx.0));
                for k in 0..writes_per_iter {
                    m.write(data.add_words(k * iters + mtx.0), x.wrapping_add(k));
                }
                IterOutcome::Continue
            }),
            on_commit: None,
            iteration_limit: Some(iters),
        })
        .expect("run");
    assert_eq!(result.report.total_iterations(), iters, "lost iterations");
    result.report.elapsed
}

/// Runs the measured sweep and attaches the simulator's prediction.
///
/// Rounds are interleaved — each round visits every shard count
/// back-to-back, and each point keeps its best round — so a load spike
/// on a shared host penalizes all configurations alike instead of
/// skewing whichever block it happened to land on. Single runs on an
/// oversubscribed host vary by 2x+; the per-point minimum is the stable
/// estimate of the true cost.
pub fn run_shard_sweep(iters: u64, writes_per_iter: u64, max_shards: usize) -> ShardSweep {
    let shard_counts: Vec<usize> = SWEEP_SHARDS
        .iter()
        .copied()
        .filter(|&s| s <= max_shards.max(1))
        .collect();
    let mut best_us = vec![u64::MAX; shard_counts.len()];
    for _round in 0..3 {
        for (i, &shards) in shard_counts.iter().enumerate() {
            let t = run_validation_bound(iters, writes_per_iter, shards);
            best_us[i] = best_us[i].min((t.as_micros() as u64).max(1));
        }
    }
    let base_us = best_us[0];
    let measured = shard_counts
        .iter()
        .zip(&best_us)
        .map(|(&shards, &elapsed_us)| ShardRunPoint {
            shards,
            elapsed_us,
            speedup: base_us as f64 / elapsed_us as f64,
        })
        .collect();

    // The simulator's §3.2 prediction on the validation-heavy parser
    // variant (same tweak as the ablation report), normalized to one
    // shard so both columns read as relative scaling. The measured runs
    // above shipped the compacted validation plane, so the model gets the
    // measured compaction factor too.
    let profile = crate::valplane::validation_heavy_profile();
    let vc = crate::valplane::measured_compaction_factor();
    let sim_shards: Vec<u32> = shard_counts.iter().map(|&s| s as u32).collect();
    let pts = unit_shard_sweep_with(&profile, 128, &sim_shards, vc);
    let sim_base = pts.first().map_or(1.0, |p| p.speedup);
    let simulated = pts
        .iter()
        .map(|p| (p.shards, p.speedup / sim_base))
        .collect();

    ShardSweep {
        iters,
        writes_per_iter,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        measured,
        simulated,
    }
}

/// Renders the sweep as a text table for the `repro` binary.
pub fn shard_sweep_text(s: &ShardSweep) -> String {
    let mut t = Table::new(vec![
        "unit shards",
        "elapsed (us)",
        "measured x",
        "simulated x",
    ]);
    for (i, p) in s.measured.iter().enumerate() {
        let sim = s.simulated.get(i).map_or(1.0, |&(_, x)| x);
        t.row(vec![
            p.shards.to_string(),
            p.elapsed_us.to_string(),
            format!("{:.2}", p.speedup),
            format!("{:.2}", sim),
        ]);
    }
    let caveat = if s.cores <= 2 {
        "\nCAVEAT: this host has too few cores for shard threads to \
         overlap —\nthe measured column reflects scheduling overhead, not \
         parallel scaling;\nonly the simulated column carries the scaling \
         claim here.\n"
    } else {
        ""
    };
    format!(
        "Real-runtime speculation-unit shard sweep (§3.2)\n\
         validation-bound DOALL: {} iters x {} scattered writes, {} core(s)\n\
         (shard threads only overlap with spare cores; the simulated\n\
         column is the 128-core prediction, both normalized to 1 shard)\n{}\n{}",
        s.iters,
        s.writes_per_iter,
        s.cores,
        caveat,
        t.render()
    )
}

/// Serializes the sweep as the `BENCH_shard_sweep.json` artifact.
pub fn shard_sweep_json(s: &ShardSweep) -> String {
    let measured: Vec<String> = s
        .measured
        .iter()
        .map(|p| {
            format!(
                r#"{{"shards":{},"elapsed_us":{},"speedup":{:.4}}}"#,
                p.shards, p.elapsed_us, p.speedup
            )
        })
        .collect();
    let simulated: Vec<String> = s
        .simulated
        .iter()
        .map(|&(shards, x)| format!(r#"{{"shards":{shards},"speedup":{x:.4}}}"#))
        .collect();
    format!(
        concat!(
            r#"{{"bench":"shard_sweep","workload":"validation_bound_doall","#,
            r#""iters":{},"writes_per_iter":{},"cores":{},"#,
            r#""measured":[{}],"simulated":[{}]}}"#
        ),
        s.iters,
        s.writes_per_iter,
        s.cores,
        measured.join(","),
        simulated.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_bound_run_completes_at_every_shard_count() {
        for shards in SWEEP_SHARDS {
            let elapsed = run_validation_bound(64, 8, shards);
            assert!(elapsed.as_nanos() > 0);
        }
    }

    #[test]
    fn sweep_json_is_valid_and_complete() {
        let sweep = run_shard_sweep(64, 8, 4);
        assert_eq!(sweep.measured.len(), 3);
        assert_eq!(sweep.simulated.len(), 3);
        assert!(sweep.cores >= 1);
        assert!((sweep.measured[0].speedup - 1.0).abs() < 1e-9);
        assert!((sweep.simulated[0].1 - 1.0).abs() < 1e-9);
        // The simulator must predict headroom from sharding on the
        // validation-heavy profile.
        assert!(
            sweep.simulated[2].1 > 1.0,
            "sim predicts {:.2}x at 4 shards",
            sweep.simulated[2].1
        );

        let json = shard_sweep_json(&sweep);
        dsmtx_obs::json::validate(&json).expect("valid JSON artifact");
        assert!(json.contains(r#""bench":"shard_sweep""#));
        assert!(json.contains(r#""measured":"#));
        assert!(json.contains(r#""simulated":"#));

        let text = shard_sweep_text(&sweep);
        assert!(text.contains("shard sweep"));
        assert!(text.contains("unit shards"));
    }
}
