//! The `repro bench-check` section: regenerates every committed
//! `BENCH_*.json` baseline and compares the fresh run against it.
//!
//! Structure is checked strictly — same keys, same array lengths, same
//! strings — while numeric values get a generous tolerance band, since
//! the committed baselines are single-machine timing measurements. The
//! band still catches the regressions that matter: a metric collapsing
//! to zero, an order-of-magnitude slowdown, or a field disappearing
//! from the artifact.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Numbers within this multiplicative band pass (machine variance).
const BAND: f64 = 16.0;
/// Small absolute differences always pass (schedule-dependent counts).
const ABS_SLACK: f64 = 64.0;
/// Regeneration attempts before a baseline is declared drifted. Timing
/// means of a few µs can jitter past any reasonable band on one
/// unlucky schedule; real regressions (collapse, structural drift)
/// reproduce on every attempt.
const REGEN_ATTEMPTS: usize = 3;

/// A parsed JSON value (just enough for baseline comparison).
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// null
    Null,
    /// true/false
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Val>),
    /// An object; key order is irrelevant to comparison.
    Obj(BTreeMap<String, Val>),
}

/// Parses one JSON document.
///
/// # Errors
///
/// Malformed JSON (the strict subset `dsmtx_obs::json::validate`
/// accepts).
pub fn parse(s: &str) -> Result<Val, String> {
    dsmtx_obs::json::validate(s)?;
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    Ok(value(bytes, &mut pos))
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

// Validation already ran, so parsing can assume well-formed input.
fn value(b: &[u8], pos: &mut usize) -> Val {
    match b[*pos] {
        b'{' => {
            *pos += 1;
            let mut map = BTreeMap::new();
            loop {
                skip_ws(b, pos);
                if b[*pos] == b'}' {
                    *pos += 1;
                    return Val::Obj(map);
                }
                let key = match string_lit(b, pos) {
                    Val::Str(s) => s,
                    _ => unreachable!("object keys are strings"),
                };
                skip_ws(b, pos);
                *pos += 1; // ':'
                skip_ws(b, pos);
                map.insert(key, value(b, pos));
                skip_ws(b, pos);
                if b[*pos] == b',' {
                    *pos += 1;
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            loop {
                skip_ws(b, pos);
                if b[*pos] == b']' {
                    *pos += 1;
                    return Val::Arr(items);
                }
                items.push(value(b, pos));
                skip_ws(b, pos);
                if b[*pos] == b',' {
                    *pos += 1;
                }
            }
        }
        b'"' => string_lit(b, pos),
        b't' => {
            *pos += 4;
            Val::Bool(true)
        }
        b'f' => {
            *pos += 5;
            Val::Bool(false)
        }
        b'n' => {
            *pos += 4;
            Val::Null
        }
        _ => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).expect("validated ascii");
            Val::Num(text.parse().expect("validated number"))
        }
    }
}

fn string_lit(b: &[u8], pos: &mut usize) -> Val {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Val::Str(out);
            }
            b'\\' => {
                *pos += 1;
                match b[*pos] {
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5]).expect("hex");
                        let code = u32::from_str_radix(hex, 16).expect("validated escape");
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    c => out.push(c as char),
                }
                *pos += 1;
            }
            _ => {
                let start = *pos;
                while b[*pos] != b'"' && b[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).expect("validated utf8"));
            }
        }
    }
}

/// Whether a fresh number is inside the tolerance band of the baseline.
fn number_ok(base: f64, fresh: f64) -> bool {
    if base == fresh {
        return true;
    }
    if (base - fresh).abs() <= ABS_SLACK {
        return true;
    }
    let (lo, hi) = if base.abs() < fresh.abs() {
        (base.abs(), fresh.abs())
    } else {
        (fresh.abs(), base.abs())
    };
    base.signum() == fresh.signum() && lo > 0.0 && hi / lo <= BAND
}

/// Compares a fresh artifact against a committed baseline; appends one
/// message per violation, prefixed with the JSON path.
pub fn compare(base: &Val, fresh: &Val, path: &str, violations: &mut Vec<String>) {
    match (base, fresh) {
        (Val::Obj(b), Val::Obj(f)) => {
            for key in b.keys() {
                if !f.contains_key(key) {
                    violations.push(format!("{path}.{key}: missing from fresh run"));
                }
            }
            for key in f.keys() {
                if !b.contains_key(key) {
                    violations.push(format!("{path}.{key}: not in baseline"));
                }
            }
            for (key, bv) in b {
                if let Some(fv) = f.get(key) {
                    compare(bv, fv, &format!("{path}.{key}"), violations);
                }
            }
        }
        (Val::Arr(b), Val::Arr(f)) => {
            if b.len() != f.len() {
                violations.push(format!(
                    "{path}: baseline has {} element(s), fresh has {}",
                    b.len(),
                    f.len()
                ));
            }
            for (i, (bv, fv)) in b.iter().zip(f).enumerate() {
                compare(bv, fv, &format!("{path}[{i}]"), violations);
            }
        }
        (Val::Num(b), Val::Num(f)) => {
            if !number_ok(*b, *f) {
                violations.push(format!(
                    "{path}: {f} outside tolerance of baseline {b} \
                     (band x{BAND}, slack {ABS_SLACK})"
                ));
            }
        }
        (b, f) => {
            if b != f {
                violations.push(format!("{path}: fresh {f:?} != baseline {b:?}"));
            }
        }
    }
}

fn get_num(v: &Val, key: &str) -> Option<f64> {
    match v {
        Val::Obj(m) => match m.get(key) {
            Some(Val::Num(n)) => Some(*n),
            _ => None,
        },
        _ => None,
    }
}

/// Regenerates the artifact a baseline file describes, using the
/// baseline's own parameters so deterministic fields reproduce exactly.
fn regenerate(name: &str, base: &Val) -> Result<String, String> {
    match name {
        "BENCH_shard_sweep.json" => {
            let iters = get_num(base, "iters").unwrap_or(512.0) as u64;
            let writes = get_num(base, "writes_per_iter").unwrap_or(32.0) as u64;
            let max_shards = match base {
                Val::Obj(m) => match m.get("measured") {
                    Some(Val::Arr(rows)) => rows
                        .iter()
                        .filter_map(|r| get_num(r, "shards"))
                        .fold(1.0, f64::max) as usize,
                    _ => 4,
                },
                _ => 4,
            };
            let sweep = crate::shardsweep::run_shard_sweep(iters, writes, max_shards);
            Ok(crate::shardsweep::shard_sweep_json(&sweep))
        }
        "BENCH_valplane.json" => {
            let iters = get_num(base, "iters").unwrap_or(512.0) as u64;
            let writes = get_num(base, "writes_per_iter").unwrap_or(32.0) as u64;
            let sweep = crate::valplane::run_valplane_sweep(iters, writes);
            Ok(crate::valplane::valplane_json(&sweep))
        }
        "BENCH_mtx_lifecycle.json" => {
            let shards: Vec<usize> = match base {
                Val::Obj(m) => match m.get("rows") {
                    Some(Val::Arr(rows)) => rows
                        .iter()
                        .filter_map(|r| get_num(r, "shards"))
                        .map(|s| s as usize)
                        .collect(),
                    _ => vec![1, 2, 4],
                },
                _ => vec![1, 2, 4],
            };
            let rows = crate::why::run_mtx_lifecycle(&shards)?;
            Ok(crate::why::mtx_lifecycle_json(&rows))
        }
        other => Err(format!("no generator for baseline `{other}`")),
    }
}

/// Baselines `bench-check` knows how to regenerate.
pub const BASELINES: [&str; 3] = [
    "BENCH_shard_sweep.json",
    "BENCH_valplane.json",
    "BENCH_mtx_lifecycle.json",
];

/// The check's report plus whether it should fail the CI gate.
#[derive(Debug)]
pub struct BenchCheckOutcome {
    /// Human-readable per-baseline report.
    pub output: String,
    /// Whether any baseline is missing or outside tolerance.
    pub failed: bool,
}

/// Checks every known baseline in `dir` against a fresh run.
pub fn run_bench_check(dir: &Path) -> BenchCheckOutcome {
    let mut out = String::new();
    let mut failed = false;
    let _ = writeln!(out, "== bench-check: fresh runs vs committed baselines ==");
    for name in BASELINES {
        let path = dir.join(name);
        let committed = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                let _ = writeln!(out, "{name:<28} MISSING ({e})");
                failed = true;
                continue;
            }
        };
        let base = match parse(&committed) {
            Ok(v) => v,
            Err(e) => {
                let _ = writeln!(out, "{name:<28} UNPARSEABLE baseline: {e}");
                failed = true;
                continue;
            }
        };
        let mut violations = Vec::new();
        let mut regen_err = None;
        let mut attempts = 0;
        for attempt in 1..=REGEN_ATTEMPTS {
            attempts = attempt;
            match regenerate(name, &base) {
                Ok(doc) => {
                    let fresh = parse(&doc).expect("generators emit valid JSON");
                    violations.clear();
                    compare(&base, &fresh, "$", &mut violations);
                    if violations.is_empty() {
                        break;
                    }
                }
                Err(e) => {
                    regen_err = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = regen_err {
            let _ = writeln!(out, "{name:<28} REGEN FAILED: {e}");
            failed = true;
            continue;
        }
        if violations.is_empty() {
            if attempts == 1 {
                let _ = writeln!(out, "{name:<28} ok");
            } else {
                let _ = writeln!(out, "{name:<28} ok (attempt {attempts}/{REGEN_ATTEMPTS})");
            }
        } else {
            failed = true;
            let _ = writeln!(
                out,
                "{name:<28} FAIL ({} violation(s), persisted over {REGEN_ATTEMPTS} regeneration(s))",
                violations.len()
            );
            for v in &violations {
                let _ = writeln!(out, "    {v}");
            }
        }
    }
    let _ = writeln!(out, "gate: {}", if failed { "FAIL" } else { "ok" });
    BenchCheckOutcome {
        output: out,
        failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,-2.5,{"b":"c\nd"}],"e":true,"f":null}"#).unwrap();
        let Val::Obj(m) = &v else { panic!("object") };
        assert_eq!(m["e"], Val::Bool(true));
        assert_eq!(m["f"], Val::Null);
        let Val::Arr(a) = &m["a"] else {
            panic!("array")
        };
        assert_eq!(a[0], Val::Num(1.0));
        assert_eq!(a[1], Val::Num(-2.5));
        let Val::Obj(inner) = &a[2] else {
            panic!("inner")
        };
        assert_eq!(inner["b"], Val::Str("c\nd".into()));
    }

    #[test]
    fn tolerance_band_accepts_timing_noise_and_rejects_collapse() {
        assert!(number_ok(29014.0, 8000.0), "3.6x variance passes");
        assert!(number_ok(0.87, 1.5), "small diffs pass via slack");
        assert!(number_ok(0.0, 0.0));
        assert!(!number_ok(29014.0, 0.0), "metric collapsing to zero fails");
        assert!(!number_ok(100.0, 5000.0), "order-of-magnitude excess fails");
    }

    #[test]
    fn compare_flags_structural_drift() {
        let base = parse(r#"{"bench":"x","rows":[{"a":1},{"a":2}],"n":10}"#).unwrap();
        let fresh = parse(r#"{"bench":"y","rows":[{"a":1}],"m":10}"#).unwrap();
        let mut v = Vec::new();
        compare(&base, &fresh, "$", &mut v);
        let text = v.join("\n");
        assert!(text.contains("$.n: missing"), "{text}");
        assert!(text.contains("$.m: not in baseline"), "{text}");
        assert!(text.contains("$.rows: baseline has 2"), "{text}");
        assert!(text.contains("$.bench"), "{text}");
    }

    #[test]
    fn identical_artifacts_pass() {
        let base = parse(r#"{"a":1,"b":[true,"s"]}"#).unwrap();
        let mut v = Vec::new();
        compare(&base, &base.clone(), "$", &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn missing_baseline_dir_fails_cleanly() {
        let outcome = run_bench_check(Path::new("/nonexistent-bench-dir"));
        assert!(outcome.failed);
        assert!(outcome.output.contains("MISSING"));
    }
}
