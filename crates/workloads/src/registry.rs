//! Registry of all reproduced benchmarks (Table 2 order).

use crate::common::Kernel;

/// All eleven reproduced benchmarks, in Table 2 order.
pub fn all_kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(crate::alvinn::Alvinn),
        Box::new(crate::li::Li),
        Box::new(crate::gzip::Gzip),
        Box::new(crate::art::Art),
        Box::new(crate::parser::Parser),
        Box::new(crate::bzip2::Bzip2),
        Box::new(crate::hmmer::Hmmer),
        Box::new(crate::h264ref::H264Ref),
        Box::new(crate::crc32::Crc32),
        Box::new(crate::blackscholes::BlackScholes),
        Box::new(crate::swaptions::Swaptions),
    ]
}

/// Looks up a kernel by its Table 2 name.
pub fn kernel_by_name(name: &str) -> Option<Box<dyn Kernel>> {
    all_kernels().into_iter().find(|k| k.info().name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_benchmarks_like_the_paper() {
        assert_eq!(all_kernels().len(), 11);
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let kernels = all_kernels();
        let names: std::collections::HashSet<_> = kernels.iter().map(|k| k.info().name).collect();
        assert_eq!(names.len(), 11);
        for name in names {
            assert!(kernel_by_name(name).is_some(), "{name}");
        }
        assert!(kernel_by_name("999.nonesuch").is_none());
    }

    #[test]
    fn every_profile_is_consistent() {
        for k in all_kernels() {
            k.profile().check();
        }
    }

    #[test]
    fn table2_metadata_is_complete() {
        for k in all_kernels() {
            let info = k.info();
            assert!(!info.suite.is_empty());
            assert!(!info.description.is_empty());
            assert!(!info.speculation.is_empty(), "{}", info.name);
        }
    }
}
