//! `130.li` — SPEC CINT95 lisp interpreter.
//!
//! Paper plan: `DSWP+[Spec-DOALL, S]`. The parallelization speculates
//! that each script is independent of the others — that it neither
//! changes the interpreter's environment nor exits the interpreter.
//! Environment accesses execute transactionally; control-flow speculation
//! breaks the program-exit dependence. The TLS baseline is limited by
//! synchronization on the print instruction (§5.2).
//!
//! Kernel: a stack-machine interpreter. Scripts are mostly pure; a rare
//! `SETENV` opcode mutates the shared environment (the speculated
//! dependence — later scripts' validated environment reads then manifest
//! it), and a rare `EXIT` opcode ends the whole loop under control
//! speculation.

use std::sync::Arc;

use dsmtx::{
    IterOutcome, MtxId, RecoveryFn, Region, RunResult, StageId, StageRole, StageSpec, WorkerCtx,
};
use dsmtx_mem::MasterMem;
use dsmtx_paradigms::paradigm::StageLabel;
use dsmtx_paradigms::{Paradigm, Pipeline, SpecKind, Tls, Tuning};
use dsmtx_sim::{
    profile::{StageProfile, StageShape},
    TlsPlan, WorkloadProfile,
};
use dsmtx_uva::VAddr;

use crate::analysis::AnalysisPlan;
use crate::common::{
    load_words, master_heap, store_words, Kernel, KernelError, Mode, Scale, Stream, Table2Entry,
};

/// Environment cells.
pub const ENV_WORDS: u64 = 8;

/// Opcodes: a word is `op * 256 + arg`.
pub mod op {
    /// Push `arg`.
    pub const PUSH: u64 = 0;
    /// Pop two, push sum.
    pub const ADD: u64 = 1;
    /// Pop two, push product (wrapping, offset to avoid zeros).
    pub const MUL: u64 = 2;
    /// Push `env[arg % ENV_WORDS]`.
    pub const READENV: u64 = 3;
    /// `env[arg % ENV_WORDS] = top` (rare: the speculated mutation).
    pub const SETENV: u64 = 4;
    /// End of script; result is the stack top.
    pub const HALT: u64 = 5;
    /// End of the whole interpreter loop (rare: control speculation).
    pub const EXIT: u64 = 6;
}

/// What interpreting one script did.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct Eval {
    /// The script's printed result.
    pub result: u64,
    /// Environment writes `(index, value)` in order.
    pub env_writes: Vec<(u64, u64)>,
    /// True when the script exits the interpreter.
    pub exits: bool,
}

/// Interprets one script against the environment snapshot.
pub(crate) fn eval(script: &[u64], env: &[u64]) -> Eval {
    let mut env = env.to_vec();
    let mut stack: Vec<u64> = Vec::new();
    let mut writes = Vec::new();
    let mut exits = false;
    for &word in script {
        let (o, arg) = (word / 256, word % 256);
        match o {
            op::PUSH => stack.push(arg),
            op::ADD => {
                let b = stack.pop().unwrap_or(0);
                let a = stack.pop().unwrap_or(0);
                stack.push(a.wrapping_add(b));
            }
            op::MUL => {
                let b = stack.pop().unwrap_or(0);
                let a = stack.pop().unwrap_or(0);
                stack.push(a.wrapping_mul(b).wrapping_add(1));
            }
            op::READENV => stack.push(env[(arg % ENV_WORDS) as usize]),
            op::SETENV => {
                let v = stack.last().copied().unwrap_or(0);
                env[(arg % ENV_WORDS) as usize] = v;
                writes.push((arg % ENV_WORDS, v));
            }
            op::EXIT => {
                exits = true;
                break;
            }
            _ => break, // HALT or unknown
        }
    }
    Eval {
        result: stack.last().copied().unwrap_or(0),
        env_writes: writes,
        exits,
    }
}

/// Script corpus options.
#[derive(Debug, Clone, Copy)]
pub struct Corpus {
    /// Insert one `SETENV` script in the middle (manifests the speculated
    /// environment dependence).
    pub with_setenv: bool,
    /// End the run with an `EXIT` script at ~3/4 of the corpus (exercises
    /// loop-exit control speculation; the tail scripts are dead).
    pub with_exit: bool,
}

fn generate(scale: Scale, corpus: Corpus) -> (Vec<u64>, Vec<u64>) {
    let mut s = Stream::new(scale.seed ^ 0x130);
    let env: Vec<u64> = (0..ENV_WORDS).map(|_| 1 + s.below(100)).collect();
    let mut scripts = Vec::with_capacity((scale.iterations * scale.unit) as usize);
    for i in 0..scale.iterations {
        let mut script = Vec::with_capacity(scale.unit as usize);
        script.push(op::PUSH * 256 + s.below(200));
        while (script.len() as u64) < scale.unit - 1 {
            match s.below(5) {
                0 | 1 => script.push(op::PUSH * 256 + s.below(200)),
                2 => script.push(op::ADD * 256),
                3 => script.push(op::MUL * 256),
                _ => script.push(op::READENV * 256 + s.below(ENV_WORDS)),
            }
        }
        if corpus.with_setenv && i == scale.iterations / 2 {
            script[scale.unit as usize - 2] = op::SETENV * 256 + 3;
        }
        if corpus.with_exit && i == scale.iterations * 3 / 4 {
            script[scale.unit as usize - 2] = op::EXIT * 256;
        }
        script.push(op::HALT * 256);
        scripts.extend(script);
    }
    (env, scripts)
}

impl Corpus {
    /// The default corpus: pure scripts only.
    pub fn pure() -> Self {
        Corpus {
            with_setenv: false,
            with_exit: false,
        }
    }
}

/// Shared layout of the parallel runs. Allocation order is fixed, so
/// rebuilding it always yields the same bases — `plan()` and the runners
/// agree on addresses.
struct Layout {
    env_base: VAddr,
    s_base: VAddr,
    out_base: VAddr,
    count_cell: VAddr,
}

fn layout(scale: Scale) -> Result<Layout, KernelError> {
    let n = scale.iterations;
    let mut heap = master_heap();
    let env_base = heap
        .alloc_words(ENV_WORDS)
        .map_err(|e| KernelError(e.to_string()))?;
    let s_base = heap
        .alloc_words(n * scale.unit)
        .map_err(|e| KernelError(e.to_string()))?;
    let out_base = heap
        .alloc_words(n)
        .map_err(|e| KernelError(e.to_string()))?;
    let count_cell = heap
        .alloc_words(1)
        .map_err(|e| KernelError(e.to_string()))?;
    Ok(Layout {
        env_base,
        s_base,
        out_base,
        count_cell,
    })
}

fn initial_master(env0: &[u64], scripts: &[u64], lay: &Layout) -> MasterMem {
    let mut master = MasterMem::new();
    store_words(&mut master, lay.env_base, env0);
    store_words(&mut master, lay.s_base, scripts);
    master
}

fn recovery_fn(lay: &Layout, scale: Scale) -> RecoveryFn {
    let (env_base, s_base, out_base, count_cell) =
        (lay.env_base, lay.s_base, lay.out_base, lay.count_cell);
    let unit = scale.unit;
    Box::new(move |mtx: MtxId, master: &mut MasterMem| {
        let script = load_words(master, s_base.add_words(mtx.0 * unit), unit);
        let env = load_words(master, env_base, ENV_WORDS);
        let ev = eval(&script, &env);
        for (k, v) in &ev.env_writes {
            master.write(env_base.add_words(*k), *v);
        }
        master.write(out_base.add_words(mtx.0), ev.result);
        master.write(count_cell, mtx.0 + 1);
        if ev.exits {
            IterOutcome::Exit
        } else {
            IterOutcome::Continue
        }
    })
}

/// The li kernel.
#[derive(Debug, Default)]
pub struct Li;

impl Li {
    fn sequential(env0: &[u64], scripts: &[u64], scale: Scale) -> Vec<u64> {
        let mut env = env0.to_vec();
        let mut out = Vec::new();
        for i in 0..scale.iterations {
            let script = &scripts[(i * scale.unit) as usize..((i + 1) * scale.unit) as usize];
            let ev = eval(script, &env);
            for (k, v) in &ev.env_writes {
                env[*k as usize] = *v;
            }
            out.push(ev.result);
            if ev.exits {
                break;
            }
        }
        let count = out.len() as u64;
        out.push(count);
        out.extend(env);
        out
    }

    /// Runs with an explicit corpus shape.
    pub fn run_corpus(
        &self,
        mode: Mode,
        scale: Scale,
        corpus: Corpus,
    ) -> Result<Vec<u64>, KernelError> {
        if let Mode::Sequential = mode {
            let (env0, scripts) = generate(scale, corpus);
            return Ok(Self::sequential(&env0, &scripts, scale));
        }
        let lay = layout(scale)?;
        let result = self.result_corpus(mode, 1, scale, corpus)?;
        let count = result.master.read(lay.count_cell);
        let mut out = load_words(&result.master, lay.out_base, count);
        out.push(count);
        out.extend(load_words(&result.master, lay.env_base, ENV_WORDS));
        Ok(out)
    }

    /// The parallel paths, at an explicit try-commit shard count,
    /// returning the full run result.
    fn result_corpus(
        &self,
        mode: Mode,
        shards: usize,
        scale: Scale,
        corpus: Corpus,
    ) -> Result<RunResult, KernelError> {
        let (env0, scripts) = generate(scale, corpus);
        let n = scale.iterations;
        let unit = scale.unit;
        let lay = layout(scale)?;
        let master = initial_master(&env0, &scripts, &lay);
        let (env_base, s_base, out_base, count_cell) =
            (lay.env_base, lay.s_base, lay.out_base, lay.count_cell);
        let recovery = recovery_fn(&lay, scale);

        let eval_iter = move |ctx: &mut WorkerCtx, i: u64| -> Result<Eval, dsmtx::Interrupt> {
            let script: Vec<u64> = (0..unit)
                .map(|k| ctx.read_private(s_base.add_words(i * unit + k)))
                .collect::<Result<_, _>>()?;
            // Environment reads are validated: the "scripts are
            // independent" speculation.
            let env: Vec<u64> = (0..ENV_WORDS)
                .map(|k| ctx.read(env_base.add_words(k)))
                .collect::<Result<_, _>>()?;
            Ok(eval(&script, &env))
        };

        // `iteration_limit: None` — termination rides on the speculated
        // EXIT path (or the natural end of the corpus via a limit guard
        // when no EXIT script exists).
        let limit = Some(n);
        let result = match mode {
            Mode::Dsmtx { workers } => {
                let interpret = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    let ev = eval_iter(ctx, mtx.0)?;
                    for (k, v) in &ev.env_writes {
                        ctx.write(env_base.add_words(*k), *v)?;
                    }
                    ctx.produce_to(StageId(1), ev.result);
                    Ok(if ev.exits {
                        IterOutcome::Exit
                    } else {
                        IterOutcome::Continue
                    })
                });
                // The sequential "print" stage.
                let print = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    let r = ctx.consume_from(StageId(0));
                    ctx.write_no_forward(out_base.add_words(mtx.0), r)?;
                    ctx.write_no_forward(count_cell, mtx.0 + 1)?;
                    Ok(IterOutcome::Continue)
                });
                Pipeline::new()
                    .par(workers.max(1), interpret)
                    .seq(print)
                    .tuning(Tuning::with_unit_shards(shards))
                    .run(master, recovery, limit)?
            }
            Mode::Tls { workers } => {
                // TLS orders the print through the ring (the §5.2 print
                // synchronization), forwarding the environment with it.
                let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    let script: Vec<u64> = (0..unit)
                        .map(|k| ctx.read_private(s_base.add_words(mtx.0 * unit + k)))
                        .collect::<Result<_, _>>()?;
                    let incoming = ctx.sync_take();
                    let env: Vec<u64> = if incoming.len() == ENV_WORDS as usize {
                        incoming
                    } else {
                        (0..ENV_WORDS)
                            .map(|k| ctx.read(env_base.add_words(k)))
                            .collect::<Result<_, _>>()?
                    };
                    let ev = eval(&script, &env);
                    let mut env_after = env;
                    for (k, v) in &ev.env_writes {
                        env_after[*k as usize] = *v;
                        ctx.write_no_forward(env_base.add_words(*k), *v)?;
                    }
                    ctx.write_no_forward(out_base.add_words(mtx.0), ev.result)?;
                    ctx.write_no_forward(count_cell, mtx.0 + 1)?;
                    for &v in &env_after {
                        ctx.sync_produce(v);
                    }
                    Ok(if ev.exits {
                        IterOutcome::Exit
                    } else {
                        IterOutcome::Continue
                    })
                });
                Tls {
                    replicas: workers.max(1),
                    tuning: Tuning::with_unit_shards(shards),
                }
                .run(master, body, recovery, limit)?
            }
            Mode::Sequential => unreachable!("parallel paths only"),
        };
        Ok(result)
    }

    /// [`Kernel::run_reported`] for an explicit corpus shape — the
    /// certification tests use the SETENV corpus to observe the
    /// speculated environment dependence manifesting.
    ///
    /// # Errors
    ///
    /// Runtime failures (thread panics, configuration errors).
    pub fn run_corpus_reported(
        &self,
        workers: u16,
        unit_shards: usize,
        scale: Scale,
        corpus: Corpus,
    ) -> Result<RunResult, KernelError> {
        self.result_corpus(Mode::Dsmtx { workers }, unit_shards, scale, corpus)
    }

    /// [`Kernel::plan`] for an explicit corpus shape.
    ///
    /// # Errors
    ///
    /// Address-space exhaustion while rebuilding the heap layout.
    pub fn plan_corpus(&self, scale: Scale, corpus: Corpus) -> Result<AnalysisPlan, KernelError> {
        let lay = layout(scale)?;
        let (env0, scripts) = generate(scale, corpus);
        let master = initial_master(&env0, &scripts, &lay);
        let recovery = recovery_fn(&lay, scale);
        let (env_base, s_base, out_base, count_cell) =
            (lay.env_base, lay.s_base, lay.out_base, lay.count_cell);
        let unit = scale.unit;
        Ok(AnalysisPlan {
            name: "130.li",
            iterations: scale.iterations,
            master,
            recovery,
            stages: vec![
                // Environment reads are validated and the rare SETENV
                // store is the speculated dependence — both live in the
                // parallel interpret stage.
                StageSpec::new(
                    "interpret",
                    StageRole::Parallel,
                    Box::new(move |mtx| {
                        vec![
                            Region::read("scripts", s_base.add_words(mtx * unit), unit),
                            Region::read_write("env", env_base, ENV_WORDS),
                        ]
                    }),
                ),
                StageSpec::new(
                    "print",
                    StageRole::Sequential,
                    Box::new(move |mtx| {
                        vec![
                            Region::write("out", out_base.add_words(mtx), 1),
                            Region::write("count", count_cell, 1),
                        ]
                    }),
                ),
            ],
            shard_map: None,
        })
    }
}

impl Kernel for Li {
    fn info(&self) -> Table2Entry {
        Table2Entry {
            name: "130.li",
            suite: "SPEC CINT 95",
            description: "lisp interpreter",
            paradigm: Paradigm::Dswp {
                stages: vec![StageLabel::Doall, StageLabel::S],
                spec_stage: Some(0),
            },
            speculation: vec![
                SpecKind::ControlFlow,
                SpecKind::MemoryValue,
                SpecKind::MemoryVersioning,
            ],
        }
    }

    fn profile(&self) -> WorkloadProfile {
        WorkloadProfile {
            name: "130.li".into(),
            iter_work: 800.0e-6,
            iterations: 10_000,
            coverage: 0.99,
            stages: vec![
                StageProfile {
                    shape: StageShape::Parallel,
                    work_fraction: 0.985,
                    bytes_out: 64.0,
                },
                StageProfile {
                    shape: StageShape::Sequential,
                    work_fraction: 0.015,
                    bytes_out: 0.0,
                },
            ],
            validation_words: 16.0,
            tls: TlsPlan {
                // The print synchronization serializes a slice of every
                // iteration behind a ring hop.
                sync_fraction: 0.12,
                bytes_per_iter: 128.0,
                validation_words: 16.0,
            },
            chunked: false,
            invocation: None,
        }
    }

    fn run(&self, mode: Mode, scale: Scale) -> Result<Vec<u64>, KernelError> {
        self.run_corpus(mode, scale, Corpus::pure())
    }

    fn run_reported(
        &self,
        workers: u16,
        unit_shards: usize,
        scale: Scale,
    ) -> Result<RunResult, KernelError> {
        self.run_corpus_reported(workers, unit_shards, scale, Corpus::pure())
    }

    fn plan(&self, scale: Scale) -> Result<AnalysisPlan, KernelError> {
        self.plan_corpus(scale, Corpus::pure())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_agree_on_pure_scripts() {
        let k = Li;
        let scale = Scale::test();
        let seq = k.run(Mode::Sequential, scale).unwrap();
        let par = k.run(Mode::Dsmtx { workers: 3 }, scale).unwrap();
        let tls = k.run(Mode::Tls { workers: 2 }, scale).unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq, tls);
    }

    #[test]
    fn setenv_script_manifests_and_recovers() {
        let k = Li;
        let scale = Scale::test();
        let corpus = Corpus {
            with_setenv: true,
            with_exit: false,
        };
        let seq = k.run_corpus(Mode::Sequential, scale, corpus).unwrap();
        let par = k
            .run_corpus(Mode::Dsmtx { workers: 2 }, scale, corpus)
            .unwrap();
        assert_eq!(seq, par);
        // The environment really changed.
        let clean = k.run(Mode::Sequential, scale).unwrap();
        assert_ne!(seq, clean);
    }

    #[test]
    fn exit_script_terminates_early_everywhere() {
        let k = Li;
        let scale = Scale::test();
        let corpus = Corpus {
            with_setenv: false,
            with_exit: true,
        };
        let seq = k.run_corpus(Mode::Sequential, scale, corpus).unwrap();
        let par = k
            .run_corpus(Mode::Dsmtx { workers: 2 }, scale, corpus)
            .unwrap();
        let tls = k
            .run_corpus(Mode::Tls { workers: 2 }, scale, corpus)
            .unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq, tls);
        let count = seq[seq.len() - 1 - ENV_WORDS as usize];
        assert_eq!(count, scale.iterations * 3 / 4 + 1, "exited early");
    }

    #[test]
    fn eval_reads_environment() {
        let env = vec![5, 6, 7, 8, 9, 10, 11, 12];
        let script = vec![op::READENV * 256 + 2, op::HALT * 256];
        assert_eq!(eval(&script, &env).result, 7);
    }

    #[test]
    fn eval_setenv_records_write() {
        let env = vec![0; ENV_WORDS as usize];
        let script = vec![op::PUSH * 256 + 9, op::SETENV * 256 + 1, op::HALT * 256];
        let ev = eval(&script, &env);
        assert_eq!(ev.env_writes, vec![(1, 9)]);
    }

    #[test]
    fn profile_is_consistent() {
        Li.profile().check();
    }
}
