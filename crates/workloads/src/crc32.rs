//! `crc32` — polynomial code checksum (reference implementation suite).
//!
//! Paper plan: `DSWP+[Spec-DOALL, S]` with control-flow speculation that
//! errors do not occur during the CRC computation; block reads instead of
//! character reads; speedup limited by the number of input files (§5.2).
//!
//! Kernel: one iteration checksums one "file" (a span of input words)
//! with a CRC-64 fold. A rare in-band error marker models the speculated
//! error path: hitting it misspeculates, and recovery computes the file's
//! checksum sequentially (flagging it in the output).

use std::sync::Arc;

use dsmtx::{IterOutcome, MtxId, RecoveryFn, Region, RunResult, StageRole, StageSpec, WorkerCtx};
use dsmtx_mem::MasterMem;
use dsmtx_paradigms::paradigm::StageLabel;
use dsmtx_paradigms::{Paradigm, Pipeline, SpecDoall, SpecKind, Tuning};
use dsmtx_sim::{
    profile::{StageProfile, StageShape},
    TlsPlan, WorkloadProfile,
};
use dsmtx_uva::VAddr;

use crate::analysis::AnalysisPlan;
use crate::common::{
    load_words, master_heap, store_words, Kernel, KernelError, Mode, Scale, Stream, Table2Entry,
};

/// In-band marker for the speculated error path.
pub const ERROR_MARKER: u64 = 0xBAD0_BAD0_BAD0_BAD0;

const POLY: u64 = 0x42F0_E1EB_A9EA_3693;

/// The crc32 kernel.
#[derive(Debug, Default)]
pub struct Crc32;

fn crc_step(crc: u64, word: u64) -> u64 {
    let mut c = crc ^ word;
    for _ in 0..8 {
        let mask = (c & 1).wrapping_neg();
        c = (c >> 1) ^ (POLY & mask);
    }
    c
}

/// Checksums one file span; `Err(())` models the error path the plan
/// speculates against.
fn crc_file(words: &[u64]) -> Result<u64, ()> {
    let mut crc = u64::MAX;
    for &w in words {
        if w == ERROR_MARKER {
            return Err(());
        }
        crc = crc_step(crc, w);
    }
    Ok(crc)
}

/// Generates the input corpus. `plant_error` inserts the rare marker in
/// one file, to exercise misspeculation in tests.
fn generate(scale: Scale, plant_error: bool) -> Vec<u64> {
    let mut s = Stream::new(scale.seed);
    let mut input: Vec<u64> = (0..scale.iterations * scale.unit)
        .map(|_| s.next())
        .collect();
    for w in input.iter_mut() {
        if *w == ERROR_MARKER {
            *w = 0; // keep the corpus clean by default
        }
    }
    if plant_error {
        let idx = (scale.iterations / 2) * scale.unit + scale.unit / 2;
        input[idx as usize] = ERROR_MARKER;
    }
    input
}

/// Output of the error path: the checksum slot is flagged.
fn error_output(file: u64) -> u64 {
    0xEEEE_0000_0000_0000 | file
}

/// Heap layout of the parallel plan. The region allocator is
/// deterministic, so rebuilding the same allocation sequence always
/// yields the same bases — `plan()` and the runners agree on addresses.
struct Layout {
    in_base: VAddr,
    out_base: VAddr,
}

fn layout(scale: Scale) -> Result<Layout, KernelError> {
    let n = scale.iterations;
    let mut heap = master_heap();
    let in_base = heap
        .alloc_words(n * scale.unit)
        .map_err(|e| KernelError(e.to_string()))?;
    let out_base = heap
        .alloc_words(n)
        .map_err(|e| KernelError(e.to_string()))?;
    Ok(Layout { in_base, out_base })
}

fn recovery_fn(lay: &Layout, scale: Scale) -> RecoveryFn {
    let (in_base, out_base, unit) = (lay.in_base, lay.out_base, scale.unit);
    Box::new(move |mtx: MtxId, master: &mut MasterMem| {
        let span = load_words(master, in_base.add_words(mtx.0 * unit), unit);
        let out = match crc_file(&span) {
            Ok(crc) => crc,
            Err(()) => error_output(mtx.0),
        };
        master.write(out_base.add_words(mtx.0), out);
        IterOutcome::Continue
    })
}

impl Crc32 {
    /// Sequential reference.
    fn sequential(input: &[u64], scale: Scale) -> Vec<u64> {
        (0..scale.iterations)
            .map(|f| {
                let span = &input[(f * scale.unit) as usize..((f + 1) * scale.unit) as usize];
                match crc_file(span) {
                    Ok(crc) => crc,
                    Err(()) => error_output(f),
                }
            })
            .collect()
    }

    fn run_with_input(
        &self,
        mode: Mode,
        scale: Scale,
        input: Vec<u64>,
    ) -> Result<Vec<u64>, KernelError> {
        if let Mode::Sequential = mode {
            return Ok(Self::sequential(&input, scale));
        }
        let lay = layout(scale)?;
        let result = self.result_with_input(mode, 1, scale, input)?;
        Ok(load_words(&result.master, lay.out_base, scale.iterations))
    }

    /// The parallel paths, at an explicit try-commit shard count,
    /// returning the full run result.
    fn result_with_input(
        &self,
        mode: Mode,
        shards: usize,
        scale: Scale,
        input: Vec<u64>,
    ) -> Result<RunResult, KernelError> {
        let n = scale.iterations;
        let lay = layout(scale)?;
        let (in_base, out_base) = (lay.in_base, lay.out_base);
        let mut master = MasterMem::new();
        store_words(&mut master, in_base, &input);

        let unit = scale.unit;
        // Parallel stage: checksum the file; the error path misspeculates.
        let compute = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
            if mtx.0 >= n {
                return Ok(IterOutcome::Continue); // squashed overshoot
            }
            let mut crc = u64::MAX;
            for k in 0..unit {
                // The input is read-only after loop entry: unvalidated.
                let w = ctx.read_private(in_base.add_words(mtx.0 * unit + k))?;
                if w == ERROR_MARKER {
                    // Control-flow speculation failed: rare error path.
                    return ctx.misspec();
                }
                crc = crc_step(crc, w);
            }
            ctx.produce_to(dsmtx::StageId(1), crc);
            Ok(IterOutcome::Continue)
        });
        // Sequential output stage, as in the paper's plan.
        let emit = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
            if mtx.0 >= n {
                return Ok(IterOutcome::Continue);
            }
            let crc = ctx.consume_from(dsmtx::StageId(0));
            ctx.write_no_forward(out_base.add_words(mtx.0), crc)?;
            Ok(IterOutcome::Continue)
        });
        let recovery = recovery_fn(&lay, scale);

        let result = match mode {
            Mode::Dsmtx { workers } => Pipeline::new()
                .par(workers.max(1), compute)
                .seq(emit)
                .tuning(Tuning::with_unit_shards(shards))
                .run(master, recovery, Some(n))?,
            Mode::Tls { workers } => {
                // The TLS plan degenerates to Spec-DOALL here (no
                // synchronized dependences): the compute stage writes the
                // output slot itself.
                let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    let mut crc = u64::MAX;
                    for k in 0..unit {
                        let w = ctx.read_private(in_base.add_words(mtx.0 * unit + k))?;
                        if w == ERROR_MARKER {
                            return ctx.misspec();
                        }
                        crc = crc_step(crc, w);
                    }
                    ctx.write_no_forward(out_base.add_words(mtx.0), crc)?;
                    Ok(IterOutcome::Continue)
                });
                SpecDoall {
                    replicas: workers.max(1),
                    tuning: Tuning::with_unit_shards(shards),
                }
                .run(master, body, recovery, Some(n))?
            }
            Mode::Sequential => unreachable!("parallel paths only"),
        };
        Ok(result)
    }

    /// Runs with a planted error to exercise the misspeculation path.
    pub fn run_with_planted_error(
        &self,
        mode: Mode,
        scale: Scale,
    ) -> Result<Vec<u64>, KernelError> {
        self.run_with_input(mode, scale, generate(scale, true))
    }
}

impl Kernel for Crc32 {
    fn info(&self) -> Table2Entry {
        Table2Entry {
            name: "crc32",
            suite: "Ref. Impl.",
            description: "polynomial code checksum",
            paradigm: Paradigm::Dswp {
                stages: vec![StageLabel::Doall, StageLabel::S],
                spec_stage: Some(0),
            },
            speculation: vec![SpecKind::ControlFlow, SpecKind::MemoryVersioning],
        }
    }

    fn profile(&self) -> WorkloadProfile {
        WorkloadProfile {
            name: "crc32".into(),
            // A handful of large input files bounds the parallelism.
            iter_work: 30.0e-3,
            iterations: 96,
            coverage: 0.995,
            stages: vec![
                StageProfile {
                    shape: StageShape::Parallel,
                    work_fraction: 0.99,
                    bytes_out: 16.0,
                },
                StageProfile {
                    shape: StageShape::Sequential,
                    work_fraction: 0.01,
                    bytes_out: 0.0,
                },
            ],
            validation_words: 4.0,
            tls: TlsPlan {
                // Output ordering synchronizes a sliver of each iteration.
                sync_fraction: 0.01,
                bytes_per_iter: 16.0,
                validation_words: 4.0,
            },
            chunked: false,
            invocation: None,
        }
    }

    fn run(&self, mode: Mode, scale: Scale) -> Result<Vec<u64>, KernelError> {
        self.run_with_input(mode, scale, generate(scale, false))
    }

    fn run_reported(
        &self,
        workers: u16,
        unit_shards: usize,
        scale: Scale,
    ) -> Result<RunResult, KernelError> {
        self.result_with_input(
            Mode::Dsmtx { workers },
            unit_shards,
            scale,
            generate(scale, false),
        )
    }

    fn plan(&self, scale: Scale) -> Result<AnalysisPlan, KernelError> {
        let lay = layout(scale)?;
        let mut master = MasterMem::new();
        store_words(&mut master, lay.in_base, &generate(scale, false));
        let recovery = recovery_fn(&lay, scale);
        let (in_base, out_base, unit) = (lay.in_base, lay.out_base, scale.unit);
        Ok(AnalysisPlan {
            name: "crc32",
            iterations: scale.iterations,
            master,
            recovery,
            stages: vec![
                // The input is read-only after loop entry (read_private).
                StageSpec::new(
                    "compute",
                    StageRole::Parallel,
                    Box::new(move |mtx| {
                        vec![Region::read("input", in_base.add_words(mtx * unit), unit)]
                    }),
                ),
                StageSpec::new(
                    "emit",
                    StageRole::Sequential,
                    Box::new(move |mtx| vec![Region::write("out", out_base.add_words(mtx), 1)]),
                ),
            ],
            shard_map: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential() {
        let k = Crc32;
        let scale = Scale::test();
        let seq = k.run(Mode::Sequential, scale).unwrap();
        let par = k.run(Mode::Dsmtx { workers: 3 }, scale).unwrap();
        let tls = k.run(Mode::Tls { workers: 3 }, scale).unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq, tls);
        assert_eq!(seq.len(), scale.iterations as usize);
    }

    #[test]
    fn planted_error_recovers_to_sequential_answer() {
        let k = Crc32;
        let scale = Scale::test();
        let seq = k.run_with_planted_error(Mode::Sequential, scale).unwrap();
        let par = k
            .run_with_planted_error(Mode::Dsmtx { workers: 2 }, scale)
            .unwrap();
        assert_eq!(seq, par);
        // The flagged file really took the error path.
        let bad = (scale.iterations / 2) as usize;
        assert_eq!(seq[bad], error_output(bad as u64));
    }

    #[test]
    fn crc_is_sensitive_to_every_word() {
        let a = crc_file(&[1, 2, 3]).unwrap();
        let b = crc_file(&[1, 2, 4]).unwrap();
        let c = crc_file(&[2, 1, 3]).unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn profile_is_consistent() {
        Crc32.profile().check();
    }
}
