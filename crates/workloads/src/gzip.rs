//! `164.gzip` — SPEC CINT2000 file compressor.
//!
//! Paper plan: `Spec-DSWP+[S, DOALL, S]`. The original algorithm's block
//! boundaries depend on the previous block's compression, which serializes
//! the loop; the Y-branch breaks that dependence by starting blocks at
//! fixed intervals, and DSMTX's memory versioning gives each worker its
//! own version of the block arrays. Scalability is limited by
//! communication bandwidth: the read stage ships every block's data down
//! the pipeline (§5.2, Figure 5(a) shows gzip's bandwidth demand is the
//! highest of the suite).
//!
//! Kernel: fixed-interval blocks (the Y-branched semantics are the
//! reference), run-length compression, and a sequential output stage that
//! appends `[len, payload…]` records at a cursor. A rare in-band escape
//! marker models the speculated rare path.

use std::sync::Arc;

use dsmtx::{
    IterOutcome, MtxId, RecoveryFn, Region, RunResult, StageId, StageRole, StageSpec, WorkerCtx,
};
use dsmtx_mem::MasterMem;
use dsmtx_paradigms::paradigm::StageLabel;
use dsmtx_paradigms::{Paradigm, Pipeline, SpecKind, Tls, Tuning};
use dsmtx_sim::{
    profile::{StageProfile, StageShape},
    TlsPlan, WorkloadProfile,
};
use dsmtx_uva::VAddr;

use crate::analysis::AnalysisPlan;
use crate::common::{
    load_words, master_heap, store_words, Kernel, KernelError, Mode, Scale, Stream, Table2Entry,
};

/// Rare in-band marker whose handling the plan speculates away.
pub const ESCAPE: u64 = 0xE5CA_9EE5_CA9E_E5CA;

/// The gzip kernel.
#[derive(Debug, Default)]
pub struct Gzip;

/// Run-length compresses one block into `[count, value]` pairs plus a
/// trailing checksum; `Err(())` on the rare escape marker.
pub(crate) fn rle_compress(block: &[u64]) -> Result<Vec<u64>, ()> {
    let mut out = Vec::new();
    let mut i = 0;
    let mut checksum = 0xC0DEu64;
    while i < block.len() {
        if block[i] == ESCAPE {
            return Err(());
        }
        let mut run = 1;
        while i + run < block.len() && block[i + run] == block[i] {
            run += 1;
        }
        out.push(run as u64);
        out.push(block[i]);
        checksum = checksum
            .rotate_left(7)
            .wrapping_add(block[i])
            .wrapping_mul(run as u64 | 1);
        i += run;
    }
    out.push(checksum);
    Ok(out)
}

/// On the escape path the block is stored raw with a flag record.
fn escape_record(block: &[u64]) -> Vec<u64> {
    let mut out = vec![u64::MAX];
    out.extend_from_slice(block);
    out
}

/// Compressible input: small alphabet with runs.
fn generate(scale: Scale, plant_escape: bool) -> Vec<u64> {
    let mut s = Stream::new(scale.seed);
    let total = (scale.iterations * scale.unit) as usize;
    let mut input = Vec::with_capacity(total);
    while input.len() < total {
        let value = 0x1000 + s.below(4);
        let run = 1 + s.below(6) as usize;
        for _ in 0..run.min(total - input.len()) {
            input.push(value);
        }
    }
    if plant_escape {
        let idx = (scale.iterations / 2) * scale.unit + 1;
        input[idx as usize] = ESCAPE;
    }
    input
}

/// Appends a record at the output cursor (sequential semantics shared by
/// the reference, the last pipeline stage, and recovery).
fn append_record(stream: &mut Vec<u64>, record: &[u64]) {
    stream.push(record.len() as u64);
    stream.extend_from_slice(record);
}

/// Shared layout of the parallel runs. Allocation order is fixed, so
/// rebuilding it always yields the same bases — `plan()` and the runners
/// agree on addresses.
struct Layout {
    in_base: VAddr,
    stream_base: VAddr,
    cursor: VAddr,
    stream_cap: u64,
}

fn layout(scale: Scale) -> Result<Layout, KernelError> {
    let n = scale.iterations;
    let stream_cap = n * (2 * scale.unit + 3);
    let mut heap = master_heap();
    let in_base = heap
        .alloc_words(n * scale.unit)
        .map_err(|e| KernelError(e.to_string()))?;
    let stream_base = heap
        .alloc_words(stream_cap)
        .map_err(|e| KernelError(e.to_string()))?;
    let cursor = heap
        .alloc_words(1)
        .map_err(|e| KernelError(e.to_string()))?;
    Ok(Layout {
        in_base,
        stream_base,
        cursor,
        stream_cap,
    })
}

fn initial_master(input: &[u64], lay: &Layout) -> MasterMem {
    let mut master = MasterMem::new();
    store_words(&mut master, lay.in_base, input);
    master
}

fn recovery_fn(lay: &Layout, scale: Scale) -> RecoveryFn {
    let (in_base, stream_base, cursor) = (lay.in_base, lay.stream_base, lay.cursor);
    let unit = scale.unit;
    Box::new(move |mtx: MtxId, master: &mut MasterMem| {
        let block = load_words(master, in_base.add_words(mtx.0 * unit), unit);
        let record = compress_block_or_escape(&block);
        let cur = master.read(cursor);
        master.write(stream_base.add_words(cur), record.len() as u64);
        for (k, &w) in record.iter().enumerate() {
            master.write(stream_base.add_words(cur + 1 + k as u64), w);
        }
        master.write(cursor, cur + 1 + record.len() as u64);
        IterOutcome::Continue
    })
}

fn compress_block_or_escape(block: &[u64]) -> Vec<u64> {
    rle_compress(block).unwrap_or_else(|()| escape_record(block))
}

impl Gzip {
    fn sequential(input: &[u64], scale: Scale) -> Vec<u64> {
        let mut stream = Vec::new();
        for b in 0..scale.iterations {
            let block = &input[(b * scale.unit) as usize..((b + 1) * scale.unit) as usize];
            append_record(&mut stream, &compress_block_or_escape(block));
        }
        let mut out = vec![stream.len() as u64];
        out.extend(stream);
        out
    }

    fn run_with_input(
        &self,
        mode: Mode,
        scale: Scale,
        input: Vec<u64>,
    ) -> Result<Vec<u64>, KernelError> {
        if let Mode::Sequential = mode {
            return Ok(Self::sequential(&input, scale));
        }
        let lay = layout(scale)?;
        let result = self.result_with_input(mode, 1, scale, input)?;
        let len = result.master.read(lay.cursor);
        assert!(len <= lay.stream_cap, "stream overflow");
        let mut out = vec![len];
        out.extend(load_words(&result.master, lay.stream_base, len));
        Ok(out)
    }

    /// The parallel paths, at an explicit try-commit shard count,
    /// returning the full run result.
    fn result_with_input(
        &self,
        mode: Mode,
        shards: usize,
        scale: Scale,
        input: Vec<u64>,
    ) -> Result<RunResult, KernelError> {
        let n = scale.iterations;
        let unit = scale.unit;
        let lay = layout(scale)?;
        let master = initial_master(&input, &lay);
        let (in_base, stream_base, cursor) = (lay.in_base, lay.stream_base, lay.cursor);
        let recovery = recovery_fn(&lay, scale);

        let result = match mode {
            Mode::Dsmtx { workers } => {
                // Stage 0 (S): the file reader ships whole blocks down the
                // pipeline — the bandwidth-heavy part of the plan.
                let read = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    for k in 0..unit {
                        let w = ctx.read_private(in_base.add_words(mtx.0 * unit + k))?;
                        ctx.produce_to(StageId(1), w);
                    }
                    Ok(IterOutcome::Continue)
                });
                // Stage 1 (DOALL): compress in a private block version.
                let compress = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    let block: Vec<u64> = (0..unit).map(|_| ctx.consume_from(StageId(0))).collect();
                    match rle_compress(&block) {
                        Ok(record) => {
                            ctx.produce_to(StageId(2), record.len() as u64);
                            for w in record {
                                ctx.produce_to(StageId(2), w);
                            }
                            Ok(IterOutcome::Continue)
                        }
                        Err(()) => ctx.misspec(), // rare escape path
                    }
                });
                // Stage 2 (S): append records in order at the cursor.
                let emit = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    let len = ctx.consume_from(StageId(1));
                    let cur = ctx.read(cursor)?;
                    ctx.write_no_forward(stream_base.add_words(cur), len)?;
                    for k in 0..len {
                        let w = ctx.consume_from(StageId(1));
                        ctx.write_no_forward(stream_base.add_words(cur + 1 + k), w)?;
                    }
                    ctx.write(cursor, cur + 1 + len)?;
                    Ok(IterOutcome::Continue)
                });
                Pipeline::new()
                    .seq(read)
                    .par(workers.max(1), compress)
                    .seq(emit)
                    .tuning(Tuning::with_unit_shards(shards))
                    .run(master, recovery, Some(n))?
            }
            Mode::Tls { workers } => {
                // TLS: each transaction reads its block directly (no bulk
                // forwarding) and the output cursor is synchronized on the
                // ring.
                let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    let block: Vec<u64> = (0..unit)
                        .map(|k| ctx.read_private(in_base.add_words(mtx.0 * unit + k)))
                        .collect::<Result<_, _>>()?;
                    let record = match rle_compress(&block) {
                        Ok(r) => r,
                        Err(()) => return ctx.misspec(),
                    };
                    let cur = match ctx.sync_take().first() {
                        Some(&c) => c,
                        None => ctx.read(cursor)?,
                    };
                    ctx.write_no_forward(stream_base.add_words(cur), record.len() as u64)?;
                    for (k, &w) in record.iter().enumerate() {
                        ctx.write_no_forward(stream_base.add_words(cur + 1 + k as u64), w)?;
                    }
                    let next = cur + 1 + record.len() as u64;
                    ctx.write_no_forward(cursor, next)?;
                    ctx.sync_produce(next);
                    Ok(IterOutcome::Continue)
                });
                Tls {
                    replicas: workers.max(1),
                    tuning: Tuning::with_unit_shards(shards),
                }
                .run(master, body, recovery, Some(n))?
            }
            Mode::Sequential => unreachable!("parallel paths only"),
        };
        Ok(result)
    }

    /// Runs with one escape-marked block to exercise the rare path.
    pub fn run_with_planted_escape(
        &self,
        mode: Mode,
        scale: Scale,
    ) -> Result<Vec<u64>, KernelError> {
        self.run_with_input(mode, scale, generate(scale, true))
    }
}

impl Kernel for Gzip {
    fn info(&self) -> Table2Entry {
        Table2Entry {
            name: "164.gzip",
            suite: "SPEC CINT 2000",
            description: "file compressor",
            paradigm: Paradigm::SpecDswp {
                stages: vec![StageLabel::S, StageLabel::Doall, StageLabel::S],
            },
            speculation: vec![SpecKind::MemoryVersioning],
        }
    }

    fn profile(&self) -> WorkloadProfile {
        WorkloadProfile {
            name: "164.gzip".into(),
            iter_work: 1.2e-3,
            iterations: 4000,
            coverage: 0.99,
            stages: vec![
                StageProfile {
                    shape: StageShape::Sequential,
                    work_fraction: 0.03,
                    // Whole blocks ship down the pipeline: the bandwidth
                    // wall of Figure 5(a).
                    bytes_out: 65_536.0,
                },
                StageProfile {
                    shape: StageShape::Parallel,
                    work_fraction: 0.94,
                    bytes_out: 16_384.0,
                },
                StageProfile {
                    shape: StageShape::Sequential,
                    work_fraction: 0.03,
                    bytes_out: 0.0,
                },
            ],
            validation_words: 96.0,
            tls: TlsPlan {
                sync_fraction: 0.15,
                bytes_per_iter: 2_048.0,
                validation_words: 96.0,
            },
            chunked: true,
            invocation: None,
        }
    }

    fn run(&self, mode: Mode, scale: Scale) -> Result<Vec<u64>, KernelError> {
        self.run_with_input(mode, scale, generate(scale, false))
    }

    fn run_reported(
        &self,
        workers: u16,
        unit_shards: usize,
        scale: Scale,
    ) -> Result<RunResult, KernelError> {
        self.result_with_input(
            Mode::Dsmtx { workers },
            unit_shards,
            scale,
            generate(scale, false),
        )
    }

    fn plan(&self, scale: Scale) -> Result<AnalysisPlan, KernelError> {
        let lay = layout(scale)?;
        let master = initial_master(&generate(scale, false), &lay);
        let recovery = recovery_fn(&lay, scale);
        let (in_base, stream_base, cursor) = (lay.in_base, lay.stream_base, lay.cursor);
        let (unit, stream_cap) = (scale.unit, lay.stream_cap);
        Ok(AnalysisPlan {
            name: "164.gzip",
            iterations: scale.iterations,
            master,
            recovery,
            stages: vec![
                // Stage 0 (S): the reader ships the block down the pipeline.
                StageSpec::new(
                    "read",
                    StageRole::Sequential,
                    Box::new(move |mtx| {
                        vec![Region::read("input", in_base.add_words(mtx * unit), unit)]
                    }),
                ),
                // Stage 1 (DOALL): compresses a private block version; no
                // committed-state footprint.
                StageSpec::new("compress", StageRole::Parallel, Box::new(|_| Vec::new())),
                // Stage 2 (S): appends at the cursor. The record lands at a
                // cursor-dependent offset, so the whole stream is declared.
                StageSpec::new(
                    "emit",
                    StageRole::Sequential,
                    Box::new(move |_| {
                        vec![
                            Region::read_write("cursor", cursor, 1),
                            Region::write("stream", stream_base, stream_cap),
                        ]
                    }),
                ),
            ],
            shard_map: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_agree() {
        let k = Gzip;
        let scale = Scale::test();
        let seq = k.run(Mode::Sequential, scale).unwrap();
        let par = k.run(Mode::Dsmtx { workers: 2 }, scale).unwrap();
        let tls = k.run(Mode::Tls { workers: 2 }, scale).unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq, tls);
    }

    #[test]
    fn escape_path_recovers_everywhere() {
        let k = Gzip;
        let scale = Scale::test();
        let seq = k.run_with_planted_escape(Mode::Sequential, scale).unwrap();
        let par = k
            .run_with_planted_escape(Mode::Dsmtx { workers: 2 }, scale)
            .unwrap();
        let tls = k
            .run_with_planted_escape(Mode::Tls { workers: 2 }, scale)
            .unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq, tls);
        // The escaped block is stored raw.
        assert!(seq.contains(&u64::MAX));
    }

    #[test]
    fn rle_actually_compresses_runs() {
        let block = vec![7, 7, 7, 7, 9, 9];
        let out = rle_compress(&block).unwrap();
        assert_eq!(&out[..4], &[4, 7, 2, 9]);
        assert_eq!(out.len(), 5); // two pairs + checksum
    }

    #[test]
    fn rle_rejects_escape() {
        assert!(rle_compress(&[1, ESCAPE, 2]).is_err());
    }

    #[test]
    fn profile_is_consistent() {
        Gzip.profile().check();
    }
}
