//! Synthetic equivalents of the paper's 11 benchmarks.
//!
//! SPEC CPU and PARSEC sources and inputs are licensed and unavailable, so
//! each benchmark is reproduced as a *kernel* that mimics what the
//! evaluation actually exercises: the loop structure, the parallelization
//! paradigm (Table 2), the speculation types, the communication pattern,
//! and the scalability limiter described in §5.2. Every kernel provides:
//!
//! * a **sequential reference** (`Mode::Sequential`),
//! * the benchmark's best **DSMTX plan** on the real runtime
//!   (`Mode::Dsmtx`),
//! * the **TLS-only baseline** where the paper's plan differs
//!   (`Mode::Tls`), and
//! * a calibrated [`dsmtx_sim::WorkloadProfile`] that regenerates its
//!   Figure 4/5/6 curves on the cluster simulator.
//!
//! All three modes must produce identical output — the integration tests
//! enforce it, with and without injected misspeculation.

pub mod analysis;
pub mod common;
pub mod registry;

pub mod alvinn;
pub mod art;
pub mod blackscholes;
pub mod bzip2;
pub mod crc32;
pub mod gzip;
pub mod h264ref;
pub mod hmmer;
pub mod li;
pub mod parser;
pub mod swaptions;

pub use analysis::AnalysisPlan;
pub use common::{Kernel, KernelError, Mode, Scale, Table2Entry};
pub use registry::{all_kernels, kernel_by_name};
