//! `197.parser` — SPEC CINT2000 English parser.
//!
//! Paper plan: `Spec-DSWP+[S, DOALL, S]`. The values of various global
//! data structures are speculated to be reset at the end of each
//! iteration, control-flow speculation covers error cases, the entire
//! dictionary is copied to each worker by Copy-On-Access on first use,
//! and sentences flow from the first stage to the parsers. Beyond 32
//! threads, communication bandwidth becomes the bottleneck (§5.2).
//!
//! Kernel: each iteration parses one sentence — binary-searching every
//! token in a shared dictionary and scoring adjacent-token links with a
//! small dynamic program. A global *dictionary generation* cell models
//! the speculated global state: unknown tokens (rare error case) bump it,
//! which manifests the speculated dependence and rolls later sentences
//! back.

use std::sync::Arc;

use dsmtx::{
    IterOutcome, MtxId, RecoveryFn, Region, RunResult, StageId, StageRole, StageSpec, WorkerCtx,
};
use dsmtx_mem::MasterMem;
use dsmtx_paradigms::paradigm::StageLabel;
use dsmtx_paradigms::{Paradigm, Pipeline, SpecKind, Tls, Tuning};
use dsmtx_sim::{
    profile::{StageProfile, StageShape},
    TlsPlan, WorkloadProfile,
};
use dsmtx_uva::VAddr;

use crate::analysis::AnalysisPlan;
use crate::common::{
    load_words, master_heap, store_words, Kernel, KernelError, Mode, Scale, Stream, Table2Entry,
};

/// Dictionary entries.
pub const DICT_WORDS: u64 = 512;

/// The parser kernel.
#[derive(Debug, Default)]
pub struct Parser;

/// Binary search returning the token's rank, or `None` for unknown
/// tokens (the rare error case).
fn rank(dict: &[u64], token: u64) -> Option<u64> {
    dict.binary_search(&token).ok().map(|i| i as u64)
}

/// Scores one sentence against the dictionary under generation `gen`.
/// Returns `(score, new_gen)` — unknown tokens bump the generation.
pub(crate) fn parse(dict: &[u64], sentence: &[u64], gen: u64) -> (u64, u64) {
    let mut new_gen = gen;
    let mut prev_rank = 0u64;
    let mut score = gen.wrapping_mul(0x9E37);
    for &tok in sentence {
        let r = match rank(dict, tok) {
            Some(r) => r,
            None => {
                new_gen += 1;
                0
            }
        };
        // Link strength between adjacent ranks.
        let link = (r ^ prev_rank).wrapping_mul(31).rotate_left(5);
        score = score.wrapping_add(link).rotate_left(3);
        prev_rank = r;
    }
    (score, new_gen)
}

fn generate(scale: Scale, plant_unknown: bool) -> (Vec<u64>, Vec<u64>) {
    let mut s = Stream::new(scale.seed ^ 0x197);
    let mut dict: Vec<u64> = (0..DICT_WORDS).map(|_| s.next() % 100_000).collect();
    dict.sort_unstable();
    dict.dedup();
    let sentences: Vec<u64> = (0..scale.iterations * scale.unit)
        .map(|_| dict[(s.next() % dict.len() as u64) as usize])
        .collect();
    let mut sentences = sentences;
    if plant_unknown {
        let idx = (scale.iterations / 2) * scale.unit + 3;
        sentences[idx as usize] = 100_001; // definitely not in the dictionary
    }
    (dict, sentences)
}

/// Shared layout of the parallel runs. The dictionary length is
/// data-dependent (sort + dedup), so the layout takes it as a parameter;
/// the allocation order is fixed, so rebuilding it always yields the same
/// bases — `plan()` and the runners agree on addresses.
struct Layout {
    d_base: VAddr,
    s_base: VAddr,
    out_base: VAddr,
    gen_cell: VAddr,
}

fn layout(scale: Scale, dict_len: u64) -> Result<Layout, KernelError> {
    let n = scale.iterations;
    let mut heap = master_heap();
    let d_base = heap
        .alloc_words(dict_len)
        .map_err(|e| KernelError(e.to_string()))?;
    let s_base = heap
        .alloc_words(n * scale.unit)
        .map_err(|e| KernelError(e.to_string()))?;
    let out_base = heap
        .alloc_words(n)
        .map_err(|e| KernelError(e.to_string()))?;
    let gen_cell = heap
        .alloc_words(1)
        .map_err(|e| KernelError(e.to_string()))?;
    Ok(Layout {
        d_base,
        s_base,
        out_base,
        gen_cell,
    })
}

fn initial_master(dict: &[u64], sentences: &[u64], lay: &Layout) -> MasterMem {
    let mut master = MasterMem::new();
    store_words(&mut master, lay.d_base, dict);
    store_words(&mut master, lay.s_base, sentences);
    master
}

fn recovery_fn(lay: &Layout, scale: Scale, dict_len: u64) -> RecoveryFn {
    let (d_base, s_base, out_base, gen_cell) = (lay.d_base, lay.s_base, lay.out_base, lay.gen_cell);
    let unit = scale.unit;
    Box::new(move |mtx: MtxId, master: &mut MasterMem| {
        let dict = load_words(master, d_base, dict_len);
        let sentence = load_words(master, s_base.add_words(mtx.0 * unit), unit);
        let gen = master.read(gen_cell);
        let (score, new_gen) = parse(&dict, &sentence, gen);
        master.write(out_base.add_words(mtx.0), score);
        master.write(gen_cell, new_gen);
        IterOutcome::Continue
    })
}

impl Parser {
    fn sequential(dict: &[u64], sentences: &[u64], scale: Scale) -> Vec<u64> {
        let mut gen = 0u64;
        let mut out = Vec::with_capacity(scale.iterations as usize + 1);
        for i in 0..scale.iterations {
            let sentence = &sentences[(i * scale.unit) as usize..((i + 1) * scale.unit) as usize];
            let (score, g) = parse(dict, sentence, gen);
            out.push(score);
            gen = g;
        }
        out.push(gen);
        out
    }

    fn run_with_input(
        &self,
        mode: Mode,
        scale: Scale,
        dict: Vec<u64>,
        sentences: Vec<u64>,
    ) -> Result<Vec<u64>, KernelError> {
        if let Mode::Sequential = mode {
            return Ok(Self::sequential(&dict, &sentences, scale));
        }
        let lay = layout(scale, dict.len() as u64)?;
        let result = self.result_with_input(mode, 1, scale, dict, sentences)?;
        let mut out = load_words(&result.master, lay.out_base, scale.iterations);
        out.push(result.master.read(lay.gen_cell));
        Ok(out)
    }

    /// The parallel paths, at an explicit try-commit shard count,
    /// returning the full run result.
    fn result_with_input(
        &self,
        mode: Mode,
        shards: usize,
        scale: Scale,
        dict: Vec<u64>,
        sentences: Vec<u64>,
    ) -> Result<RunResult, KernelError> {
        let n = scale.iterations;
        let unit = scale.unit;
        let dict_len = dict.len() as u64;
        let lay = layout(scale, dict_len)?;
        let master = initial_master(&dict, &sentences, &lay);
        let (d_base, s_base, out_base, gen_cell) =
            (lay.d_base, lay.s_base, lay.out_base, lay.gen_cell);
        let recovery = recovery_fn(&lay, scale, dict_len);

        let parse_iter =
            move |ctx: &mut WorkerCtx, i: u64| -> Result<(u64, u64, u64), dsmtx::Interrupt> {
                // The dictionary is read-only: COA copies it to each worker on
                // first access (the §5.2 dictionary-transfer cost).
                let dict: Vec<u64> = (0..dict_len)
                    .map(|k| ctx.read_private(d_base.add_words(k)))
                    .collect::<Result<_, _>>()?;
                let sentence: Vec<u64> = (0..unit)
                    .map(|k| ctx.read_private(s_base.add_words(i * unit + k)))
                    .collect::<Result<_, _>>()?;
                // The speculated global: read validated, so a concurrent bump
                // by an error sentence manifests as misspeculation.
                let gen = ctx.read(gen_cell)?;
                let (score, new_gen) = parse(&dict, &sentence, gen);
                Ok((score, gen, new_gen))
            };

        let result = match mode {
            Mode::Dsmtx { workers } => {
                // Stage 0 (S): sentence dispatch (models the reader; the
                // sentence words themselves travel by COA here, so the
                // produced token is just the iteration id).
                let dispatch = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    ctx.produce_to(StageId(1), mtx.0);
                    Ok(IterOutcome::Continue)
                });
                let parse_stage = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    let i = ctx.consume_from(StageId(0));
                    let (score, gen, new_gen) = parse_iter(ctx, i)?;
                    if new_gen != gen {
                        // Error case: the global really changes.
                        ctx.write(gen_cell, new_gen)?;
                    }
                    ctx.produce_to(StageId(2), score);
                    Ok(IterOutcome::Continue)
                });
                let emit = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    let score = ctx.consume_from(StageId(1));
                    ctx.write_no_forward(out_base.add_words(mtx.0), score)?;
                    Ok(IterOutcome::Continue)
                });
                Pipeline::new()
                    .seq(dispatch)
                    .par(workers.max(1), parse_stage)
                    .seq(emit)
                    .tuning(Tuning::with_unit_shards(shards))
                    .run(master, recovery, Some(n))?
            }
            Mode::Tls { workers } => {
                // TLS synchronizes the global on the ring.
                let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    let dict: Vec<u64> = (0..dict_len)
                        .map(|k| ctx.read_private(d_base.add_words(k)))
                        .collect::<Result<_, _>>()?;
                    let sentence: Vec<u64> = (0..unit)
                        .map(|k| ctx.read_private(s_base.add_words(mtx.0 * unit + k)))
                        .collect::<Result<_, _>>()?;
                    let gen = match ctx.sync_take().first() {
                        Some(&g) => g,
                        None => ctx.read(gen_cell)?,
                    };
                    let (score, new_gen) = parse(&dict, &sentence, gen);
                    ctx.write_no_forward(out_base.add_words(mtx.0), score)?;
                    ctx.write_no_forward(gen_cell, new_gen)?;
                    ctx.sync_produce(new_gen);
                    Ok(IterOutcome::Continue)
                });
                Tls {
                    replicas: workers.max(1),
                    tuning: Tuning::with_unit_shards(shards),
                }
                .run(master, body, recovery, Some(n))?
            }
            Mode::Sequential => unreachable!("parallel paths only"),
        };
        Ok(result)
    }

    /// Runs with one unknown token planted, manifesting the speculated
    /// global dependence.
    pub fn run_with_planted_unknown(
        &self,
        mode: Mode,
        scale: Scale,
    ) -> Result<Vec<u64>, KernelError> {
        let (dict, sentences) = generate(scale, true);
        self.run_with_input(mode, scale, dict, sentences)
    }

    /// [`Kernel::run_reported`] with one unknown token planted — the
    /// certification tests use this to observe the speculated generation
    /// dependence manifesting as a try-commit conflict.
    ///
    /// # Errors
    ///
    /// Runtime failures (thread panics, configuration errors).
    pub fn run_reported_planted_unknown(
        &self,
        workers: u16,
        unit_shards: usize,
        scale: Scale,
    ) -> Result<RunResult, KernelError> {
        let (dict, sentences) = generate(scale, true);
        self.result_with_input(Mode::Dsmtx { workers }, unit_shards, scale, dict, sentences)
    }

    fn plan_with(&self, scale: Scale, plant_unknown: bool) -> Result<AnalysisPlan, KernelError> {
        let (dict, sentences) = generate(scale, plant_unknown);
        let dict_len = dict.len() as u64;
        let lay = layout(scale, dict_len)?;
        let master = initial_master(&dict, &sentences, &lay);
        let recovery = recovery_fn(&lay, scale, dict_len);
        let (d_base, s_base, out_base, gen_cell) =
            (lay.d_base, lay.s_base, lay.out_base, lay.gen_cell);
        let unit = scale.unit;
        Ok(AnalysisPlan {
            name: "197.parser",
            iterations: scale.iterations,
            master,
            recovery,
            stages: vec![
                // The dispatcher ships only the iteration id.
                StageSpec::new("dispatch", StageRole::Sequential, Box::new(|_| Vec::new())),
                // The parse stage reads the COA-distributed dictionary and
                // sentence, and speculates on the generation global: its
                // read is validated and the rare unknown-token bump writes
                // it back — the genuinely speculated carried dependence.
                StageSpec::new(
                    "parse",
                    StageRole::Parallel,
                    Box::new(move |mtx| {
                        vec![
                            Region::read("dict", d_base, dict_len),
                            Region::read("sentences", s_base.add_words(mtx * unit), unit),
                            Region::read_write("gen", gen_cell, 1),
                        ]
                    }),
                ),
                StageSpec::new(
                    "emit",
                    StageRole::Sequential,
                    Box::new(move |mtx| vec![Region::write("out", out_base.add_words(mtx), 1)]),
                ),
            ],
            shard_map: None,
        })
    }

    /// [`Kernel::plan`] with one unknown token planted: the generation
    /// carried dependence becomes value-changing.
    ///
    /// # Errors
    ///
    /// Address-space exhaustion while rebuilding the heap layout.
    pub fn plan_with_planted_unknown(&self, scale: Scale) -> Result<AnalysisPlan, KernelError> {
        self.plan_with(scale, true)
    }
}

impl Kernel for Parser {
    fn info(&self) -> Table2Entry {
        Table2Entry {
            name: "197.parser",
            suite: "SPEC CINT 2000",
            description: "English parser",
            paradigm: Paradigm::SpecDswp {
                stages: vec![StageLabel::S, StageLabel::Doall, StageLabel::S],
            },
            speculation: vec![
                SpecKind::ControlFlow,
                SpecKind::MemoryValue,
                SpecKind::MemoryVersioning,
            ],
        }
    }

    fn profile(&self) -> WorkloadProfile {
        WorkloadProfile {
            name: "197.parser".into(),
            iter_work: 1.5e-3,
            iterations: 8000,
            coverage: 0.98,
            stages: vec![
                StageProfile {
                    shape: StageShape::Sequential,
                    work_fraction: 0.02,
                    // Sentences plus dictionary traffic: bandwidth grows
                    // fast with thread count (§5.3), biting past ~32.
                    bytes_out: 24_576.0,
                },
                StageProfile {
                    shape: StageShape::Parallel,
                    work_fraction: 0.95,
                    bytes_out: 64.0,
                },
                StageProfile {
                    shape: StageShape::Sequential,
                    work_fraction: 0.03,
                    bytes_out: 0.0,
                },
            ],
            validation_words: 64.0,
            tls: TlsPlan {
                sync_fraction: 0.08,
                bytes_per_iter: 512.0,
                validation_words: 64.0,
            },
            chunked: false,
            invocation: None,
        }
    }

    fn run(&self, mode: Mode, scale: Scale) -> Result<Vec<u64>, KernelError> {
        let (dict, sentences) = generate(scale, false);
        self.run_with_input(mode, scale, dict, sentences)
    }

    fn run_reported(
        &self,
        workers: u16,
        unit_shards: usize,
        scale: Scale,
    ) -> Result<RunResult, KernelError> {
        let (dict, sentences) = generate(scale, false);
        self.result_with_input(Mode::Dsmtx { workers }, unit_shards, scale, dict, sentences)
    }

    fn plan(&self, scale: Scale) -> Result<AnalysisPlan, KernelError> {
        self.plan_with(scale, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_agree() {
        let k = Parser;
        let scale = Scale::test();
        let seq = k.run(Mode::Sequential, scale).unwrap();
        let par = k.run(Mode::Dsmtx { workers: 2 }, scale).unwrap();
        let tls = k.run(Mode::Tls { workers: 2 }, scale).unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq, tls);
        // No unknown tokens: the generation never moved.
        assert_eq!(*seq.last().unwrap(), 0);
    }

    #[test]
    fn unknown_token_manifests_the_speculated_global() {
        let k = Parser;
        let scale = Scale::test();
        let seq = k.run_with_planted_unknown(Mode::Sequential, scale).unwrap();
        let par = k
            .run_with_planted_unknown(Mode::Dsmtx { workers: 2 }, scale)
            .unwrap();
        assert_eq!(seq, par);
        assert_eq!(*seq.last().unwrap(), 1, "generation bumped once");
        // Scores after the error sentence differ from the clean run.
        let clean = k.run(Mode::Sequential, scale).unwrap();
        assert_ne!(seq, clean);
    }

    #[test]
    fn parse_depends_on_generation() {
        let dict = vec![1, 5, 9];
        let (a, _) = parse(&dict, &[1, 5], 0);
        let (b, _) = parse(&dict, &[1, 5], 1);
        assert_ne!(a, b);
    }

    #[test]
    fn profile_is_consistent() {
        Parser.profile().check();
    }
}
