//! `swaptions` — PARSEC portfolio pricing.
//!
//! Paper plan: `Spec-DOALL` over the outermost loop with control-flow
//! speculation on an error condition during price calculation; the DSMTX
//! and TLS parallelizations coincide, and scalability is limited by the
//! input size (the number of swaptions, §5.2).
//!
//! Kernel: each iteration prices one swaption with a deterministic
//! HJM-flavoured Monte Carlo: simulate forward-rate paths with a
//! per-swaption pseudo-random stream and average the discounted payoff.

use std::sync::Arc;

use dsmtx::{IterOutcome, MtxId, RecoveryFn, Region, RunResult, StageRole, StageSpec, WorkerCtx};
use dsmtx_mem::MasterMem;
use dsmtx_paradigms::{Paradigm, SpecDoall, SpecKind, Tuning};
use dsmtx_sim::{
    profile::{StageProfile, StageShape},
    TlsPlan, WorkloadProfile,
};
use dsmtx_uva::VAddr;

use crate::analysis::AnalysisPlan;
use crate::common::{
    f2w, load_words, master_heap, store_words, w2f, Kernel, KernelError, Mode, Scale, Stream,
    Table2Entry,
};

/// Words per swaption record: strike, maturity, volatility, seed.
pub const SWAPTION_WORDS: u64 = 4;
/// Monte Carlo paths per swaption.
const PATHS: u64 = 32;
/// Time steps per path.
const STEPS: u64 = 16;

/// The swaptions kernel.
#[derive(Debug, Default)]
pub struct Swaptions;

/// Uniform in [-1, 1) from the stream (triangle-ish shock).
fn shock(s: &mut Stream) -> f64 {
    (s.below(2_000_001) as f64 / 1_000_000.0) - 1.0
}

/// Prices one swaption; `Err(())` is the speculated error path (a
/// degenerate volatility).
fn price(rec: &[u64]) -> Result<u64, ()> {
    let strike = w2f(rec[0]);
    let maturity = w2f(rec[1]);
    let vol = w2f(rec[2]);
    let seed = rec[3];
    if vol <= 0.0 || maturity <= 0.0 {
        return Err(());
    }
    let dt = maturity / STEPS as f64;
    let mut sum = 0.0;
    for p in 0..PATHS {
        let mut s = Stream::new(seed ^ (p + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rate = 0.05;
        for _ in 0..STEPS {
            rate += vol * shock(&mut s) * dt.sqrt() + 0.001 * dt;
            rate = rate.max(0.0);
        }
        let payoff = (rate - strike).max(0.0);
        sum += payoff * (-rate * maturity).exp();
    }
    Ok(f2w(sum / PATHS as f64))
}

fn error_output(i: u64) -> u64 {
    0x5BAD_0000_0000_0000 | i
}

/// Heap layout of the parallel plan (deterministic allocation order, so
/// `plan()` and the runners agree on addresses).
struct Layout {
    in_base: VAddr,
    out_base: VAddr,
}

fn layout(scale: Scale) -> Result<Layout, KernelError> {
    let n = scale.iterations;
    let mut heap = master_heap();
    let in_base = heap
        .alloc_words(n * SWAPTION_WORDS)
        .map_err(|e| KernelError(e.to_string()))?;
    let out_base = heap
        .alloc_words(n)
        .map_err(|e| KernelError(e.to_string()))?;
    Ok(Layout { in_base, out_base })
}

fn recovery_fn(lay: &Layout) -> RecoveryFn {
    let (in_base, out_base) = (lay.in_base, lay.out_base);
    Box::new(move |mtx: MtxId, master: &mut MasterMem| {
        let rec = load_words(
            master,
            in_base.add_words(mtx.0 * SWAPTION_WORDS),
            SWAPTION_WORDS,
        );
        let out = price(&rec).unwrap_or_else(|()| error_output(mtx.0));
        master.write(out_base.add_words(mtx.0), out);
        IterOutcome::Continue
    })
}

fn generate(scale: Scale, plant_error: bool) -> Vec<u64> {
    let mut s = Stream::new(scale.seed);
    let mut input = Vec::with_capacity((scale.iterations * SWAPTION_WORDS) as usize);
    for _ in 0..scale.iterations {
        let strike = 0.02 + s.below(8) as f64 / 100.0;
        let maturity = 1.0 + s.below(10) as f64;
        let vol = 0.05 + s.below(30) as f64 / 100.0;
        input.extend_from_slice(&[f2w(strike), f2w(maturity), f2w(vol), s.next()]);
    }
    if plant_error {
        let idx = (scale.iterations / 2) * SWAPTION_WORDS + 2;
        input[idx as usize] = f2w(0.0); // degenerate volatility
    }
    input
}

impl Swaptions {
    fn sequential(input: &[u64], scale: Scale) -> Vec<u64> {
        (0..scale.iterations)
            .map(|i| {
                let rec =
                    &input[(i * SWAPTION_WORDS) as usize..((i + 1) * SWAPTION_WORDS) as usize];
                price(rec).unwrap_or_else(|()| error_output(i))
            })
            .collect()
    }

    fn run_with_input(
        &self,
        mode: Mode,
        scale: Scale,
        input: Vec<u64>,
    ) -> Result<Vec<u64>, KernelError> {
        if let Mode::Sequential = mode {
            return Ok(Self::sequential(&input, scale));
        }
        let lay = layout(scale)?;
        let result = self.result_with_input(mode, 1, scale, input)?;
        Ok(load_words(&result.master, lay.out_base, scale.iterations))
    }

    /// The parallel paths, at an explicit try-commit shard count,
    /// returning the full run result.
    fn result_with_input(
        &self,
        mode: Mode,
        shards: usize,
        scale: Scale,
        input: Vec<u64>,
    ) -> Result<RunResult, KernelError> {
        let n = scale.iterations;
        let workers = match mode {
            Mode::Sequential => unreachable!("parallel paths only"),
            // The paper notes both parallelizations are identical
            // Spec-DOALL for this benchmark.
            Mode::Dsmtx { workers } | Mode::Tls { workers } => workers.max(1),
        };
        let lay = layout(scale)?;
        let (in_base, out_base) = (lay.in_base, lay.out_base);
        let mut master = MasterMem::new();
        store_words(&mut master, in_base, &input);

        let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
            if mtx.0 >= n {
                return Ok(IterOutcome::Continue);
            }
            let rec: Vec<u64> = (0..SWAPTION_WORDS)
                .map(|k| ctx.read_private(in_base.add_words(mtx.0 * SWAPTION_WORDS + k)))
                .collect::<Result<_, _>>()?;
            match price(&rec) {
                Ok(p) => {
                    ctx.write_no_forward(out_base.add_words(mtx.0), p)?;
                    Ok(IterOutcome::Continue)
                }
                Err(()) => ctx.misspec(),
            }
        });
        let recovery = recovery_fn(&lay);
        Ok(SpecDoall {
            replicas: workers,
            tuning: Tuning::with_unit_shards(shards),
        }
        .run(master, body, recovery, Some(n))?)
    }

    /// Runs with one degenerate swaption to exercise the error path.
    pub fn run_with_planted_error(
        &self,
        mode: Mode,
        scale: Scale,
    ) -> Result<Vec<u64>, KernelError> {
        self.run_with_input(mode, scale, generate(scale, true))
    }
}

impl Kernel for Swaptions {
    fn info(&self) -> Table2Entry {
        Table2Entry {
            name: "swaptions",
            suite: "PARSEC",
            description: "portfolio pricing",
            paradigm: Paradigm::SpecDoall,
            speculation: vec![SpecKind::ControlFlow],
        }
    }

    fn profile(&self) -> WorkloadProfile {
        WorkloadProfile {
            name: "swaptions".into(),
            // The input has a bounded number of swaptions: parallelism is
            // input-size limited.
            iter_work: 15.0e-3,
            iterations: 384,
            coverage: 0.998,
            stages: vec![StageProfile {
                shape: StageShape::Parallel,
                work_fraction: 1.0,
                bytes_out: 8.0,
            }],
            validation_words: 2.0,
            tls: TlsPlan {
                sync_fraction: 0.0,
                bytes_per_iter: 8.0,
                validation_words: 2.0,
            },
            chunked: false,
            invocation: None,
        }
    }

    fn run(&self, mode: Mode, scale: Scale) -> Result<Vec<u64>, KernelError> {
        self.run_with_input(mode, scale, generate(scale, false))
    }

    fn run_reported(
        &self,
        workers: u16,
        unit_shards: usize,
        scale: Scale,
    ) -> Result<RunResult, KernelError> {
        self.result_with_input(
            Mode::Dsmtx { workers },
            unit_shards,
            scale,
            generate(scale, false),
        )
    }

    fn plan(&self, scale: Scale) -> Result<AnalysisPlan, KernelError> {
        let lay = layout(scale)?;
        let mut master = MasterMem::new();
        store_words(&mut master, lay.in_base, &generate(scale, false));
        let recovery = recovery_fn(&lay);
        let (in_base, out_base) = (lay.in_base, lay.out_base);
        Ok(AnalysisPlan {
            name: "swaptions",
            iterations: scale.iterations,
            master,
            recovery,
            // Single Spec-DOALL stage: per-iteration disjoint reads and
            // writes, nothing carried.
            stages: vec![StageSpec::new(
                "price",
                StageRole::Parallel,
                Box::new(move |mtx| {
                    vec![
                        Region::read(
                            "swaptions",
                            in_base.add_words(mtx * SWAPTION_WORDS),
                            SWAPTION_WORDS,
                        ),
                        Region::write("out", out_base.add_words(mtx), 1),
                    ]
                }),
            )],
            shard_map: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_agree() {
        let k = Swaptions;
        let scale = Scale::test();
        let seq = k.run(Mode::Sequential, scale).unwrap();
        let par = k.run(Mode::Dsmtx { workers: 3 }, scale).unwrap();
        let tls = k.run(Mode::Tls { workers: 2 }, scale).unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq, tls);
    }

    #[test]
    fn error_path_recovers() {
        let k = Swaptions;
        let scale = Scale::test();
        let seq = k.run_with_planted_error(Mode::Sequential, scale).unwrap();
        let par = k
            .run_with_planted_error(Mode::Dsmtx { workers: 2 }, scale)
            .unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn prices_are_positive_and_vol_sensitive() {
        let lo = w2f(price(&[f2w(0.05), f2w(5.0), f2w(0.05), 42]).unwrap());
        let hi = w2f(price(&[f2w(0.05), f2w(5.0), f2w(0.35), 42]).unwrap());
        assert!(lo >= 0.0);
        assert!(
            hi > lo,
            "higher volatility raises option value: {hi} vs {lo}"
        );
    }

    #[test]
    fn profile_is_consistent() {
        Swaptions.profile().check();
    }
}
