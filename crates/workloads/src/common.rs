//! Shared kernel infrastructure.

use dsmtx::RunResult;
use dsmtx_mem::MasterMem;
use dsmtx_paradigms::executor::ExecError;
use dsmtx_paradigms::{Paradigm, SpecKind};
use dsmtx_sim::WorkloadProfile;
use dsmtx_uva::{OwnerId, RegionAllocator, VAddr};

use crate::analysis::AnalysisPlan;

/// How to execute a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Single-threaded reference implementation.
    Sequential,
    /// The benchmark's best DSMTX plan (Table 2 paradigm) on the real
    /// runtime.
    Dsmtx {
        /// Parallel-stage worker count.
        workers: u16,
    },
    /// The TLS-only cluster baseline.
    Tls {
        /// Worker count.
        workers: u16,
    },
}

/// Input scale, so tests run small and benches run larger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Outer iteration count (loop iterations / files / GoPs / …).
    pub iterations: u64,
    /// Per-iteration data size in words.
    pub unit: u64,
    /// Deterministic input seed.
    pub seed: u64,
}

impl Scale {
    /// Small scale for tests (1-CPU friendly).
    pub fn test() -> Self {
        Scale {
            iterations: 8,
            unit: 24,
            seed: 0x5EED,
        }
    }

    /// Moderate scale for benches.
    pub fn bench() -> Self {
        Scale {
            iterations: 32,
            unit: 256,
            seed: 0x5EED,
        }
    }
}

/// Table 2 metadata for one benchmark.
#[derive(Debug, Clone)]
pub struct Table2Entry {
    /// Benchmark name (e.g. "164.gzip").
    pub name: &'static str,
    /// Source suite (e.g. "SPEC CINT 2000").
    pub suite: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Parallelization paradigm of the best DSMTX plan.
    pub paradigm: Paradigm,
    /// Speculation types the plan relies on.
    pub speculation: Vec<SpecKind>,
}

/// Kernel execution failure.
#[derive(Debug)]
pub struct KernelError(pub String);

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "kernel failed: {}", self.0)
    }
}

impl std::error::Error for KernelError {}

impl From<ExecError> for KernelError {
    fn from(e: ExecError) -> Self {
        KernelError(e.to_string())
    }
}

/// One reproduced benchmark.
pub trait Kernel: Send + Sync {
    /// Table 2 metadata.
    fn info(&self) -> Table2Entry;
    /// Simulator profile calibrated to the paper's curves.
    fn profile(&self) -> WorkloadProfile;
    /// Executes the kernel and returns its output words.
    ///
    /// # Errors
    ///
    /// Runtime failures (thread panics, configuration errors).
    fn run(&self, mode: Mode, scale: Scale) -> Result<Vec<u64>, KernelError>;

    /// Runs the shipped Table-2 DSMTX plan at an explicit try-commit
    /// shard count and returns the full [`RunResult`] (committed memory
    /// plus report). The analyzer's certification pass reads observed
    /// conflict pages out of the report and checks them against the
    /// sites predicted from the sequential dependence graph.
    ///
    /// # Errors
    ///
    /// Runtime failures (thread panics, configuration errors).
    fn run_reported(
        &self,
        workers: u16,
        unit_shards: usize,
        scale: Scale,
    ) -> Result<RunResult, KernelError>;

    /// The analyzable description of the kernel's loop: pre-loop
    /// committed memory, the sequential recovery body, and the declared
    /// stage partition with per-iteration footprints.
    ///
    /// # Errors
    ///
    /// Address-space exhaustion while rebuilding the heap layout.
    fn plan(&self, scale: Scale) -> Result<AnalysisPlan, KernelError>;
}

// ---------------------------------------------------------------------
// Helpers used by every kernel implementation.
// ---------------------------------------------------------------------

/// A deterministic xorshift* stream for input generation.
#[derive(Debug, Clone)]
pub struct Stream(u64);

#[allow(clippy::should_implement_trait)] // a stream of words, not an Iterator
impl Stream {
    /// Seeds the stream (zero is remapped).
    pub fn new(seed: u64) -> Self {
        Stream(seed.max(1))
    }

    /// Next pseudo-random word.
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next word in `0..bound`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// f64 ↔ word transmutation for kernels doing floating-point math in
/// DSMTX memory.
pub fn f2w(f: f64) -> u64 {
    f.to_bits()
}

/// See [`f2w`].
pub fn w2f(w: u64) -> f64 {
    f64::from_bits(w)
}

/// The commit unit's allocator (owner 0): pre-loop sequential state.
pub fn master_heap() -> RegionAllocator {
    RegionAllocator::new(OwnerId(0))
}

/// Writes `data` into `master` starting at `base`.
pub fn store_words(master: &mut MasterMem, base: VAddr, data: &[u64]) {
    for (i, &w) in data.iter().enumerate() {
        master.write(base.add_words(i as u64), w);
    }
}

/// Reads `len` words from `master` starting at `base`.
pub fn load_words(master: &MasterMem, base: VAddr, len: u64) -> Vec<u64> {
    (0..len).map(|i| master.read(base.add_words(i))).collect()
}

/// Profiles a kernel's sequential body and builds a balanced page→shard
/// placement from the stores a worker would actually ship: runs
/// `recovery` once per iteration against `master` with recording on,
/// filters each iteration's access log through the worker-side
/// [`dsmtx::AccessFilter`] (so coalesced stores weigh once, as on the
/// wire), and greedily balances the per-page store counts over four
/// nominal shards ([`dsmtx_mem::ShardMap::balance`] — the map re-wraps
/// `% n` so it stays valid at any shard count).
///
/// Kernels with a skewed store profile call this from `plan()` and ship
/// the result in [`AnalysisPlan::shard_map`]; `run_reported` installs it
/// on the pipeline.
pub fn profiled_shard_map(
    mut master: MasterMem,
    recovery: &mut dsmtx::RecoveryFn,
    iterations: u64,
) -> dsmtx_mem::ShardMap {
    let mut filter = dsmtx::AccessFilter::new();
    let mut filtered = Vec::new();
    let mut stream = Vec::new();
    for i in 0..iterations {
        master.set_recording(true);
        let outcome = recovery(dsmtx::MtxId(i), &mut master);
        master.set_recording(false);
        let raw = master.drain_recorded();
        filter.filter_into(&raw, &mut filtered);
        stream.append(&mut filtered);
        if matches!(outcome, dsmtx::IterOutcome::Exit) {
            break;
        }
    }
    dsmtx_mem::ShardMap::balance(&stream, 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_varied() {
        let mut a = Stream::new(42);
        let mut b = Stream::new(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next()).collect();
        assert_eq!(xs, ys);
        let distinct: std::collections::HashSet<_> = xs.iter().collect();
        assert!(distinct.len() >= 15);
    }

    #[test]
    fn below_respects_bound() {
        let mut s = Stream::new(7);
        for _ in 0..100 {
            assert!(s.below(10) < 10);
        }
        assert_eq!(s.below(0), 0, "zero bound is clamped");
    }

    #[test]
    fn float_roundtrip() {
        for v in [0.0, 1.5, -3.25, f64::MAX, 1e-300] {
            assert_eq!(w2f(f2w(v)), v);
        }
    }

    #[test]
    fn store_load_roundtrip() {
        let mut m = MasterMem::new();
        let mut heap = master_heap();
        let base = heap.alloc_words(5).unwrap();
        store_words(&mut m, base, &[1, 2, 3, 4, 5]);
        assert_eq!(load_words(&m, base, 5), vec![1, 2, 3, 4, 5]);
    }
}
