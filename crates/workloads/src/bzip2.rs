//! `256.bzip2` — SPEC CINT2000 file compressor.
//!
//! Paper plan: `Spec-DSWP+[S, DOALL, S]` with control-flow speculation on
//! error paths and versioned block arrays. Unlike `164.gzip`, the block
//! size is known in the first stage (no Y-branch). The interesting twist
//! (§5.2): Spec-DSWP ships the whole input down the pipeline while the
//! TLS plan sends only the file descriptor — so TLS needs less bandwidth
//! and performs slightly better on this one benchmark.
//!
//! Kernel: per-block move-to-front transform followed by run-length
//! coding, with extra mixing rounds to model bzip2's higher
//! compute-per-byte. Error paths (an in-band marker) are speculated
//! untaken.

use std::sync::Arc;

use dsmtx::{
    IterOutcome, MtxId, RecoveryFn, Region, RunResult, StageId, StageRole, StageSpec, WorkerCtx,
};
use dsmtx_mem::MasterMem;
use dsmtx_paradigms::paradigm::StageLabel;
use dsmtx_paradigms::{Paradigm, Pipeline, SpecKind, Tls, Tuning};
use dsmtx_sim::{
    profile::{StageProfile, StageShape},
    TlsPlan, WorkloadProfile,
};
use dsmtx_uva::VAddr;

use crate::analysis::AnalysisPlan;
use crate::common::{
    load_words, master_heap, profiled_shard_map, store_words, Kernel, KernelError, Mode, Scale,
    Stream, Table2Entry,
};

/// Rare error marker (speculated untaken).
pub const ERROR_MARKER: u64 = 0xB21B_21B2_1B21_B21B;

/// Alphabet size of the move-to-front table.
const ALPHABET: usize = 16;
/// Extra mixing rounds modelling bzip2's heavier per-word work.
const MIX_ROUNDS: u32 = 24;

/// The bzip2 kernel.
#[derive(Debug, Default)]
pub struct Bzip2;

fn mix(mut w: u64) -> u64 {
    for _ in 0..MIX_ROUNDS {
        w ^= w >> 33;
        w = w.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        w ^= w >> 29;
    }
    w
}

/// MTF + RLE with a mixing checksum; `Err(())` on the error marker.
pub(crate) fn mtf_rle_compress(block: &[u64]) -> Result<Vec<u64>, ()> {
    // Move-to-front over the block's symbol space (values mod ALPHABET).
    let mut table: Vec<u64> = (0..ALPHABET as u64).collect();
    let mut ranks = Vec::with_capacity(block.len());
    let mut checksum = 0xB217u64;
    for &w in block {
        if w == ERROR_MARKER {
            return Err(());
        }
        let sym = w % ALPHABET as u64;
        let pos = table.iter().position(|&t| t == sym).expect("in table");
        ranks.push(pos as u64);
        table.remove(pos);
        table.insert(0, sym);
        checksum = checksum.rotate_left(9) ^ mix(w);
    }
    // RLE over the ranks (MTF makes repeated symbols rank 0).
    let mut out = Vec::new();
    let mut i = 0;
    while i < ranks.len() {
        let mut run = 1;
        while i + run < ranks.len() && ranks[i + run] == ranks[i] {
            run += 1;
        }
        out.push(run as u64);
        out.push(ranks[i]);
        i += run;
    }
    out.push(checksum);
    Ok(out)
}

fn error_record(block_index: u64) -> Vec<u64> {
    vec![u64::MAX, block_index]
}

fn generate(scale: Scale, plant_error: bool) -> Vec<u64> {
    let mut s = Stream::new(scale.seed ^ 0xB2);
    let total = (scale.iterations * scale.unit) as usize;
    let mut input = Vec::with_capacity(total);
    while input.len() < total {
        let value = s.below(ALPHABET as u64 / 2); // skewed alphabet
        let run = 1 + s.below(5) as usize;
        for _ in 0..run.min(total - input.len()) {
            input.push(value);
        }
    }
    if plant_error {
        let idx = (scale.iterations / 3) * scale.unit + 2;
        input[idx as usize] = ERROR_MARKER;
    }
    input
}

fn compress_or_error(block: &[u64], index: u64) -> Vec<u64> {
    mtf_rle_compress(block).unwrap_or_else(|()| error_record(index))
}

/// Shared layout of the parallel runs. Allocation order is fixed, so
/// rebuilding it always yields the same bases — `plan()` and the runners
/// agree on addresses.
struct Layout {
    in_base: VAddr,
    stream_base: VAddr,
    cursor: VAddr,
    stream_cap: u64,
}

fn layout(scale: Scale) -> Result<Layout, KernelError> {
    let n = scale.iterations;
    let stream_cap = n * (2 * scale.unit + 3);
    let mut heap = master_heap();
    let in_base = heap
        .alloc_words(n * scale.unit)
        .map_err(|e| KernelError(e.to_string()))?;
    let stream_base = heap
        .alloc_words(stream_cap)
        .map_err(|e| KernelError(e.to_string()))?;
    let cursor = heap
        .alloc_words(1)
        .map_err(|e| KernelError(e.to_string()))?;
    Ok(Layout {
        in_base,
        stream_base,
        cursor,
        stream_cap,
    })
}

fn initial_master(input: &[u64], lay: &Layout) -> MasterMem {
    let mut master = MasterMem::new();
    store_words(&mut master, lay.in_base, input);
    master
}

fn recovery_fn(lay: &Layout, scale: Scale) -> RecoveryFn {
    let (in_base, stream_base, cursor) = (lay.in_base, lay.stream_base, lay.cursor);
    let unit = scale.unit;
    Box::new(move |mtx: MtxId, master: &mut MasterMem| {
        let block = load_words(master, in_base.add_words(mtx.0 * unit), unit);
        let record = compress_or_error(&block, mtx.0);
        let cur = master.read(cursor);
        master.write(stream_base.add_words(cur), record.len() as u64);
        for (k, &w) in record.iter().enumerate() {
            master.write(stream_base.add_words(cur + 1 + k as u64), w);
        }
        master.write(cursor, cur + 1 + record.len() as u64);
        IterOutcome::Continue
    })
}

impl Bzip2 {
    fn sequential(input: &[u64], scale: Scale) -> Vec<u64> {
        let mut stream = Vec::new();
        for b in 0..scale.iterations {
            let block = &input[(b * scale.unit) as usize..((b + 1) * scale.unit) as usize];
            let record = compress_or_error(block, b);
            stream.push(record.len() as u64);
            stream.extend(record);
        }
        let mut out = vec![stream.len() as u64];
        out.extend(stream);
        out
    }

    fn run_with_input(
        &self,
        mode: Mode,
        scale: Scale,
        input: Vec<u64>,
    ) -> Result<Vec<u64>, KernelError> {
        if let Mode::Sequential = mode {
            return Ok(Self::sequential(&input, scale));
        }
        let lay = layout(scale)?;
        let result = self.result_with_input(mode, 1, scale, input)?;
        let len = result.master.read(lay.cursor);
        assert!(len <= lay.stream_cap, "stream overflow");
        let mut out = vec![len];
        out.extend(load_words(&result.master, lay.stream_base, len));
        Ok(out)
    }

    /// The parallel paths, at an explicit try-commit shard count,
    /// returning the full run result.
    fn result_with_input(
        &self,
        mode: Mode,
        shards: usize,
        scale: Scale,
        input: Vec<u64>,
    ) -> Result<RunResult, KernelError> {
        let n = scale.iterations;
        let unit = scale.unit;
        let lay = layout(scale)?;
        let master = initial_master(&input, &lay);
        let (in_base, stream_base, cursor) = (lay.in_base, lay.stream_base, lay.cursor);
        let recovery = recovery_fn(&lay, scale);

        let result = match mode {
            Mode::Dsmtx { workers } => {
                let read = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    for k in 0..unit {
                        let w = ctx.read_private(in_base.add_words(mtx.0 * unit + k))?;
                        ctx.produce_to(StageId(1), w);
                    }
                    Ok(IterOutcome::Continue)
                });
                let compress = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    let block: Vec<u64> = (0..unit).map(|_| ctx.consume_from(StageId(0))).collect();
                    match mtf_rle_compress(&block) {
                        Ok(record) => {
                            ctx.produce_to(StageId(2), record.len() as u64);
                            for w in record {
                                ctx.produce_to(StageId(2), w);
                            }
                            Ok(IterOutcome::Continue)
                        }
                        Err(()) => ctx.misspec(),
                    }
                });
                let emit = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    let len = ctx.consume_from(StageId(1));
                    let cur = ctx.read(cursor)?;
                    ctx.write_no_forward(stream_base.add_words(cur), len)?;
                    for k in 0..len {
                        let w = ctx.consume_from(StageId(1));
                        ctx.write_no_forward(stream_base.add_words(cur + 1 + k), w)?;
                    }
                    ctx.write(cursor, cur + 1 + len)?;
                    Ok(IterOutcome::Continue)
                });
                // Install the plan's profile-guided shard map so the
                // certified run routes its skewed store stream the way
                // the analyzer weighed it.
                let shard_map = profiled_shard_map(
                    initial_master(&input, &lay),
                    &mut recovery_fn(&lay, scale),
                    n,
                );
                Pipeline::new()
                    .seq(read)
                    .par(workers.max(1), compress)
                    .seq(emit)
                    .tuning(Tuning::with_unit_shards(shards))
                    .shard_map(Some(shard_map))
                    .run(master, recovery, Some(n))?
            }
            Mode::Tls { workers } => {
                // TLS ships only the block index: workers read the input
                // themselves, and the output cursor rides the ring.
                let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    let block: Vec<u64> = (0..unit)
                        .map(|k| ctx.read_private(in_base.add_words(mtx.0 * unit + k)))
                        .collect::<Result<_, _>>()?;
                    let record = match mtf_rle_compress(&block) {
                        Ok(r) => r,
                        Err(()) => return ctx.misspec(),
                    };
                    let cur = match ctx.sync_take().first() {
                        Some(&c) => c,
                        None => ctx.read(cursor)?,
                    };
                    ctx.write_no_forward(stream_base.add_words(cur), record.len() as u64)?;
                    for (k, &w) in record.iter().enumerate() {
                        ctx.write_no_forward(stream_base.add_words(cur + 1 + k as u64), w)?;
                    }
                    let next = cur + 1 + record.len() as u64;
                    ctx.write_no_forward(cursor, next)?;
                    ctx.sync_produce(next);
                    Ok(IterOutcome::Continue)
                });
                Tls {
                    replicas: workers.max(1),
                    tuning: Tuning::with_unit_shards(shards),
                }
                .run(master, body, recovery, Some(n))?
            }
            Mode::Sequential => unreachable!("parallel paths only"),
        };
        Ok(result)
    }

    /// Runs with a planted error marker.
    pub fn run_with_planted_error(
        &self,
        mode: Mode,
        scale: Scale,
    ) -> Result<Vec<u64>, KernelError> {
        self.run_with_input(mode, scale, generate(scale, true))
    }
}

impl Kernel for Bzip2 {
    fn info(&self) -> Table2Entry {
        Table2Entry {
            name: "256.bzip2",
            suite: "SPEC CINT 2000",
            description: "file compressor",
            paradigm: Paradigm::SpecDswp {
                stages: vec![StageLabel::S, StageLabel::Doall, StageLabel::S],
            },
            speculation: vec![SpecKind::ControlFlow, SpecKind::MemoryVersioning],
        }
    }

    fn profile(&self) -> WorkloadProfile {
        WorkloadProfile {
            name: "256.bzip2".into(),
            // Similar data volume to gzip but much more computation, so
            // bandwidth pressure is lower (§5.3).
            iter_work: 12.0e-3,
            iterations: 4000,
            coverage: 0.99,
            stages: vec![
                StageProfile {
                    shape: StageShape::Sequential,
                    work_fraction: 0.01,
                    bytes_out: 65_536.0,
                },
                StageProfile {
                    shape: StageShape::Parallel,
                    work_fraction: 0.98,
                    bytes_out: 16_384.0,
                },
                StageProfile {
                    shape: StageShape::Sequential,
                    work_fraction: 0.01,
                    bytes_out: 0.0,
                },
            ],
            validation_words: 96.0,
            tls: TlsPlan {
                // TLS sends only the descriptor: tiny bandwidth, small
                // synchronized segment (the output append).
                sync_fraction: 0.012,
                bytes_per_iter: 64.0,
                validation_words: 96.0,
            },
            chunked: true,
            invocation: None,
        }
    }

    fn run(&self, mode: Mode, scale: Scale) -> Result<Vec<u64>, KernelError> {
        self.run_with_input(mode, scale, generate(scale, false))
    }

    fn run_reported(
        &self,
        workers: u16,
        unit_shards: usize,
        scale: Scale,
    ) -> Result<RunResult, KernelError> {
        self.result_with_input(
            Mode::Dsmtx { workers },
            unit_shards,
            scale,
            generate(scale, false),
        )
    }

    fn plan(&self, scale: Scale) -> Result<AnalysisPlan, KernelError> {
        let lay = layout(scale)?;
        let master = initial_master(&generate(scale, false), &lay);
        let recovery = recovery_fn(&lay, scale);
        let shard_map = profiled_shard_map(
            initial_master(&generate(scale, false), &lay),
            &mut recovery_fn(&lay, scale),
            scale.iterations,
        );
        let (in_base, stream_base, cursor) = (lay.in_base, lay.stream_base, lay.cursor);
        let (unit, stream_cap) = (scale.unit, lay.stream_cap);
        Ok(AnalysisPlan {
            name: "256.bzip2",
            iterations: scale.iterations,
            master,
            recovery,
            stages: vec![
                StageSpec::new(
                    "read",
                    StageRole::Sequential,
                    Box::new(move |mtx| {
                        vec![Region::read("input", in_base.add_words(mtx * unit), unit)]
                    }),
                ),
                // MTF+RLE runs on a private block version; no committed
                // footprint.
                StageSpec::new("compress", StageRole::Parallel, Box::new(|_| Vec::new())),
                StageSpec::new(
                    "emit",
                    StageRole::Sequential,
                    Box::new(move |_| {
                        vec![
                            Region::read_write("cursor", cursor, 1),
                            Region::write("stream", stream_base, stream_cap),
                        ]
                    }),
                ),
            ],
            shard_map: Some(shard_map),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_agree() {
        let k = Bzip2;
        let scale = Scale::test();
        let seq = k.run(Mode::Sequential, scale).unwrap();
        let par = k.run(Mode::Dsmtx { workers: 2 }, scale).unwrap();
        let tls = k.run(Mode::Tls { workers: 2 }, scale).unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq, tls);
    }

    #[test]
    fn error_path_recovers() {
        let k = Bzip2;
        let scale = Scale::test();
        let seq = k.run_with_planted_error(Mode::Sequential, scale).unwrap();
        let tls = k
            .run_with_planted_error(Mode::Tls { workers: 2 }, scale)
            .unwrap();
        assert_eq!(seq, tls);
        assert!(seq.contains(&u64::MAX));
    }

    #[test]
    fn mtf_moves_repeats_to_rank_zero() {
        let out = mtf_rle_compress(&[5, 5, 5, 5]).unwrap();
        // First access: rank of 5 in the identity table, then a run of
        // three rank-0 hits.
        assert_eq!(&out[..4], &[1, 5, 3, 0]);
    }

    #[test]
    fn compression_is_content_sensitive() {
        let a = mtf_rle_compress(&[1, 2, 3]).unwrap();
        let b = mtf_rle_compress(&[3, 2, 1]).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn profile_is_consistent() {
        Bzip2.profile().check();
    }
}
