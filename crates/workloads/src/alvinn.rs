//! `052.alvinn` — SPEC CFP92 neural network training.
//!
//! Paper plan: `Spec-DOALL` over the second-level loop of a nest. Every
//! invocation re-initializes the workers with data from the commit unit
//! and ends with a reduction over many arrays, and those per-invocation
//! synchronizations limit the speedup (§5.2). The DSMTX and TLS
//! parallelizations are identical.
//!
//! Kernel: a tiny two-layer perceptron trained by epoch. Each epoch
//! (invocation) runs a Spec-DOALL loop over the training samples: every
//! iteration does the forward pass and writes its gradient contribution to
//! a private slot (memory versioning keeps the slots independent). The
//! sequential inter-invocation code — the commit unit's role — reduces
//! the gradients and updates the weights, seeding the next epoch.

use std::sync::Arc;

use dsmtx::{
    IterOutcome, MtxId, RecoveryFn, Region, RunResult, StageFn, StageRole, StageSpec, WorkerCtx,
};
use dsmtx_mem::MasterMem;
use dsmtx_paradigms::{Paradigm, Pipeline, SpecDoall, SpecKind, Tuning};
use dsmtx_sim::{
    profile::{StageProfile, StageShape},
    InvocationProfile, TlsPlan, WorkloadProfile,
};

use dsmtx_uva::VAddr;

use crate::analysis::AnalysisPlan;
use crate::common::{
    f2w, load_words, master_heap, profiled_shard_map, store_words, w2f, Kernel, KernelError, Mode,
    Scale, Stream, Table2Entry,
};

/// Input neurons.
pub const IN: u64 = 6;
/// Hidden neurons.
pub const HID: u64 = 4;
/// Output neurons.
pub const OUT: u64 = 2;
/// Training epochs (loop-nest invocations).
pub const EPOCHS: u64 = 3;
/// Learning rate.
const ETA: f64 = 0.05;

const W1_WORDS: u64 = IN * HID;
const W2_WORDS: u64 = HID * OUT;
const GRAD_WORDS: u64 = W1_WORDS + W2_WORDS;
const SAMPLE_WORDS: u64 = IN + OUT;

/// The alvinn kernel.
#[derive(Debug, Default)]
pub struct Alvinn;

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Forward + backward pass for one sample; returns the gradient
/// contribution (concatenated ∂W1, ∂W2).
fn gradient(w1: &[f64], w2: &[f64], sample: &[f64]) -> Vec<f64> {
    let input = &sample[..IN as usize];
    let target = &sample[IN as usize..];
    // Forward.
    let mut hidden = [0.0f64; HID as usize];
    for h in 0..HID as usize {
        let mut acc = 0.0;
        for i in 0..IN as usize {
            acc += w1[i * HID as usize + h] * input[i];
        }
        hidden[h] = sigmoid(acc);
    }
    let mut output = [0.0f64; OUT as usize];
    for o in 0..OUT as usize {
        let mut acc = 0.0;
        for h in 0..HID as usize {
            acc += w2[h * OUT as usize + o] * hidden[h];
        }
        output[o] = sigmoid(acc);
    }
    // Backward.
    let mut delta_out = [0.0f64; OUT as usize];
    for o in 0..OUT as usize {
        delta_out[o] = (target[o] - output[o]) * output[o] * (1.0 - output[o]);
    }
    let mut delta_hid = [0.0f64; HID as usize];
    for h in 0..HID as usize {
        let mut acc = 0.0;
        for o in 0..OUT as usize {
            acc += delta_out[o] * w2[h * OUT as usize + o];
        }
        delta_hid[h] = acc * hidden[h] * (1.0 - hidden[h]);
    }
    let mut grad = vec![0.0f64; GRAD_WORDS as usize];
    for i in 0..IN as usize {
        for h in 0..HID as usize {
            grad[i * HID as usize + h] = delta_hid[h] * input[i];
        }
    }
    for h in 0..HID as usize {
        for o in 0..OUT as usize {
            grad[W1_WORDS as usize + h * OUT as usize + o] = delta_out[o] * hidden[h];
        }
    }
    grad
}

fn generate(scale: Scale) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut s = Stream::new(scale.seed);
    let mut rnd = |scale: f64| (s.below(2001) as f64 / 1000.0 - 1.0) * scale;
    let w1: Vec<f64> = (0..W1_WORDS).map(|_| rnd(0.5)).collect();
    let w2: Vec<f64> = (0..W2_WORDS).map(|_| rnd(0.5)).collect();
    let samples: Vec<f64> = (0..scale.iterations * SAMPLE_WORDS)
        .map(|k| {
            if k % SAMPLE_WORDS >= IN {
                (rnd(0.5) + 1.0) / 2.0 // targets in (0, 1)
            } else {
                rnd(1.0)
            }
        })
        .collect();
    (w1, w2, samples)
}

/// Applies the summed gradients to the weights (the sequential
/// inter-invocation reduction).
fn apply_epoch(w1: &mut [f64], w2: &mut [f64], grads: &[Vec<f64>]) {
    for g in grads {
        for (i, w) in w1.iter_mut().enumerate() {
            *w += ETA * g[i];
        }
        for (i, w) in w2.iter_mut().enumerate() {
            *w += ETA * g[W1_WORDS as usize + i];
        }
    }
}

/// Heap layout of the parallel plan (deterministic allocation order, so
/// `plan()` and the runners agree on addresses).
struct Layout {
    w_base: VAddr,
    s_base: VAddr,
    g_base: VAddr,
}

fn layout(scale: Scale) -> Result<Layout, KernelError> {
    let n = scale.iterations;
    let mut heap = master_heap();
    let w_base = heap
        .alloc_words(W1_WORDS + W2_WORDS)
        .map_err(|e| KernelError(e.to_string()))?;
    let s_base = heap
        .alloc_words(n * SAMPLE_WORDS)
        .map_err(|e| KernelError(e.to_string()))?;
    let g_base = heap
        .alloc_words(n * GRAD_WORDS)
        .map_err(|e| KernelError(e.to_string()))?;
    Ok(Layout {
        w_base,
        s_base,
        g_base,
    })
}

/// Committed memory at first-invocation entry: initial weights + samples.
fn initial_master(lay: &Layout, scale: Scale) -> MasterMem {
    let (w1_init, w2_init, samples) = generate(scale);
    let mut master = MasterMem::new();
    let weight_words: Vec<u64> = w1_init
        .iter()
        .chain(w2_init.iter())
        .map(|&f| f2w(f))
        .collect();
    store_words(&mut master, lay.w_base, &weight_words);
    let sample_words: Vec<u64> = samples.iter().map(|&f| f2w(f)).collect();
    store_words(&mut master, lay.s_base, &sample_words);
    master
}

fn body_fn(lay: &Layout, n: u64) -> StageFn {
    let (w_base, s_base, g_base) = (lay.w_base, lay.s_base, lay.g_base);
    Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        if mtx.0 >= n {
            return Ok(IterOutcome::Continue);
        }
        // Live-in weights arrive by Copy-On-Access each invocation.
        let mut w1 = [0.0f64; W1_WORDS as usize];
        for (k, w) in w1.iter_mut().enumerate() {
            *w = w2f(ctx.read(w_base.add_words(k as u64))?);
        }
        let mut w2 = [0.0f64; W2_WORDS as usize];
        for (k, w) in w2.iter_mut().enumerate() {
            *w = w2f(ctx.read(w_base.add_words(W1_WORDS + k as u64))?);
        }
        let mut sample = [0.0f64; SAMPLE_WORDS as usize];
        for (k, v) in sample.iter_mut().enumerate() {
            *v = w2f(ctx.read_private(s_base.add_words(mtx.0 * SAMPLE_WORDS + k as u64))?);
        }
        let grad = gradient(&w1, &w2, &sample);
        // Private gradient slot: memory versioning, no conflicts.
        for (k, g) in grad.iter().enumerate() {
            ctx.write_no_forward(g_base.add_words(mtx.0 * GRAD_WORDS + k as u64), f2w(*g))?;
        }
        Ok(IterOutcome::Continue)
    })
}

fn recovery_fn(lay: &Layout) -> RecoveryFn {
    let (w_base, s_base, g_base) = (lay.w_base, lay.s_base, lay.g_base);
    Box::new(move |mtx: MtxId, master: &mut MasterMem| {
        let w: Vec<f64> = load_words(master, w_base, W1_WORDS + W2_WORDS)
            .into_iter()
            .map(w2f)
            .collect();
        let s: Vec<f64> = load_words(master, s_base.add_words(mtx.0 * SAMPLE_WORDS), SAMPLE_WORDS)
            .into_iter()
            .map(w2f)
            .collect();
        let grad = gradient(&w[..W1_WORDS as usize], &w[W1_WORDS as usize..], &s);
        for (k, g) in grad.iter().enumerate() {
            master.write(g_base.add_words(mtx.0 * GRAD_WORDS + k as u64), f2w(*g));
        }
        IterOutcome::Continue
    })
}

impl Alvinn {
    fn sequential(scale: Scale) -> Vec<u64> {
        let (mut w1, mut w2, samples) = generate(scale);
        for _ in 0..EPOCHS {
            let grads: Vec<Vec<f64>> = (0..scale.iterations)
                .map(|i| {
                    let s =
                        &samples[(i * SAMPLE_WORDS) as usize..((i + 1) * SAMPLE_WORDS) as usize];
                    gradient(&w1, &w2, s)
                })
                .collect();
            apply_epoch(&mut w1, &mut w2, &grads);
        }
        w1.iter().chain(w2.iter()).map(|&f| f2w(f)).collect()
    }

    fn parallel(scale: Scale, workers: u16) -> Result<Vec<u64>, KernelError> {
        let n = scale.iterations;
        let lay = layout(scale)?;
        let (w_base, g_base) = (lay.w_base, lay.g_base);
        let mut master = initial_master(&lay, scale);
        let body = body_fn(&lay, n);

        for _epoch in 0..EPOCHS {
            let recovery = recovery_fn(&lay);
            let result =
                SpecDoall::new(workers.max(1)).run(master, body.clone(), recovery, Some(n))?;
            master = result.master;
            // Inter-invocation sequential code (commit unit): reduce the
            // gradient arrays and update the weights.
            let mut w1: Vec<f64> = load_words(&master, w_base, W1_WORDS)
                .into_iter()
                .map(w2f)
                .collect();
            let mut w2: Vec<f64> = load_words(&master, w_base.add_words(W1_WORDS), W2_WORDS)
                .into_iter()
                .map(w2f)
                .collect();
            let grads: Vec<Vec<f64>> = (0..n)
                .map(|i| {
                    load_words(&master, g_base.add_words(i * GRAD_WORDS), GRAD_WORDS)
                        .into_iter()
                        .map(w2f)
                        .collect()
                })
                .collect();
            apply_epoch(&mut w1, &mut w2, &grads);
            let weight_words: Vec<u64> = w1.iter().chain(w2.iter()).map(|&f| f2w(f)).collect();
            store_words(&mut master, w_base, &weight_words);
        }
        Ok(load_words(&master, w_base, W1_WORDS + W2_WORDS))
    }
}

impl Kernel for Alvinn {
    fn info(&self) -> Table2Entry {
        Table2Entry {
            name: "052.alvinn",
            suite: "SPEC CFP 92",
            description: "neural network",
            paradigm: Paradigm::SpecDoall,
            speculation: vec![SpecKind::MemoryVersioning],
        }
    }

    fn profile(&self) -> WorkloadProfile {
        WorkloadProfile {
            name: "052.alvinn".into(),
            iter_work: 120.0e-6,
            iterations: 2400,
            coverage: 0.99,
            stages: vec![StageProfile {
                shape: StageShape::Parallel,
                work_fraction: 1.0,
                bytes_out: 360.0, // the gradient contribution
            }],
            validation_words: 50.0,
            tls: TlsPlan {
                sync_fraction: 0.0,
                bytes_per_iter: 360.0,
                validation_words: 50.0,
            },
            // The invocation-boundary synchronizations that plateau the
            // curve: live-in weights out, gradient arrays back.
            chunked: true,
            invocation: Some(InvocationProfile {
                count: 40,
                init_bytes_per_worker: 6_000.0,
                reduce_bytes_per_worker: 6_000.0,
            }),
        }
    }

    fn run(&self, mode: Mode, scale: Scale) -> Result<Vec<u64>, KernelError> {
        match mode {
            Mode::Sequential => Ok(Self::sequential(scale)),
            // Both parallelizations are the same Spec-DOALL (§5.1).
            Mode::Dsmtx { workers } | Mode::Tls { workers } => Self::parallel(scale, workers),
        }
    }

    /// One invocation (the first epoch's Spec-DOALL section) at an
    /// explicit shard count — the certified parallel section; the
    /// inter-invocation weight update is sequential commit-unit code.
    fn run_reported(
        &self,
        workers: u16,
        unit_shards: usize,
        scale: Scale,
    ) -> Result<RunResult, KernelError> {
        let n = scale.iterations;
        let lay = layout(scale)?;
        let master = initial_master(&lay, scale);
        let body = body_fn(&lay, n);
        let recovery = recovery_fn(&lay);
        // The plan ships a profile-guided shard map (the store stream is
        // heavily page-skewed); install it so the certified run routes
        // validation traffic the way the analyzer weighed it.
        let shard_map = profiled_shard_map(initial_master(&lay, scale), &mut recovery_fn(&lay), n);
        Ok(Pipeline::new()
            .par(workers.max(1), body)
            .tuning(Tuning::with_unit_shards(unit_shards))
            .shard_map(Some(shard_map))
            .run(master, recovery, Some(n))?)
    }

    /// The first invocation's loop: weights are live-in (validated
    /// reads), samples private, gradient slots disjoint per iteration.
    fn plan(&self, scale: Scale) -> Result<AnalysisPlan, KernelError> {
        let lay = layout(scale)?;
        let master = initial_master(&lay, scale);
        let recovery = recovery_fn(&lay);
        let shard_map = profiled_shard_map(
            initial_master(&lay, scale),
            &mut recovery_fn(&lay),
            scale.iterations,
        );
        let (w_base, s_base, g_base) = (lay.w_base, lay.s_base, lay.g_base);
        Ok(AnalysisPlan {
            name: "052.alvinn",
            iterations: scale.iterations,
            master,
            recovery,
            stages: vec![StageSpec::new(
                "train",
                StageRole::Parallel,
                Box::new(move |mtx| {
                    vec![
                        Region::read("weights", w_base, W1_WORDS + W2_WORDS),
                        Region::read(
                            "samples",
                            s_base.add_words(mtx * SAMPLE_WORDS),
                            SAMPLE_WORDS,
                        ),
                        Region::write("grads", g_base.add_words(mtx * GRAD_WORDS), GRAD_WORDS),
                    ]
                }),
            )],
            shard_map: Some(shard_map),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_matches_sequential_exactly() {
        let k = Alvinn;
        let scale = Scale::test();
        let seq = k.run(Mode::Sequential, scale).unwrap();
        let par = k.run(Mode::Dsmtx { workers: 3 }, scale).unwrap();
        assert_eq!(seq, par, "bitwise-identical weights after training");
    }

    #[test]
    fn training_changes_weights() {
        let scale = Scale::test();
        let (w1, w2, _) = generate(scale);
        let init: Vec<u64> = w1.iter().chain(w2.iter()).map(|&f| f2w(f)).collect();
        let trained = Alvinn.run(Mode::Sequential, scale).unwrap();
        assert_ne!(init, trained);
    }

    #[test]
    fn gradient_is_zero_for_perfect_output_direction() {
        // With zero input, ∂W1 must be zero (delta × input).
        let w1 = vec![0.1; W1_WORDS as usize];
        let w2 = vec![0.1; W2_WORDS as usize];
        let mut sample = vec![0.0; SAMPLE_WORDS as usize];
        sample[IN as usize] = 0.5;
        let g = gradient(&w1, &w2, &sample);
        for v in &g[..W1_WORDS as usize] {
            assert_eq!(*v, 0.0);
        }
    }

    #[test]
    fn profile_is_consistent() {
        Alvinn.profile().check();
    }
}
