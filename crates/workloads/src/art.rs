//! `179.art` — SPEC CFP2000 image recognition (Adaptive Resonance Theory).
//!
//! Paper plan: `Spec-DSWP+[S, DOALL, S]`. Iteration execution times are
//! highly unbalanced because the inner loops' trip counts vary, so the
//! first stage distributes work by queue occupancy; TLS's round-trip
//! communication makes its speedup grow slower than Spec-DSWP (§5.2).
//! This reproduction's runtime distributes round-robin (occupancy-based
//! dispatch is future work); the imbalance itself is faithfully present.
//!
//! Kernel: each iteration matches one image window against a template
//! bank; the refinement loop's trip count is data-dependent and varies by
//! an order of magnitude. A sequential stage tracks the global best
//! match.

use std::sync::Arc;

use dsmtx::{
    IterOutcome, MtxId, RecoveryFn, Region, RunResult, StageId, StageRole, StageSpec, WorkerCtx,
};
use dsmtx_mem::MasterMem;
use dsmtx_paradigms::paradigm::StageLabel;
use dsmtx_paradigms::{Paradigm, Pipeline, SpecKind, Tls, Tuning};
use dsmtx_sim::{
    profile::{StageProfile, StageShape},
    TlsPlan, WorkloadProfile,
};
use dsmtx_uva::VAddr;

use crate::analysis::AnalysisPlan;
use crate::common::{
    load_words, master_heap, store_words, Kernel, KernelError, Mode, Scale, Stream, Table2Entry,
};

/// Maximum refinement iterations (the imbalance knob).
const MAX_TRIPS: u64 = 24;

/// The art kernel.
#[derive(Debug, Default)]
pub struct Art;

/// Data-dependent refinement trip count for a window.
pub(crate) fn trips(window: &[u64]) -> u64 {
    1 + window.first().copied().unwrap_or(0) % MAX_TRIPS
}

/// Matches one window: iterative refinement whose length varies per
/// window. Returns the match score.
pub(crate) fn match_window(window: &[u64]) -> u64 {
    let t = trips(window);
    let mut acc = 0x9E37_79B9u64;
    for round in 0..t {
        for &px in window {
            acc = acc
                .rotate_left(((px % 13) + round) as u32 % 63)
                .wrapping_add(px.wrapping_mul(round * 2 + 1));
        }
    }
    acc
}

fn generate(scale: Scale) -> Vec<u64> {
    let mut s = Stream::new(scale.seed ^ 0x179);
    (0..scale.iterations * scale.unit)
        .map(|_| s.below(251))
        .collect()
}

/// Folds a score into the `[best_score, best_index]` state.
fn fold_best(state: &mut [u64], score: u64, index: u64) {
    if score > state[0] {
        state[0] = score;
        state[1] = index;
    }
}

/// Shared layout of the parallel runs. Allocation order is fixed, so
/// rebuilding it always yields the same bases — `plan()` and the runners
/// agree on addresses.
struct Layout {
    w_base: VAddr,
    out_base: VAddr,
    best_base: VAddr,
}

fn layout(scale: Scale) -> Result<Layout, KernelError> {
    let n = scale.iterations;
    let mut heap = master_heap();
    let w_base = heap
        .alloc_words(n * scale.unit)
        .map_err(|e| KernelError(e.to_string()))?;
    let out_base = heap
        .alloc_words(n)
        .map_err(|e| KernelError(e.to_string()))?;
    let best_base = heap
        .alloc_words(2)
        .map_err(|e| KernelError(e.to_string()))?;
    Ok(Layout {
        w_base,
        out_base,
        best_base,
    })
}

fn initial_master(windows: &[u64], lay: &Layout) -> MasterMem {
    let mut master = MasterMem::new();
    store_words(&mut master, lay.w_base, windows);
    master
}

fn recovery_fn(lay: &Layout, scale: Scale) -> RecoveryFn {
    let (w_base, out_base, best_base) = (lay.w_base, lay.out_base, lay.best_base);
    let unit = scale.unit;
    Box::new(move |mtx: MtxId, master: &mut MasterMem| {
        let window = load_words(master, w_base.add_words(mtx.0 * unit), unit);
        let score = match_window(&window);
        master.write(out_base.add_words(mtx.0), score);
        let mut best = [master.read(best_base), master.read(best_base.add_words(1))];
        fold_best(&mut best, score, mtx.0);
        master.write(best_base, best[0]);
        master.write(best_base.add_words(1), best[1]);
        IterOutcome::Continue
    })
}

impl Art {
    fn sequential(windows: &[u64], scale: Scale) -> Vec<u64> {
        let mut best = [0u64, 0u64];
        let mut out = Vec::with_capacity(scale.iterations as usize + 2);
        for i in 0..scale.iterations {
            let w = &windows[(i * scale.unit) as usize..((i + 1) * scale.unit) as usize];
            let score = match_window(w);
            out.push(score);
            fold_best(&mut best, score, i);
        }
        out.extend_from_slice(&best);
        out
    }

    fn run_generated(&self, mode: Mode, scale: Scale) -> Result<Vec<u64>, KernelError> {
        if let Mode::Sequential = mode {
            return Ok(Self::sequential(&generate(scale), scale));
        }
        let lay = layout(scale)?;
        let result = self.result_generated(mode, 1, scale)?;
        let mut out = load_words(&result.master, lay.out_base, scale.iterations);
        out.push(result.master.read(lay.best_base));
        out.push(result.master.read(lay.best_base.add_words(1)));
        Ok(out)
    }

    /// The parallel paths, at an explicit try-commit shard count,
    /// returning the full run result.
    fn result_generated(
        &self,
        mode: Mode,
        shards: usize,
        scale: Scale,
    ) -> Result<RunResult, KernelError> {
        let windows = generate(scale);
        let n = scale.iterations;
        let unit = scale.unit;
        let lay = layout(scale)?;
        let master = initial_master(&windows, &lay);
        let (w_base, out_base, best_base) = (lay.w_base, lay.out_base, lay.best_base);
        let recovery = recovery_fn(&lay, scale);

        let compute_score = move |ctx: &mut WorkerCtx, i: u64| -> Result<u64, dsmtx::Interrupt> {
            let window: Vec<u64> = (0..unit)
                .map(|k| ctx.read_private(w_base.add_words(i * unit + k)))
                .collect::<Result<_, _>>()?;
            Ok(match_window(&window))
        };

        let result = match mode {
            Mode::Dsmtx { workers } => {
                let dispatch = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    ctx.produce_to(StageId(1), mtx.0);
                    Ok(IterOutcome::Continue)
                });
                let matcher = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    let i = ctx.consume_from(StageId(0));
                    let score = compute_score(ctx, i)?;
                    ctx.produce_to(StageId(2), score);
                    Ok(IterOutcome::Continue)
                });
                let reduce = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    let score = ctx.consume_from(StageId(1));
                    ctx.write_no_forward(out_base.add_words(mtx.0), score)?;
                    let best0 = ctx.read(best_base)?;
                    if score > best0 {
                        ctx.write_no_forward(best_base, score)?;
                        ctx.write_no_forward(best_base.add_words(1), mtx.0)?;
                    }
                    Ok(IterOutcome::Continue)
                });
                Pipeline::new()
                    .seq(dispatch)
                    .par(workers.max(1), matcher)
                    .seq(reduce)
                    .tuning(Tuning::with_unit_shards(shards))
                    .run(master, recovery, Some(n))?
            }
            Mode::Tls { workers } => {
                let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    let score = compute_score(ctx, mtx.0)?;
                    ctx.write_no_forward(out_base.add_words(mtx.0), score)?;
                    let incoming = ctx.sync_take();
                    let mut best = if incoming.len() == 2 {
                        [incoming[0], incoming[1]]
                    } else {
                        [ctx.read(best_base)?, ctx.read(best_base.add_words(1))?]
                    };
                    fold_best(&mut best, score, mtx.0);
                    ctx.write_no_forward(best_base, best[0])?;
                    ctx.write_no_forward(best_base.add_words(1), best[1])?;
                    ctx.sync_produce(best[0]);
                    ctx.sync_produce(best[1]);
                    Ok(IterOutcome::Continue)
                });
                Tls {
                    replicas: workers.max(1),
                    tuning: Tuning::with_unit_shards(shards),
                }
                .run(master, body, recovery, Some(n))?
            }
            Mode::Sequential => unreachable!("parallel paths only"),
        };
        Ok(result)
    }
}

impl Kernel for Art {
    fn info(&self) -> Table2Entry {
        Table2Entry {
            name: "179.art",
            suite: "SPEC CFP 2000",
            description: "image recognition",
            paradigm: Paradigm::SpecDswp {
                stages: vec![StageLabel::S, StageLabel::Doall, StageLabel::S],
            },
            speculation: vec![SpecKind::MemoryVersioning],
        }
    }

    fn profile(&self) -> WorkloadProfile {
        WorkloadProfile {
            name: "179.art".into(),
            iter_work: 3.0e-3,
            iterations: 6000,
            coverage: 0.99,
            stages: vec![
                StageProfile {
                    shape: StageShape::Sequential,
                    work_fraction: 0.01,
                    bytes_out: 4_096.0,
                },
                StageProfile {
                    shape: StageShape::Parallel,
                    work_fraction: 0.98,
                    bytes_out: 16.0,
                },
                StageProfile {
                    shape: StageShape::Sequential,
                    work_fraction: 0.01,
                    bytes_out: 0.0,
                },
            ],
            validation_words: 24.0,
            tls: TlsPlan {
                // The round-trip for the best-match state slows TLS as
                // cores (and hence latency) grow.
                sync_fraction: 0.035,
                bytes_per_iter: 256.0,
                validation_words: 24.0,
            },
            chunked: false,
            invocation: None,
        }
    }

    fn run(&self, mode: Mode, scale: Scale) -> Result<Vec<u64>, KernelError> {
        self.run_generated(mode, scale)
    }

    fn run_reported(
        &self,
        workers: u16,
        unit_shards: usize,
        scale: Scale,
    ) -> Result<RunResult, KernelError> {
        self.result_generated(Mode::Dsmtx { workers }, unit_shards, scale)
    }

    fn plan(&self, scale: Scale) -> Result<AnalysisPlan, KernelError> {
        let lay = layout(scale)?;
        let master = initial_master(&generate(scale), &lay);
        let recovery = recovery_fn(&lay, scale);
        let (w_base, out_base, best_base) = (lay.w_base, lay.out_base, lay.best_base);
        let unit = scale.unit;
        Ok(AnalysisPlan {
            name: "179.art",
            iterations: scale.iterations,
            master,
            recovery,
            stages: vec![
                // The dispatcher only ships the window index; no
                // committed-state footprint.
                StageSpec::new("dispatch", StageRole::Sequential, Box::new(|_| Vec::new())),
                StageSpec::new(
                    "matcher",
                    StageRole::Parallel,
                    Box::new(move |mtx| {
                        vec![Region::read("windows", w_base.add_words(mtx * unit), unit)]
                    }),
                ),
                // The best-match fold is a carried dependence kept inside
                // the sequential reduce stage.
                StageSpec::new(
                    "reduce",
                    StageRole::Sequential,
                    Box::new(move |mtx| {
                        vec![
                            Region::write("out", out_base.add_words(mtx), 1),
                            Region::read_write("best", best_base, 2),
                        ]
                    }),
                ),
            ],
            shard_map: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_agree() {
        let k = Art;
        let scale = Scale::test();
        let seq = k.run(Mode::Sequential, scale).unwrap();
        let par = k.run(Mode::Dsmtx { workers: 3 }, scale).unwrap();
        let tls = k.run(Mode::Tls { workers: 2 }, scale).unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq, tls);
    }

    #[test]
    fn trip_counts_really_vary() {
        let windows = generate(Scale::test());
        let scale = Scale::test();
        let counts: std::collections::HashSet<u64> = (0..scale.iterations)
            .map(|i| trips(&windows[(i * scale.unit) as usize..((i + 1) * scale.unit) as usize]))
            .collect();
        assert!(counts.len() > 1, "imbalance requires varying trip counts");
    }

    #[test]
    fn best_match_is_argmax() {
        let k = Art;
        let scale = Scale::test();
        let out = k.run(Mode::Sequential, scale).unwrap();
        let scores = &out[..scale.iterations as usize];
        let best_score = out[scale.iterations as usize];
        let best_index = out[scale.iterations as usize + 1];
        assert_eq!(best_score, *scores.iter().max().unwrap());
        assert_eq!(scores[best_index as usize], best_score);
    }

    #[test]
    fn profile_is_consistent() {
        Art.profile().check();
    }
}
