//! The analyzable description of a kernel's loop and stage partition.
//!
//! Every registry kernel ships a hand-written DSMTX plan (its Table 2
//! paradigm). [`AnalysisPlan`] is the declaration the dependence analyzer
//! (`dsmtx-analyze`) consumes instead of the opaque stage closures: the
//! pre-loop committed memory, the *sequential* recovery body (the §4.3
//! re-execution path, which touches exactly the committed-state loads and
//! stores of one iteration), and a [`StageSpec`] per pipeline stage
//! declaring role, per-iteration footprint, and forwarded addresses.
//!
//! The recovery body doubles as the instrumented sequential version of
//! the loop: running it for every iteration against `MasterMem` with
//! recording on yields the program-order access stream the PDG builder
//! classifies.

use dsmtx::{RecoveryFn, StageSpec};
use dsmtx_mem::{MasterMem, ShardMap};

/// Everything the analyzer needs to record, classify, and lint one
/// kernel's shipped plan.
pub struct AnalysisPlan {
    /// Kernel name (Table 2 name for registry kernels).
    pub name: &'static str,
    /// Loop trip count at the plan's scale.
    pub iterations: u64,
    /// Committed memory at loop entry (inputs stored, outputs zero).
    pub master: MasterMem,
    /// The sequential per-iteration body (the plan's §4.3 recovery
    /// function), driven once per iteration by the recorder.
    pub recovery: RecoveryFn,
    /// Declared stage partition, in pipeline order.
    pub stages: Vec<StageSpec>,
    /// Profile-guided page→shard placement shipped with the plan
    /// (`None` keeps the default hash partition). Kernels whose store
    /// profile is skewed ship a [`ShardMap::balance`] of their recorded
    /// filtered store stream; `run_reported` installs it and the linter
    /// weighs its histogram instead of the hash's.
    pub shard_map: Option<ShardMap>,
}

impl std::fmt::Debug for AnalysisPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisPlan")
            .field("name", &self.name)
            .field("iterations", &self.iterations)
            .field("stages", &self.stages)
            .field("shard_map", &self.shard_map)
            .finish_non_exhaustive()
    }
}
