//! `456.hmmer` — SPEC CINT2006 gene sequence database search.
//!
//! Paper plan: `Spec-DSWP+[DOALL, S]`: the first (parallel) stage scores
//! sequences against the profile HMM; the second (sequential) stage
//! histograms the scores with a max-reduction. Spec-DSWP scales further
//! than TLS because TLS's cyclic dependence (the histogram/max state)
//! puts inter-thread latency on the critical path at high core counts
//! (§5.2).
//!
//! Kernel: a Viterbi-flavoured dynamic program scores each sequence
//! against a fixed profile; the reduction stage maintains an 8-bucket
//! histogram and the maximum score. The TLS baseline forwards the whole
//! reduction state around the replica ring every iteration.

use std::sync::Arc;

use dsmtx::{
    IterOutcome, MtxId, RecoveryFn, Region, RunResult, StageId, StageRole, StageSpec, WorkerCtx,
};
use dsmtx_mem::MasterMem;
use dsmtx_paradigms::paradigm::StageLabel;
use dsmtx_paradigms::{Paradigm, Pipeline, SpecKind, Tls, Tuning};
use dsmtx_sim::{
    profile::{StageProfile, StageShape},
    TlsPlan, WorkloadProfile,
};
use dsmtx_uva::VAddr;

use crate::analysis::AnalysisPlan;
use crate::common::{
    load_words, master_heap, store_words, Kernel, KernelError, Mode, Scale, Stream, Table2Entry,
};

/// Number of HMM states in the profile.
pub const STATES: usize = 12;
/// Histogram buckets.
pub const BUCKETS: u64 = 8;
/// Words in the generated profile matrix.
const P_LEN: u64 = 64;

/// The hmmer kernel.
#[derive(Debug, Default)]
pub struct Hmmer;

/// Scores one sequence against the profile with a banded DP.
pub(crate) fn score(profile: &[u64], seq: &[u64]) -> u64 {
    let mut dp = [0i64; STATES];
    for &tok in seq {
        let mut next = [i64::MIN / 2; STATES];
        for s in 0..STATES {
            let emit = (profile[(s as u64 * 31 + tok) as usize % profile.len()] % 17) as i64 - 6;
            let stay = dp[s];
            let step = if s > 0 { dp[s - 1] } else { 0 };
            next[s] = stay.max(step) + emit;
        }
        dp = next;
    }
    let best = dp.iter().copied().max().unwrap_or(0).max(0);
    best as u64
}

fn generate(scale: Scale) -> (Vec<u64>, Vec<u64>) {
    let mut s = Stream::new(scale.seed ^ 0x44);
    let profile: Vec<u64> = (0..P_LEN).map(|_| s.next() % 97).collect();
    let seqs: Vec<u64> = (0..scale.iterations * scale.unit)
        .map(|_| s.below(23))
        .collect();
    (profile, seqs)
}

/// Output layout: `[hist[0..BUCKETS], max_score]`.
fn fold(hist_max: &mut [u64], sc: u64) {
    hist_max[(sc % BUCKETS) as usize] += 1;
    if sc > hist_max[BUCKETS as usize] {
        hist_max[BUCKETS as usize] = sc;
    }
}

/// Shared layout of the parallel runs. Allocation order is fixed, so
/// rebuilding it always yields the same bases — `plan()` and the runners
/// agree on addresses.
struct Layout {
    p_base: VAddr,
    s_base: VAddr,
    h_base: VAddr,
}

fn layout(scale: Scale) -> Result<Layout, KernelError> {
    let n = scale.iterations;
    let mut heap = master_heap();
    let p_base = heap
        .alloc_words(P_LEN)
        .map_err(|e| KernelError(e.to_string()))?;
    let s_base = heap
        .alloc_words(n * scale.unit)
        .map_err(|e| KernelError(e.to_string()))?;
    let h_base = heap
        .alloc_words(BUCKETS + 1)
        .map_err(|e| KernelError(e.to_string()))?;
    Ok(Layout {
        p_base,
        s_base,
        h_base,
    })
}

fn initial_master(profile: &[u64], seqs: &[u64], lay: &Layout) -> MasterMem {
    let mut master = MasterMem::new();
    store_words(&mut master, lay.p_base, profile);
    store_words(&mut master, lay.s_base, seqs);
    master
}

fn recovery_fn(lay: &Layout, scale: Scale) -> RecoveryFn {
    let (p_base, s_base, h_base) = (lay.p_base, lay.s_base, lay.h_base);
    let unit = scale.unit;
    Box::new(move |mtx: MtxId, master: &mut MasterMem| {
        let prof = load_words(master, p_base, P_LEN);
        let seq = load_words(master, s_base.add_words(mtx.0 * unit), unit);
        let sc = score(&prof, &seq);
        let mut state = load_words(master, h_base, BUCKETS + 1);
        fold(&mut state, sc);
        store_words(master, h_base, &state);
        IterOutcome::Continue
    })
}

impl Hmmer {
    fn sequential(profile: &[u64], seqs: &[u64], scale: Scale) -> Vec<u64> {
        let mut out = vec![0u64; BUCKETS as usize + 1];
        for i in 0..scale.iterations {
            let seq = &seqs[(i * scale.unit) as usize..((i + 1) * scale.unit) as usize];
            fold(&mut out, score(profile, seq));
        }
        out
    }

    fn run_generated(&self, mode: Mode, scale: Scale) -> Result<Vec<u64>, KernelError> {
        if let Mode::Sequential = mode {
            let (profile, seqs) = generate(scale);
            return Ok(Self::sequential(&profile, &seqs, scale));
        }
        let lay = layout(scale)?;
        let result = self.result_generated(mode, 1, scale)?;
        Ok(load_words(&result.master, lay.h_base, BUCKETS + 1))
    }

    /// The parallel paths, at an explicit try-commit shard count,
    /// returning the full run result.
    fn result_generated(
        &self,
        mode: Mode,
        shards: usize,
        scale: Scale,
    ) -> Result<RunResult, KernelError> {
        let (profile, seqs) = generate(scale);
        let n = scale.iterations;
        let unit = scale.unit;
        let lay = layout(scale)?;
        let master = initial_master(&profile, &seqs, &lay);
        let (p_base, s_base, h_base) = (lay.p_base, lay.s_base, lay.h_base);
        let recovery = recovery_fn(&lay, scale);

        let load_score = move |ctx: &mut WorkerCtx, i: u64| -> Result<u64, dsmtx::Interrupt> {
            // The profile matrix and the sequence database are read-only
            // after loop entry (COA distributes them page by page).
            let prof: Vec<u64> = (0..P_LEN)
                .map(|k| ctx.read_private(p_base.add_words(k)))
                .collect::<Result<_, _>>()?;
            let seq: Vec<u64> = (0..unit)
                .map(|k| ctx.read_private(s_base.add_words(i * unit + k)))
                .collect::<Result<_, _>>()?;
            Ok(score(&prof, &seq))
        };

        let result = match mode {
            Mode::Dsmtx { workers } => {
                let compute = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    let sc = load_score(ctx, mtx.0)?;
                    ctx.produce_to(StageId(1), sc);
                    Ok(IterOutcome::Continue)
                });
                let reduce = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    let sc = ctx.consume_from(StageId(0));
                    let bucket = h_base.add_words(sc % BUCKETS);
                    let cur = ctx.read(bucket)?;
                    ctx.write_no_forward(bucket, cur + 1)?;
                    let max_cell = h_base.add_words(BUCKETS);
                    let max = ctx.read(max_cell)?;
                    if sc > max {
                        ctx.write_no_forward(max_cell, sc)?;
                    }
                    Ok(IterOutcome::Continue)
                });
                Pipeline::new()
                    .par(workers.max(1), compute)
                    .seq(reduce)
                    .tuning(Tuning::with_unit_shards(shards))
                    .run(master, recovery, Some(n))?
            }
            Mode::Tls { workers } => {
                // TLS forwards the entire reduction state on the ring —
                // the cyclic pattern that caps its scalability.
                let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    let sc = load_score(ctx, mtx.0)?;
                    let incoming = ctx.sync_take();
                    let mut state = if incoming.len() == (BUCKETS + 1) as usize {
                        incoming
                    } else {
                        (0..=BUCKETS)
                            .map(|k| ctx.read(h_base.add_words(k)))
                            .collect::<Result<_, _>>()?
                    };
                    fold(&mut state, sc);
                    for (k, &v) in state.iter().enumerate() {
                        ctx.write_no_forward(h_base.add_words(k as u64), v)?;
                        ctx.sync_produce(v);
                    }
                    Ok(IterOutcome::Continue)
                });
                Tls {
                    replicas: workers.max(1),
                    tuning: Tuning::with_unit_shards(shards),
                }
                .run(master, body, recovery, Some(n))?
            }
            Mode::Sequential => unreachable!("parallel paths only"),
        };
        Ok(result)
    }
}

impl Kernel for Hmmer {
    fn info(&self) -> Table2Entry {
        Table2Entry {
            name: "456.hmmer",
            suite: "SPEC CINT 2006",
            description: "gene sequence database search",
            paradigm: Paradigm::SpecDswp {
                stages: vec![StageLabel::Doall, StageLabel::S],
            },
            speculation: vec![SpecKind::MemoryVersioning],
        }
    }

    fn profile(&self) -> WorkloadProfile {
        WorkloadProfile {
            name: "456.hmmer".into(),
            iter_work: 2.0e-3,
            iterations: 20_000,
            coverage: 0.995,
            stages: vec![
                StageProfile {
                    shape: StageShape::Parallel,
                    work_fraction: 0.995,
                    bytes_out: 8.0,
                },
                StageProfile {
                    shape: StageShape::Sequential,
                    work_fraction: 0.005,
                    bytes_out: 0.0,
                },
            ],
            validation_words: 12.0,
            tls: TlsPlan {
                // The whole reduction state rides the ring.
                sync_fraction: 0.012,
                bytes_per_iter: 72.0,
                validation_words: 12.0,
            },
            chunked: false,
            invocation: None,
        }
    }

    fn run(&self, mode: Mode, scale: Scale) -> Result<Vec<u64>, KernelError> {
        self.run_generated(mode, scale)
    }

    fn run_reported(
        &self,
        workers: u16,
        unit_shards: usize,
        scale: Scale,
    ) -> Result<RunResult, KernelError> {
        self.result_generated(Mode::Dsmtx { workers }, unit_shards, scale)
    }

    fn plan(&self, scale: Scale) -> Result<AnalysisPlan, KernelError> {
        let lay = layout(scale)?;
        let (profile, seqs) = generate(scale);
        let master = initial_master(&profile, &seqs, &lay);
        let recovery = recovery_fn(&lay, scale);
        let (p_base, s_base, h_base) = (lay.p_base, lay.s_base, lay.h_base);
        let unit = scale.unit;
        Ok(AnalysisPlan {
            name: "456.hmmer",
            iterations: scale.iterations,
            master,
            recovery,
            stages: vec![
                StageSpec::new(
                    "compute",
                    StageRole::Parallel,
                    Box::new(move |mtx| {
                        vec![
                            Region::read("profile", p_base, P_LEN),
                            Region::read("seqs", s_base.add_words(mtx * unit), unit),
                        ]
                    }),
                ),
                // The histogram/max fold is the cyclic dependence kept in
                // the sequential reduce stage.
                StageSpec::new(
                    "reduce",
                    StageRole::Sequential,
                    Box::new(move |_| vec![Region::read_write("hist", h_base, BUCKETS + 1)]),
                ),
            ],
            shard_map: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_agree() {
        let k = Hmmer;
        let scale = Scale::test();
        let seq = k.run(Mode::Sequential, scale).unwrap();
        let par = k.run(Mode::Dsmtx { workers: 3 }, scale).unwrap();
        let tls = k.run(Mode::Tls { workers: 3 }, scale).unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq, tls);
    }

    #[test]
    fn histogram_counts_every_sequence() {
        let k = Hmmer;
        let scale = Scale::test();
        let out = k.run(Mode::Sequential, scale).unwrap();
        let total: u64 = out[..BUCKETS as usize].iter().sum();
        assert_eq!(total, scale.iterations);
    }

    #[test]
    fn score_is_monotone_in_sequence_length() {
        let (profile, _) = generate(Scale::test());
        let short = score(&profile, &[1, 2]);
        let long = score(&profile, &[1, 2, 1, 2, 1, 2, 1, 2]);
        // Longer sequences can only accumulate more (scores clamp at 0).
        assert!(long >= short || short == 0);
    }

    #[test]
    fn max_is_at_least_every_bucketed_score() {
        let k = Hmmer;
        let out = k.run(Mode::Sequential, Scale::test()).unwrap();
        let max = out[BUCKETS as usize];
        let (profile, seqs) = generate(Scale::test());
        let scale = Scale::test();
        for i in 0..scale.iterations {
            let seq = &seqs[(i * scale.unit) as usize..((i + 1) * scale.unit) as usize];
            assert!(score(&profile, seq) <= max);
        }
    }

    #[test]
    fn profile_is_consistent() {
        Hmmer.profile().check();
    }
}
