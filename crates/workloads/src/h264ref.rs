//! `464.h264ref` — SPEC CINT2006 video encoder.
//!
//! Paper plan: `Spec-DSWP+[DOALL, S]`: Groups of Pictures (GoPs) encode in
//! parallel; dynamic memory versioning breaks the false dependences on the
//! frame buffers. The synchronized dependence (rate control) sits inside
//! an inner loop, which effectively serializes TLS; Spec-DSWP moves that
//! dependence cycle into its own stage. Speedup is limited primarily by
//! the number of GoPs available (§5.2).
//!
//! Kernel: each iteration encodes one GoP — per frame, a
//! motion-search-flavoured sum of absolute differences against the
//! previous frame, computed in a *worker-private* reconstruction buffer
//! (the versioned frame arrays). The sequential stage runs rate control:
//! the bitstream size of a GoP depends on the rate state left by the
//! previous GoP.

use std::sync::Arc;

use dsmtx::{
    IterOutcome, MtxId, RecoveryFn, Region, RunResult, StageId, StageRole, StageSpec, WorkerCtx,
};
use dsmtx_mem::MasterMem;
use dsmtx_paradigms::paradigm::StageLabel;
use dsmtx_paradigms::{Paradigm, Pipeline, SpecKind, Tls, Tuning};
use dsmtx_sim::{
    profile::{StageProfile, StageShape},
    TlsPlan, WorkloadProfile,
};
use dsmtx_uva::VAddr;

use crate::analysis::AnalysisPlan;
use crate::common::{
    load_words, master_heap, store_words, Kernel, KernelError, Mode, Scale, Stream, Table2Entry,
};

/// Frames per GoP.
pub const FRAMES: u64 = 4;
/// Motion-search offsets examined per pixel.
const SEARCH: u64 = 3;

/// The h264ref kernel.
#[derive(Debug, Default)]
pub struct H264Ref;

/// Encodes one GoP (pixel data for FRAMES frames of `px` pixels each),
/// returning its raw cost.
pub(crate) fn encode_gop(gop: &[u64], px: u64) -> u64 {
    let mut reference = vec![128u64; px as usize]; // flat I-frame predictor
    let mut cost = 0u64;
    for f in 0..FRAMES {
        let frame = &gop[(f * px) as usize..((f + 1) * px) as usize];
        for (i, &p) in frame.iter().enumerate() {
            let mut best = u64::MAX;
            for s in 0..SEARCH {
                let j = (i + s as usize) % px as usize;
                let diff = p.abs_diff(reference[j]);
                best = best.min(diff);
            }
            cost = cost.wrapping_add(best).rotate_left(1);
        }
        reference.copy_from_slice(frame); // versioned reconstruction buffer
    }
    cost
}

/// Rate control: bitstream size of a GoP given the carried rate state.
/// Returns `(size, new_state)`.
pub(crate) fn rate_control(cost: u64, state: u64) -> (u64, u64) {
    let size = (cost % 10_000).wrapping_add(state % 997);
    let new_state = state.wrapping_mul(31).wrapping_add(cost).rotate_left(7);
    (size, new_state)
}

fn generate(scale: Scale) -> Vec<u64> {
    let mut s = Stream::new(scale.seed ^ 0x464);
    (0..scale.iterations * FRAMES * scale.unit)
        .map(|_| s.below(256))
        .collect()
}

/// Shared layout of the parallel runs. Allocation order is fixed, so
/// rebuilding it always yields the same bases — `plan()` and the runners
/// agree on addresses.
struct Layout {
    g_base: VAddr,
    out_base: VAddr,
    state_cell: VAddr,
}

fn layout(scale: Scale) -> Result<Layout, KernelError> {
    let n = scale.iterations;
    let gop_words = FRAMES * scale.unit;
    let mut heap = master_heap();
    let g_base = heap
        .alloc_words(n * gop_words)
        .map_err(|e| KernelError(e.to_string()))?;
    let out_base = heap
        .alloc_words(n)
        .map_err(|e| KernelError(e.to_string()))?;
    let state_cell = heap
        .alloc_words(1)
        .map_err(|e| KernelError(e.to_string()))?;
    Ok(Layout {
        g_base,
        out_base,
        state_cell,
    })
}

fn initial_master(gops: &[u64], lay: &Layout) -> MasterMem {
    let mut master = MasterMem::new();
    store_words(&mut master, lay.g_base, gops);
    master
}

fn recovery_fn(lay: &Layout, scale: Scale) -> RecoveryFn {
    let (g_base, out_base, state_cell) = (lay.g_base, lay.out_base, lay.state_cell);
    let px = scale.unit;
    let gop_words = FRAMES * px;
    Box::new(move |mtx: MtxId, master: &mut MasterMem| {
        let gop = load_words(master, g_base.add_words(mtx.0 * gop_words), gop_words);
        let cost = encode_gop(&gop, px);
        let state = master.read(state_cell);
        let (size, new_state) = rate_control(cost, state);
        master.write(out_base.add_words(mtx.0), size);
        master.write(state_cell, new_state);
        IterOutcome::Continue
    })
}

impl H264Ref {
    fn sequential(gops: &[u64], scale: Scale) -> Vec<u64> {
        let px = scale.unit;
        let gop_words = FRAMES * px;
        let mut state = 0u64;
        let mut out = Vec::with_capacity(scale.iterations as usize + 1);
        for i in 0..scale.iterations {
            let gop = &gops[(i * gop_words) as usize..((i + 1) * gop_words) as usize];
            let cost = encode_gop(gop, px);
            let (size, new_state) = rate_control(cost, state);
            out.push(size);
            state = new_state;
        }
        out.push(state);
        out
    }

    fn run_generated(&self, mode: Mode, scale: Scale) -> Result<Vec<u64>, KernelError> {
        if let Mode::Sequential = mode {
            return Ok(Self::sequential(&generate(scale), scale));
        }
        let lay = layout(scale)?;
        let result = self.result_generated(mode, 1, scale)?;
        let mut out = load_words(&result.master, lay.out_base, scale.iterations);
        out.push(result.master.read(lay.state_cell));
        Ok(out)
    }

    /// The parallel paths, at an explicit try-commit shard count,
    /// returning the full run result.
    fn result_generated(
        &self,
        mode: Mode,
        shards: usize,
        scale: Scale,
    ) -> Result<RunResult, KernelError> {
        let gops = generate(scale);
        let n = scale.iterations;
        let px = scale.unit;
        let gop_words = FRAMES * px;
        let lay = layout(scale)?;
        let master = initial_master(&gops, &lay);
        let (g_base, out_base, state_cell) = (lay.g_base, lay.out_base, lay.state_cell);
        let recovery = recovery_fn(&lay, scale);

        let encode_iter = move |ctx: &mut WorkerCtx, i: u64| -> Result<u64, dsmtx::Interrupt> {
            // The versioned reconstruction buffer lives in the worker's
            // own UVA region (memory versioning).
            let scratch = ctx.heap().alloc_words(px).expect("worker scratch");
            for k in 0..px {
                ctx.write_private(scratch.add_words(k), 128)?;
            }
            let mut cost = 0u64;
            for f in 0..FRAMES {
                let mut frame = Vec::with_capacity(px as usize);
                for k in 0..px {
                    frame.push(ctx.read_private(g_base.add_words(i * gop_words + f * px + k))?);
                }
                for (idx, &p) in frame.iter().enumerate() {
                    let mut best = u64::MAX;
                    for s in 0..SEARCH {
                        let j = ((idx + s as usize) % px as usize) as u64;
                        let r = ctx.read_private(scratch.add_words(j))?;
                        best = best.min(p.abs_diff(r));
                    }
                    cost = cost.wrapping_add(best).rotate_left(1);
                }
                for (k, &p) in frame.iter().enumerate() {
                    ctx.write_private(scratch.add_words(k as u64), p)?;
                }
            }
            ctx.heap().free(scratch).expect("scratch freed");
            Ok(cost)
        };

        let result = match mode {
            Mode::Dsmtx { workers } => {
                let encode = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    let cost = encode_iter(ctx, mtx.0)?;
                    ctx.produce_to(StageId(1), cost);
                    Ok(IterOutcome::Continue)
                });
                // The rate-control dependence cycle lives in its own
                // sequential stage.
                let rate = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    let cost = ctx.consume_from(StageId(0));
                    let state = ctx.read(state_cell)?;
                    let (size, new_state) = rate_control(cost, state);
                    ctx.write_no_forward(out_base.add_words(mtx.0), size)?;
                    ctx.write(state_cell, new_state)?;
                    Ok(IterOutcome::Continue)
                });
                Pipeline::new()
                    .par(workers.max(1), encode)
                    .seq(rate)
                    .tuning(Tuning::with_unit_shards(shards))
                    .run(master, recovery, Some(n))?
            }
            Mode::Tls { workers } => {
                // TLS: rate control is synchronized inside the iteration —
                // the whole transaction waits on the ring value.
                let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    let state = match ctx.sync_take().first() {
                        Some(&v) => v,
                        None => ctx.read(state_cell)?,
                    };
                    let cost = encode_iter(ctx, mtx.0)?;
                    let (size, new_state) = rate_control(cost, state);
                    ctx.write_no_forward(out_base.add_words(mtx.0), size)?;
                    ctx.write_no_forward(state_cell, new_state)?;
                    ctx.sync_produce(new_state);
                    Ok(IterOutcome::Continue)
                });
                Tls {
                    replicas: workers.max(1),
                    tuning: Tuning::with_unit_shards(shards),
                }
                .run(master, body, recovery, Some(n))?
            }
            Mode::Sequential => unreachable!("parallel paths only"),
        };
        Ok(result)
    }
}

impl Kernel for H264Ref {
    fn info(&self) -> Table2Entry {
        Table2Entry {
            name: "464.h264ref",
            suite: "SPEC CINT 2006",
            description: "video encoder",
            paradigm: Paradigm::SpecDswp {
                stages: vec![StageLabel::Doall, StageLabel::S],
            },
            speculation: vec![SpecKind::MemoryVersioning],
        }
    }

    fn profile(&self) -> WorkloadProfile {
        WorkloadProfile {
            name: "464.h264ref".into(),
            // The number of GoPs in the input bounds the parallelism.
            iter_work: 90.0e-3,
            iterations: 80,
            coverage: 0.99,
            stages: vec![
                StageProfile {
                    shape: StageShape::Parallel,
                    work_fraction: 0.995,
                    bytes_out: 64.0,
                },
                StageProfile {
                    shape: StageShape::Sequential,
                    work_fraction: 0.005,
                    bytes_out: 0.0,
                },
            ],
            validation_words: 12.0,
            tls: TlsPlan {
                // The inner-loop synchronized dependence serializes TLS.
                sync_fraction: 0.9,
                bytes_per_iter: 64.0,
                validation_words: 12.0,
            },
            chunked: false,
            invocation: None,
        }
    }

    fn run(&self, mode: Mode, scale: Scale) -> Result<Vec<u64>, KernelError> {
        self.run_generated(mode, scale)
    }

    fn run_reported(
        &self,
        workers: u16,
        unit_shards: usize,
        scale: Scale,
    ) -> Result<RunResult, KernelError> {
        self.result_generated(Mode::Dsmtx { workers }, unit_shards, scale)
    }

    fn plan(&self, scale: Scale) -> Result<AnalysisPlan, KernelError> {
        let lay = layout(scale)?;
        let master = initial_master(&generate(scale), &lay);
        let recovery = recovery_fn(&lay, scale);
        let (g_base, out_base, state_cell) = (lay.g_base, lay.out_base, lay.state_cell);
        let gop_words = FRAMES * scale.unit;
        Ok(AnalysisPlan {
            name: "464.h264ref",
            iterations: scale.iterations,
            master,
            recovery,
            stages: vec![
                // The reconstruction buffer is worker-private (memory
                // versioning), so only the GoP pixels are committed state.
                StageSpec::new(
                    "encode",
                    StageRole::Parallel,
                    Box::new(move |mtx| {
                        vec![Region::read(
                            "gops",
                            g_base.add_words(mtx * gop_words),
                            gop_words,
                        )]
                    }),
                ),
                // Rate control carries its state in the sequential stage.
                StageSpec::new(
                    "rate",
                    StageRole::Sequential,
                    Box::new(move |mtx| {
                        vec![
                            Region::write("out", out_base.add_words(mtx), 1),
                            Region::read_write("rate_state", state_cell, 1),
                        ]
                    }),
                ),
            ],
            shard_map: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_agree() {
        let k = H264Ref;
        let scale = Scale::test();
        let seq = k.run(Mode::Sequential, scale).unwrap();
        let par = k.run(Mode::Dsmtx { workers: 3 }, scale).unwrap();
        let tls = k.run(Mode::Tls { workers: 2 }, scale).unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq, tls);
    }

    #[test]
    fn rate_state_chains_across_gops() {
        // Same cost twice gives different sizes because the state moved.
        let (s1, st1) = rate_control(1000, 0);
        let (s2, _) = rate_control(1000, st1);
        assert_ne!(s1, s2);
    }

    #[test]
    fn perfectly_predicted_video_costs_zero() {
        let px = 16;
        // Every frame equals the flat predictor: all residuals are zero.
        let static_gop = vec![128u64; (FRAMES * px) as usize];
        assert_eq!(encode_gop(&static_gop, px), 0);
        // Any busy scene costs something.
        let mut moving_gop = static_gop;
        for (i, p) in moving_gop.iter_mut().enumerate() {
            *p = (i as u64 * 37) % 256;
        }
        assert_ne!(encode_gop(&moving_gop, px), 0);
    }

    #[test]
    fn profile_is_consistent() {
        H264Ref.profile().check();
    }
}
